"""Seed determinism: the same (config, seed) point is byte-reproducible.

The whole evaluation depends on runs being pure functions of their
coordinates: same app/input/system/scale/seed ⇒ identical simulation,
hence identical manifest modulo the volatile keys (wall time,
timestamp). These tests lock that down for single runs, for repeated
runs in one process, and for the sweep runner across worker counts —
``run_sweep`` must produce the same merged ``sweep.json`` byte for
byte whether it ran inline or on a process pool.
"""

import json

import pytest

from repro.harness import SweepPoint, prepare_input, run_experiment, run_sweep
from repro.stats.manifest import (load_manifests, strip_volatile)

_SCALE = 0.06


def _canon(manifest: dict) -> str:
    return json.dumps(strip_volatile(manifest), indent=2, sort_keys=True)


@pytest.mark.parametrize("seed", [1, 3])
def test_same_seed_same_manifest(seed):
    manifests = []
    for _ in range(2):
        prepared = prepare_input("bfs", "In", scale=_SCALE, seed=seed)
        result = run_experiment("bfs", "In", "fifer", prepared=prepared,
                                scale=_SCALE, seed=seed)
        manifests.append(result.to_manifest())
    assert _canon(manifests[0]) == _canon(manifests[1])


def test_different_seeds_differ():
    outcomes = []
    for seed in (1, 3):
        prepared = prepare_input("bfs", "In", scale=_SCALE, seed=seed)
        result = run_experiment("bfs", "In", "fifer", prepared=prepared,
                                scale=_SCALE, seed=seed)
        outcomes.append(_canon(result.to_manifest()))
    assert outcomes[0] != outcomes[1]


def _points():
    return [SweepPoint("bfs", "In", system, scale=_SCALE, seed=seed)
            for system in ("static", "fifer") for seed in (1, 3)]


def test_sweep_workers_byte_identical(tmp_path):
    """workers=1 (inline) vs workers=4 (process pool): per-point
    manifests and the merged sweep.json must be byte-identical modulo
    volatile keys, and result order must follow input order."""
    texts = {}
    for workers in (1, 4):
        out = tmp_path / f"w{workers}"
        results = run_sweep(_points(), workers=workers, manifest_dir=out)
        assert [r.label for r in results] == [p.label.rsplit("/", 2)[0]
                                              for p in _points()]
        merged = json.loads((out / "sweep.json").read_text())
        assert merged["kind"] == "sweep"
        assert merged["n_points"] == len(_points())
        texts[workers] = {
            "sweep": json.dumps(merged, indent=2, sort_keys=True),
            "points": [_canon(m) for m in load_manifests(out)],
        }
    assert texts[1] == texts[4]


def test_sweep_repeat_byte_identical(tmp_path):
    sweeps = []
    for run in range(2):
        out = tmp_path / f"run{run}"
        run_sweep(_points(), workers=2, manifest_dir=out)
        merged = json.loads((out / "sweep.json").read_text())
        # The merged document itself strips volatile keys, so the raw
        # bytes (not just a canonicalization) must match across runs.
        sweeps.append((out / "sweep.json").read_text())
        for point in merged["points"]:
            assert "wall_time_s" not in point
            assert "created" not in point
    assert sweeps[0] == sweeps[1]


def test_load_manifests_skips_sweep_document(tmp_path):
    run_sweep(_points()[:2], workers=1, manifest_dir=tmp_path)
    manifests = load_manifests(tmp_path)
    assert len(manifests) == 2
    assert all(m.get("kind") != "sweep" for m in manifests)
