"""Connected components via label propagation (paper Sec. 7.2).

CC discovers the connectivity of graph vertices. The Ligra-style
algorithm propagates minimum labels: every vertex starts with its own id
as its label; active vertices push their label to neighbors, a neighbor
whose label shrinks becomes active, and the algorithm converges when no
label changes. The pipeline shape is identical to BFS with the fetched
value array being ``labels``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.graphs import CSRGraph
from repro.workloads.common import GraphPipelineWorkload


def cc_reference(graph: CSRGraph) -> np.ndarray:
    """Golden label propagation; labels converge to component minima."""
    labels = np.arange(graph.n_vertices, dtype=np.int64)
    fringe = list(range(graph.n_vertices))
    while fringe:
        touched = set()
        for v in fringe:
            label = labels[v]
            for ngh in graph.neighbors_of(v):
                if label < labels[ngh]:
                    labels[ngh] = label
                    touched.add(int(ngh))
        fringe = sorted(touched)
    return labels


class CCWorkload(GraphPipelineWorkload):
    """Pipeline-parallel connected components."""

    name = "cc"
    # drm_off also fetches the vertex's current label (decoupled).
    vertex_fetch_words = 1

    def setup(self) -> None:
        n = self.graph.n_vertices
        self.labels = np.arange(n, dtype=np.int64)
        self.labels_ref = self.space.alloc_array("labels", n)
        self.memmap.register(self.labels_ref, self.labels)
        # Per-shard dedup of next-fringe appends within an iteration.
        self._in_next = [set() for _ in range(self.n_shards)]

    def value_addr(self, ngh: int) -> int:
        return self.labels_ref.addr(ngh)

    def initial_fringe(self):
        return range(self.graph.n_vertices)

    def vertex_fetch_addrs(self, v: int) -> tuple:
        return (self.labels_ref.addr(v),)

    def vertex_process(self, ctx, shard: int, v: int, start: int, end: int):
        # The label to push arrived with the decoupled vertex fetch; the
        # authoritative value is re-read from the array.
        return int(self.labels[v])
        yield  # pragma: no cover

    def s3_update(self, ctx, shard: int, ngh: int, value, p0):
        if p0 < self.labels[ngh]:
            self.labels[ngh] = p0
            yield ("store", self.labels_ref.addr(ngh))
            if ngh not in self._in_next[shard]:
                self._in_next[shard].add(ngh)
                yield from self.push_touched(ctx, shard, ngh)

    def at_barrier(self, iteration: int) -> None:
        for pending in self._in_next:
            pending.clear()

    def result(self) -> np.ndarray:
        return self.labels

    def vertex_extra_ops(self, b, v_node):
        return b.ctrl(v_node)  # steer the fetched label into the payload

    def s3_extra_ops(self, b, value_node, payload_node):
        return b.sel(b.lt(payload_node, value_node), payload_node, value_node)


def build(graph: CSRGraph, config, mode: str, variant: str = "decoupled"):
    from repro.workloads.common import shards_for_mode

    n_stages = 4 if variant == "decoupled" else 2
    workload = CCWorkload(graph, shards_for_mode(config, mode, n_stages))
    return workload.build_program(config, mode, variant), workload
