"""Table formatting and summary statistics for benchmark output."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def gmean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic)."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("gmean of no values")
    if any(v <= 0 for v in values):
        raise ValueError(f"gmean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
