"""SIMD datapath-replication ablation (paper Sec. 5.6).

The paper exploits SIMD-style parallelism within a PE by replicating a
stage's datapath across unused fabric columns ("a 16x5 grid ... can be
configured as four copies of a datapath that fit on a smaller 4x5 grid,
yielding a potential 4x throughput improvement"). This benchmark caps
the replication factor at 1/2/4/unbounded and reports Fifer's
performance, quantifying how much of its throughput comes from filling
the fabric.
"""

from bench_common import ALL_APPS, emit, experiment, point, prefetch
from repro.harness import format_table

CAPS = (1, 2, 4, None)
_CASES = tuple((app, code)
               for app, code in (("bfs", "In"), ("cc", "Hu"), ("spmm", "GE"))
               if app in ALL_APPS)


def _run(app, code, cap):
    return experiment(app, code, "fifer", max_simd_replication=cap).cycles


def run_simd_ablation():
    prefetch(point(app, code, "fifer", max_simd_replication=cap)
             for app, code in _CASES for cap in CAPS)
    rows = []
    gains = {}
    for app, code in _CASES:
        base = _run(app, code, None)
        speedups = [base / _run(app, code, cap) for cap in CAPS]
        rows.append([f"{app}/{code}"]
                    + [f"{s:.2f}" for s in speedups])
        gains[app] = speedups
    table = format_table(
        ["app"] + [str(c or "unbounded") for c in CAPS], rows,
        title=("SIMD replication ablation: Fifer performance vs the "
               "replication cap (1.0 = unbounded)"))
    emit("simd_ablation", table)
    return gains


def test_simd_ablation(benchmark):
    gains = benchmark.pedantic(run_simd_ablation, rounds=1, iterations=1)
    for app, speedups in gains.items():
        # No SIMD replication costs real performance...
        assert speedups[0] < 0.95, (app, speedups)
        # ...and more replication never hurts (monotone within noise).
        assert speedups[0] <= speedups[2] + 0.05
        assert abs(speedups[3] - 1.0) < 1e-9
