"""Structured per-point error records in the sweep runner.

``run_sweep(..., on_error="record")`` must isolate a poisoned point:
every other point still completes (in input order), the failure
arrives as a :class:`SweepPointError` carrying enough context to
reproduce it, manifests are written only for the successes, and the
merged ``sweep.json`` gains ``errors`` keys *only* when something
failed — error-free sweeps keep their historical byte shape.
"""

import json

import pytest

from repro.harness import (ExperimentResult, SweepPoint, SweepPointError,
                           merge_sweep_manifests, run_sweep)

_SCALE = 0.05

_GOOD = SweepPoint("bfs", "Hu", "fifer", scale=_SCALE)
# an unknown variant passes SweepPoint construction but explodes in
# the workload build, i.e. deep inside the worker
_POISONED = SweepPoint("bfs", "Hu", "fifer", variant="bogus", scale=_SCALE)
_GOOD2 = SweepPoint("cc", "Hu", "fifer", scale=_SCALE)


def test_default_behavior_still_raises():
    with pytest.raises(Exception):
        run_sweep([_GOOD, _POISONED], workers=1)


def test_invalid_on_error_rejected():
    with pytest.raises(ValueError):
        run_sweep([_GOOD], workers=1, on_error="ignore")


@pytest.mark.parametrize("workers", [1, 2])
def test_poisoned_point_is_recorded_not_fatal(workers):
    results = run_sweep([_GOOD, _POISONED, _GOOD2], workers=workers,
                        on_error="record")
    assert isinstance(results[0], ExperimentResult)
    assert isinstance(results[1], SweepPointError)
    assert isinstance(results[2], ExperimentResult)
    error = results[1]
    assert error.app == "bfs" and error.variant == "bogus"
    assert error.error_type == "ValueError"
    assert error.label == _POISONED.label
    assert "bogus" in error.traceback or error.traceback
    record = error.as_record()
    assert record["error_type"] == "ValueError"
    json.dumps(record)  # records must be JSON-serializable as-is


def test_recorded_errors_reach_the_merged_manifest(tmp_path):
    run_sweep([_GOOD, _POISONED], workers=1, on_error="record",
              manifest_dir=tmp_path)
    merged = json.loads((tmp_path / "sweep.json").read_text())
    assert merged["n_points"] == 1  # only the success has a manifest
    assert merged["n_errors"] == 1
    assert merged["errors"][0]["label"] == _POISONED.label
    # per-point manifests exist only for successful points
    point_files = [p for p in tmp_path.glob("*.json")
                   if p.name != "sweep.json"]
    assert len(point_files) == 1


def test_error_free_sweeps_keep_their_shape(tmp_path):
    run_sweep([_GOOD], workers=1, on_error="record", manifest_dir=tmp_path)
    merged = json.loads((tmp_path / "sweep.json").read_text())
    assert "errors" not in merged and "n_errors" not in merged
    # and merge_sweep_manifests defaults identically
    assert "errors" not in merge_sweep_manifests([])
