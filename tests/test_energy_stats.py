"""Tests for the energy/area models and CPI-stack statistics."""

import pytest

from repro.energy import (EnergyModel, PE_AREA_BREAKDOWN_MM2,
                          ooo_core_area_mm2, pe_area_mm2)
from repro.energy.area import PE_FRACTION_OF_CORE, system_area_mm2
from repro.harness import gmean, format_table, prepare_input, run_experiment
from repro.stats import Counters, CPI_BUCKETS, cpi_stack, merge_stacks


class TestArea:
    def test_table1_total(self):
        assert pe_area_mm2() == pytest.approx(1.34, abs=0.01)

    def test_breakdown_components(self):
        assert PE_AREA_BREAKDOWN_MM2["reconfigurable_fabric_16x5"] == 0.91
        assert PE_AREA_BREAKDOWN_MM2["data_cache_32kb"] == 0.22

    def test_pe_is_4_6_percent_of_core(self):
        assert pe_area_mm2() / ooo_core_area_mm2() == pytest.approx(
            PE_FRACTION_OF_CORE)

    def test_16_pes_smaller_than_4_cores(self):
        """The paper's provisioning: 16 PEs use less area than 4 cores."""
        pes = system_area_mm2(n_pes=16)
        cores = system_area_mm2(n_cores=4)
        assert pes < cores


class TestCounters:
    def test_missing_reads_zero(self):
        c = Counters()
        assert c["nothing"] == 0.0

    def test_add_and_merge(self):
        a, b = Counters(), Counters()
        a.add("x", 2)
        b.add("x", 3)
        b.add("y")
        a.merge(b)
        assert a["x"] == 5 and a["y"] == 1

    def test_as_dict(self):
        c = Counters()
        c.add("x", 1.5)
        assert c.as_dict() == {"x": 1.5}


class TestCPIStack:
    def test_buckets_sum_to_total(self):
        c = Counters()
        c.add("issued", 10)
        c.add("stall_mem", 5)
        c.add("stall_queue_full", 3)
        c.add("stall_queue_empty", 2)
        c.add("reconfig", 4)
        stack = cpi_stack(c, total_cycles=30)
        assert sum(stack.values()) == pytest.approx(30)
        assert stack["queue"] == 5
        assert stack["idle"] == 6  # 30 - 24 accounted

    def test_unaccounted_cycles_become_idle(self):
        stack = cpi_stack(Counters(), total_cycles=100)
        assert stack["idle"] == 100

    def test_merge_stacks(self):
        merged = merge_stacks([{b: 1.0 for b in CPI_BUCKETS},
                               {b: 2.0 for b in CPI_BUCKETS}])
        assert all(merged[b] == 3.0 for b in CPI_BUCKETS)


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def results(self):
        prepared = prepare_input("bfs", "Hu", scale=0.15)
        return {system: run_experiment("bfs", "Hu", system,
                                       prepared=prepared)
                for system in ("serial", "multicore", "static", "fifer")}

    def test_all_buckets_nonnegative(self, results):
        for result in results.values():
            assert all(v >= 0 for v in result.energy.values())

    def test_ooo_compute_heavier_than_cgra(self, results):
        """The paper's core claim: instruction interpretation overheads
        dominate OOO energy; CGRAs avoid them."""
        ooo = results["multicore"].energy
        cgra = results["fifer"].energy
        assert ooo["compute"] > cgra["compute"]

    def test_cgra_systems_use_less_total_energy(self, results):
        for cgra in ("static", "fifer"):
            assert (sum(results[cgra].energy.values())
                    < sum(results["multicore"].energy.values()))

    def test_leakage_scales_with_runtime(self):
        model = EnergyModel()
        assert model._leakage(10.0, 2000) == pytest.approx(
            2 * model._leakage(10.0, 1000))


class TestFormatting:
    def test_gmean(self):
        assert gmean([1, 4]) == pytest.approx(2.0)
        assert gmean([2, 2, 2]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            gmean([])
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])

    def test_format_table_aligns(self):
        table = format_table(["a", "bbb"], [["x", 1], ["yyyy", 22]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width
