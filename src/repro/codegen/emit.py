"""Deterministic Python source generation for pipeline stages.

Each of the four decoupled graph-pipeline stage shapes (S0 process
fringe, S1 enumerate neighbors, S2 fetch values, S3 update — paper
Fig. 2(a)) compiles to a flat *step-function*: straight-line Python
that inlines the request protocol of ``PE._try_perform`` /
``PE._execute`` — and the queue transfer bodies of ``Queue.enq`` /
``Queue.deq`` — for the stage's fixed deq→compute→enq skeleton, with
queues, counters, and cost constants bound as locals. The coroutine
trampoline (request tuple allocation, ``gen.send``, string dispatch on
the request kind, ``io_cost`` calls, queue method dispatch) disappears
from the per-token hot path; only the per-workload hook sub-generators
(``vertex_process`` / ``s3_update``) still run as coroutines, driven
by a mini-trampoline that inlines their dominant load/store requests
and routes anything else through the generic ``pe._try_perform``.

Exactness is structural: every inlined fragment is a literal replica
of the interpreted code it replaces (the fragment builders below name
their originals), including counter update order, probe emission
guards, credit bookkeeping, the zero-cost livelock guard, and the
budget-before-satisfiability check ordering.

Suspension is explicit: the generated function is a state machine over
a small program counter plus loop counters kept in ``stage.cg``; a
blocked or budget-exhausted request saves the pc and sets
``stage.pending`` to the exact request tuple the interpreter would
have left there, so schedulers, deadlock reports, and the event
engine's wake lists observe identical state.

Source text is a pure function of the :class:`StageShape` — it never
embeds queue names, shard ids, or addresses (those bind at
``make_step`` time) — so one cached artifact serves every shard of
every workload with the same shape. See :mod:`repro.codegen.runtime`
for caching and binding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.content import sha256_text

# Bump when the emitted code changes in any way that should invalidate
# cached sources independently of the surrounding package (the on-disk
# artifact cache is additionally namespaced by code_version()).
CODEGEN_VERSION = "2"

ROLES = ("s0", "s1", "s2", "s3")


@dataclass(frozen=True)
class StageShape:
    """Everything the generated source depends on — and nothing else.

    ``role`` names one of the four decoupled skeleton stages.
    ``simple_edges`` is the ``edge_fetch_words == 1`` fast path of
    S1/S2; ``trivial_vp`` marks workloads that do not override
    ``vertex_process`` (S1 skips the sub-generator entirely).
    """

    role: str
    simple_edges: bool = True
    trivial_vp: bool = False

    def __post_init__(self):
        if self.role not in ROLES:
            raise ValueError(
                f"unknown codegen role {self.role!r}; choose from {ROLES}")

    def key(self) -> str:
        """Content-address of the source this shape emits."""
        return sha256_text("codegen/v" + CODEGEN_VERSION, self.role,
                           repr(bool(self.simple_edges)),
                           repr(bool(self.trivial_vp)))


# -- emission helpers --------------------------------------------------------
#
# The generated code is assembled from small text fragments. Every
# fragment mirrors a specific piece of the interpreted hot path
# (PE._try_perform / PE._execute / StageInstance.io_cost / Queue.enq /
# Queue.deq) — comments below name the mirrored code so drift is
# auditable. The emitted text contains no ``{``/``}`` so f-string
# assembly stays safe.


def _pad(indent: int) -> str:
    return " " * indent


def _flush_counters(indent: int, reset: bool = False) -> str:
    """Write the locally-carried counter totals back to pe.counters.

    The locals carry the same running totals the interpreter keeps in
    the dict (same left-fold order, so bit-exact); ``c_dirty`` gates
    the writeback so a step that performed no queue op creates no keys
    the interpreter would not have created.
    """
    pad = _pad(indent)
    lines = [
        f"{pad}if c_dirty:",
        f'{pad}    counters["issued"] = c_iss',
        f'{pad}    counters["tokens"] = c_tok',
        f'{pad}    counters["fabric_ops"] = c_fab',
    ]
    if reset:
        lines.append(f"{pad}    c_dirty = False")
    return "\n".join(lines)


def _save(indent: int, pc: int, pending: str, extra=()) -> str:
    """Suspend: persist the pc (+ loop state), the exact pending
    request tuple, the counter totals, and the running SIMD I/O
    totals."""
    pad = _pad(indent)
    lines = [f"{pad}cg[0] = {pc}"]
    lines += [pad + line for line in extra]
    lines += [
        _flush_counters(indent),
        f"{pad}stage.pending = {pending}",
        f"{pad}stage.work_deq = wd",
        f"{pad}stage.work_enq = we",
        f"{pad}return spent",
    ]
    return "\n".join(lines)


def _streak(indent: int, pending: str) -> str:
    """Mirrors PE._execute's zero-cost livelock guard (counters and
    pending are left exactly as the interpreter leaves them)."""
    pad = _pad(indent)
    return "\n".join([
        f"{pad}zero_streak = 0 if cost > 0 else zero_streak + 1",
        f"{pad}if zero_streak > 1000000:",
        _flush_counters(indent + 4),
        f"{pad}    stage.pending = {pending}",
        f"{pad}    stage.work_deq = wd",
        f"{pad}    stage.work_enq = we",
        f"{pad}    raise LivelockError(",
        f'{pad}        "stage %r on PE %s issued 1M zero-cost requests"',
        f"{pad}        % (stage_name, pe_id))",
    ])


def _deq_site(indent: int, q: str, pc: int, pending: str, extra=()) -> str:
    """One blocking dequeue, fully inlined.

    The budget/emptiness gate and the cost accounting mirror
    PE._try_perform's "deq" arm (StageInstance.io_cost open-coded
    against the bind-time constants ctl_inc / inv_r); the token
    transfer itself is Queue.deq verbatim — occupancy, credit refund,
    probe, on_event — minus only the emptiness re-raise the gate
    already rules out.
    """
    pad = _pad(indent)
    return "\n".join([
        f"{pad}if spent >= budget or not {q}_tok:",
        _save(indent + 4, pc, pending, extra),
        # -- Queue.deq --
        f"{pad}token = {q}_tok.popleft()",
        f"{pad}tw = 1 if token.is_control else {q}_words",
        f"{pad}q_{q}._occupancy_words -= tw",
        f"{pad}if {q}_credits is not None:",
        f"{pad}    {q}_credits[token.producer] += tw",
        f"{pad}qp = q_{q}.probe",
        f'{pad}if qp is not None and "queue.deq" in qp.bus.wants:',
        f'{pad}    qp.emit("queue.deq", queue={q.upper()}_NAME, words=tw,',
        f"{pad}            occupancy=q_{q}._occupancy_words)",
        f"{pad}ev = q_{q}.on_event",
        f"{pad}if ev is not None:",
        f"{pad}    ev(q_{q}, False)",
        # -- io_cost + counters (PE._try_perform "deq") --
        f"{pad}if token.is_control:",
        f"{pad}    top = (wd if wd >= we else we) + ctl_inc",
        f"{pad}    wd = we = top",
        f"{pad}    cost = ctl_inc",
        f"{pad}else:",
        f"{pad}    before = wd if wd >= we else we",
        f"{pad}    wd += inv_r",
        f"{pad}    cost = (wd if wd >= we else we) - before",
        f"{pad}spent += cost",
        f"{pad}c_iss += cost",
        f"{pad}c_tok += 1.0",
        f"{pad}c_fab += n_ops",
        f"{pad}c_dirty = True",
        _streak(indent, pending),
    ])


def _enq_site(indent: int, q: str, value: str, control: bool,
              pc: int, pending: str, extra=()) -> str:
    """One blocking enqueue, fully inlined.

    The budget check short-circuits before any capacity check so a
    budget-exhausted stage never emits a spurious credit_stall probe,
    exactly like the interpreted loop. Uncredited queues (every
    pipeline-internal edge) gate on Queue.can_enq's uncredited arm
    verbatim — a pure occupancy comparison; credited queues route
    through the can_enq method so the credit_stall probe fires
    identically. The transfer mirrors Queue.enq (credit debit, token
    append, occupancy, total_enqueued, probe, on_event) minus only the
    full-queue re-raise the gate already rules out; the io_cost arm
    (control vs data) is selected at emission time.
    """
    pad = _pad(indent)
    ctl = "True" if control else "False"
    words = "1" if control else f"{q}_words"
    lines = [
        f"{pad}if spent >= budget:",
        _save(indent + 4, pc, pending, extra),
        f"{pad}if {q}_credits is None:",
        f"{pad}    if {q.upper()}_CAP - q_{q}._occupancy_words < {words}:",
        _save(indent + 8, pc, pending, extra),
        f"{pad}elif not {q}_can(producer, {ctl}):",
        _save(indent + 4, pc, pending, extra),
        # -- Queue.enq --
        f"{pad}if {q}_credits is not None:",
        f"{pad}    {q}_credits[producer] -= {words}",
        f"{pad}{q}_tok.append(Token({value}, {ctl}, producer))",
        f"{pad}q_{q}._occupancy_words += {words}",
        f"{pad}q_{q}.total_enqueued += 1",
        f"{pad}qp = q_{q}.probe",
        f'{pad}if qp is not None and "queue.enq" in qp.bus.wants:',
        f'{pad}    qp.emit("queue.enq", queue={q.upper()}_NAME, '
        f"words={words},",
        f"{pad}            occupancy=q_{q}._occupancy_words, control={ctl})",
        f"{pad}ev = q_{q}.on_event",
        f"{pad}if ev is not None:",
        f"{pad}    ev(q_{q}, True)",
    ]
    # -- io_cost + counters (PE._try_perform "enq") --
    if control:
        lines += [
            f"{pad}top = (wd if wd >= we else we) + ctl_inc",
            f"{pad}wd = we = top",
            f"{pad}cost = ctl_inc",
        ]
    else:
        lines += [
            f"{pad}before = wd if wd >= we else we",
            f"{pad}we += inv_r",
            f"{pad}cost = (wd if wd >= we else we) - before",
        ]
    lines += [
        f"{pad}spent += cost",
        f"{pad}c_iss += cost",
        f"{pad}c_dirty = True",
        _streak(indent, pending),
    ]
    return "\n".join(lines)


def _subgen_loop(indent: int, pc: int) -> str:
    """Drive a hook sub-generator one request at a time.

    The dominant requests — coupled stores and loads — are inlined
    from PE._try_perform's "store"/"load" arms; everything else
    flushes the SIMD totals and takes the generic ``pe._try_perform``.
    Mirrors the interpreted ``yield from`` plumbing; the StopIteration
    value lands in ``p0``.
    """
    pad = _pad(indent)
    return "\n".join([
        f"{pad}while True:",
        f"{pad}    if req is None:",
        f"{pad}        try:",
        f"{pad}            req = gen.send(res)",
        f"{pad}        except StopIteration as stop:",
        f"{pad}            p0 = stop.value",
        f"{pad}            break",
        f"{pad}    if spent >= budget:",
        _save(indent + 8, pc, "req"),
        f"{pad}    kind = req[0]",
        # Cache.access's L1-hit path verbatim (write-allocate dirty
        # marking and LRU move-to-MRU included); misses take the full
        # method. A hit's latency equals l1_lat, so stall is zero.
        f'{pad}    if kind == "store":',
        f"{pad}        a = req[1]",
        f"{pad}        line = a >> l1_shift",
        f"{pad}        cset = l1_sets[line & l1_mask]",
        f"{pad}        if line in cset:",
        f"{pad}            l1.hits += 1",
        f"{pad}            cset.pop(line)",
        f"{pad}            cset[line] = True",
        f"{pad}        else:",
        f"{pad}            l1_access(a, write=True)",
        f"{pad}        res = None",
        f"{pad}        cost = 0.0",
        f'{pad}    elif kind == "load":',
        f"{pad}        a = req[1]",
        f"{pad}        line = a >> l1_shift",
        f"{pad}        cset = l1_sets[line & l1_mask]",
        f"{pad}        res = None",
        f"{pad}        if line in cset:",
        f"{pad}            l1.hits += 1",
        f"{pad}            cset[line] = cset.pop(line)",
        f"{pad}            cost = 0.0",
        f"{pad}        else:",
        f"{pad}            stall = l1_access(a) - l1_lat",
        f"{pad}            if stall > 0.0:",
        # Flush before creating stall_mem so counter keys appear in
        # the dict in the same order the interpreter creates them.
        _flush_counters(indent + 16, reset=True),
        f'{pad}                counters["stall_mem"] = ('
        f'counters.get("stall_mem", 0.0) + stall)',
        f"{pad}                pp = pe.probe",
        f'{pad}                if pp is not None and "pe.stall" in '
        f"pp.bus.wants:",
        f'{pad}                    pp.emit("pe.stall", cycle=pe.now, '
        f"pe=pe_id,",
        f'{pad}                            bucket="stall_mem", cycles=stall,',
        f"{pad}                            stage=stage_name)",
        f"{pad}                cost = stall",
        f"{pad}            else:",
        f"{pad}                cost = 0.0",
        f"{pad}    else:",
        # try_perform reads and writes pe.counters directly: flush the
        # carried totals first, reload after.
        _flush_counters(indent + 8, reset=True),
        f"{pad}        stage.work_deq = wd",
        f"{pad}        stage.work_enq = we",
        f"{pad}        outcome = try_perform(stage, req)",
        f"{pad}        wd = stage.work_deq",
        f"{pad}        we = stage.work_enq",
        f'{pad}        c_iss = counters.get("issued", 0.0)',
        f'{pad}        c_tok = counters.get("tokens", 0.0)',
        f'{pad}        c_fab = counters.get("fabric_ops", 0.0)',
        f"{pad}        if outcome is None:",
        _save(indent + 12, pc, "req"),
        f"{pad}        res, cost = outcome",
        f"{pad}    spent += cost",
        _streak(indent + 4, "req"),
        f"{pad}    req = None",
    ])


def _finish(indent: int) -> str:
    """Terminal exit: the interpreter's StopIteration epilogue."""
    pad = _pad(indent)
    return "\n".join([
        _flush_counters(indent),
        f"{pad}stage.pending = None",
        f"{pad}stage.done = True",
        f"{pad}stage.work_deq = wd",
        f"{pad}stage.work_enq = we",
        f"{pad}return spent",
    ])


def _bind_in_queue(q: str, key: str) -> str:
    """Dequeue-side bindings for queue prefix ``q``."""
    return "\n".join([
        f'    q_{q} = pe._queue(b["{key}"])',
        f"    {q}_tok = q_{q}._tokens",
        f"    {q}_words = q_{q}.entry_words",
        f"    {q}_credits = q_{q}._credits",
        f"    {q.upper()}_NAME = q_{q}.name",
    ])


def _bind_out_queue(q: str, key: str) -> str:
    """Enqueue-side bindings for queue prefix ``q``."""
    return "\n".join([
        f'    q_{q} = pe._queue(b["{key}"])',
        f"    {q}_tok = q_{q}._tokens",
        f"    {q}_words = q_{q}.entry_words",
        f"    {q}_credits = q_{q}._credits",
        f"    {q}_can = q_{q}.can_enq",
        f"    {q.upper()}_NAME = q_{q}.name",
        f"    {q.upper()}_CAP = q_{q}.capacity_words",
    ])


_PREAMBLE = '''\
from repro.queues.queue import Token


def make_step(pe, stage, b):
    workload = b["workload"]
    shard = b["shard"]
    STOP_VALUE = b["STOP_VALUE"]
    LivelockError = b["LivelockError"]
    ctx = stage.ctx
    producer = ctx.producer_key
    counters = pe.counters
    n_ops = stage.mapping.n_compute_ops
    speed = stage.speed
    # Bind-time constants of StageInstance.io_cost: control tokens cost
    # ctl_inc serially; data tokens cost 1/R against the running max.
    ctl_inc = 1.0 if speed == 1.0 else 1.0 / speed
    r = stage.mapping.replication
    if speed != 1.0:
        r = r * speed
    inv_r = 1 / r
    try_perform = pe._try_perform
    l1 = pe.l1
    l1_access = l1.access
    l1_lat = l1._latency
    l1_sets = l1._sets
    l1_shift = l1._line_shift
    l1_mask = l1._set_mask
    pe_id = pe.pe_id
    stage_name = stage.spec.name
'''


def _header(shape: StageShape) -> str:
    return (
        "# Generated by repro.codegen — specialized step-function.\n"
        f"# shape: role={shape.role} simple_edges={shape.simple_edges}"
        f" trivial_vp={shape.trivial_vp} v={CODEGEN_VERSION}\n"
        "# Do not edit: regenerate via repro.codegen.emit.stage_source.\n"
    )


# -- per-role emitters -------------------------------------------------------


def _emit_s0(shape: StageShape) -> str:
    enq_scan = '("enq", FR_NAME, scan, False)'
    enq_off = '("enq", OUT_NAME, value, False)'
    body = f'''\
{_bind_in_queue("in", "q_in")}
{_bind_out_queue("fr", "q_fr_in")}
{_bind_in_queue("fro", "q_fr_out")}
{_bind_out_queue("out", "q_out")}
    END_ITER = b["END_ITER"]
    offsets_ref = workload.offsets_ref
    offsets_addr = offsets_ref.addr
    off_base = offsets_ref._base
    off_eb = offsets_ref.elem_bytes
    off_n = offsets_ref._n
    vertex_fetch_addrs = workload.vertex_fetch_addrs
    scan_range = workload.fringe_scan_range
    REQ_DEQ_IN = ("deq", IN_NAME)
    REQ_DEQ_FR = ("deq", FRO_NAME)
    REQ_ENQ_STOP = ("enq", OUT_NAME, STOP_VALUE, True)
    REQ_ENQ_END = ("enq", OUT_NAME, END_ITER, True)

    def step(budget):
        spent = 0.0
        zero_streak = 0
        if not stage.started:
            stage.started = True
            stage.cg = [0, 0]
            stage.pending = REQ_DEQ_IN
        cg = stage.cg
        pc = cg[0]
        wd = stage.work_deq
        we = stage.work_enq
        c_iss = counters.get("issued", 0.0)
        c_tok = counters.get("tokens", 0.0)
        c_fab = counters.get("fabric_ops", 0.0)
        c_dirty = False
        while True:
            if pc == 0:
{_deq_site(16, "in", 0, "REQ_DEQ_IN")}
                assert token.is_control
                if token.value == STOP_VALUE:
                    pc = 1
                    continue
                _, count, half = token.value
                if count:
                    scan = scan_range(shard, half, count)
                    cg[1] = count
{_enq_site(20, "fr", "scan", False, 2, enq_scan)}
                    pc = 3
                else:
                    pc = 5
                continue
            if pc == 1:
{_enq_site(16, "out", "STOP_VALUE", True, 1, "REQ_ENQ_STOP")}
{_finish(16)}
            if pc == 2:
                scan = stage.pending[2]
{_enq_site(16, "fr", "scan", False, 2, enq_scan)}
                pc = 3
                continue
            if pc == 3:
                i = cg[1]
                while i:
{_deq_site(20, "fro", 3, "REQ_DEQ_FR", ("cg[1] = i",))}
                    v = int(token.value)
                    value = ((off_base + v * off_eb)
                             if 0 <= v < off_n else offsets_addr(v),
                             (off_base + (v + 1) * off_eb)
                             if v + 1 < off_n else offsets_addr(v + 1),
                             *vertex_fetch_addrs(v), v)
                    i -= 1
{_enq_site(20, "out", "value", False, 4, enq_off, ("cg[1] = i",))}
                pc = 5
                continue
            if pc == 4:
                value = stage.pending[2]
{_enq_site(16, "out", "value", False, 4, enq_off)}
                pc = 3
                continue
            if pc == 5:
{_enq_site(16, "out", "END_ITER", True, 5, "REQ_ENQ_END")}
                pc = 0
                continue

    return step
'''
    return _header(shape) + "\n" + _PREAMBLE + body


def _emit_s1(shape: StageShape) -> str:
    enq_ctl = '("enq", OUT_NAME, val, True)'
    enq_edge = '("enq", OUT_NAME, value, False)'
    # ArrayRef.addr inlined (bounds check included via the method
    # fallback, which raises the identical IndexError).
    ngh_addr = ("(ngh_base + e * ngh_eb) if 0 <= e < ngh_n "
                "else neighbors_addr(e)")
    if shape.simple_edges:
        edge_value = f"value = ({ngh_addr}, p_edge)"
    else:
        edge_value = (f"value = ({ngh_addr}, *extra_addrs(e), "
                      "p_edge)")
    # The vertex-side hook: workloads that keep the base (no-op)
    # vertex_process skip the sub-generator; the rest drive it through
    # the mini-trampoline (pc 2).
    post_vp = "\n".join([
        "                if p0 is None:",
        "                    pc = 0",
        "                    continue",
        "                p_edge = s1_edge_payload(v, start, end, p0)",
        "                cg[4] = end",
        "                cg[5] = start",
        "                cg[6] = p_edge",
        "                pc = 3",
        "                continue",
    ])
    if shape.trivial_vp:
        vp_block = "\n".join([
            "                p0 = 0",
            post_vp,
        ])
        sub_arm = ""
    else:
        vp_block = "\n".join([
            "                gen = vertex_process(ctx, shard, v, start, end)",
            "                cg[1] = gen",
            "                cg[2] = v",
            "                cg[3] = start",
            "                cg[4] = end",
            "                req = None",
            "                pc = 2",
            "                continue",
        ])
        sub_arm = f'''\
            if pc == 2:
                gen = cg[1]
{_subgen_loop(16, 2)}
                cg[1] = None
                v = cg[2]
                start = cg[3]
                end = cg[4]
{post_vp}
'''
    body = f'''\
{_bind_in_queue("in", "q_in")}
{_bind_out_queue("out", "q_out")}
    neighbors_ref = workload.neighbors_ref
    neighbors_addr = neighbors_ref.addr
    ngh_base = neighbors_ref._base
    ngh_eb = neighbors_ref.elem_bytes
    ngh_n = neighbors_ref._n
    vertex_process = workload.vertex_process
    s1_edge_payload = workload.s1_edge_payload
    extra_addrs = workload.edge_extra_addrs
    REQ_DEQ_IN = ("deq", IN_NAME)

    def step(budget):
        spent = 0.0
        zero_streak = 0
        if not stage.started:
            stage.started = True
            stage.cg = [0, None, 0, 0, 0, 0, None]
            stage.pending = REQ_DEQ_IN
        cg = stage.cg
        pc = cg[0]
        wd = stage.work_deq
        we = stage.work_enq
        c_iss = counters.get("issued", 0.0)
        c_tok = counters.get("tokens", 0.0)
        c_fab = counters.get("fabric_ops", 0.0)
        c_dirty = False
        res = None
        req = stage.pending if pc == 2 else None
        while True:
            if pc == 0:
{_deq_site(16, "in", 0, "REQ_DEQ_IN")}
                if token.is_control:
                    val = token.value
{_enq_site(20, "out", "val", True, 1, enq_ctl)}
                    if val == STOP_VALUE:
{_finish(24)}
                    continue
                start = int(token.value[0])
                end = int(token.value[1])
                v = int(token.value[-1])
{vp_block}
            if pc == 1:
                val = stage.pending[2]
{_enq_site(16, "out", "val", True, 1, enq_ctl)}
                if val == STOP_VALUE:
{_finish(20)}
                pc = 0
                continue
{sub_arm}\
            if pc == 3:
                e = cg[5]
                end = cg[4]
                p_edge = cg[6]
                while e < end:
                    {edge_value}
{_enq_site(20, "out", "value", False, 3, enq_edge, ("cg[5] = e",))}
                    e += 1
                pc = 0
                continue

    return step
'''
    return _header(shape) + "\n" + _PREAMBLE + body


def _emit_s2(shape: StageShape) -> str:
    enq_ctl = '("enq", OUT_NAME, val, True)'
    enq_val = '("enq", OUT_NAME, value, False)'
    if shape.simple_edges:
        payload = "\n".join([
            "                ngh, p_edge = token.value",
            "                ngh = int(ngh)",
            "                value = (value_addr(ngh), ngh, p_edge)",
        ])
    else:
        payload = "\n".join([
            "                parts = token.value",
            "                ngh = int(parts[0])",
            "                value = (value_addr(ngh), ngh,",
            "                         s2_payload(ngh, parts[1:-1], "
            "parts[-1]))",
        ])
    body = f'''\
{_bind_in_queue("in", "q_in")}
{_bind_out_queue("out", "q_out")}
    value_addr = workload.value_addr
    s2_payload = workload.s2_payload
    REQ_DEQ_IN = ("deq", IN_NAME)

    def step(budget):
        spent = 0.0
        zero_streak = 0
        if not stage.started:
            stage.started = True
            stage.cg = [0]
            stage.pending = REQ_DEQ_IN
        cg = stage.cg
        pc = cg[0]
        wd = stage.work_deq
        we = stage.work_enq
        c_iss = counters.get("issued", 0.0)
        c_tok = counters.get("tokens", 0.0)
        c_fab = counters.get("fabric_ops", 0.0)
        c_dirty = False
        while True:
            if pc == 0:
{_deq_site(16, "in", 0, "REQ_DEQ_IN")}
                if token.is_control:
                    val = token.value
{_enq_site(20, "out", "val", True, 1, enq_ctl)}
                    if val == STOP_VALUE:
{_finish(24)}
                    continue
{payload}
{_enq_site(16, "out", "value", False, 2, enq_val)}
                continue
            if pc == 1:
                val = stage.pending[2]
{_enq_site(16, "out", "val", True, 1, enq_ctl)}
                if val == STOP_VALUE:
{_finish(20)}
                pc = 0
                continue
            if pc == 2:
                value = stage.pending[2]
{_enq_site(16, "out", "value", False, 2, enq_val)}
                pc = 0
                continue

    return step
'''
    return _header(shape) + "\n" + _PREAMBLE + body


def _emit_s3(shape: StageShape) -> str:
    enq_done = '("enq", BAR_NAME, BARRIER_DONE, True)'
    body = f'''\
{_bind_in_queue("in", "q_in")}
{_bind_out_queue("bar", "q_barrier")}
    n_shards = ctx.n_shards
    s3_update = workload.s3_update
    BARRIER_DONE = ("done", shard)
    REQ_DEQ_IN = ("deq", IN_NAME)

    def step(budget):
        spent = 0.0
        zero_streak = 0
        if not stage.started:
            stage.started = True
            stage.cg = [0, None, n_shards, n_shards]
            stage.pending = REQ_DEQ_IN
        cg = stage.cg
        pc = cg[0]
        wd = stage.work_deq
        we = stage.work_enq
        c_iss = counters.get("issued", 0.0)
        c_tok = counters.get("tokens", 0.0)
        c_fab = counters.get("fabric_ops", 0.0)
        c_dirty = False
        res = None
        req = stage.pending if pc == 2 else None
        while True:
            if pc == 0:
{_deq_site(16, "in", 0, "REQ_DEQ_IN")}
                if token.is_control:
                    if token.value == STOP_VALUE:
                        cg[3] -= 1
                        if cg[3] == 0:
{_finish(28)}
                    else:
                        cg[2] -= 1
                        if cg[2] == 0:
                            cg[2] = n_shards
                            pc = 1
                    continue
                value, ngh, p_edge = token.value
                gen = s3_update(ctx, shard, int(ngh), value, p_edge)
                cg[1] = gen
                req = None
                pc = 2
                continue
            if pc == 1:
{_enq_site(16, "bar", "BARRIER_DONE", True, 1, enq_done)}
                pc = 0
                continue
            if pc == 2:
                gen = cg[1]
{_subgen_loop(16, 2)}
                cg[1] = None
                pc = 0
                continue

    return step
'''
    return _header(shape) + "\n" + _PREAMBLE + body


_EMITTERS = {"s0": _emit_s0, "s1": _emit_s1, "s2": _emit_s2, "s3": _emit_s3}


def stage_source(shape: StageShape) -> str:
    """Emit the specialized step-function source for ``shape``.

    Pure and deterministic: equal shapes produce byte-identical text.
    Callers wanting caching go through
    :func:`repro.codegen.runtime.source_for` instead.
    """
    source = _EMITTERS[shape.role](shape)
    # The emitted module must always parse — catch template drift at
    # generation time, not at bind time deep inside a run.
    compile(source, f"<repro.codegen:{shape.role}>", "exec")
    return source
