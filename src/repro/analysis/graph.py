"""Channel-graph extraction: the stage/queue topology of a program.

The deadlock passes reason about a bipartite-ish graph: *endpoints*
(stages, DRMs, the control core) connected by *channels* (the carved
per-PE queues plus the program's external queues). This module builds
that graph purely from the compiled artifacts — stage DFGs, queue
specs, DRM specs — without instantiating a :class:`repro.core.system.
System`, and provides the generic walkers (edge classification, cycle
search, SCCs) shared with the front-end linter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Optional

from repro.config import SystemConfig
from repro.ir.ops import OpKind
from repro.queues.queue_memory import plan_capacities
from repro.analysis.report import Finding

#: Endpoint name used for the control core (iteration dispatch/barrier).
CONTROL_CORE = "control"


@dataclass(frozen=True)
class Endpoint:
    """A producer or consumer attached to a channel."""

    kind: str   # "stage" | "drm" | "control"
    name: str   # stage name / DRM spec name (== its runtime producer key)
    pe: int = -1

    def __str__(self) -> str:
        return self.name


@dataclass
class Channel:
    """One queue as seen by the static analyzer."""

    name: str
    pe: int                  # owning PE, or -1 for external queues
    entry_words: int
    capacity_words: int      # planned carve (or actual external capacity)
    control_only: bool = False
    external: bool = False
    declared_producers: tuple = ()
    producers: list = field(default_factory=list)   # [Endpoint]
    consumers: list = field(default_factory=list)   # [Endpoint]
    # True while every stage DEQ of this channel discards the dequeued
    # value (see ``sync_only``); cleared the first time a use is seen.
    _deq_value_unused: bool = True

    @property
    def sync_only(self) -> bool:
        """Whether this is a pure synchronization (credit/pacing) channel.

        A channel of one-word tokens whose dequeued values no consumer
        ever reads carries no data — only permission: silo's traversal
        credits and SpMM's producer-pacing ``NEXT`` channels (paper
        Sec. 8.2) have this shape. Such channels gate admissions into a
        recirculating pipeline rather than forming a data dependence,
        so the cyclic-wait pass treats them like control edges (and the
        certificate records the bounded-replenishment assumption).
        """
        return (self._deq_value_unused
                and self.entry_words == 1
                and not self.control_only
                and not self.external
                and bool(self.fabric_consumers()))

    @property
    def floor_words(self) -> int:
        return self.entry_words * max(1, len(self.declared_producers))

    @property
    def capacity_entries(self) -> int:
        return self.capacity_words // self.entry_words

    @property
    def credit_share_words(self) -> Optional[int]:
        """Per-producer credit share, or None when flow control is off."""
        if len(self.declared_producers) <= 1:
            return None
        return self.capacity_words // len(self.declared_producers)

    def fabric_producers(self) -> list:
        return [p for p in self.producers if p.kind != "control"]

    def fabric_consumers(self) -> list:
        return [c for c in self.consumers if c.kind != "control"]


@dataclass
class StageNode:
    endpoint: Endpoint
    spec: object            # repro.core.stage.StageSpec


@dataclass
class DRMNode:
    endpoint: Endpoint
    spec: object            # repro.core.drm.DRMSpec


@dataclass
class PEBudget:
    """Queue-memory accounting for one PE."""

    pe: int
    budget_words: int
    n_queues: int
    max_queues: int
    planned_words: int
    # First queue (in declaration order) whose floor pushes the running
    # floor total past the budget; None when the floors fit.
    overflow_queue: Optional[str] = None

    @property
    def fits(self) -> bool:
        return (self.overflow_queue is None
                and self.n_queues <= self.max_queues)


@dataclass
class ChannelGraph:
    """The extracted stage/queue topology plus wiring findings."""

    channels: dict = field(default_factory=dict)     # name -> Channel
    stages: list = field(default_factory=list)       # [StageNode]
    drms: list = field(default_factory=list)         # [DRMNode]
    pe_budgets: list = field(default_factory=list)   # [PEBudget]
    findings: list = field(default_factory=list)     # wiring Findings

    def endpoints(self) -> list:
        return ([s.endpoint for s in self.stages]
                + [d.endpoint for d in self.drms])


def build_channel_graph(program, config: SystemConfig) -> ChannelGraph:
    """Extract the channel graph from a compiled :class:`Program`.

    Producer/consumer endpoints are discovered from stage DFG ENQ/DEQ
    edges and DRM in/out/route declarations; external queues and
    ``control_only`` queues get the control core as their outside
    endpoint (the control core both fills iteration queues and drains
    the barrier). References to undeclared queues become error findings
    rather than exceptions so one lint run reports everything at once.
    """
    graph = ChannelGraph()
    budget_words = config.queue_mem_bytes // 8  # WORD_BYTES
    control = Endpoint("control", CONTROL_CORE)

    for pe_id, pe_program in enumerate(program.pe_programs):
        specs = list(pe_program.queue_specs)
        if specs:
            caps = plan_capacities(budget_words, specs)
        else:
            caps = []
        running_floor = 0
        overflow = None
        for spec, cap in zip(specs, caps):
            running_floor += spec.floor_words
            if overflow is None and running_floor > budget_words:
                overflow = spec.name
            if spec.name in graph.channels:
                graph.findings.append(Finding(
                    "error", "graph.duplicate", spec.name,
                    f"queue {spec.name!r} declared on PE {pe_id} and "
                    f"PE {graph.channels[spec.name].pe}; queue names must "
                    f"be system-unique"))
                continue
            channel = Channel(
                name=spec.name, pe=pe_id, entry_words=spec.entry_words,
                capacity_words=cap, control_only=spec.control_only,
                declared_producers=tuple(spec.producers))
            if spec.control_only:
                channel.producers.append(control)
            graph.channels[spec.name] = channel
        graph.pe_budgets.append(PEBudget(
            pe=pe_id, budget_words=budget_words, n_queues=len(specs),
            max_queues=config.max_queues_per_pe,
            planned_words=sum(caps), overflow_queue=overflow))

    for name, queue in program.external_queues.items():
        if name in graph.channels:
            graph.findings.append(Finding(
                "error", "graph.duplicate", name,
                f"external queue {name!r} shadows a queue carved on "
                f"PE {graph.channels[name].pe}"))
            continue
        channel = Channel(
            name=name, pe=-1, entry_words=queue.entry_words,
            capacity_words=queue.capacity_words, external=True,
            declared_producers=tuple(queue.producers))
        # External queues sit on the control-core boundary: the control
        # core may both fill and drain them (iteration dispatch in, the
        # barrier out), so it counts as an endpoint on both sides.
        channel.producers.append(control)
        channel.consumers.append(control)
        graph.channels[name] = channel

    def touch(endpoint: Endpoint, queue_name: str, side: str,
              what: str) -> None:
        channel = graph.channels.get(queue_name)
        if channel is None:
            graph.findings.append(Finding(
                "error", "graph.undeclared", str(endpoint),
                f"{what} references undeclared queue {queue_name!r}"))
            return
        listing = channel.producers if side == "produce" else channel.consumers
        if endpoint not in listing:
            listing.append(endpoint)

    for pe_id, pe_program in enumerate(program.pe_programs):
        for stage in pe_program.stage_specs:
            endpoint = Endpoint("stage", stage.name, pe_id)
            graph.stages.append(StageNode(endpoint, stage))
            consumed_ids = stage.dfg.consumed_ids()
            for node in stage.dfg.nodes:
                if node.kind is OpKind.ENQ:
                    touch(endpoint, node.op.attr, "produce",
                          f"stage {stage.name!r}: {node!r}")
                elif node.kind is OpKind.DEQ:
                    touch(endpoint, node.op.attr, "consume",
                          f"stage {stage.name!r}: {node!r}")
                    channel = graph.channels.get(node.op.attr)
                    if (channel is not None
                            and node.node_id in consumed_ids):
                        channel._deq_value_unused = False
        for drm in pe_program.drm_specs:
            endpoint = Endpoint("drm", drm.name, pe_id)
            graph.drms.append(DRMNode(endpoint, drm))
            touch(endpoint, drm.in_queue, "consume", f"DRM {drm.name!r}")
            channel = graph.channels.get(drm.in_queue)
            if channel is not None:
                # A DRM dereferences what it dequeues: that is a use.
                channel._deq_value_unused = False
            if drm.out_queue is not None:
                touch(endpoint, drm.out_queue, "produce",
                      f"DRM {drm.name!r}")
            for target in drm.route_targets:
                touch(endpoint, target, "produce",
                      f"DRM {drm.name!r} (route target)")

    return graph


# -- generic walkers -------------------------------------------------------

def classify_edge(edge, control_terminals=(CONTROL_CORE,)) -> Optional[str]:
    """Classify one stage/queue-graph edge for feed-forward checking.

    ``edge`` is any record with ``queue``/``src``/``dst``/``src_stage``/
    ``dst_stage``/``control`` attributes (the front end's ``QueueEdge``).
    Returns ``None`` for a legal edge, ``"control-escape"`` for a
    control channel that bypasses the control core, or ``"backward"``
    for a data channel pointing upstream. DRM round trips sit on a stage
    boundary (``dst_stage == src_stage``) and are legal.
    """
    if edge.control:
        if edge.src in control_terminals or edge.dst in control_terminals:
            return None
        return "control-escape"
    if edge.dst_stage < edge.src_stage:
        return "backward"
    return None


def strongly_connected_components(
        nodes: Iterable[Hashable],
        successors: Callable[[Hashable], Iterable[Hashable]]) -> list:
    """Tarjan's SCC algorithm, iterative (stage graphs can be deep)."""
    nodes = list(nodes)
    index: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    sccs: list = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(list(successors(root))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(list(successors(succ)))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def find_cycle_within(
        members: set,
        labeled_successors: Callable[[Hashable], Iterable[tuple]]) -> list:
    """One cycle confined to ``members``, as ``[(node, label), ...]``
    where ``label`` annotates the edge to the *next* entry (wrapping).

    ``labeled_successors(node)`` yields ``(successor, label)`` pairs.
    Returns ``[]`` if the induced subgraph is acyclic.
    """
    state: dict = {}   # 0 default, 1 on path, 2 done
    path: list = []    # [(node, label_to_next)]

    def walk(node) -> Optional[list]:
        state[node] = 1
        for succ, label in labeled_successors(node):
            if succ not in members:
                continue
            seen = state.get(succ, 0)
            if seen == 1:
                start = next(i for i, (n, _) in enumerate(path)
                             if n == succ)
                return path[start:] + [(node, label)]
            if seen == 0:
                path.append((node, label))
                found = walk(succ)
                path.pop()
                if found is not None:
                    return found
        state[node] = 2
        return None

    for member in members:
        if state.get(member, 0) == 0:
            found = walk(member)
            if found is not None:
                return found
    return []
