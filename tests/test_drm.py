"""Unit tests for decoupled reference machines (paper Sec. 5.4)."""

import numpy as np
import pytest

from repro.config import CacheConfig, MemoryConfig
from repro.core.drm import DRM, DRMSpec
from repro.memory import AddressSpace, Cache, MainMemory
from repro.memory.memmap import MemoryMap
from repro.queues import Queue


def _env():
    memory = MainMemory(MemoryConfig(latency=120))
    memory.begin_quantum(10 ** 9)
    l1 = Cache("l1", CacheConfig(32 * 1024, 8, 4), memory)
    space = AddressSpace()
    memmap = MemoryMap()
    data = np.arange(100, dtype=np.int64) * 3
    ref = space.alloc_array("data", 100)
    memmap.register(ref, data)
    return l1, memmap, ref, data


def _drm(spec, in_q, out_queues, l1, memmap, issue_width=1,
         max_outstanding=8):
    return DRM(spec, 0, in_q, out_queues, l1, memmap,
               max_outstanding=max_outstanding, l1_latency=4,
               issue_width=issue_width)


class TestDerefMode:
    def test_dereferences_addresses(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64)
        out_q = Queue("out", 64)
        spec = DRMSpec("d", "deref", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        for i in (3, 7, 11):
            in_q.enq(ref.addr(i))
        drm.run(100)
        assert [out_q.deq().value for _ in range(3)] == [9, 21, 33]

    def test_payload_rides_along(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=2)
        out_q = Queue("out", 64, entry_words=2)
        spec = DRMSpec("d", "deref", in_queue="in", out_queue="out",
                       payload=True)
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        in_q.enq((ref.addr(5), "tag"))
        drm.run(10)
        assert out_q.deq().value == (15, "tag")

    def test_multi_word_dereference(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=2)
        out_q = Queue("out", 64, entry_words=2)
        spec = DRMSpec("d", "deref", in_queue="in", out_queue="out", width=2)
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        in_q.enq((ref.addr(2), ref.addr(3)))
        drm.run(10)
        assert out_q.deq().value == (6, 9)

    def test_blocks_on_full_output(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64)
        out_q = Queue("out", 2)
        spec = DRMSpec("d", "deref", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        for i in range(5):
            in_q.enq(ref.addr(i))
        drm.run(100)
        assert len(out_q) == 2
        assert len(in_q) == 3

    def test_routing_by_payload(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=2)
        outs = {"even": Queue("even", 64, entry_words=2),
                "odd": Queue("odd", 64, entry_words=2)}
        spec = DRMSpec("d", "deref", in_queue="in",
                       route=lambda vals, payload:
                           "even" if payload[0] % 2 == 0 else "odd",
                       route_targets=("even", "odd"), payload=True)
        drm = _drm(spec, in_q, outs, l1, memmap)
        for tag in range(4):
            in_q.enq((ref.addr(tag), tag))
        drm.run(100)
        assert [t.value[1] for t in (outs["even"].deq(), outs["even"].deq())] == [0, 2]
        assert [t.value[1] for t in (outs["odd"].deq(), outs["odd"].deq())] == [1, 3]

    def test_control_broadcast_to_all_routes(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=2)
        outs = {"a": Queue("a", 64, entry_words=2),
                "b": Queue("b", 64, entry_words=2)}
        spec = DRMSpec("d", "deref", in_queue="in",
                       route=lambda vals, payload: "a",
                       route_targets=("a", "b"), payload=True)
        drm = _drm(spec, in_q, outs, l1, memmap)
        in_q.enq("END", is_control=True)
        drm.run(10)
        assert outs["a"].deq().is_control
        assert outs["b"].deq().is_control

    def test_control_preserves_order(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64)
        out_q = Queue("out", 64)
        spec = DRMSpec("d", "deref", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        in_q.enq(ref.addr(1))
        in_q.enq("END", is_control=True)
        in_q.enq(ref.addr(2))
        drm.run(100)
        values = [out_q.deq() for _ in range(3)]
        assert [t.is_control for t in values] == [False, True, False]


class TestScanMode:
    def test_scans_range_in_order(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=2)
        out_q = Queue("out", 64)
        spec = DRMSpec("s", "scan", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        in_q.enq((ref.addr(10), ref.addr(14)))
        drm.run(100)
        assert [out_q.deq().value for _ in range(4)] == [30, 33, 36, 39]
        assert out_q.is_empty()

    def test_scan_resumes_after_full_output(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=2)
        out_q = Queue("out", 3)
        spec = DRMSpec("s", "scan", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        in_q.enq((ref.addr(0), ref.addr(6)))
        drm.run(100)
        collected = [out_q.deq().value for _ in range(3)]
        drm.run(100)
        collected += [out_q.deq().value for _ in range(3)]
        assert collected == [0, 3, 6, 9, 12, 15]

    def test_empty_range_produces_nothing(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=2)
        out_q = Queue("out", 64)
        spec = DRMSpec("s", "scan", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        in_q.enq((ref.addr(5), ref.addr(5)))
        drm.run(10)
        assert out_q.is_empty()


class TestTiming:
    def test_issue_width_raises_throughput(self):
        l1, memmap, ref, data = _env()
        results = {}
        for width in (1, 4):
            in_q = Queue("in", 256)
            out_q = Queue("out", 256)
            spec = DRMSpec("d", "deref", in_queue="in", out_queue="out")
            drm = _drm(spec, in_q, {"out": out_q}, l1, memmap,
                       issue_width=width)
            for i in range(64):
                in_q.enq(ref.addr(i % 100))
            drm.run(16)  # 16 cycles
            results[width] = len(out_q)
        assert results[4] > results[1]

    def test_misses_amortized_by_outstanding_window(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64)
        out_q = Queue("out", 64)
        spec = DRMSpec("d", "deref", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap,
                   max_outstanding=8)
        in_q.enq(ref.addr(0))  # cold miss
        spent = drm.run(100)
        # 1 issue slot + ((4 + 120) - 4) / 8 = 16 cycles (L1 over memory).
        assert spent == pytest.approx(1 + 120 / 8)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DRMSpec("bad", "teleport", in_queue="in", out_queue="out")
        with pytest.raises(ValueError):
            DRMSpec("bad", "deref", in_queue="in")  # no output
        with pytest.raises(ValueError):
            DRMSpec("bad", "deref", in_queue="in", out_queue="o",
                    route=lambda v, p: "o")  # both outputs


class TestStridedMode:
    """The Sec. 5.4 extension: strided traversal of arrays of structs."""

    def test_strided_fetch(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=3)
        out_q = Queue("out", 64)
        spec = DRMSpec("s", "strided", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        # Every 4th element, starting at index 2 ("field" of a struct).
        in_q.enq((ref.addr(2), 5, 4 * 8))
        drm.run(100)
        assert [out_q.deq().value for _ in range(5)] == [6, 18, 30, 42, 54]
        assert out_q.is_empty()

    def test_strided_zero_count(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=3)
        out_q = Queue("out", 64)
        spec = DRMSpec("s", "strided", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        in_q.enq((ref.addr(0), 0, 8))
        drm.run(10)
        assert out_q.is_empty()

    def test_strided_resumes_after_full_output(self):
        l1, memmap, ref, data = _env()
        in_q = Queue("in", 64, entry_words=3)
        out_q = Queue("out", 2)
        spec = DRMSpec("s", "strided", in_queue="in", out_queue="out")
        drm = _drm(spec, in_q, {"out": out_q}, l1, memmap)
        in_q.enq((ref.addr(0), 4, 16))
        drm.run(100)
        got = [out_q.deq().value, out_q.deq().value]
        drm.run(100)
        got += [out_q.deq().value, out_q.deq().value]
        assert got == [0, 6, 12, 18]
