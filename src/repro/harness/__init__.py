"""Experiment harness: runs (app, input, system) combinations and
formats the paper's tables and figures."""

from repro.harness.run import (ExperimentResult, GRAPH_APPS, APP_INPUTS,
                               SYSTEMS, analyze_workload, build_cgra_program,
                               prepare_input, resolve_config, run_experiment,
                               simulate_cgra, speedup_table)
from repro.harness.format import format_table, gmean
from repro.harness.sweep import (SweepPoint, SweepPointError,
                                 merge_sweep_manifests, run_point, run_sweep)

__all__ = [
    "ExperimentResult", "GRAPH_APPS", "APP_INPUTS", "SYSTEMS",
    "analyze_workload", "build_cgra_program", "prepare_input",
    "resolve_config", "run_experiment", "simulate_cgra", "speedup_table",
    "format_table", "gmean",
    "SweepPoint", "SweepPointError", "merge_sweep_manifests", "run_point",
    "run_sweep",
]
