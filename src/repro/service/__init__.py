"""Simulation-as-a-service: the async experiment server and its caches.

Layered on the harness (nothing here changes what a simulation
computes — byte-identity with the CLI path is a locked invariant):

* :mod:`repro.service.spec` — spec validation, canonicalization, and
  the content-addressed result-cache key;
* :mod:`repro.service.store` — on-disk store of canonical manifest
  bytes, one entry per key;
* :mod:`repro.service.worker` — process-pool entry point running one
  spec with file-based phase progress;
* :mod:`repro.service.server` — the asyncio server: result-cache
  lookup, in-flight dedup, bounded pool, ndjson event streams;
* :mod:`repro.service.client` — blocking stdlib client used by the
  CLI, tests, and benchmarks.

See ``docs/service.md`` for the protocol and cache layout.
"""

from repro.service.spec import (SPEC_FIELDS, SpecError, canonicalize_spec,
                                config_from_dict, spec_key, spec_point)
from repro.service.store import ResultStore
from repro.service.worker import execute_spec
from repro.service.server import ExperimentServer, run_server
from repro.service.client import ServiceClient, ServiceError, SubmitOutcome

__all__ = [
    "SPEC_FIELDS", "SpecError", "canonicalize_spec", "config_from_dict",
    "spec_key", "spec_point",
    "ResultStore", "execute_spec",
    "ExperimentServer", "run_server",
    "ServiceClient", "ServiceError", "SubmitOutcome",
]
