"""Regenerate the committed benchmark baselines in ``results/history/``.

The history directory holds one profiled run manifest per
(app, engine) point of a small, deterministic grid: the Fig. 13/14
representative input of each paper workload on 16-PE Fifer, simulated
with both the fast and the naive engine at a reduced scale. CI's
bench-regression job re-runs the same grid and flags drift with
``python -m repro bench-diff benchmarks/results/history <fresh-dir>``
(cycle counts and blame-matrix shares are gated; wall time only
warns, since baselines and CI run on different machines).

Run from the repository root after an intentional performance change:

    PYTHONPATH=src python benchmarks/make_history_baselines.py

then commit the refreshed manifests together with the change that
moved them. ``--out DIR`` redirects the output (CI uses this to
produce the "current" side of the diff); ``--workers N`` bounds the
process pool. Manifests are written with a pinned ``created``
timestamp so regeneration is reproducible modulo wall time.

Deliberately *not* named ``bench_*.py``: this is a maintenance script,
not a pytest benchmark, and must not enter the benchmark registry.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import json

from repro.core.system import ENGINES
from repro.harness import SweepPoint, run_sweep
from repro.harness.run import default_scale
from repro.stats.manifest import build_manifest

#: Representative Fig. 13/14 input per paper workload (bench_common's
#: REPRESENTATIVE, frozen here so baselines don't shift if that does).
GRID_APPS = (("bfs", "In"), ("cc", "Hu"), ("prd", "Ci"),
             ("radii", "Dy"), ("spmm", "FS"), ("silo", "YC"))

#: Multiplier on each input's default scale: small enough that the
#: naive engine finishes in seconds, large enough that every stage
#: activates and the blame matrix is non-trivial.
SCALE_MULT = 0.25

#: Pinned manifest timestamp (epoch seconds) for reproducibility.
CREATED = 0.0

HISTORY_DIR = pathlib.Path(__file__).resolve().parent / "results" / "history"


def baseline_points() -> list:
    return [SweepPoint(app, code, "fifer",
                       scale=default_scale(app, code) * SCALE_MULT,
                       engine=engine, profile=True)
            for app, code in GRID_APPS
            for engine in ENGINES]


def generate(out_dir: pathlib.Path, workers=None) -> list:
    points = baseline_points()
    results = run_sweep(points, workers=workers)
    out_dir.mkdir(parents=True, exist_ok=True)
    for stale in out_dir.glob("*.json"):
        stale.unlink()
    paths = []
    for point, result in zip(points, results):
        manifest = build_manifest(result, created=CREATED)
        # Name files ourselves (engine in the stem) instead of
        # write_manifest's collision suffixes: committed baselines
        # should have self-describing, order-independent names.
        path = out_dir / (f"{point.app}-{point.input_code}-"
                          f"{point.engine}.json")
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True)
                        + "\n")
        paths.append(path)
    return paths


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=HISTORY_DIR,
                        help=f"output directory (default: {HISTORY_DIR})")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: all cores)")
    args = parser.parse_args(argv)
    paths = generate(args.out, workers=args.workers)
    for path in paths:
        print(path)
    print(f"{len(paths)} baseline manifest(s) -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
