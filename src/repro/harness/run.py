"""Run one (app, input, system) experiment end to end.

``run_experiment`` prepares the synthetic input, builds the program for
the requested system, simulates it, verifies the functional result
against the golden reference, and attaches the energy breakdown. The
four evaluated systems (paper Sec. 7.1) are:

* ``serial``    — 1 OOO core,
* ``multicore`` — 4 OOO cores (the Fig. 13 normalization baseline),
* ``static``    — the 16-PE static spatial pipeline,
* ``fifer``     — 16-PE Fifer with dynamic temporal pipelining.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines import kernels, run_ooo
from repro.config import OOOConfig, SystemConfig
from repro.core import System
from repro.datasets.btree import BPlusTree
from repro.datasets.graphs import make_graph
from repro.datasets.matrices import make_matrix
from repro.datasets.ycsb import zipfian_keys
from repro.energy import EnergyModel
from repro.workloads import get_workload
from repro.workloads import bfs as bfs_mod
from repro.workloads import cc as cc_mod
from repro.workloads import prdelta as prd_mod
from repro.workloads import radii as radii_mod
from repro.workloads import silo as silo_mod
from repro.workloads import spmm as spmm_mod
from repro.workloads import sssp as sssp_mod

GRAPH_APPS = ("bfs", "cc", "prd", "radii", "sssp")
SYSTEMS = ("serial", "multicore", "static", "fifer")

APP_INPUTS = {
    "bfs": ("Hu", "Dy", "Ci", "In", "Rd"),
    "cc": ("Hu", "Dy", "Ci", "In", "Rd"),
    "prd": ("Hu", "Dy", "Ci", "In", "Rd"),
    "radii": ("Hu", "Dy", "Ci", "In", "Rd"),
    "sssp": ("Hu", "Dy", "Ci", "In", "Rd"),
    "spmm": ("FS", "Gr", "GE", "EM", "FD", "St"),
    "silo": ("YC",),
}

# Default input scales keep pure-Python simulation times tractable while
# preserving each input's character (see DESIGN.md, substitutions).
# Low-degree, high-diameter inputs (Dy, Rd) need more vertices before
# per-iteration costs amortize, so they default to larger scales.
DEFAULT_SCALE = 0.35
INPUT_SCALES = {
    ("bfs", "Dy"): 1.0,
    ("bfs", "Rd"): 1.0,
    ("cc", "Dy"): 0.6,
    ("cc", "Rd"): 0.5,
    ("prd", "Dy"): 0.6,
    ("prd", "Rd"): 0.5,
    ("radii", "Dy"): 0.6,
    ("radii", "Rd"): 0.5,
    ("sssp", "Dy"): 0.6,
    ("sssp", "Rd"): 0.5,
}
# The paper samples a subset of iterations for PRD and Radii (Sec. 7.2).
PRD_MAX_ITERATIONS = 8
RADII_MAX_ITERATIONS = 8
SILO_RECORDS = 20_000
SILO_OPS = 2_000
SPMM_SAMPLE = 48
RADII_SOURCES = 64


def default_scale(app: str, code: str) -> float:
    return INPUT_SCALES.get((app, code), DEFAULT_SCALE)


@dataclass
class PreparedInput:
    app: str
    code: str
    data: object            # graph / matrix / (tree, ops)
    golden: object          # reference result (lazily compared)


@dataclass
class ExperimentResult:
    app: str
    input_code: str
    system: str
    variant: str
    cycles: float
    correct: bool
    energy: dict
    raw: object
    scale: Optional[float] = None
    seed: int = 1
    wall_time_s: float = 0.0
    engine: str = "fast"
    # Wait-for profile (repro.profiling.RunProfile) when the run was
    # made with profile=True; None otherwise.
    profile: Optional[object] = None

    @property
    def label(self) -> str:
        return f"{self.app}/{self.input_code}/{self.system}"

    def to_manifest(self) -> dict:
        """Schema-versioned provenance record (see repro.stats.manifest)."""
        from repro.stats.manifest import build_manifest
        return build_manifest(self)


def prepare_input(app: str, code: str, scale: Optional[float] = None,
                  seed: int = 1) -> PreparedInput:
    """Generate the synthetic input and its golden reference result."""
    if scale is None:
        scale = default_scale(app, code)
    if app in GRAPH_APPS:
        graph = make_graph(code, scale=scale, seed=seed)
        golden = {
            "bfs": lambda: bfs_mod.bfs_reference(graph, 0),
            "cc": lambda: cc_mod.cc_reference(graph),
            "prd": lambda: prd_mod.prd_reference(
                graph, max_iterations=PRD_MAX_ITERATIONS),
            "radii": lambda: radii_mod.radii_reference(
                graph, k=RADII_SOURCES,
                max_iterations=RADII_MAX_ITERATIONS),
            "sssp": lambda: sssp_mod.sssp_reference(graph, 0),
        }[app]()
        return PreparedInput(app, code, graph, golden)
    if app == "spmm":
        matrix = make_matrix(code, scale=scale * 4, seed=seed)
        rows, cols = spmm_mod.sample_rows_cols(matrix, SPMM_SAMPLE,
                                               SPMM_SAMPLE)
        golden = spmm_mod.spmm_reference(matrix, rows, cols)
        return PreparedInput(app, code, (matrix, rows, cols), golden)
    if app == "silo":
        keys = np.arange(SILO_RECORDS, dtype=np.int64) * 3 + 1
        values = keys * 7
        tree = BPlusTree(keys, values, fanout=8)
        ops = keys[zipfian_keys(SILO_RECORDS, SILO_OPS, seed=seed)].copy()
        ops[::10] += 1  # some misses
        golden = silo_mod.silo_reference(tree, ops)
        return PreparedInput(app, code, (tree, ops), golden)
    raise ValueError(f"unknown app {app!r}")


def resolve_config(app: str,
                   base: Optional[SystemConfig] = None) -> SystemConfig:
    """Resolve the effective :class:`SystemConfig` for one app.

    Pure: the same (app, base) always yields the same config. Part of
    the experiment pipeline's cacheable phase decomposition
    (prepare → compile → simulate → verify)."""
    config = base or SystemConfig()
    if app == "silo":
        config = silo_mod.recommended_config(config)
    return config


def build_cgra_program(prepared: PreparedInput, config: SystemConfig,
                       mode: str, variant: str):
    """Compile phase: build the (program, workload) for a CGRA system.

    Pure function of its arguments — repeated compiles of the same
    prepared input and config produce equivalent programs, which is
    what lets the artifact cache (split plans, stage-DFG mappings)
    reuse products across runs."""
    return _build_cgra_program(prepared, config, mode, variant)


def simulate_cgra(program, config: SystemConfig, mode: str,
                  engine: str = "fast", max_cycles: float = 2e9,
                  telemetry=None, sanitize: bool = False,
                  profile: bool = False, codegen: Optional[bool] = None):
    """Simulate phase: instantiate and run one compiled program.

    Returns ``(raw, run_profile)`` where ``raw`` is the
    :class:`~repro.core.system.SimulationResult` and ``run_profile``
    the wait-for profile (or ``None``). Deterministic given its
    inputs; the verify/manifest phases build on the result.
    ``codegen`` selects the specialized step-function path
    (:mod:`repro.codegen`); ``None`` defers to ``REPRO_CODEGEN``."""
    simulator = System(config, program, mode=mode, telemetry=telemetry)
    sanitizer = None
    profiler = None
    run_profile = None
    if profile:
        from repro.profiling import attach_profiler
        profiler = attach_profiler(simulator, bus=telemetry)
    if sanitize:
        from repro.analysis import SimulationSanitizer
        sanitizer = SimulationSanitizer().arm(simulator)
    try:
        raw = simulator.run(max_cycles=max_cycles, engine=engine,
                            codegen=codegen)
    finally:
        if sanitizer is not None:
            sanitizer.disarm()
    if profiler is not None:
        run_profile = profiler.finalize(raw.pe_counters, raw.cycles)
    return raw, run_profile


# Backwards-compatible private aliases (pre-service callers).
def _system_config(app: str, base: Optional[SystemConfig]) -> SystemConfig:
    return resolve_config(app, base)


def _build_cgra_program(prepared: PreparedInput, config: SystemConfig,
                        mode: str, variant: str):
    app, data = prepared.app, prepared.data
    if app in GRAPH_APPS:
        module = get_workload(app)
        if app == "prd":
            return module.build(data, config, mode, variant,
                                max_iterations=PRD_MAX_ITERATIONS)
        if app == "radii":
            return module.build(data, config, mode, variant,
                                max_iterations=RADII_MAX_ITERATIONS)
        return module.build(data, config, mode, variant)
    if app == "spmm":
        matrix, rows, cols = data
        n_stages = 4 if variant == "decoupled" else 1
        from repro.workloads.common import shards_for_mode
        n_shards = shards_for_mode(config, mode, n_stages)
        workload = spmm_mod.SpMMWorkload(matrix, n_shards, rows, cols)
        return workload.build_program(config, mode, variant), workload
    if app == "silo":
        tree, ops = data
        return silo_mod.build(tree, ops, config, mode, variant)
    raise ValueError(app)


def _ooo_kernel(prepared: PreparedInput, n_cores: int):
    app, data = prepared.app, prepared.data
    if app == "bfs":
        return kernels.bfs_kernel(data, 0, n_cores)
    if app == "cc":
        return kernels.cc_kernel(data, n_cores)
    if app == "sssp":
        return kernels.sssp_kernel(data, 0, n_cores)
    if app == "prd":
        n = data.n_vertices
        return kernels.prd_kernel(data, n_cores, prd_mod.DAMPING,
                                  prd_mod.EPSILON_FRACTION / n,
                                  max_iterations=PRD_MAX_ITERATIONS)
    if app == "radii":
        sources = radii_mod._sample_sources(data.n_vertices, RADII_SOURCES, 7)
        return kernels.radii_kernel(data, sources, n_cores,
                                    max_iterations=RADII_MAX_ITERATIONS)
    if app == "spmm":
        matrix, rows, cols = data
        return kernels.spmm_kernel(matrix, rows, cols, n_cores)
    if app == "silo":
        tree, ops = data
        return kernels.silo_kernel(tree, ops, n_cores)
    raise ValueError(app)


def _check(app: str, result, golden) -> bool:
    if app == "prd":
        n = len(golden)
        return np.allclose(result, golden, atol=2.0 / n, rtol=1e-6)
    if app == "spmm":
        if set(result) != set(golden):
            return False
        return all(np.isclose(result[k], golden[k]) for k in golden)
    if app == "silo":
        return tuple(result) == tuple(golden)
    return np.array_equal(result, golden)


def analyze_workload(app: str, input_code: str, system: str = "fifer",
                     prepared: Optional[PreparedInput] = None,
                     variant: str = "decoupled",
                     config: Optional[SystemConfig] = None,
                     scale: Optional[float] = None, seed: int = 1):
    """Statically analyze one workload's compiled program.

    Builds the program exactly as :func:`run_experiment` would (same
    input preparation, same config adjustments) and runs the
    :mod:`repro.analysis` pass suite over the artifacts without
    instantiating a :class:`~repro.core.system.System`. Returns an
    :class:`~repro.analysis.report.AnalysisReport`.
    """
    from repro.analysis import analyze_program
    if system not in ("static", "fifer"):
        raise ValueError(
            f"system {system!r} has no CGRA program to analyze; "
            f"choose static or fifer")
    if scale is None and prepared is None:
        scale = default_scale(app, input_code)
    if prepared is None:
        prepared = prepare_input(app, input_code, scale=scale, seed=seed)
    sys_config = _system_config(app, config)
    program, _workload = _build_cgra_program(
        prepared, sys_config, system, variant)
    return analyze_program(program, sys_config, mode=system)


def run_experiment(app: str, input_code: str, system: str,
                   prepared: Optional[PreparedInput] = None,
                   variant: str = "decoupled",
                   config: Optional[SystemConfig] = None,
                   ooo_config: Optional[OOOConfig] = None,
                   scale: Optional[float] = None, seed: int = 1,
                   max_cycles: float = 2e9,
                   check: bool = True,
                   telemetry=None,
                   manifest_dir=None,
                   engine: str = "fast",
                   sanitize: bool = False,
                   profile: bool = False,
                   codegen: Optional[bool] = None,
                   on_phase=None) -> ExperimentResult:
    """Run one experiment; see module docstring for the system names.

    ``telemetry`` is an optional :class:`repro.stats.telemetry.EventBus`
    attached to the simulated system for the duration of the run (CGRA
    systems only; the analytic OOO model publishes no events). With
    ``manifest_dir`` set, a schema-versioned JSON run manifest (config,
    seed, cycles, CPI stack, cache/memory stats, energy, wall time) is
    written there; ``python -m repro report DIR`` tabulates them.
    ``engine`` selects the CGRA simulation loop (``fast`` or ``naive``;
    see :data:`repro.core.ENGINES`); the analytic OOO model ignores it.
    ``sanitize`` arms a :class:`repro.analysis.SimulationSanitizer` on
    CGRA runs: per-quantum token/credit-conservation and clock checks
    that keep the run bit-identical (see ``docs/analysis.md``).
    ``profile`` arms the wait-for profiler (:mod:`repro.profiling`) on
    CGRA runs — blame matrix, critical path, what-if inputs — exposed
    as ``result.profile`` and, with ``manifest_dir``, summarized into
    the run manifest.
    ``on_phase`` is an optional callable fired with a phase name as the
    run advances — ``"preparing"`` (only when the input is generated
    here), ``"compiling"``, ``"simulating"``, ``"verifying"`` — used by
    the experiment service to stream progress; it never affects the
    result.
    """
    from repro.core import ENGINES
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if scale is None and prepared is None:
        scale = default_scale(app, input_code)
    if prepared is None:
        if on_phase is not None:
            on_phase("preparing")
        prepared = prepare_input(app, input_code, scale=scale, seed=seed)
    if profile and system in ("serial", "multicore"):
        raise ValueError(
            f"profile=True needs a CGRA system with an event stream; "
            f"{system!r} is an analytic OOO model")
    energy_model = EnergyModel()
    run_profile = None
    t_start = time.perf_counter()
    if system in ("serial", "multicore"):
        n_cores = 1 if system == "serial" else 4
        if on_phase is not None:
            on_phase("compiling")
        kernel = _ooo_kernel(prepared, n_cores)
        if on_phase is not None:
            on_phase("simulating")
        raw = run_ooo(kernel, n_cores, ooo_config)
        energy = energy_model.ooo_energy(raw).as_dict()
        result = raw.result
    else:
        sys_config = resolve_config(app, config)
        if on_phase is not None:
            on_phase("compiling")
        program, _workload = build_cgra_program(
            prepared, sys_config, system, variant)
        if on_phase is not None:
            on_phase("simulating")
        raw, run_profile = simulate_cgra(
            program, sys_config, system, engine=engine,
            max_cycles=max_cycles, telemetry=telemetry,
            sanitize=sanitize, profile=profile, codegen=codegen)
        energy = energy_model.cgra_energy(raw).as_dict()
        result = raw.result
    wall_time_s = time.perf_counter() - t_start
    if on_phase is not None:
        on_phase("verifying")
    correct = _check(app, result, prepared.golden) if check else True
    if check and not correct:
        raise AssertionError(
            f"{app}/{input_code}/{system}/{variant}: functional result "
            f"does not match the golden reference")
    experiment = ExperimentResult(app, input_code, system, variant,
                                  float(raw.cycles), correct, energy, raw,
                                  scale=scale, seed=seed,
                                  wall_time_s=wall_time_s, engine=engine,
                                  profile=run_profile)
    if manifest_dir is not None:
        from repro.stats.manifest import write_manifest
        write_manifest(experiment.to_manifest(), manifest_dir)
    return experiment


def speedup_table(results: dict, baseline_system: str = "multicore"):
    """Turn {system: ExperimentResult} into {system: speedup}."""
    base = results[baseline_system].cycles
    return {system: base / r.cycles for system, r in results.items()}
