"""Execution tracing: per-PE timelines of stage activations.

:class:`ActivationTracer` is a thin :class:`~repro.stats.telemetry.EventSink`
over the telemetry bus: it records every ``stage.activate`` event with
timestamps. Attach one to a :class:`~repro.core.system.System` before
running to inspect the schedule (which stages ran when, for how long)
and render an ASCII Gantt chart — useful for understanding Fifer's
dynamic temporal pipelining and for debugging load imbalance.

Attaching no longer mutates PEs directly: ``attach`` subscribes the
tracer to the system's event bus (creating one if needed) and
``detach`` — or leaving a ``with`` block — unsubscribes it, so tracing
can be scoped to part of a run::

    with ActivationTracer().attach(system):
        result = system.run()

For richer traces (queue occupancy, cache misses, Perfetto export) use
:mod:`repro.stats.telemetry` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.stats.telemetry import EventBus, EventSink, TelemetryEvent


@dataclass(frozen=True)
class ActivationEvent:
    """One stage activation on one PE."""

    pe_id: int
    stage: str
    start: float            # cycle the stage became active
    reconfig_cycles: float  # dead time spent switching to it


class ActivationTracer(EventSink):
    """Collects activation events from all PEs of a system."""

    def __init__(self):
        self.events: list[ActivationEvent] = []
        self._bus: Optional[EventBus] = None

    # -- sink protocol -------------------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        if event.kind == "stage.activate":
            data = event.data
            self.record(data["pe"], data["stage"], event.cycle,
                        data["reconfig_cycles"])

    def record(self, pe_id: int, stage: str, start: float,
               reconfig_cycles: float) -> None:
        self.events.append(ActivationEvent(pe_id, stage, start,
                                           reconfig_cycles))

    # -- attachment ----------------------------------------------------------

    def attach(self, system) -> "ActivationTracer":
        """Subscribe to ``system``'s event bus (creating one if needed)."""
        bus = system.telemetry
        if bus is None:
            bus = EventBus()
            system.attach_telemetry(bus)
        bus.subscribe(self)
        self._bus = bus
        return self

    def detach(self) -> None:
        """Stop receiving events; recorded events are kept."""
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    def __enter__(self) -> "ActivationTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.detach()
        return False

    # -- queries -------------------------------------------------------------

    def per_pe(self) -> dict:
        timelines: dict = {}
        for event in self.events:
            timelines.setdefault(event.pe_id, []).append(event)
        for timeline in timelines.values():
            timeline.sort(key=lambda e: e.start)
        return timelines

    def residences(self, end_cycle: float) -> list:
        """(pe, stage, start, duration) for every activation.

        Events are clamped to ``[0, end_cycle]``: an activation that
        starts at or after ``end_cycle`` (a truncated trace) contributes
        a zero-duration span rather than a negative one.
        """
        spans = []
        for pe_id, timeline in self.per_pe().items():
            for event, nxt in zip(timeline, timeline[1:] + [None]):
                start = min(event.start, end_cycle)
                end = min(nxt.start if nxt is not None else end_cycle,
                          end_cycle)
                spans.append((pe_id, event.stage, start,
                              max(0.0, end - start)))
        return spans

    def stage_cycle_share(self, end_cycle: float) -> dict:
        """Total resident cycles per stage name across all PEs."""
        shares: dict = {}
        for _, stage, _, duration in self.residences(end_cycle):
            shares[stage] = shares.get(stage, 0.0) + duration
        return shares

    # -- rendering -------------------------------------------------------------

    def gantt(self, end_cycle: float, width: int = 72,
              max_pes: int = 8) -> str:
        """Render per-PE timelines as an ASCII Gantt chart.

        Each stage gets a letter (assigned in first-seen order);
        reconfiguration time is implicit in the span boundaries.
        Events beyond ``end_cycle`` are clamped off the chart.
        """
        timelines = self.per_pe()
        letters: dict = {}

        def letter(stage: str) -> str:
            if stage not in letters:
                alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                letters[stage] = alphabet[len(letters) % len(alphabet)]
            return letters[stage]

        lines = []
        scale = end_cycle / width if end_cycle else 1.0
        for pe_id in sorted(timelines)[:max_pes]:
            row = ["."] * width
            for event, nxt in zip(timelines[pe_id],
                                  timelines[pe_id][1:] + [None]):
                if event.start >= end_cycle:
                    continue
                end = min(nxt.start if nxt is not None else end_cycle,
                          end_cycle)
                lo = min(width - 1, int(event.start / scale))
                hi = min(width, max(lo + 1, int(end / scale)))
                for x in range(lo, hi):
                    row[x] = letter(event.stage)
            lines.append(f"PE{pe_id:<3}|{''.join(row)}|")
        legend = "  ".join(f"{v}={k}" for k, v in sorted(
            letters.items(), key=lambda kv: kv[1]))
        lines.append(f"legend: {legend}")
        return "\n".join(lines)
