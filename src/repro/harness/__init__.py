"""Experiment harness: runs (app, input, system) combinations and
formats the paper's tables and figures."""

from repro.harness.run import (ExperimentResult, GRAPH_APPS, APP_INPUTS,
                               SYSTEMS, analyze_workload, prepare_input,
                               run_experiment, speedup_table)
from repro.harness.format import format_table, gmean
from repro.harness.sweep import SweepPoint, merge_sweep_manifests, run_sweep

__all__ = [
    "ExperimentResult", "GRAPH_APPS", "APP_INPUTS", "SYSTEMS",
    "analyze_workload", "prepare_input", "run_experiment", "speedup_table",
    "format_table", "gmean",
    "SweepPoint", "merge_sweep_manifests", "run_sweep",
]
