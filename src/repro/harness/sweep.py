"""Process-pool sweep runner: fan experiment points across cores.

A sweep is an ordered list of :class:`SweepPoint` coordinates.
``run_sweep`` executes them — inline for ``workers<=1``, else on a
``ProcessPoolExecutor`` — and returns the ``ExperimentResult`` list in
input order regardless of completion order. Results are deterministic
by construction: every point is fully described by its coordinates
(config, seed, scale, engine), workers share nothing, and the parent
process writes all manifests itself in input order so per-point
manifest names (which carry collision suffixes) never depend on
completion order. A merged ``sweep.json`` manifest, stripped of
volatile keys (wall time, timestamps), is byte-identical across
repeats and across worker counts — the seed-determinism property test
locks this down.

The figure benchmarks (``bench_fig13``–``17``, ``bench_scaling``) use
this to regenerate their result grids in parallel.
"""

from __future__ import annotations

import json
import os
import traceback as traceback_mod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.config import SystemConfig
from repro.harness.run import (ExperimentResult, default_scale, prepare_input,
                               run_experiment)
from repro.stats.manifest import (MANIFEST_SCHEMA_VERSION, build_manifest,
                                  strip_volatile, write_manifest)


@dataclass(frozen=True)
class SweepPoint:
    """One experiment of a sweep: keyword coordinates for
    :func:`run_experiment`. Frozen and hashable (``SystemConfig`` is a
    frozen dataclass) so benchmark helpers can memoize on it."""

    app: str
    input_code: str
    system: str
    variant: str = "decoupled"
    scale: Optional[float] = None
    seed: int = 1
    engine: str = "fast"
    config: Optional[SystemConfig] = None
    max_cycles: float = 2e9
    check: bool = True
    profile: bool = False
    #: None defers to the REPRO_CODEGEN environment knob; True/False
    #: pins compiled step-functions on or off for this point.
    codegen: Optional[bool] = None

    @property
    def label(self) -> str:
        return (f"{self.app}/{self.input_code}/{self.system}/{self.variant}"
                f"/seed{self.seed}")


@dataclass(frozen=True)
class SweepPointError:
    """A structured record of one point that raised.

    With ``run_sweep(..., on_error="record")`` a failing point yields
    one of these in the result list instead of poisoning the whole
    sweep — the other points still complete and their manifests are
    still written. The traceback is captured as text in the worker so
    the record survives pickling back to the parent."""

    label: str
    app: str
    input_code: str
    system: str
    variant: str
    seed: int
    error_type: str
    message: str
    traceback: str

    def as_record(self) -> dict:
        """JSON-ready dict (also embedded in the merged manifest)."""
        return {
            "label": self.label,
            "app": self.app,
            "input_code": self.input_code,
            "system": self.system,
            "variant": self.variant,
            "seed": self.seed,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }


@lru_cache(maxsize=32)
def _prepared_cached(app: str, code: str, scale: float, seed: int):
    """Per-process input cache: points that share an input (e.g. the
    four systems of a Fig. 13 column) prepare it once per worker."""
    return prepare_input(app, code, scale=scale, seed=seed)


def run_point(point: SweepPoint, on_phase=None) -> ExperimentResult:
    """Execute one point (in a worker process, inline, or under the
    experiment service). ``on_phase`` is forwarded to
    :func:`~repro.harness.run.run_experiment` for progress streaming."""
    scale = (point.scale if point.scale is not None
             else default_scale(point.app, point.input_code))
    if on_phase is not None:
        on_phase("preparing")
    prepared = _prepared_cached(point.app, point.input_code, scale,
                                point.seed)
    return run_experiment(point.app, point.input_code, point.system,
                          prepared=prepared, variant=point.variant,
                          config=point.config, scale=scale, seed=point.seed,
                          max_cycles=point.max_cycles, check=point.check,
                          engine=point.engine, profile=point.profile,
                          codegen=point.codegen, on_phase=on_phase)


def _run_point(point: SweepPoint) -> ExperimentResult:
    return run_point(point)


def _run_point_recording(
        point: SweepPoint) -> Union[ExperimentResult, SweepPointError]:
    """Guarded worker: turn an exception into a SweepPointError so one
    poisoned point cannot take down the rest of the pool's work."""
    try:
        return run_point(point)
    except Exception as exc:
        return SweepPointError(
            label=point.label, app=point.app, input_code=point.input_code,
            system=point.system, variant=point.variant, seed=point.seed,
            error_type=type(exc).__name__, message=str(exc),
            traceback=traceback_mod.format_exc())


def merge_sweep_manifests(manifests: Sequence[dict],
                          errors: Sequence[SweepPointError] = ()) -> dict:
    """Combine per-point manifests into one deterministic document.

    Volatile keys (timestamps, wall time) are stripped from every
    point, so the merged manifest of a given sweep is byte-identical
    across repeats and across ``workers=1`` vs ``workers=N``. The
    ``errors``/``n_errors`` keys appear only when a recorded-error
    sweep actually had failures, so error-free sweeps keep their
    historical byte-identical shape.
    """
    merged = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "sweep",
        "n_points": len(manifests),
        "points": [strip_volatile(m) for m in manifests],
    }
    if errors:
        merged["n_errors"] = len(errors)
        merged["errors"] = [e.as_record() for e in errors]
    return merged


def run_sweep(points: Sequence[SweepPoint], workers: Optional[int] = None,
              manifest_dir=None, on_error: str = "raise") -> list:
    """Run every point and return results in input order.

    ``workers=None`` uses ``os.cpu_count()``; ``workers<=1`` (or a
    single point) runs inline with no pool. With ``manifest_dir`` set,
    the parent writes one manifest per point in input order plus a
    merged ``sweep.json`` (overwritten, volatile keys stripped).

    ``on_error`` selects failure handling: ``"raise"`` (default,
    historical behavior) re-raises the first exception and abandons
    the sweep; ``"record"`` captures each failing point as a
    :class:`SweepPointError` at its position in the result list,
    completes every other point, skips failed points when writing
    manifests, and appends the error records to ``sweep.json``.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(
            f"on_error must be 'raise' or 'record', not {on_error!r}")
    points = list(points)
    worker_fn = _run_point if on_error == "raise" else _run_point_recording
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(points) <= 1:
        results = [worker_fn(point) for point in points]
    else:
        with ProcessPoolExecutor(max_workers=min(workers,
                                                 len(points))) as pool:
            results = list(pool.map(worker_fn, points))
    if manifest_dir is not None:
        ok = [r for r in results if isinstance(r, ExperimentResult)]
        errors = [r for r in results if isinstance(r, SweepPointError)]
        manifests = [build_manifest(result) for result in ok]
        for manifest in manifests:
            write_manifest(manifest, manifest_dir)
        merged = merge_sweep_manifests(manifests, errors=errors)
        path = Path(manifest_dir) / "sweep.json"
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return results
