#!/usr/bin/env python3
"""A sorted-merge database join built from the public API.

The paper notes that SpMM's merge-intersection "also manifests in other
applications, like database joins" (Sec. 7.2). This example builds a
two-table equi-join as a Fifer pipeline: two producer stages stream the
sorted join-key columns through scanning DRMs, a merge stage intersects
them, and matching keys are dereferenced into the payload columns. The
address-generation stage is written in the pseudo-assembly dialect of
paper Fig. 6 (``repro.ir.parse_stage_asm``) to show the textual
frontend.

Run:  python examples/database_join.py
"""

import numpy as np

from repro import (DRMSpec, PEProgram, Program, StageSpec, System,
                   SystemConfig, STOP_VALUE)
from repro.ir import DFGBuilder, parse_stage_asm
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec

MERGE_ASM = """
; merge-intersect over two sorted key streams (cf. paper Fig. 6 style)
deq   %ka,   $join.a_keys
deq   %kb,   $join.b_keys
cmplt %lt,   %ka, %kb
cmpeq %eq,   %ka, %kb
mov   %base, 0
lea   %addr, %base, %ka
enq   $join.vals_in, %addr
enq   $join.vals_in, %ka
"""


def build_join_program(keys_a, vals_a, keys_b, vals_b):
    space = AddressSpace()
    memmap = MemoryMap()
    refs = {}
    for name, array in (("keys_a", keys_a), ("vals_a", vals_a),
                        ("keys_b", keys_b), ("vals_b", vals_b)):
        refs[name] = space.alloc_array(name, len(array))
        memmap.register(refs[name], array)
    joined = []

    def scan_stage(table, ref, n):
        def run(ctx):
            start = ref.addr(0)
            yield from ctx.enq(f"join.{table}_in", (start, start + n * 8))
            for _ in range(n):
                token = yield from ctx.deq(f"join.{table}_out")
                yield from ctx.enq(f"join.{table}_keys", int(token.value))
            yield from ctx.enq(f"join.{table}_keys", STOP_VALUE,
                               is_control=True)

        b = DFGBuilder(f"join.scan_{table}")
        key = b.deq(f"join.{table}_out")
        b.enq(f"join.{table}_keys", key)
        b.enq(f"join.{table}_in", key)
        return StageSpec(f"join.scan_{table}", b.finish(), run)

    def merge_semantics(ctx):
        """Advance the smaller key; on a match, emit the value addresses
        (positions tracked as the streams advance)."""
        pa = pb = 0
        a = yield from ctx.deq("join.a_keys")
        b = yield from ctx.deq("join.b_keys")
        while not (a.is_control or b.is_control):
            ka, kb = int(a.value), int(b.value)
            if ka == kb:
                yield from ctx.enq(
                    "join.vals_in",
                    (refs["vals_a"].addr(pa), refs["vals_b"].addr(pb), ka))
                a = yield from ctx.deq("join.a_keys")
                pa += 1
                b = yield from ctx.deq("join.b_keys")
                pb += 1
            elif ka < kb:
                a = yield from ctx.deq("join.a_keys")
                pa += 1
            else:
                b = yield from ctx.deq("join.b_keys")
                pb += 1
        while not a.is_control:
            a = yield from ctx.deq("join.a_keys")
        while not b.is_control:
            b = yield from ctx.deq("join.b_keys")
        yield from ctx.enq("join.vals_in", STOP_VALUE, is_control=True)

    def emit_semantics(ctx):
        while True:
            token = yield from ctx.deq("join.vals_out")
            if token.is_control:
                return
            va, vb, key = token.value
            joined.append((int(key), int(va), int(vb)))

    b = DFGBuilder("join.emit")
    token = b.deq("join.vals_out")
    b.add(token, token)
    emit_dfg = b.finish()

    pe0 = PEProgram(
        shard=0,
        queue_specs=[
            QueueSpec("join.a_in", entry_words=2),
            QueueSpec("join.a_out"),
            QueueSpec("join.a_keys", weight=2.0),
            QueueSpec("join.b_in", entry_words=2),
            QueueSpec("join.b_out"),
            QueueSpec("join.b_keys", weight=2.0),
            QueueSpec("join.vals_in", entry_words=3, weight=2.0),
            QueueSpec("join.vals_out", entry_words=3, weight=2.0),
        ],
        stage_specs=[
            scan_stage("a", refs["keys_a"], len(keys_a)),
            scan_stage("b", refs["keys_b"], len(keys_b)),
            StageSpec("join.merge", parse_stage_asm("join.merge", MERGE_ASM),
                      merge_semantics),
            StageSpec("join.emit", emit_dfg, emit_semantics),
        ],
        drm_specs=[
            DRMSpec("join.drm_a", "scan", in_queue="join.a_in",
                    out_queue="join.a_out"),
            DRMSpec("join.drm_b", "scan", in_queue="join.b_in",
                    out_queue="join.b_out"),
            DRMSpec("join.drm_vals", "deref", in_queue="join.vals_in",
                    out_queue="join.vals_out", width=2, payload=True),
        ],
    )
    return Program("sorted-merge-join", [pe0], space, memmap,
                   result_fn=lambda: sorted(joined)), joined


def main():
    rng = np.random.default_rng(4)
    keys_a = np.sort(rng.choice(50_000, size=6_000, replace=False))
    keys_b = np.sort(rng.choice(50_000, size=6_000, replace=False))
    vals_a = keys_a * 3
    vals_b = keys_b * 7
    golden = sorted(
        (int(k), int(k) * 3, int(k) * 7)
        for k in np.intersect1d(keys_a, keys_b))

    program, _ = build_join_program(keys_a.astype(np.int64), vals_a,
                                    keys_b.astype(np.int64), vals_b)
    config = SystemConfig(n_pes=1)
    result = System(config, program, mode="fifer").run()
    assert result.result == golden, "join output mismatch!"

    print(f"sorted-merge join: |A|={len(keys_a)}, |B|={len(keys_b)}, "
          f"{len(golden)} matches")
    print(f"one Fifer PE, 4 temporally-pipelined stages: "
          f"{result.cycles:,.0f} cycles (verified)")
    print(f"residence {result.avg_residence_cycles:.0f} cycles, "
          f"reconfiguration {result.avg_reconfig_cycles:.1f} cycles")
    print("merge stage mapped from pseudo-assembly:")
    print(result.mappings["join.merge"].render())


if __name__ == "__main__":
    main()
