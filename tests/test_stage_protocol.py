"""Tests for the stage coroutine protocol and StageContext helpers."""

import pytest

from repro.config import SystemConfig
from repro.core import PEProgram, Program, StageSpec, System, STOP_VALUE
from repro.core.stage import StageContext, StageInstance
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec


def _dfg(name, in_q=None, out_q=None):
    b = DFGBuilder(name)
    if in_q:
        x = b.deq(in_q)
    else:
        x = b.const(0)
    y = b.add(x, x)
    if out_q:
        b.enq(out_q, y)
    return b.finish()


class TestStageContext:
    def test_producer_key_is_stage_name(self):
        ctx = StageContext(3, "app.stage@7", 7, 16)
        assert ctx.producer_key == "app.stage@7"

    def test_helpers_yield_request_tuples(self):
        ctx = StageContext(0, "s", 0, 1)
        gen = ctx.deq("q")
        assert next(gen) == ("deq", "q")
        gen = ctx.enq("q", 42, is_control=True)
        assert next(gen) == ("enq", "q", 42, True)
        gen = ctx.load(0x100)
        assert next(gen) == ("load", 0x100)
        gen = ctx.store(0x200)
        assert next(gen) == ("store", 0x200)
        gen = ctx.cycles(5)
        assert next(gen) == ("cycles", 5)
        gen = ctx.try_deq("q")
        assert next(gen) == ("try_deq", "q")
        gen = ctx.peek("q")
        assert next(gen) == ("peek", "q")


class TestStageInstance:
    def _instance(self, semantics, name="s"):
        from repro.cgra import FabricSpec, map_dfg
        from repro.config import FabricConfig
        dfg = _dfg(name)
        mapping = map_dfg(dfg, FabricSpec.from_config(FabricConfig()))
        spec = StageSpec(name, dfg, semantics)
        return StageInstance(spec, StageContext(0, name, 0, 1),
                             mapping, 0x1000)

    def test_first_request_starts_coroutine(self):
        def semantics(ctx):
            yield ("cycles", 1)

        stage = self._instance(semantics)
        assert not stage.started
        assert stage.first_request() == ("cycles", 1)
        assert stage.started and not stage.done

    def test_advance_to_completion(self):
        def semantics(ctx):
            yield ("cycles", 1)
            yield ("cycles", 2)

        stage = self._instance(semantics)
        stage.first_request()
        assert stage.advance(None) == ("cycles", 2)
        assert stage.advance(None) is None
        assert stage.done

    def test_immediate_completion(self):
        def semantics(ctx):
            return
            yield

        stage = self._instance(semantics)
        assert stage.first_request() is None
        assert stage.done


class TestRequestBehaviors:
    """Drive the less-common requests through a real system."""

    def _run(self, semantics_pair, queue_specs):
        space = AddressSpace()
        producer, consumer = semantics_pair
        pe = PEProgram(
            shard=0, queue_specs=queue_specs,
            stage_specs=[
                StageSpec("p.src", _dfg("p.src", out_q="p.q"), producer),
                StageSpec("p.snk", _dfg("p.snk", in_q="p.q"), consumer)])
        program = Program("p", [pe], space, MemoryMap())
        return System(SystemConfig(n_pes=1), program, mode="fifer").run()

    def test_try_deq_returns_none_when_empty(self):
        observations = []

        def producer(ctx):
            token = yield from ctx.try_deq("p.side")
            observations.append(token)
            yield from ctx.enq("p.side", "x")
            token = yield from ctx.try_deq("p.side")
            observations.append(token.value)
            yield from ctx.enq("p.q", STOP_VALUE, is_control=True)

        def consumer(ctx):
            token = yield from ctx.deq("p.q")
            assert token.is_control

        self._run((producer, consumer),
                  [QueueSpec("p.q"), QueueSpec("p.side")])
        assert observations == [None, "x"]

    def test_peek_blocks_until_available_without_consuming(self):
        observations = []

        def producer(ctx):
            yield from ctx.enq("p.q", 41)
            yield from ctx.enq("p.q", STOP_VALUE, is_control=True)

        def consumer(ctx):
            token = yield from ctx.peek("p.q")
            observations.append(("peek", token.value))
            token = yield from ctx.deq("p.q")
            observations.append(("deq", token.value))
            token = yield from ctx.deq("p.q")
            assert token.is_control

        self._run((producer, consumer), [QueueSpec("p.q")])
        assert observations == [("peek", 41), ("deq", 41)]

    def test_unknown_request_rejected(self):
        def producer(ctx):
            yield ("teleport", "p.q")

        def consumer(ctx):
            return
            yield

        with pytest.raises(ValueError, match="unknown request"):
            self._run((producer, consumer), [QueueSpec("p.q")])

    def test_control_value_ends_iteration_boundaries_in_order(self):
        order = []

        def producer(ctx):
            for i in range(3):
                yield from ctx.enq("p.q", i)
            yield from ctx.enq("p.q", "END", is_control=True)
            for i in range(3, 6):
                yield from ctx.enq("p.q", i)
            yield from ctx.enq("p.q", STOP_VALUE, is_control=True)

        def consumer(ctx):
            while True:
                token = yield from ctx.deq("p.q")
                order.append("C" if token.is_control else token.value)
                if token.is_control and token.value == STOP_VALUE:
                    return

        self._run((producer, consumer), [QueueSpec("p.q")])
        assert order == [0, 1, 2, "C", 3, 4, 5, "C"]
