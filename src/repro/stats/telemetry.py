"""Structured telemetry: an event bus the whole simulator publishes to.

Every simulation component (PE engine, scheduler, DRMs, queues, caches,
main memory) owns an optional :class:`Probe`. With no telemetry attached
the probe attribute is ``None`` and instrumentation reduces to a single
attribute check on each (already rare) event site — a zero-cost no-op.
Attaching an :class:`EventBus` (``System.attach_telemetry``) wires a
probe into every component; subscribing :class:`EventSink` objects to
the bus then receives a totally ordered stream of structured
:class:`TelemetryEvent` records.

Event taxonomy (``kind`` / payload fields):

========================  ====================================================
``stage.activate``        ``pe``, ``stage``, ``reconfig_cycles`` — a stage
                          became active on a PE (after any reconfiguration)
``stage.deactivate``      ``pe``, ``stage`` — the outgoing stage stopped
``reconfig.begin``        ``pe``, ``stage`` (incoming), ``period``
``reconfig.end``          ``pe``, ``stage``
``sched.switch``          ``pe``, ``from``, ``to`` — scheduler decision
``pe.stall``              ``pe``, ``bucket`` — one blocked cycle, attributed
                          to a CPI bucket (queue full/empty/idle)
``queue.enq``             ``queue``, ``words``, ``occupancy``, ``control``
``queue.deq``             ``queue``, ``words``, ``occupancy``
``queue.credit_stall``    ``queue``, ``producer`` — space exists but the
                          producer is out of credits (Sec. 5.6 flow control)
``cache.miss``            ``level``, ``addr``, ``write``
``mem.issue``             ``addr``, ``write`` — request enters main memory
``mem.complete``          ``addr``, ``latency`` — stamped at completion time
``drm.blocked``           ``drm`` — a DRM stalled on a full output queue
``sample``                ``queues``, ``pe_state``, ``cpi`` — periodic
                          sampler output (see :class:`PeriodicSampler`)
========================  ====================================================

On top of the bus live a periodic sampler (queue-occupancy and per-PE
time series — a superset of the paper's Fig. 14/16 data), a JSONL sink,
and a Chrome trace-event exporter whose output loads directly in
Perfetto (https://ui.perfetto.dev): one track per PE with stage and
reconfiguration slices, plus one counter track per queue.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.stats.cpi_stack import cpi_stack

_EPS = 1e-9


@dataclass(slots=True)
class TelemetryEvent:
    """One structured event: a timestamp, a kind, a source, a payload.

    ``seq`` is a bus-global monotonic sequence number that totally
    orders events even when several share a timestamp (e.g. a
    ``reconfig.end`` and the ``stage.activate`` it enables).

    Treat instances as read-only. The class is deliberately not
    ``frozen``: frozen-dataclass construction routes every field
    through ``object.__setattr__``, roughly tripling the per-event
    cost on the armed-profiler path that
    ``benchmarks/bench_telemetry_overhead.py`` budgets.
    """

    cycle: float
    seq: int
    kind: str
    source: str
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"cycle": self.cycle, "seq": self.seq, "kind": self.kind,
                "source": self.source, **self.data}


class EventSink:
    """Receives events from an :class:`EventBus`; subclass and override."""

    def on_event(self, event: TelemetryEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; the default is a no-op."""


class _AllKinds:
    """Sentinel ``wants`` value: every kind is wanted (unfiltered sink)."""

    __slots__ = ()

    def __contains__(self, kind: str) -> bool:
        return True

    def __bool__(self) -> bool:
        return True


_EVERY_KIND = _AllKinds()


class Probe:
    """A component's handle onto the bus (cheap to hold, cheap to skip).

    Publishers call ``emit`` only behind an ``if self.probe is not None``
    guard; ``emit`` itself drops the event unless some subscribed sink
    wants the kind (``bus.wants``), so an attached-but-unsubscribed bus
    costs one method call per event site and allocates nothing. The
    hottest sites (queue/cache/memory traffic) additionally pre-check
    ``kind in probe.bus.wants`` before building the payload, so a bus
    carrying only kind-filtered sinks (e.g. the wait-for profiler, which
    wants stall and reconfiguration events but not per-token queue
    traffic) skips those sites almost as cheaply as an idle bus.
    """

    __slots__ = ("bus", "source")

    def __init__(self, bus: "EventBus", source: str):
        self.bus = bus
        self.source = source

    def emit(self, kind: str, cycle: Optional[float] = None, **data) -> None:
        bus = self.bus
        if kind in bus.wants:
            # ``data`` is already a fresh dict; hand it to the bus
            # as-is rather than re-packing through a second **kwargs.
            bus.publish(kind, self.source, cycle, data)


class EventBus:
    """Fan-out hub: publishers emit, sinks subscribe, samplers tick.

    ``now`` is the bus clock: the :class:`~repro.core.system.System`
    updates it to the current cycle at every quantum boundary, and PEs
    pass their own (sub-quantum) ``now`` explicitly. Components without
    a clock of their own (queues, caches, memory) timestamp events with
    ``now``, so their timestamps are quantum-granular.

    ``subscribe(sink, kinds=...)`` registers a *kind-filtered* sink: the
    bus only constructs and delivers events some subscriber wants
    (``wants`` is the union of all subscriptions; an unfiltered sink
    widens it to everything). Filtering changes which events exist at
    all, so ``seq`` numbering — still strictly monotonic — depends on
    the subscription set. Note ``mem.complete`` rides behind the
    ``mem.issue`` fast-path guard in :class:`~repro.memory.cache.
    MainMemory`: subscribe to both to see completions.
    """

    def __init__(self):
        self.sinks: list = []
        self.samplers: list = []
        self.now = 0.0
        self.seq = 0
        #: Set-like of event kinds some sink wants; supports ``in``.
        self.wants = frozenset()
        self._filters: list = []   # parallel to sinks: frozenset | None
        self._delivery: list = []  # [(sink.on_event, kinds)] snapshot

    # -- sinks -------------------------------------------------------------

    def _rebuild_wants(self) -> None:
        if any(kinds is None for kinds in self._filters):
            self.wants = _EVERY_KIND
        elif self._filters:
            self.wants = frozenset().union(*self._filters)
        else:
            self.wants = frozenset()
        self._delivery = [(sink.on_event, kinds)
                          for sink, kinds in zip(self.sinks, self._filters)]

    def subscribe(self, sink: EventSink, kinds=None) -> EventSink:
        """Subscribe ``sink``; ``kinds`` (an iterable of event kinds)
        restricts delivery — and event construction — to those kinds.
        ``None`` (default) receives everything."""
        if sink not in self.sinks:
            self.sinks.append(sink)
            self._filters.append(frozenset(kinds) if kinds is not None
                                 else None)
            self._rebuild_wants()
        return sink

    def unsubscribe(self, sink: EventSink) -> None:
        if sink in self.sinks:
            index = self.sinks.index(sink)
            del self.sinks[index]
            del self._filters[index]
            self._rebuild_wants()

    @property
    def active(self) -> bool:
        return bool(self.sinks)

    def emit(self, kind: str, source: str,
             cycle: Optional[float] = None, **data) -> None:
        self.publish(kind, source, cycle, data)

    def publish(self, kind: str, source: str,
                cycle: Optional[float], data: dict) -> None:
        """Deliver one event; ``data`` is adopted, not copied."""
        if kind not in self.wants:
            return
        event = TelemetryEvent(self.now if cycle is None else cycle,
                               self.seq, kind, source, data)
        self.seq += 1
        for on_event, kinds in self._delivery:
            if kinds is None or kind in kinds:
                on_event(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    # -- samplers ----------------------------------------------------------

    def add_sampler(self, sampler: "PeriodicSampler") -> "PeriodicSampler":
        if sampler not in self.samplers:
            self.samplers.append(sampler)
            sampler.bus = self
        return sampler

    def on_quantum(self, system) -> None:
        """Advance the bus clock and run due samplers (one call/quantum)."""
        self.now = system.cycle
        for sampler in self.samplers:
            sampler.maybe_sample(system)


class RecordingSink(EventSink):
    """Collects events in memory, optionally filtered to a set of kinds."""

    def __init__(self, kinds=None):
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.events: list[TelemetryEvent] = []

    def on_event(self, event: TelemetryEvent) -> None:
        if self.kinds is None or event.kind in self.kinds:
            self.events.append(event)


class JsonlSink(EventSink):
    """Streams every event as one JSON object per line."""

    def __init__(self, stream, kinds=None):
        self.stream = stream
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.n_events = 0

    def on_event(self, event: TelemetryEvent) -> None:
        if self.kinds is None or event.kind in self.kinds:
            self.stream.write(json.dumps(event.as_dict(), sort_keys=True)
                              + "\n")
            self.n_events += 1

    def close(self) -> None:
        self.stream.flush()


class PeriodicSampler:
    """Samples queue occupancy and per-PE state every ``period`` cycles.

    Sampling happens at quantum boundaries: each due point ``k*period``
    is recorded at the first boundary at or after it, and due points
    that fall inside one quantum collapse into a single sample — so for
    ``period >= quantum`` there are exactly ``floor(C/period) + 1``
    samples over ``C`` cycles, and for ``period < quantum`` one sample
    per quantum.

    Each sample is a plain dict::

        {"cycle": float,
         "queues": {name: occupancy_words},
         "pe_state": [state per PE: a stage name, "(reconfig)", "(idle)",
                      or "(done)"],
         "cpi": [per-PE Fig. 14 bucket dict, cumulative since cycle 0]}

    Differencing consecutive ``cpi`` entries yields time-resolved CPI
    stacks; ``queues`` series render as Perfetto counter tracks.
    """

    def __init__(self, period: float, publish: bool = True):
        if period <= 0:
            raise ValueError(f"sampler period must be positive, got {period}")
        self.period = float(period)
        self.publish = publish
        self.samples: list[dict] = []
        self.bus: Optional[EventBus] = None
        self._next = 0.0

    def maybe_sample(self, system) -> None:
        if system.cycle + _EPS < self._next:
            return
        self.sample(system)
        self._next = (math.floor(system.cycle / self.period) + 1) * self.period

    def sample(self, system) -> dict:
        """Record one sample immediately (regardless of the period)."""
        cycle = system.cycle
        record = {
            "cycle": cycle,
            "queues": {name: queue.occupancy_words
                       for name, queue in system.queues.items()},
            "pe_state": [pe.state for pe in system.pes],
            "cpi": [cpi_stack(pe.counters, cycle) for pe in system.pes],
        }
        self.samples.append(record)
        if self.publish and self.bus is not None:
            self.bus.emit("sample", "sampler", cycle=cycle,
                          queues=record["queues"],
                          pe_state=record["pe_state"],
                          cpi=record["cpi"])
        return record


# -- Chrome trace-event export ---------------------------------------------

def chrome_trace(events, end_cycle: float, samples=(),
                 process_name: str = "fifer") -> dict:
    """Convert bus events (+ sampler samples) to Chrome trace-event JSON.

    The returned dict serializes to a file Perfetto and
    ``chrome://tracing`` load directly. Stage residencies and
    reconfiguration periods become complete ("X") slices on one track
    (``tid``) per PE; queue-occupancy samples become counter ("C")
    tracks. Timestamps are cycles (1 "us" == 1 cycle).

    ``events`` needs only ``stage.activate`` and ``reconfig.begin``
    kinds (others are ignored), so a filtered :class:`RecordingSink`
    keeps memory bounded on long runs.
    """
    trace: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": 0,
         "args": {"name": process_name}},
    ]
    # Replay activations/reconfigurations per PE into closed spans.
    open_span: dict[int, dict] = {}   # pe -> {"name", "cat", "ts"}
    pes_seen: set = set()

    def close(pe: int, at: float) -> None:
        span = open_span.pop(pe, None)
        if span is None:
            return
        ts = min(span["ts"], end_cycle)
        dur = max(0.0, min(at, end_cycle) - ts)
        trace.append({"ph": "X", "name": span["name"], "cat": span["cat"],
                      "ts": ts, "dur": dur, "pid": 0, "tid": pe,
                      "args": span.get("args", {})})

    for event in sorted(events, key=lambda e: (e.cycle, e.seq)):
        if event.kind == "reconfig.begin":
            pe = event.data["pe"]
            pes_seen.add(pe)
            close(pe, event.cycle)
            if event.data.get("period", 0.0) > 0.0:
                open_span[pe] = {"name": "(reconfig)", "cat": "reconfig",
                                 "ts": event.cycle,
                                 "args": {"incoming": event.data["stage"]}}
        elif event.kind == "stage.activate":
            pe = event.data["pe"]
            pes_seen.add(pe)
            close(pe, event.cycle)
            open_span[pe] = {"name": event.data["stage"], "cat": "stage",
                             "ts": event.cycle}
    for pe in sorted(open_span):
        close(pe, end_cycle)
    for pe in sorted(pes_seen):
        trace.append({"ph": "M", "name": "thread_name", "pid": 0, "tid": pe,
                      "args": {"name": f"PE {pe}"}})

    for sample in samples:
        for name, words in sample["queues"].items():
            trace.append({"ph": "C", "name": f"queue {name}", "pid": 0,
                          "ts": sample["cycle"], "args": {"words": words}})

    return {"traceEvents": trace, "displayTimeUnit": "ms",
            "otherData": {"clock": "cycles", "end_cycle": end_cycle}}


def write_chrome_trace(stream, events, end_cycle: float, samples=(),
                       **kwargs) -> None:
    """Serialize :func:`chrome_trace` output to an open text stream."""
    json.dump(chrome_trace(events, end_cycle, samples=samples, **kwargs),
              stream, sort_keys=True)
    stream.write("\n")
