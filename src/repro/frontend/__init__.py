"""Decoupling compiler front-end (paper Sec. 4, Fig. 5).

Write a workload as ONE annotated kernel — a straight-line loop body
with its long-latency accesses marked — and the front-end splits it
into a feed-forward pipeline of FIFO-connected stages:

* :mod:`repro.frontend.kernel` — the kernel-description layer
  (:class:`GraphKernel`, builder-style expressions, ``load`` markers);
* :mod:`repro.frontend.split` — dependence analysis over the
  whole-kernel DFG: cut at every marked load, infer the values live
  across each cut, derive channel widths;
* :mod:`repro.frontend.lint` — proves the result feed-forward and
  rejects illegal kernels (back-edges, values not live across a cut)
  with errors naming the offending node;
* :mod:`repro.frontend.lower` — instantiates the stages as a runnable
  program on :mod:`repro.core`, replicated per shard with owner-routed
  cross-shard hops;
* :mod:`repro.frontend.kernels` — the shipped kernels (``bfs``, ``cc``,
  ``sssp``) and the :func:`get_frontend` registry.
"""

from repro.frontend.kernel import FrontendError, GraphKernel
from repro.frontend.lint import PipelineLintError
from repro.frontend.split import StagePlan, analyze
from repro.frontend.lower import (CompiledPipeline, FrontendWorkload,
                                  compile_kernel)
from repro.frontend.kernels import (FRONTEND_KERNELS, describe_cached,
                                    get_frontend, sssp_edge_weights,
                                    SSSP_INF)

__all__ = ["FrontendError", "GraphKernel", "PipelineLintError", "StagePlan",
           "analyze", "CompiledPipeline", "FrontendWorkload",
           "compile_kernel", "FRONTEND_KERNELS", "describe_cached",
           "get_frontend", "sssp_edge_weights", "SSSP_INF"]
