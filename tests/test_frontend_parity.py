"""Differential suite: generated pipelines vs hand-written ones.

The front-end's acceptance bar (ISSUE): a workload ported to the
annotated-kernel DSL must lower to a pipeline *bit-identical* to its
hand-written counterpart — same per-stage DFGs, queue and DRM specs,
and, when simulated, identical cycle counts, per-PE counters, CPI
stacks, cache/memory statistics, and result arrays, on both engines and
both variants. BFS and CC are the ported pair; SSSP exists only as a
kernel and is validated against its golden serial reference instead.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import ENGINES
from repro.frontend import get_frontend
from repro.frontend.lower import _demo_graph
from repro.harness import prepare_input, run_experiment
from repro.harness.run import APP_INPUTS
from repro.workloads.bfs import BFSWorkload
from repro.workloads.cc import CCWorkload

_HAND_WRITTEN = {
    "bfs": lambda graph, n_shards: BFSWorkload(graph, n_shards, source=0),
    "cc": CCWorkload,
}

_N_SHARDS = 2


def _pair(name):
    graph = _demo_graph()
    hand = _HAND_WRITTEN[name](graph, _N_SHARDS)
    gen = get_frontend(name).workload(graph, _N_SHARDS)
    return hand, gen


# -- structural parity -----------------------------------------------------

@pytest.mark.parametrize("name", sorted(_HAND_WRITTEN))
def test_stage_dfgs_identical(name):
    hand, gen = _pair(name)
    builders = ("_s0_dfg", "_s1_dfg", "_s2_dfg", "_s3_dfg", "_merged_dfg")
    for builder in builders:
        for shard in range(_N_SHARDS):
            hand_dfg = getattr(hand, builder)(shard)
            gen_dfg = getattr(gen, builder)(shard)
            assert gen_dfg.pseudo_assembly() == hand_dfg.pseudo_assembly(), \
                f"{name} {builder} shard {shard}"


@pytest.mark.parametrize("name", sorted(_HAND_WRITTEN))
def test_queue_specs_identical(name):
    hand, gen = _pair(name)
    for shard in range(_N_SHARDS):
        assert gen._shard_queue_specs(shard) == \
            hand._shard_queue_specs(shard)


@pytest.mark.parametrize("name", sorted(_HAND_WRITTEN))
def test_drm_specs_identical(name):
    # DRMSpec carries a route closure, so compare field by field.
    fields = ("name", "mode", "in_queue", "out_queue", "route_targets",
              "width", "payload")

    def flat(specs):
        return [(group,) + tuple(getattr(drm, f) for f in fields)
                for group, drms in specs.items() for drm in drms]

    hand, gen = _pair(name)
    for shard in range(_N_SHARDS):
        assert flat(gen._shard_drm_specs(shard)) == \
            flat(hand._shard_drm_specs(shard))


@pytest.mark.parametrize("name", sorted(_HAND_WRITTEN))
def test_address_space_layout_identical(name):
    hand, gen = _pair(name)
    flat = lambda wl: [(r.name, r.base, r.size) for r in wl.space.regions()]
    assert flat(gen) == flat(hand)


# -- full-run bit-identicality --------------------------------------------

_PARITY_SCALE = 0.08


@pytest.fixture(scope="module")
def parity_inputs():
    return {name: prepare_input(name, "Hu", scale=_PARITY_SCALE)
            for name in ("bfs", "cc", "sssp")}


def _run_stats(raw):
    return {
        "cycles": raw.cycles,
        "counters": [c.as_dict() for c in raw.pe_counters],
        "cpi": raw.cpi_stacks(),
        "l1": raw.l1_stats,
        "llc": raw.llc_stats,
        "mem": raw.mem_stats,
    }


def _run_generated(name, prepared, system, variant, engine="fast"):
    """run_experiment builds through repro.workloads.<name>, i.e. the
    hand-written pipeline for bfs/cc; this helper builds the same
    experiment through the front-end instead."""
    from repro.core import System
    config = SystemConfig()
    program, workload = get_frontend(name).build(
        prepared.data, config, system, variant)
    raw = System(config, program, mode=system).run(engine=engine)
    return raw


@pytest.mark.slow
@pytest.mark.parametrize("variant", ["decoupled", "merged"])
@pytest.mark.parametrize("system", ["fifer", "static"])
@pytest.mark.parametrize("name", sorted(_HAND_WRITTEN))
def test_generated_runs_bit_identical(name, system, variant, parity_inputs):
    prepared = parity_inputs[name]
    hand = run_experiment(name, "Hu", system, prepared=prepared,
                          variant=variant).raw
    gen = _run_generated(name, prepared, system, variant)
    assert _run_stats(gen) == _run_stats(hand)
    assert np.array_equal(gen.result, hand.result)
    assert np.array_equal(gen.result, prepared.golden)


@pytest.mark.parametrize("name", sorted(_HAND_WRITTEN))
def test_generated_runs_bit_identical_quick(name, parity_inputs):
    """Non-slow guard: one system/variant pair stays in the default run."""
    prepared = parity_inputs[name]
    hand = run_experiment(name, "Hu", "fifer", prepared=prepared).raw
    gen = _run_generated(name, prepared, "fifer", "decoupled")
    assert _run_stats(gen) == _run_stats(hand)
    assert np.array_equal(gen.result, hand.result)


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(_HAND_WRITTEN))
def test_generated_engines_identical(name, parity_inputs):
    prepared = parity_inputs[name]
    runs = {engine: _run_generated(name, prepared, "fifer", "decoupled",
                                   engine=engine)
            for engine in ENGINES}
    assert _run_stats(runs["fast"]) == _run_stats(runs["naive"])
    assert np.array_equal(runs["fast"].result, runs["naive"].result)


# -- the frontend-only workload (SSSP) ------------------------------------

def test_sssp_matches_golden(parity_inputs):
    prepared = parity_inputs["sssp"]
    res = run_experiment("sssp", "Hu", "fifer", prepared=prepared)
    assert res.correct


@pytest.mark.slow
@pytest.mark.parametrize("code", APP_INPUTS["sssp"])
def test_sssp_all_inputs(code):
    res = run_experiment("sssp", code, "fifer", scale=0.08)
    assert res.correct


@pytest.mark.slow
@pytest.mark.parametrize("system,variant", [
    ("static", "decoupled"),
    ("fifer", "merged"),
    ("serial", "decoupled"),
    ("multicore", "decoupled"),
])
def test_sssp_cross_system(system, variant, parity_inputs):
    res = run_experiment("sssp", "Hu", system,
                         prepared=parity_inputs["sssp"], variant=variant)
    assert res.correct


@pytest.mark.slow
def test_sssp_engines_identical(parity_inputs):
    prepared = parity_inputs["sssp"]
    runs = {engine: run_experiment("sssp", "Hu", "fifer", prepared=prepared,
                                   engine=engine).raw
            for engine in ENGINES}
    assert _run_stats(runs["fast"]) == _run_stats(runs["naive"])
    assert np.array_equal(runs["fast"].result, runs["naive"].result)
