"""Findings and reports produced by the static analysis passes.

A pass emits :class:`Finding` records; :class:`AnalysisReport` collects
them for one compiled program together with the deadlock-freedom
certificate (when every pass comes back clean) and the per-stage
feasibility records. Reports serialize deterministically (sorted keys)
so ``repro lint --json`` output is diffable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

SEVERITIES = ("error", "warning", "info")


class AnalysisError(Exception):
    """Raised by :meth:`AnalysisReport.require_clean` on error findings."""


@dataclass(frozen=True)
class Finding:
    """One diagnostic from a static analysis pass.

    ``severity``: "error" (the program will fail to build, deadlock, or
    crash), "warning" (legal but suspicious — e.g. a reserved credit
    share that is never used), or "info" (neutral facts such as foldable
    constants). ``pass_name`` identifies the pass (``deadlock.cycle``,
    ``dfg.dead``, ...); ``subject`` names the offending stage, queue, or
    node so tooling can link back to the artifact.
    """

    severity: str
    pass_name: str
    subject: str
    message: str

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def as_dict(self) -> dict:
        return {"severity": self.severity, "pass": self.pass_name,
                "subject": self.subject, "message": self.message}

    def render(self) -> str:
        return f"{self.severity}[{self.pass_name}] {self.message}"


@dataclass
class AnalysisReport:
    """All findings for one compiled program under one configuration."""

    program: str
    mode: str
    findings: list[Finding] = field(default_factory=list)
    # Present only when no pass reported an error: the deadlock-freedom
    # certificate (channel bounds, wait graph, assumptions).
    certificate: Optional[dict] = None
    # Per-stage feasibility records from the DFG passes.
    stages: dict = field(default_factory=dict)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    def require_clean(self) -> None:
        if self.errors:
            summary = "; ".join(f.message for f in self.errors)
            raise AnalysisError(
                f"program {self.program!r}: {len(self.errors)} analysis "
                f"error(s): {summary}")

    def as_dict(self) -> dict:
        return {
            "program": self.program,
            "mode": self.mode,
            "ok": self.ok,
            "findings": [f.as_dict() for f in self.findings],
            "certificate": self.certificate,
            "stages": self.stages,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable summary for ``repro lint``."""
        lines = [f"{self.program} [{self.mode}]: "
                 f"{len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s), "
                 f"{len(self.stages)} stage(s) analyzed"]
        for finding in self.findings:
            lines.append(f"  {finding.render()}")
        if self.certificate is not None:
            cert = self.certificate
            lines.append(
                f"  certificate: deadlock-free "
                f"({cert['wait_graph']['nodes']} endpoints, "
                f"{cert['wait_graph']['edges']} wait edges, "
                f"{len(cert['round_trips'])} bounded round trip(s))")
        elif not self.ok:
            lines.append("  certificate: NOT ISSUED (see errors)")
        return "\n".join(lines)
