"""Reconfiguration timing (paper Sec. 5.1, Fig. 8).

Reconfiguring a Fifer PE is a three-step process:

1. **Load** the new configuration from the L1 cache. Configurations are
   stored in cacheable memory; the L1 serves 64 bytes/cycle into chained
   configuration cells, so a ~360-byte configuration loads in 6 chunks
   (plus the L1 access latency — 10 cycles total when the configuration
   hits in the L1).
2. **Drain** the in-flight operations of the current configuration
   (its pipeline depth in cycles); architectural state in fabric
   registers drains to the L1 alongside.
3. **Activate** the new configuration: a two-cycle dead time while the
   double-buffered cells switch their read multiplexer.

With Fifer's double-buffered configuration cells, steps 1 and 2 overlap:
the reconfiguration period is ``max(drain, load) + activation``. Without
them (the Fig. 16 ablation), the steps serialize. ``zero_cost`` models
the idealized free-reconfiguration design of Sec. 8.3.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.memory.cache import Cache

_CHUNK_BYTES = 64


class ReconfigurationModel:
    """Computes reconfiguration periods for one PE."""

    def __init__(self, config: SystemConfig, l1: Cache):
        self.config = config
        self.l1 = l1
        self.configs_loaded = 0
        # Loads whose bitstream lines were not all L1-resident. The
        # paper assumes warm configurations (10-cycle loads); this
        # counter exposes how often data traffic evicted them.
        self.cold_loads = 0

    def load_cycles(self, config_addr: int, config_bytes: int) -> float:
        """Cycles to stream one bitstream from the L1 into the config cells."""
        chunks = -(-config_bytes // _CHUNK_BYTES)
        worst_line = 0.0
        addr = config_addr
        for _ in range(chunks):
            worst_line = max(worst_line, self.l1.access(addr))
            addr += _CHUNK_BYTES
        self.configs_loaded += 1
        if worst_line > self.l1.config.latency:
            self.cold_loads += 1
        return chunks + worst_line

    def reconfiguration_period(self, outgoing_depth: float,
                               incoming_config_addr: int,
                               incoming_config_bytes: int) -> float:
        """Total dead time to switch from the current stage to a new one.

        ``outgoing_depth`` is the in-flight drain time of the current
        configuration (0 when the fabric is empty, e.g., first activation).
        """
        if self.config.zero_cost_reconfig:
            return 0.0
        load = self.load_cycles(incoming_config_addr, incoming_config_bytes)
        activation = self.config.fabric.activation_cycles
        if self.config.double_buffered:
            return max(outgoing_depth, load) + activation
        return outgoing_depth + load + activation
