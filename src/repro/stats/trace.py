"""Execution tracing: per-PE timelines of stage activations.

Attach an :class:`ActivationTracer` to a :class:`~repro.core.system.System`
before running to record every reconfiguration and activation with
timestamps. The trace supports schedule inspection (which stages ran
when, for how long) and renders an ASCII Gantt chart — useful for
understanding Fifer's dynamic temporal pipelining and for debugging
load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ActivationEvent:
    """One stage activation on one PE."""

    pe_id: int
    stage: str
    start: float            # cycle the stage became active
    reconfig_cycles: float  # dead time spent switching to it


@dataclass
class ActivationTracer:
    """Collects activation events from all PEs of a system."""

    events: list = field(default_factory=list)

    def record(self, pe_id: int, stage: str, start: float,
               reconfig_cycles: float) -> None:
        self.events.append(ActivationEvent(pe_id, stage, start,
                                           reconfig_cycles))

    def attach(self, system) -> "ActivationTracer":
        for pe in system.pes:
            pe.tracer = self
        return self

    # -- queries -------------------------------------------------------------

    def per_pe(self) -> dict:
        timelines: dict = {}
        for event in self.events:
            timelines.setdefault(event.pe_id, []).append(event)
        for timeline in timelines.values():
            timeline.sort(key=lambda e: e.start)
        return timelines

    def residences(self, end_cycle: float) -> list:
        """(pe, stage, start, duration) for every activation."""
        spans = []
        for pe_id, timeline in self.per_pe().items():
            for event, nxt in zip(timeline, timeline[1:] + [None]):
                end = nxt.start if nxt is not None else end_cycle
                spans.append((pe_id, event.stage, event.start,
                              end - event.start))
        return spans

    def stage_cycle_share(self, end_cycle: float) -> dict:
        """Total resident cycles per stage name across all PEs."""
        shares: dict = {}
        for _, stage, _, duration in self.residences(end_cycle):
            shares[stage] = shares.get(stage, 0.0) + duration
        return shares

    # -- rendering -------------------------------------------------------------

    def gantt(self, end_cycle: float, width: int = 72,
              max_pes: int = 8) -> str:
        """Render per-PE timelines as an ASCII Gantt chart.

        Each stage gets a letter (assigned in first-seen order);
        reconfiguration time is implicit in the span boundaries.
        """
        timelines = self.per_pe()
        letters: dict = {}

        def letter(stage: str) -> str:
            if stage not in letters:
                alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                letters[stage] = alphabet[len(letters) % len(alphabet)]
            return letters[stage]

        lines = []
        scale = end_cycle / width if end_cycle else 1.0
        for pe_id in sorted(timelines)[:max_pes]:
            row = ["."] * width
            for event, nxt in zip(timelines[pe_id],
                                  timelines[pe_id][1:] + [None]):
                end = nxt.start if nxt is not None else end_cycle
                lo = min(width - 1, int(event.start / scale))
                hi = min(width, max(lo + 1, int(end / scale)))
                for x in range(lo, hi):
                    row[x] = letter(event.stage)
            lines.append(f"PE{pe_id:<3}|{''.join(row)}|")
        legend = "  ".join(f"{v}={k}" for k, v in sorted(
            letters.items(), key=lambda kv: kv[1]))
        lines.append(f"legend: {legend}")
        return "\n".join(lines)
