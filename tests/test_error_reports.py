"""Deadlock/timeout diagnostics: the exception message must say *why*.

A bare "deadlock at cycle N" forces users into print-debugging; the
report now names, per PE, the resident stage, each stage's blocked
reason (which queue, enq vs deq, full vs out-of-credits), and the
occupancy of every non-empty queue. Both engines must raise the same
exception at the same cycle with the same state report.
"""

import pytest

from repro.config import SystemConfig
from repro.core import (DeadlockError, PEProgram, Program, SimulationTimeout,
                        StageSpec, System, STOP_VALUE)
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec


def _passthrough_dfg(name, in_q, out_q):
    b = DFGBuilder(name)
    x = b.deq(in_q)
    b.enq(out_q, x)
    return b.finish()


def _sink_dfg(name, in_q):
    b = DFGBuilder(name)
    x = b.deq(in_q)
    b.add(x, x)
    return b.finish()


def _source_dfg(name, out_q):
    b = DFGBuilder(name)
    counter = b.reg("i")
    one = b.const(1)
    nxt = b.add(counter, one)
    b.set_reg(counter, nxt)
    b.enq(out_q, nxt)
    return b.finish()


def _stuck_program():
    """Producer overfills 'err.q' (more items than its word capacity,
    so it ends up blocked on a full queue); the consumer waits forever
    on 'err.never'. At deadlock both stages are blocked for different
    reasons — full enq vs empty deq — and the report must name each."""
    space = AddressSpace()
    memmap = MemoryMap()

    def producer(ctx):
        for i in range(3000):
            yield from ctx.enq("err.q", i)
        yield from ctx.enq("err.q", STOP_VALUE, is_control=True)

    def stuck_consumer(ctx):
        yield from ctx.deq("err.never")

    pe = PEProgram(
        shard=0,
        queue_specs=[QueueSpec("err.q"), QueueSpec("err.never")],
        stage_specs=[
            StageSpec("err.src", _source_dfg("err.src", "err.q"), producer),
            StageSpec("err.snk", _sink_dfg("err.snk", "err.never"),
                      stuck_consumer),
        ])
    return Program("err", [pe], space, memmap, result_fn=lambda: None)


_CONFIG = SystemConfig(n_pes=1, deadlock_quanta=20)


def _deadlock_message(engine):
    system = System(_CONFIG, _stuck_program(), mode="fifer")
    with pytest.raises(DeadlockError) as excinfo:
        system.run(engine=engine)
    return str(excinfo.value), system.cycle


class TestDeadlockReport:
    def test_names_pes_stages_and_reasons(self):
        message, _ = _deadlock_message("fast")
        assert "no progress for 20 quanta" in message
        # Per-PE resident stage.
        assert "PE0 resident=" in message
        # Per-stage blocked reason, naming the culprit queue and op.
        assert "err.snk: blocked on deq 'err.never' (empty)" in message
        assert "err.src: blocked on enq 'err.q'" in message
        # Occupancy of the stuffed queue, with capacity.
        assert "non-empty queues:" in message
        assert "err.q:" in message
        assert "words" in message

    def test_engines_agree(self):
        fast_msg, fast_cycle = _deadlock_message("fast")
        naive_msg, naive_cycle = _deadlock_message("naive")
        assert fast_msg == naive_msg
        assert fast_cycle == naive_cycle

    def test_full_vs_out_of_credits(self):
        # err.q is full at deadlock: the reason must distinguish a full
        # queue from an out-of-credits one.
        message, _ = _deadlock_message("fast")
        assert ("(full;" in message) or ("(out of credits;" in message)


class TestTimeoutReport:
    # Generous deadlock_quanta so the 8192-cycle timeout always wins,
    # long after both stages have reached their stuck state.
    _TIMEOUT_CONFIG = SystemConfig(n_pes=1, deadlock_quanta=500)

    def _timeout_message(self, engine):
        system = System(self._TIMEOUT_CONFIG, _stuck_program(), mode="fifer")
        with pytest.raises(SimulationTimeout) as excinfo:
            system.run(max_cycles=8192, engine=engine)
        return str(excinfo.value), system.cycle

    def test_includes_state_report(self):
        message, _ = self._timeout_message("fast")
        assert "exceeded 8192 cycles" in message
        assert "PE0 resident=" in message
        assert "err.snk: blocked on deq 'err.never' (empty)" in message
        assert "non-empty queues:" in message

    def test_engines_agree(self):
        fast = self._timeout_message("fast")
        naive = self._timeout_message("naive")
        assert fast == naive


def _healthy_program():
    space = AddressSpace()
    memmap = MemoryMap()
    seen = []

    def producer(ctx):
        for i in range(10):
            yield from ctx.enq("ok.q", i)
        yield from ctx.enq("ok.q", STOP_VALUE, is_control=True)

    def consumer(ctx):
        while True:
            token = yield from ctx.deq("ok.q")
            if token.is_control:
                return
            seen.append(token.value)

    pe = PEProgram(
        shard=0,
        queue_specs=[QueueSpec("ok.q")],
        stage_specs=[
            StageSpec("ok.src", _source_dfg("ok.src", "ok.q"), producer),
            StageSpec("ok.snk", _sink_dfg("ok.snk", "ok.q"), consumer),
        ])
    return Program("ok", [pe], space, memmap, result_fn=lambda: seen)


@pytest.mark.parametrize("engine", ["fast", "naive"])
def test_healthy_completion_raises_nothing(engine):
    # The same topology with a consumer on the right queue completes;
    # the diagnostics only fire on real deadlocks.
    result = System(_CONFIG, _healthy_program(), mode="fifer").run(
        engine=engine)
    assert result.result == list(range(10))
