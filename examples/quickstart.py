#!/usr/bin/env python3
"""Quickstart: BFS on Fifer vs the static spatial pipeline.

Builds a synthetic scale-free graph, runs breadth-first search on the
16-PE Fifer system and on the static-pipeline baseline, verifies both
against a golden serial BFS, and prints the cycle counts, speedup, and
Fifer's reconfiguration statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import System, SystemConfig
from repro.datasets.graphs import power_law_graph
from repro.workloads import bfs


def main():
    config = SystemConfig()                      # paper Table 2 defaults
    graph = power_law_graph(n=2000, avg_degree=8.0, seed=7)
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges, "
          f"avg degree {graph.avg_degree:.1f}")

    golden = bfs.bfs_reference(graph, source=0)

    results = {}
    for mode in ("static", "fifer"):
        program, _workload = bfs.build(graph, config, mode=mode)
        result = System(config, program, mode=mode).run()
        assert np.array_equal(result.result, golden), "BFS result mismatch!"
        results[mode] = result
        print(f"\n{mode:>6}: {result.cycles:,.0f} cycles (verified)")
        stack = result.merged_cpi_stack()
        total = sum(stack.values())
        for bucket, value in stack.items():
            print(f"        {bucket:<10} {value / total:6.1%}")

    fifer = results["fifer"]
    speedup = results["static"].cycles / fifer.cycles
    print(f"\nFifer speedup over the static pipeline: {speedup:.2f}x")
    print(f"Fifer avg residence time: {fifer.avg_residence_cycles:.0f} cycles")
    print(f"Fifer avg reconfiguration period: "
          f"{fifer.avg_reconfig_cycles:.1f} cycles")
    print(f"reachable vertices: {(golden >= 0).sum()} "
          f"(max distance {golden.max()})")


if __name__ == "__main__":
    main()
