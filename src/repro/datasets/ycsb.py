"""YCSB-style workload generation.

Silo is evaluated with YCSB-C (paper Sec. 7.2): a read-only workload
whose key popularity follows a zipfian distribution (the YCSB default,
theta = 0.99), so a few hot records absorb most lookups while the long
tail forces cache misses.
"""

from __future__ import annotations

import numpy as np


def zipfian_keys(n_records: int, n_ops: int, theta: float = 0.99,
                 seed: int = 0, scramble: bool = True) -> np.ndarray:
    """Draw ``n_ops`` record indices from a zipfian over ``n_records``.

    With ``scramble`` (as YCSB does), popularity ranks are permuted
    across the key space so hot keys are scattered rather than
    clustered at low ids.
    """
    if n_records <= 0:
        raise ValueError("n_records must be positive")
    if not 0 < theta < 1:
        raise ValueError("theta must be in (0, 1)")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_records + 1, dtype=np.float64)
    weights = ranks ** -theta
    weights /= weights.sum()
    draws = rng.choice(n_records, size=n_ops, p=weights)
    if scramble:
        perm = rng.permutation(n_records)
        draws = perm[draws]
    return draws.astype(np.int64)
