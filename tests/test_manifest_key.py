"""The canonical spec hash: stable, total, and field-sensitive.

``manifest_key`` is the root of every cache identity in the service —
a collision between distinct specs would serve wrong results, and an
unstable key would make every lookup miss. These tests pin the
stability, sensitivity, and failure modes.
"""

import pytest

from repro.stats.manifest import (CACHE_KEY_SCHEMA_VERSION, canonical_json,
                                  manifest_key)

_SPEC = {
    "app": "bfs", "input_code": "Hu", "system": "fifer",
    "variant": "decoupled", "scale": 0.35, "seed": 1, "engine": "fast",
    "max_cycles": 2e9, "check": True,
    "config": {"n_pes": 16, "stage_speedup": []},
}


def test_key_is_hex_sha256():
    key = manifest_key(_SPEC)
    assert len(key) == 64
    assert all(c in "0123456789abcdef" for c in key)


def test_stable_across_calls_and_key_order():
    reordered = dict(reversed(list(_SPEC.items())))
    assert manifest_key(_SPEC) == manifest_key(reordered)
    assert manifest_key(_SPEC) == manifest_key(dict(_SPEC))


def test_every_field_changes_the_key():
    base = manifest_key(_SPEC)
    mutations = {
        "app": "cc", "input_code": "Dy", "system": "static",
        "variant": "merged", "scale": 0.36, "seed": 2, "engine": "naive",
        "max_cycles": 1e9, "check": False,
        "config": {"n_pes": 8, "stage_speedup": []},
    }
    for field, value in mutations.items():
        mutated = {**_SPEC, field: value}
        assert manifest_key(mutated) != base, field


def test_nested_config_fields_change_the_key():
    base = manifest_key(_SPEC)
    mutated = {**_SPEC,
               "config": {**_SPEC["config"],
                          "stage_speedup": [["bfs.fetch", 2.0]]}}
    assert manifest_key(mutated) != base


def test_extra_is_a_separate_namespace():
    base = manifest_key(_SPEC)
    assert manifest_key(_SPEC, extra={"code": "abc"}) != base
    assert (manifest_key(_SPEC, extra={"code": "abc"})
            != manifest_key(_SPEC, extra={"code": "abd"}))
    # extra cannot be smuggled in as a spec field and collide
    assert (manifest_key({**_SPEC, "extra": {"code": "abc"}})
            != manifest_key(_SPEC, extra={"code": "abc"}))


def test_tuple_and_list_canonicalize_identically():
    # JSON has no tuples; both forms serialize to the same text, so a
    # key computed before a JSON round-trip matches one computed after.
    with_tuple = {**_SPEC,
                  "config": {**_SPEC["config"],
                             "stage_speedup": (("bfs.fetch", 2.0),)}}
    with_list = {**_SPEC,
                 "config": {**_SPEC["config"],
                            "stage_speedup": [["bfs.fetch", 2.0]]}}
    assert manifest_key(with_tuple) == manifest_key(with_list)


def test_rejects_non_dict_and_unserializable():
    with pytest.raises(TypeError):
        manifest_key(["not", "a", "dict"])
    with pytest.raises(TypeError):
        manifest_key({"fn": object()})
    with pytest.raises(TypeError):
        manifest_key({"x": float("nan")})


def test_schema_version_is_part_of_the_key():
    # The key document embeds CACHE_KEY_SCHEMA_VERSION; this test
    # exists to force a conscious bump review: changing the version
    # invalidates every stored result by construction.
    assert CACHE_KEY_SCHEMA_VERSION == 1


def test_canonical_json_shape():
    text = canonical_json({"b": 1, "a": [1.5, True, None]})
    assert text == '{\n  "a": [\n    1.5,\n    true,\n    null\n  ],\n  "b": 1\n}\n'
    with pytest.raises(ValueError):
        canonical_json({"x": float("inf")})
