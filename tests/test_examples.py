"""Smoke tests: every example script runs to completion and verifies
its own results (each asserts against a golden reference internally)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_all_examples_present():
    assert {"quickstart.py", "graph_analytics.py", "spmm_intersection.py",
            "silo_database.py", "custom_pipeline.py", "database_join.py",
            "pipeline_visualizer.py"} <= set(EXAMPLES)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
