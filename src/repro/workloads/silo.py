"""Silo: in-memory database B+tree lookups (paper Sec. 7.2, Fig. 12(b)).

Silo performs lookups against B+tree indexes. The pipeline traverses the
tree by examining the current node: an internal node is returned to the
traversal queue for another dereference — the *cycle* of Fig. 12(b) — and
a leaf node is searched for the value. Cycles are allowed because the
work is bounded: each internal node enqueues at most one additional node
on the cyclical path. Pipelining many lookups overlaps many memory
accesses at once.

Stages: query (stream keys) -> traverse internal node (self-cycle)
-> process leaf -> output. The traversal queue has two producers (the
query stage and the traversal stage itself), arbitrated with credits.

Organizing Silo this way enlarges its memory footprint, so the queue
memory is scaled down to 4 KB (paper Sec. 7.2) — apply
``recommended_config`` to the system configuration.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.core.drm import DRMSpec
from repro.core.program import PEProgram, Program
from repro.core.stage import STOP_VALUE, StageSpec
from repro.datasets.btree import BPlusTree
from repro.ir import DFGBuilder
from repro.memory.address import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues.queue_memory import QueueSpec
from repro.workloads.common import shards_for_mode


def recommended_config(config: SystemConfig) -> SystemConfig:
    """Silo runs with the queue memory scaled to 4 KB (paper Sec. 7.2)."""
    return config.replace(queue_mem_bytes=4 * 1024)


def silo_reference(tree: BPlusTree, keys) -> tuple[int, int]:
    """Golden lookups; returns (found_count, checksum_of_found_values)."""
    found = 0
    checksum = 0
    for key in keys:
        value = tree.lookup(int(key))
        if value is not None:
            found += 1
            checksum = (checksum + int(value)) & 0xFFFFFFFFFFFF
    return found, checksum


class SiloWorkload:
    """Pipeline-parallel B+tree lookups."""

    name = "silo"

    def __init__(self, tree: BPlusTree, keys, n_shards: int):
        self.tree = tree
        self.n_shards = n_shards
        self.space = AddressSpace()
        self.memmap = MemoryMap()

        # The tree's nodes occupy one region; DRM reads resolve against a
        # zero array (the functional traversal uses the tree object).
        self.tree_ref = self.space.alloc_array(
            "btree_nodes", tree.total_bytes // 8)
        self.memmap.register(
            self.tree_ref, _ZeroArray(tree.total_bytes // 8))

        keys = np.asarray(keys, dtype=np.int64)
        # Operations are striped evenly across the PEs (paper Sec. 7.2).
        self.shard_keys = []
        self.key_refs = []
        for shard in range(n_shards):
            shard_keys = keys[shard::n_shards].copy()
            ref = self.space.alloc_array(f"keys.{shard}",
                                         max(1, len(shard_keys)))
            self.memmap.register(ref, shard_keys)
            self.shard_keys.append(shard_keys)
            self.key_refs.append(ref)
        self.found = [0] * n_shards
        self.checksum = [0] * n_shards
        # Per-shard bound on lookups in flight inside the traversal
        # cycle. The cycle of Fig. 12(b) deadlocks if new lookups can
        # saturate both the traversal queue and the node-fetch output
        # (the recirculating token then has nowhere to go), so the query
        # stage bounds admissions and the traversal stage returns a
        # credit as each lookup leaves for the leaf stage. Sized from
        # the carved queue capacities in ``_post_build``.
        self.lookup_window = [1] * n_shards

    def node_addr(self, node_id: int) -> int:
        return self.tree_ref.base + self.tree.node_offset(node_id)

    # -- naming -----------------------------------------------------------

    def q(self, kind: str, shard: int) -> str:
        return f"{self.name}.{kind}@{shard}"

    def stage_name(self, stage: str, shard: int) -> str:
        return f"{self.name}.{stage}@{shard}"

    # -- stage semantics ------------------------------------------------------

    def _query_semantics(self, shard: int):
        q = self.q
        keys = self.shard_keys[shard]
        ref = self.key_refs[shard]
        tree = self.tree

        def run(ctx):
            if len(keys):
                start = ref.addr(0)
                yield from ctx.enq(q("keys_in", shard),
                                   (start, start + len(keys) * 8))
            root_is_leaf = tree.depth == 1
            outstanding = 0
            for _ in range(len(keys)):
                token = yield from ctx.deq(q("keys_out", shard))
                key = int(token.value)
                addr = self.node_addr(tree.root_id)
                if root_is_leaf:
                    yield from ctx.enq(q("leaf_in", shard),
                                       (addr, key, tree.root_id))
                    continue
                if outstanding >= self.lookup_window[shard]:
                    yield from ctx.deq(q("credits", shard))
                    outstanding -= 1
                yield from ctx.enq(q("trav", shard),
                                   (addr, addr + 64, key, tree.root_id))
                outstanding += 1
            while outstanding > 0:
                yield from ctx.deq(q("credits", shard))
                outstanding -= 1
            yield from ctx.enq(q("trav", shard), STOP_VALUE, is_control=True)

        return run

    def _traverse_semantics(self, shard: int):
        q = self.q
        tree = self.tree
        root = tree.root_id

        def run(ctx):
            entered = 0
            exited = 0
            stop_seen = False
            while True:
                if stop_seen and entered == exited:
                    yield from ctx.enq(q("leaf_in", shard), STOP_VALUE,
                                       is_control=True)
                    return
                token = yield from ctx.deq(q("node_out", shard))
                if token.is_control:
                    assert token.value == STOP_VALUE
                    stop_seen = True
                    continue
                _, _, key, node_id = token.value
                if node_id == root:
                    entered += 1
                child, is_leaf = tree.step(int(node_id), int(key))
                yield from ctx.cycles(2)  # in-node binary search
                addr = self.node_addr(child)
                if is_leaf:
                    exited += 1
                    yield from ctx.enq(q("credits", shard), 1)
                    yield from ctx.enq(q("leaf_in", shard),
                                       (addr, key, child))
                else:
                    yield from ctx.enq(q("trav", shard),
                                       (addr, addr + 64, key, child))

        return run

    def _leaf_semantics(self, shard: int):
        q = self.q
        tree = self.tree

        def run(ctx):
            while True:
                token = yield from ctx.deq(q("leaf_out", shard))
                if token.is_control:
                    yield from ctx.enq(q("results", shard), token.value,
                                       is_control=True)
                    return
                _, key, leaf_id = token.value
                yield from ctx.cycles(2)  # in-leaf binary search
                value = tree.leaf_lookup(int(leaf_id), int(key))
                yield from ctx.enq(q("results", shard),
                                   (key, -1 if value is None else int(value)))

        return run

    def _output_semantics(self, shard: int):
        q = self.q

        def run(ctx):
            while True:
                token = yield from ctx.deq(q("results", shard))
                if token.is_control:
                    return
                _, value = token.value
                if value >= 0:
                    self.found[shard] += 1
                    self.checksum[shard] = (
                        self.checksum[shard] + value) & 0xFFFFFFFFFFFF

        return run

    # -- dataflow graphs ----------------------------------------------------------

    def _query_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("query", shard))
        key = b.deq(self.q("keys_out", shard))
        b.deq(self.q("credits", shard))
        root = b.const(self.node_addr(self.tree.root_id))
        b.enq(self.q("trav", shard), root)
        b.enq(self.q("trav", shard), key)
        b.enq(self.q("keys_in", shard), key)
        return b.finish()

    def _traverse_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("traverse", shard))
        token = b.deq(self.q("node_out", shard))
        key = b.ctrl(token)
        found = b.lt(key, token)          # binary-search step
        mid = b.shr(b.add(token, key), b.const(1))
        child = b.sel(found, mid, token)
        base = b.const(0)
        addr = b.lea(base, child)
        b.enq(self.q("trav", shard), addr)
        b.enq(self.q("leaf_in", shard), addr)
        b.enq(self.q("leaf_in", shard), key)
        # Leaf exits return a window credit to the query stage (see
        # _traverse_semantics); declare the edge so the static channel
        # graph sees the credit queue's producer.
        b.enq(self.q("credits", shard), found)
        return b.finish()

    def _leaf_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("leaf", shard))
        token = b.deq(self.q("leaf_out", shard))
        key = b.ctrl(token)
        eq = b.eq(token, key)
        value = b.sel(eq, token, key)
        b.enq(self.q("results", shard), value)
        return b.finish()

    def _output_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("output", shard))
        token = b.deq(self.q("results", shard))
        count = b.reg("found")
        total = b.add(count, token)
        b.set_reg(count, total)
        return b.finish()

    # -- merged variant: traverse+leaf+output fused, coupled node loads -------------

    def _merged_semantics(self, shard: int):
        q = self.q
        tree = self.tree

        def run(ctx):
            while True:
                token = yield from ctx.deq(q("trav", shard))
                if token.is_control:
                    return
                key = int(token.value)
                node_id = tree.root_id
                while not tree.nodes[node_id].is_leaf:
                    yield from ctx.load(self.node_addr(node_id))
                    yield from ctx.load(self.node_addr(node_id) + 64)
                    yield from ctx.cycles(2)
                    node_id, _ = tree.step(node_id, key)
                yield from ctx.load(self.node_addr(node_id))
                yield from ctx.cycles(2)
                value = tree.leaf_lookup(node_id, key)
                if value is not None:
                    self.found[shard] += 1
                    self.checksum[shard] = (
                        self.checksum[shard] + int(value)) & 0xFFFFFFFFFFFF

        return run

    def _merged_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("lookup", shard))
        key = b.deq(self.q("trav", shard))
        node = b.reg("node")
        base = b.const(0)
        w1 = b.load(b.lea(base, node))
        w2 = b.load(b.lea(b.const(1), node))
        found = b.lt(key, w1)
        child = b.sel(found, w1, w2)
        b.set_reg(node, child)
        b.eq(key, w2)
        return b.finish()

    def _merged_query_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("query", shard))
        key = b.deq(self.q("keys_out", shard))
        b.enq(self.q("trav", shard), key)
        b.enq(self.q("keys_in", shard), key)
        return b.finish()

    def _merged_query_semantics(self, shard: int):
        q = self.q
        keys = self.shard_keys[shard]
        ref = self.key_refs[shard]

        def run(ctx):
            if len(keys):
                start = ref.addr(0)
                yield from ctx.enq(q("keys_in", shard),
                                   (start, start + len(keys) * 8))
            for _ in range(len(keys)):
                token = yield from ctx.deq(q("keys_out", shard))
                yield from ctx.enq(q("trav", shard), int(token.value))
            yield from ctx.enq(q("trav", shard), STOP_VALUE, is_control=True)

        return run

    # -- program assembly -----------------------------------------------------------

    def _shard_groups(self, shard: int):
        q = self.q
        trav_producers = (self.stage_name("query", shard),
                          self.stage_name("traverse", shard))
        queue_specs = {
            "sq": [QueueSpec(q("keys_in", shard), entry_words=2),
                   QueueSpec(q("keys_out", shard)),
                   QueueSpec(q("credits", shard))],
            "st": [QueueSpec(q("trav", shard), entry_words=4, weight=2.0,
                             producers=trav_producers),
                   QueueSpec(q("node_out", shard), entry_words=4,
                             weight=2.0)],
            "sl": [QueueSpec(q("leaf_in", shard), entry_words=3),
                   QueueSpec(q("leaf_out", shard), entry_words=3)],
            "so": [QueueSpec(q("results", shard), entry_words=2)],
        }
        drm_specs = {
            "sq": [DRMSpec(f"{self.name}.drm_keys@{shard}", "scan",
                           in_queue=q("keys_in", shard),
                           out_queue=q("keys_out", shard))],
            "st": [DRMSpec(f"{self.name}.drm_node@{shard}", "deref",
                           in_queue=q("trav", shard),
                           out_queue=q("node_out", shard),
                           width=2, payload=True)],
            "sl": [DRMSpec(f"{self.name}.drm_leaf@{shard}", "deref",
                           in_queue=q("leaf_in", shard),
                           out_queue=q("leaf_out", shard),
                           width=1, payload=True)],
        }
        stage_specs = {
            "sq": StageSpec(self.stage_name("query", shard),
                            self._query_dfg(shard),
                            self._query_semantics(shard)),
            "st": StageSpec(self.stage_name("traverse", shard),
                            self._traverse_dfg(shard),
                            self._traverse_semantics(shard)),
            "sl": StageSpec(self.stage_name("leaf", shard),
                            self._leaf_dfg(shard),
                            self._leaf_semantics(shard)),
            "so": StageSpec(self.stage_name("output", shard),
                            self._output_dfg(shard),
                            self._output_semantics(shard)),
        }
        return queue_specs, drm_specs, stage_specs

    def build_program(self, config: SystemConfig, mode: str,
                      variant: str = "decoupled") -> Program:
        if mode not in ("fifer", "static"):
            raise ValueError(f"unknown mode {mode!r}")
        pe_programs = []
        if variant == "decoupled":
            groups = ("sq", "st", "sl", "so")
            for shard in range(self.n_shards):
                queue_specs, drm_specs, stage_specs = self._shard_groups(shard)
                if mode == "fifer":
                    pe_programs.append(PEProgram(
                        shard=shard,
                        queue_specs=[s for g in groups
                                     for s in queue_specs[g]],
                        stage_specs=[stage_specs[g] for g in groups],
                        drm_specs=[d for g in groups
                                   for d in drm_specs.get(g, [])]))
                else:
                    for group in groups:
                        pe_programs.append(PEProgram(
                            shard=shard,
                            queue_specs=queue_specs[group],
                            stage_specs=[stage_specs[group]],
                            drm_specs=drm_specs.get(group, [])))
        elif variant == "merged":
            for shard in range(self.n_shards):
                q = self.q
                sq_queues = [QueueSpec(q("keys_in", shard), entry_words=2),
                             QueueSpec(q("keys_out", shard))]
                lookup_queues = [QueueSpec(q("trav", shard), weight=2.0)]
                sq = StageSpec(self.stage_name("query", shard),
                               self._merged_query_dfg(shard),
                               self._merged_query_semantics(shard))
                lookup = StageSpec(self.stage_name("lookup", shard),
                                   self._merged_dfg(shard),
                                   self._merged_semantics(shard))
                drm_keys = DRMSpec(f"{self.name}.drm_keys@{shard}", "scan",
                                   in_queue=q("keys_in", shard),
                                   out_queue=q("keys_out", shard))
                if mode == "fifer":
                    pe_programs.append(PEProgram(
                        shard=shard,
                        queue_specs=sq_queues + lookup_queues,
                        stage_specs=[sq, lookup], drm_specs=[drm_keys]))
                else:
                    pe_programs.append(PEProgram(
                        shard=shard, queue_specs=sq_queues,
                        stage_specs=[sq], drm_specs=[drm_keys]))
                    pe_programs.append(PEProgram(
                        shard=shard, queue_specs=lookup_queues,
                        stage_specs=[lookup]))
        else:
            raise ValueError(f"unknown variant {variant!r}")
        return Program(
            name=self.name,
            pe_programs=pe_programs,
            address_space=self.space,
            memmap=self.memmap,
            post_build=(self._post_build if variant == "decoupled" else None),
            result_fn=lambda: (sum(self.found),
                               sum(self.checksum) & 0xFFFFFFFFFFFF),
        )

    def _post_build(self, system) -> None:
        """Size each shard's lookup window from carved queue capacities.

        The deadlock in the traversal cycle requires the traversal
        stage's credit share of ``trav`` *and* the node-fetch output to
        be saturated simultaneously (plus one token in the stage's
        hands), so any window strictly below their combined capacity is
        safe; the credit-return queue must also never fill.
        """
        for shard in range(self.n_shards):
            node_out = system.resolve_queue(self.q("node_out", shard))
            trav = system.resolve_queue(self.q("trav", shard))
            credits = system.resolve_queue(self.q("credits", shard))
            node_out_entries = node_out.capacity_words // node_out.entry_words
            trav_share = (trav.capacity_words // 2) // trav.entry_words
            self.lookup_window[shard] = max(
                1, min(node_out_entries + trav_share,
                       credits.capacity_words) - 1)


class _ZeroArray:
    """Indexable all-zero stand-in for the tree's raw node words."""

    def __init__(self, n: int):
        self._n = n

    def __getitem__(self, index):
        if not 0 <= index < self._n:
            raise IndexError(index)
        return 0

    def __setitem__(self, index, value):
        raise TypeError("B+tree node words are read-only in simulation")

    def __len__(self):
        return self._n


def build(tree: BPlusTree, keys, config, mode: str,
          variant: str = "decoupled"):
    n_stages = 4 if variant == "decoupled" else 2
    workload = SiloWorkload(tree, keys,
                            shards_for_mode(config, mode, n_stages))
    return workload.build_program(config, mode, variant), workload
