"""Wait-for attribution: charge every stalled cycle to its culprit.

The :class:`WaitForProfiler` is a kind-filtered telemetry sink
(:class:`repro.stats.telemetry.EventSink`): subscribed with
:data:`WaitForProfiler.KINDS` it sees only the rare structural events
(stalls, stage activations, reconfigurations, DRM blocks) and never the
per-token queue/cache traffic, which keeps armed-profiler overhead in
single digits (``benchmarks/bench_telemetry_overhead.py``).

During the run it accumulates, per PE, how many stalled cycles were
spent waiting on each queue (and through the queue, via the program
topology, on each upstream producer or downstream consumer). At
:meth:`finalize` those event-derived *splits* are reconciled against
the per-PE cycle counters: each CPI bucket's counter value is
distributed across the blamed components in proportion to the observed
waits, so the resulting :class:`BlameMatrix` sums to the CPI stacks
exactly — the blame matrix is a refinement of Fig. 14, never a second
opinion on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stats.cpi_stack import cpi_stack
from repro.stats.telemetry import EventSink, TelemetryEvent
from repro.profiling.topology import (COMPUTE, IDLE, MEMORY, RECONFIG,
                                      Topology, base_name)

_EPS = 1e-9

#: CPI-stack buckets that event-derived splits refine; the remaining
#: buckets (issued, stall_mem, reconfig, idle) map to one column each.
_QUEUE_BUCKETS = ("stall_queue_full", "stall_queue_empty")


@dataclass
class BlameMatrix:
    """waiter (``pe<N>``) x waitee (component) -> stalled cycles.

    Rows sum to each PE's total cycles (the reconciliation invariant);
    ``rollup()`` collapses per-shard waitees (``bfs.fetch@3``) into base
    stage names for readable reports.
    """

    rows: dict = field(default_factory=dict)   # waiter -> {waitee: cycles}

    def charge(self, waiter: str, waitee: str, cycles: float) -> None:
        if cycles <= 0.0:
            return
        row = self.rows.setdefault(waiter, {})
        row[waitee] = row.get(waitee, 0.0) + cycles

    def row_total(self, waiter: str) -> float:
        return sum(self.rows.get(waiter, {}).values())

    def total(self) -> float:
        return sum(self.row_total(waiter) for waiter in self.rows)

    def waitee_totals(self) -> dict:
        """Aggregate blame per waitee across all waiters, descending."""
        totals: dict = {}
        for row in self.rows.values():
            for waitee, cycles in row.items():
                totals[waitee] = totals.get(waitee, 0.0) + cycles
        return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))

    def rollup(self) -> "BlameMatrix":
        """Collapse per-shard waitee names to base stage names."""
        rolled = BlameMatrix()
        for waiter, row in self.rows.items():
            for waitee, cycles in row.items():
                rolled.charge(waiter, base_name(waitee), cycles)
        return rolled

    def as_dict(self) -> dict:
        return {waiter: {waitee: cycles
                         for waitee, cycles in sorted(row.items())}
                for waiter, row in sorted(self.rows.items())}


@dataclass(slots=True)
class _StallSpan:
    """One merged run of stalled cycles on a PE."""

    start: float
    end: float
    bucket: str
    queue: object      # str | None
    stage: object      # str | None


class WaitForProfiler(EventSink):
    """Event sink building per-PE stall timelines and the blame matrix.

    Subscribe with ``bus.subscribe(profiler, kinds=WaitForProfiler.
    KINDS)`` so the bus never constructs per-token events on the
    profiler's behalf. After the run, call :meth:`finalize` with the
    :class:`~repro.core.system.SimulationResult` (or the per-PE counters
    and final cycle of a truncated run) to reconcile events against
    counters and obtain the :class:`BlameMatrix`.
    """

    #: The only event kinds the profiler needs. ``pe.stall`` dominates.
    #: A stage switch emits five bus events (``stage.deactivate``,
    #: ``reconfig.begin``/``end``, ``sched.switch``, ``stage.
    #: activate``), but ``reconfig.begin`` determines them all: the
    #: deactivation lands on the same cycle and the activation exactly
    #: ``period`` later (:meth:`~repro.core.pe.PE._activate`). The
    #: profiler therefore derives stage spans from ``reconfig.begin``
    #: alone, cutting armed-profiler bus traffic by more than half.
    KINDS = ("pe.stall", "reconfig.begin", "drm.blocked")

    def __init__(self, topology: Topology):
        self.topology = topology
        # Per-PE timelines, keyed by integer PE id.
        self.stalls: dict = {}        # pe -> [_StallSpan] (merged)
        self.stage_spans: dict = {}   # pe -> [[start, end|None, stage]]
        self.reconfigs: dict = {}     # pe -> [(start, end, incoming stage)]
        self.drm_blocked: dict = {}   # (drm, queue) -> event count
        self._active: dict = {}       # pe -> stage name | None
        # Live DRM references (wired by repro.profiling.attach_profiler)
        # whose busy/miss-stall counters split DRM-limited waits into
        # engine time vs memory time at finalize.
        self.drms: list = []
        self.n_events = 0

    # -- ingest ------------------------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        self.n_events += 1
        kind = event.kind
        data = event.data
        if kind == "pe.stall":
            self._on_stall(event.cycle, data)
        elif kind == "reconfig.begin":
            # One event, three facts: the outgoing stage deactivates
            # now, the fabric reconfigures for ``period`` cycles, and
            # the incoming stage activates at ``cycle + period``.
            pe = data["pe"]
            stage = data["stage"]
            period = data.get("period", 0.0)
            spans = self.stage_spans.setdefault(pe, [])
            if spans and spans[-1][1] is None:
                spans[-1][1] = event.cycle
            spans.append([event.cycle + period, None, stage])
            self._active[pe] = stage
            if period > 0.0:
                self.reconfigs.setdefault(pe, []).append(
                    (event.cycle, event.cycle + period, stage))
        elif kind == "drm.blocked":
            key = (data["drm"], data.get("queue"))
            self.drm_blocked[key] = self.drm_blocked.get(key, 0) + 1

    def _on_stall(self, cycle: float, data: dict) -> None:
        pe = data["pe"]
        bucket = data["bucket"]
        queue = data.get("queue")
        # The naive engine emits one event per stalled cycle; the fast
        # engine one event per coalesced span (``cycles``). Merge
        # adjacent same-cause cycles so both engines build identical
        # span lists (the classification is constant mid-span).
        cycles = float(data.get("cycles", 1.0))
        stage = data.get("stage", self._active.get(pe))
        spans = self.stalls.setdefault(pe, [])
        if spans:
            last = spans[-1]
            if (last.bucket == bucket and last.queue == queue
                    and cycle <= last.end + _EPS):
                last.end = max(last.end, cycle) + cycles
                return
        spans.append(_StallSpan(cycle, cycle + cycles, bucket, queue, stage))

    # -- finalize ----------------------------------------------------------

    def close(self) -> None:
        """Close any stage spans left open (end-of-run or truncation)."""
        # The actual end cycle arrives in finalize(); leave ends as None
        # here and let finalize() clamp them.

    def finalize(self, pe_counters, total_cycles: float) -> "RunProfile":
        """Reconcile event splits against counters into a RunProfile.

        ``pe_counters`` is the per-PE ``Counters`` list (from a
        ``SimulationResult`` or a partially-run ``System``); event-
        derived queue-wait proportions scale to the counter totals so
        every row of the blame matrix sums to ``total_cycles`` exactly,
        even when the run was truncated mid-quantum.
        """
        for pe, spans in self.stage_spans.items():
            for span in spans:
                if span[1] is None:
                    span[1] = total_cycles
            # A reconfiguration still in flight at the end of the run
            # derives an activation beyond ``total_cycles``; drop such
            # never-realized (or zero-length) spans.
            self.stage_spans[pe] = [s for s in spans if s[1] > s[0] + _EPS]
        blame = BlameMatrix()
        for pe, counters in enumerate(pe_counters):
            waiter = f"pe{pe}"
            stack = cpi_stack(counters, total_cycles)
            blame.charge(waiter, COMPUTE, stack["issued"])
            blame.charge(waiter, MEMORY, stack["stall_mem"])
            blame.charge(waiter, RECONFIG, stack["reconfig"])
            blame.charge(waiter, IDLE, stack["idle"])
            # Split the queue bucket across blamed components in
            # proportion to the observed stall spans.
            weights: dict = {}
            for span in self.stalls.get(pe, ()):
                if span.bucket not in _QUEUE_BUCKETS:
                    continue
                blamees = self.topology.blamees_for_stall(span.bucket,
                                                          span.queue)
                share = (span.end - span.start) / len(blamees)
                for name in blamees:
                    weights[name] = weights.get(name, 0.0) + share
            total_queue = stack["queue"]
            observed = sum(weights.values())
            if total_queue > 0.0:
                if observed > 0.0:
                    scale = total_queue / observed
                    for name, weight in weights.items():
                        blame.charge(waiter, name, weight * scale)
                else:
                    # Armed too late / no events: keep the bucket total
                    # honest under an explicit unresolved column.
                    blame.charge(waiter, "(unresolved)", total_queue)
        fractions = self._drm_memory_fractions()
        # Drop the live DRM references: their stats are folded into
        # ``fractions`` and they hold unpicklable route closures, which
        # would keep profiles from crossing sweep process pools.
        self.drms = []
        return RunProfile(blame=blame, profiler=self,
                          cycles=total_cycles,
                          pe_counters=list(pe_counters),
                          drm_memory_fractions=fractions)

    def _drm_memory_fractions(self) -> dict:
        """Per-DRM fraction of busy time spent on memory miss stalls.

        Keyed by both the per-shard spec name and the base name (busy-
        weighted aggregate); the critical-path attribution uses this to
        split a DRM-limited wait into the DRM's issue engine vs the
        memory behind it, which is what makes memory what-ifs see
        through decoupled access streams.
        """
        fractions: dict = {}
        base_busy: dict = {}
        base_miss: dict = {}
        for drm in self.drms:
            busy = drm.busy_cycles
            name = drm.spec.name
            if busy > 0.0:
                fractions[name] = min(1.0, drm.miss_stall_cycles / busy)
            base = base_name(name)
            base_busy[base] = base_busy.get(base, 0.0) + busy
            base_miss[base] = (base_miss.get(base, 0.0)
                               + drm.miss_stall_cycles)
        for base, busy in base_busy.items():
            if base not in fractions and busy > 0.0:
                fractions[base] = min(1.0, base_miss[base] / busy)
        return fractions


@dataclass
class RunProfile:
    """Everything the profiler learned about one run."""

    blame: BlameMatrix
    profiler: WaitForProfiler
    cycles: float
    pe_counters: list
    # name -> fraction of that DRM's busy time that was memory stall.
    drm_memory_fractions: dict = field(default_factory=dict)

    def critical_path(self):
        """Extract (and cache) the critical path; see
        :mod:`repro.profiling.critical_path`."""
        if not hasattr(self, "_critical_path"):
            from repro.profiling.critical_path import extract_critical_path
            self._critical_path = extract_critical_path(self)
        return self._critical_path

    def as_dict(self) -> dict:
        """JSON-ready profile document (blame, path, DRM blocks)."""
        path = self.critical_path()
        return {
            "cycles": self.cycles,
            "blame_matrix": self.blame.as_dict(),
            "blame_rollup": self.blame.rollup().waitee_totals(),
            "critical_path": path.as_dict(),
            "drm_blocked_events": {
                f"{drm}->{queue}": count
                for (drm, queue), count in
                sorted(self.profiler.drm_blocked.items(),
                       key=lambda kv: str(kv[0]))},
        }
