"""Simulation-as-a-service: the async experiment server.

``ExperimentServer`` is a long-running asyncio server (stdlib only —
``asyncio.start_server`` with hand-rolled HTTP/1.0 framing) that turns
the harness into a shared, cached service:

* ``POST /submit`` — body is a JSON experiment spec
  (:mod:`repro.service.spec`). The response streams newline-delimited
  JSON events: ``queued`` → ``preparing``/``compiling``/``simulating``
  /``verifying`` → ``done`` (or ``error``). The ``done`` event carries
  the volatile-stripped run manifest, whether it was served from
  cache, the engine work counters, and the compute wall time.
* ``GET /cache/stats`` — result-store + artifact-cache + server
  counters; ``POST /cache/gc`` — drop cached results and stale
  artifact versions.
* ``GET /health`` — liveness and in-flight job count.

Identical specs are *deduplicated at every level*: a spec whose result
is already stored is served from disk without touching the pool; two
concurrent submissions of the same uncached spec share one simulation
(the second subscribes to the first's job and receives the same event
stream). Simulations run on a bounded ``ProcessPoolExecutor``; workers
report phase progress through per-job progress files the event loop
tails (:mod:`repro.service.worker`).

The byte-identity contract: the manifest served for a spec is the same
canonical bytes whether it was just computed, replayed from the result
store, or produced by ``run_experiment`` + ``canonical_json`` locally
— locked by the differential suite in ``tests/test_service.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Optional

from repro.service.spec import canonicalize_spec, spec_key
from repro.service.store import ResultStore
from repro.service.worker import execute_spec, init_worker

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}

#: Seconds between progress-file polls while a job simulates.
POLL_INTERVAL = 0.02


class _Job:
    """One in-flight simulation: a key plus its subscriber queues."""

    def __init__(self, key: str, canonical: dict):
        self.key = key
        self.canonical = canonical
        self.subscribers: list = []

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self.subscribers.append(queue)
        return queue

    def broadcast(self, event: dict) -> None:
        for queue in self.subscribers:
            queue.put_nowait(event)


class ExperimentServer:
    """Async experiment server over a result store and a process pool.

    ``workers`` bounds concurrent simulations (pool size and the
    admission semaphore). ``port=0`` binds an ephemeral port; read
    :attr:`port` after :meth:`start`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 cache_root=None, workers: int = 2,
                 poll_interval: float = POLL_INTERVAL):
        if cache_root is None:
            from repro.cache import default_cache_root
            cache_root = default_cache_root()
        self.host = host
        self.port = port
        self.cache_root = Path(cache_root)
        self.store = ResultStore(self.cache_root)
        self.workers = max(1, int(workers))
        self.poll_interval = poll_interval
        self.counters = {"submissions": 0, "result_hits": 0,
                         "result_misses": 0, "deduped": 0,
                         "simulations": 0, "errors": 0}
        self._jobs: dict = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._tasks: set = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        from repro.cache import configure_artifact_cache
        configure_artifact_cache(self.cache_root)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, initializer=init_worker,
            initargs=(str(self.cache_root),))
        self._semaphore = asyncio.Semaphore(self.workers)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        self._jobs.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- HTTP framing ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request_line = (await reader.readline()).decode(
                "latin-1").strip()
            if not request_line:
                return
            try:
                method, path, _version = request_line.split(" ", 2)
            except ValueError:
                await self._respond(writer, 400,
                                    {"error": "malformed request line"})
                return
            headers = {}
            while True:
                line = (await reader.readline()).decode("latin-1")
                if line in ("\r\n", "\n", ""):
                    break
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                body = await reader.readexactly(length)
            await self._route(writer, method.upper(), path, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, writer, status: int, document: dict) -> None:
        # One line so the client can parse every response body as
        # newline-delimited JSON, streaming or not.
        payload = (json.dumps(document, sort_keys=True)
                   + "\n").encode("utf-8")
        writer.write((
            f"HTTP/1.0 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    async def _route(self, writer, method: str, path: str,
                     body: bytes) -> None:
        if path == "/health" and method == "GET":
            await self._respond(writer, 200, {
                "status": "ok", "in_flight": len(self._jobs),
                "workers": self.workers})
        elif path == "/cache/stats" and method == "GET":
            await self._respond(writer, 200, self.cache_stats())
        elif path == "/cache/gc" and method == "POST":
            await self._respond(writer, 200, self.cache_gc())
        elif path == "/submit" and method == "POST":
            await self._handle_submit(writer, body)
        elif path in ("/health", "/cache/stats", "/cache/gc", "/submit"):
            await self._respond(writer, 405,
                                {"error": f"wrong method for {path}"})
        else:
            await self._respond(writer, 404, {"error": f"no route {path!r}"})

    # -- cache administration ----------------------------------------------

    def cache_stats(self) -> dict:
        from repro.cache import get_artifact_cache
        return {"results": self.store.stats(),
                "artifacts": get_artifact_cache().stats(),
                "server": dict(self.counters)}

    def cache_gc(self) -> dict:
        from repro.cache import get_artifact_cache
        return {"results": self.store.gc(),
                "artifacts": get_artifact_cache().gc()}

    # -- submission --------------------------------------------------------

    async def _handle_submit(self, writer, body: bytes) -> None:
        try:
            raw = json.loads(body.decode("utf-8"))
            canonical = canonicalize_spec(raw)
        except (ValueError, UnicodeDecodeError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        self.counters["submissions"] += 1
        key = await asyncio.get_running_loop().run_in_executor(
            None, spec_key, canonical)

        writer.write((
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n").encode("latin-1"))
        await writer.drain()

        cached = self.store.get(key)
        if cached is not None:
            self.counters["result_hits"] += 1
            await self._send_event(writer, {"event": "queued", "key": key,
                                            "deduped": False})
            await self._send_event(writer, self._done_event(
                key, cached, served_from_cache=True))
            return

        self.counters["result_misses"] += 1
        job = self._jobs.get(key)
        deduped = job is not None
        if deduped:
            self.counters["deduped"] += 1
        else:
            job = _Job(key, canonical)
            self._jobs[key] = job
            task = asyncio.get_running_loop().create_task(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        queue = job.subscribe()
        await self._send_event(writer, {"event": "queued", "key": key,
                                        "deduped": deduped})
        while True:
            event = await queue.get()
            await self._send_event(writer, event)
            if event["event"] in ("done", "error"):
                return

    async def _send_event(self, writer, event: dict) -> None:
        writer.write((json.dumps(event, sort_keys=True) + "\n")
                     .encode("utf-8"))
        await writer.drain()

    def _done_event(self, key: str, manifest_bytes: bytes,
                    served_from_cache: bool, engine_stats=None,
                    wall_time_s=None) -> dict:
        # The manifest travels as the parsed form of the *stored*
        # canonical bytes; re-serializing with canonical_json round-
        # trips to the identical bytes (floats included), which is the
        # byte-identity contract the differential tests pin down.
        return {"event": "done", "key": key,
                "served_from_cache": served_from_cache,
                "engine_stats": engine_stats,
                "wall_time_s": wall_time_s,
                "manifest": json.loads(manifest_bytes.decode("utf-8"))}

    async def _run_job(self, job: _Job) -> None:
        """Run one deduplicated simulation and broadcast its events."""
        loop = asyncio.get_running_loop()
        progress_dir = self.cache_root / "tmp"
        progress_dir.mkdir(parents=True, exist_ok=True)
        progress_path = progress_dir / f"{job.key}.progress"
        try:
            async with self._semaphore:
                self.counters["simulations"] += 1
                future = loop.run_in_executor(
                    self._pool, execute_spec, job.canonical,
                    str(progress_path))
                offset = 0
                while True:
                    done = future.done()
                    offset = self._pump_progress(job, progress_path, offset)
                    if done:
                        break
                    await asyncio.sleep(self.poll_interval)
                outcome = future.result()
        except asyncio.CancelledError:
            self._jobs.pop(job.key, None)
            job.broadcast({"event": "error", "key": job.key,
                           "error_type": "Cancelled",
                           "message": "server shutting down"})
            raise
        except Exception as exc:  # pool died, progress IO, ...
            self._jobs.pop(job.key, None)
            self.counters["errors"] += 1
            job.broadcast({"event": "error", "key": job.key,
                           "error_type": type(exc).__name__,
                           "message": str(exc)})
            return
        finally:
            try:
                progress_path.unlink()
            except OSError:
                pass
        if "error" in outcome:
            self._jobs.pop(job.key, None)
            self.counters["errors"] += 1
            job.broadcast({"event": "error", "key": job.key,
                           **outcome["error"]})
            return
        data = self.store.put(job.key, outcome["manifest"])
        # No awaits between store, job-table removal, and broadcast:
        # a submission arriving after this block sees the stored
        # result; one arriving before it sees the in-flight job.
        self._jobs.pop(job.key, None)
        job.broadcast(self._done_event(
            job.key, data, served_from_cache=False,
            engine_stats=outcome["engine_stats"],
            wall_time_s=outcome["wall_time_s"]))

    def _pump_progress(self, job: _Job, path: Path, offset: int) -> int:
        """Broadcast phase lines the worker appended since ``offset``."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                fh.seek(offset)
                chunk = fh.read()
                offset = fh.tell()
        except OSError:
            return offset
        for line in chunk.splitlines():
            phase = line.strip()
            if phase:
                job.broadcast({"event": "phase", "key": job.key,
                               "phase": phase})
        return offset


def run_server(host: str = "127.0.0.1", port: int = 8177,
               cache_root=None, workers: Optional[int] = None) -> None:
    """Blocking entry point for ``repro serve``."""
    server = ExperimentServer(
        host=host, port=port, cache_root=cache_root,
        workers=workers or max(1, (os.cpu_count() or 2) - 1))

    async def _main() -> None:
        await server.start()
        print(f"repro service listening on {server.host}:{server.port} "
              f"(cache: {server.cache_root}, workers: {server.workers})",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
