"""Tests for activation tracing, ASCII reporting, and the CLI."""

import json

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.cli import main as cli_main
from repro.datasets.graphs import power_law_graph
from repro.harness.report import bar_chart, speedup_bars, stacked_bars
from repro.stats.trace import ActivationTracer
from repro.workloads import bfs


@pytest.fixture(scope="module")
def traced_run():
    config = SystemConfig()
    graph = power_law_graph(300, 6.0, seed=21)
    program, _ = bfs.build(graph, config, "fifer")
    system = System(config, program, mode="fifer")
    tracer = ActivationTracer().attach(system)
    result = system.run()
    return tracer, result


class TestActivationTracer:
    def test_events_match_reconfig_counter(self, traced_run):
        tracer, result = traced_run
        # One trace event per activation (== reconfiguration events).
        assert len(tracer.events) == result.counters["reconfig_events"]

    def test_timelines_are_ordered(self, traced_run):
        tracer, result = traced_run
        for timeline in tracer.per_pe().values():
            starts = [event.start for event in timeline]
            assert starts == sorted(starts)

    def test_residences_cover_each_pe(self, traced_run):
        tracer, result = traced_run
        spans = tracer.residences(result.cycles)
        assert all(duration >= 0 for _, _, _, duration in spans)
        pes = {pe for pe, _, _, _ in spans}
        assert len(pes) == 16

    def test_stage_shares_sum_sensibly(self, traced_run):
        tracer, result = traced_run
        shares = tracer.stage_cycle_share(result.cycles)
        # Every stage of every shard appears: 4 stages x 16 shards.
        assert len(shares) == 64
        assert sum(shares.values()) <= result.cycles * 16 + 1e-6

    def test_gantt_renders(self, traced_run):
        tracer, result = traced_run
        chart = tracer.gantt(result.cycles, width=40, max_pes=4)
        lines = chart.splitlines()
        assert len(lines) == 5  # 4 PEs + legend
        assert lines[0].startswith("PE0")
        assert "legend:" in lines[-1]


class TestReport:
    def test_bar_chart(self):
        chart = bar_chart({"a": 1.0, "bb": 2.0}, width=10, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "##########" in lines[2]  # the max bar fills the width
        assert "2.00x" in lines[2]

    def test_bar_chart_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})

    def test_stacked_bars(self):
        stacks = {"S": {"x": 3.0, "y": 1.0}, "F": {"x": 1.0, "y": 1.0}}
        chart = stacked_bars(stacks, ("x", "y"), width=8)
        assert "legend:" in chart
        assert "#" in chart and "=" in chart

    def test_speedup_bars(self):
        chart = speedup_bars({"Hu": {"a": 1.0, "b": 2.0}}, ("a", "b"))
        assert "[Hu]" in chart


class TestCLI:
    def test_inputs_command(self, capsys):
        assert cli_main(["inputs"]) == 0
        out = capsys.readouterr().out
        assert "coAuthorsDBLP" in out
        assert "YCSB-C" in out

    def test_run_command(self, capsys):
        assert cli_main(["run", "bfs", "Hu", "--scale", "0.12",
                         "--system", "fifer"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "cycle breakdown" in out
        assert "energy breakdown" in out

    def test_compare_command(self, capsys):
        assert cli_main(["compare", "bfs", "Hu", "--scale", "0.12"]) == 0
        out = capsys.readouterr().out
        for system in ("serial", "multicore", "static", "fifer"):
            assert system in out

    def test_trace_command(self, capsys):
        assert cli_main(["trace", "bfs", "Hu", "--scale", "0.12",
                         "--pes", "2"]) == 0
        out = capsys.readouterr().out
        assert "PE0" in out and "legend:" in out

    def test_trace_chrome_format(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert cli_main(["trace", "bfs", "Hu", "--scale", "0.12",
                         "--format", "chrome", "--out", str(out)]) == 0
        assert "trace written" in capsys.readouterr().err
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        pe_tracks = {e["tid"] for e in events if e["ph"] == "X"}
        assert len(pe_tracks) >= 1
        counter_tracks = {e["name"] for e in events if e["ph"] == "C"}
        assert counter_tracks and all(n.startswith("queue ")
                                      for n in counter_tracks)

    def test_trace_jsonl_format(self, capsys):
        assert cli_main(["trace", "bfs", "Hu", "--scale", "0.12",
                         "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) > 100
        record = json.loads(lines[0])
        assert {"cycle", "seq", "kind", "source"} <= set(record)

    def test_stats_command(self, capsys):
        assert cli_main(["stats", "bfs", "Hu", "--scale", "0.12"]) == 0
        out = capsys.readouterr().out
        assert "cycle breakdown" in out
        assert "memory hierarchy" in out
        assert "avg residence" in out

    def test_stats_json_and_report(self, tmp_path, capsys):
        manifest_dir = tmp_path / "manifests"
        assert cli_main(["stats", "bfs", "Hu", "--scale", "0.12", "--json",
                         "--manifest-dir", str(manifest_dir)]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["app"] == "bfs" and manifest["cycles"] > 0
        assert cli_main(["stats", "bfs", "Hu", "--scale", "0.12",
                         "--system", "static",
                         "--manifest-dir", str(manifest_dir)]) == 0
        capsys.readouterr()
        assert cli_main(["report", str(manifest_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 runs" in out
        assert "bfs/Hu/fifer/decoupled" in out
        assert "bfs/Hu/static/decoupled" in out

    def test_report_rejects_empty_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["report", str(tmp_path)])

    def test_unknown_input_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "bfs", "XX"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "sorting", "Hu"])
