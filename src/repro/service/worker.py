"""Pool-worker entry point: run one canonical spec to a manifest.

Runs inside a ``ProcessPoolExecutor`` worker, so everything it returns
must pickle and everything it reports while running must cross a
process boundary. Progress crosses via a *progress file*: the worker
appends one phase name per line (``preparing``, ``compiling``,
``simulating``, ``verifying``) and the server's event loop tails the
file, turning new lines into streamed events. Exceptions are folded
into an error record instead of raised, so a poisoned spec reports
cleanly to its subscribers rather than surfacing as a bare
``BrokenProcessPool``.
"""

from __future__ import annotations

import os
import traceback
from typing import Optional


def init_worker(cache_root: str) -> None:
    """Pool initializer: point this worker's artifact cache at the
    server's cache root so compiled artifacts (kernel descriptions,
    fabric mappings) persist and are shared across workers."""
    os.environ["REPRO_CACHE_DIR"] = cache_root
    from repro.cache import configure_artifact_cache
    configure_artifact_cache(cache_root)


def _phase_reporter(progress_path: Optional[str]):
    if progress_path is None:
        return None

    def on_phase(phase: str) -> None:
        try:
            with open(progress_path, "a", encoding="utf-8") as fh:
                fh.write(phase + "\n")
                fh.flush()
        except OSError:
            pass  # progress is best-effort; the run itself must not die

    return on_phase


def execute_spec(canonical: dict,
                 progress_path: Optional[str] = None) -> dict:
    """Execute one canonical spec; return a picklable outcome dict.

    Success: ``{"manifest": <run manifest>, "engine_stats": {...},
    "wall_time_s": float}`` — the manifest is the same document the
    CLI path writes, so the server can store/serve byte-identical
    results. Failure: ``{"error": {"error_type", "message",
    "traceback"}}``.
    """
    from repro.service.spec import spec_point
    from repro.harness.sweep import run_point
    try:
        point = spec_point(canonical)
        result = run_point(point, on_phase=_phase_reporter(progress_path))
        return {
            "manifest": result.to_manifest(),
            "engine_stats": dict(getattr(result.raw, "engine_stats", {})),
            "wall_time_s": result.wall_time_s,
        }
    except Exception as exc:
        return {"error": {
            "error_type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }}
