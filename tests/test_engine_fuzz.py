"""Randomized differential testing of the simulation engines.

Hypothesis-style property fuzzing without the dependency: a seeded
generator draws random small :class:`SystemConfig` variations (queue
depths, PE counts, DRM issue/outstanding limits, memory latency and
bandwidth, quanta, scheduler policies, stage speed factors) crossed
with random dataset slices (app, input, scale, seed) and runs the same
experiment under every engine in :data:`repro.core.ENGINES`, each both
with the interpreted coroutine path and with compiled step-functions
(``codegen=True``; stage-speedup draws exercise fractional per-token
costs through the generated code). The
property is the differential contract of ``docs/performance.md``: all
engines produce the *identical* fingerprint — cycle count, per-PE
counters, CPI stacks, cache/memory statistics, per-queue totals, and
functional results — and interrupted runs (deadlock, timeout) raise
byte-identical reports.

On a failing seed the harness shrinks the case (smaller scale, fewer
PEs, default knobs) while it still fails, then persists the minimal
case under ``tests/regressions/`` so the failure replays forever:
``test_persisted_regressions`` re-runs every stored case on every
collection, and the stored JSON is small enough to commit next to the
fix.

Budget knobs (used by the CI ``engine-fuzz`` job):

* ``REPRO_FUZZ_SEEDS`` — number of random cases (default 10).
* ``REPRO_FUZZ_BASE``  — first seed (default 0), so shards can split
  the space.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np
import pytest

from repro.config import MemoryConfig, SystemConfig
from repro.core import ENGINES
from repro.harness import prepare_input, run_experiment

REGRESSION_DIR = pathlib.Path(__file__).parent / "regressions"
SEED_BUDGET = int(os.environ.get("REPRO_FUZZ_SEEDS", "10"))
BASE_SEED = int(os.environ.get("REPRO_FUZZ_BASE", "0"))

# (app, input) pool: all six paper workloads plus SSSP.
_APPS = (("bfs", "Hu"), ("cc", "Ci"), ("prd", "Hu"), ("radii", "In"),
         ("sssp", "Hu"), ("spmm", "GE"), ("silo", "YC"))

# Base stage names per app, for stage_speedup draws (fractional factors
# produce non-integral cycle costs, stressing the engines' debt and
# deferred-ledger arithmetic).
_STAGE_BASES = {
    "bfs": ("bfs.fetch", "bfs.enum", "bfs.update"),
    "cc": ("cc.fetch", "cc.enum", "cc.update"),
    "prd": ("prd.fetch", "prd.enum", "prd.update"),
    "radii": ("radii.fetch", "radii.enum", "radii.update"),
    "sssp": ("sssp.fetch", "sssp.enum", "sssp.update"),
    "spmm": ("spmm.stream_a", "spmm.intersect", "spmm.accumulate"),
    "silo": ("silo.traverse", "silo.leaf", "silo.query"),
}


def generate_case(rng) -> dict:
    """Draw one random experiment: dataset slice x system configuration."""
    app, code = _APPS[rng.randrange(len(_APPS))]
    config = {
        "n_pes": rng.choice([4, 8, 16]),
        "queue_mem_bytes": rng.choice([512, 1024, 4096, 16384]),
        "drm_max_outstanding": rng.choice([1, 2, 8, 16]),
        "drm_issue_width": rng.choice([1, 2, 4]),
        "memory": {"latency": rng.choice([20, 120, 400]),
                   "bandwidth_bytes_per_cycle": rng.choice([16.0, 128.0])},
        "llc_latency": rng.choice([20, 40]),
        "quantum": rng.choice([16, 33, 64, 100]),
        "deadlock_quanta": rng.choice([50, 200]),
        "scheduler_policy": rng.choice(["most-work", "round-robin"]),
        "double_buffered": rng.random() < 0.7,
        "zero_cost_reconfig": rng.random() < 0.2,
        "max_simd_replication": rng.choice([None, 1, 2]),
    }
    if rng.random() < 0.5:
        bases = _STAGE_BASES[app]
        config["stage_speedup"] = [
            [rng.choice(bases), rng.choice([0.6, 1.5, 1.7, 2.0, 3.0])]]
    return {
        "app": app,
        "code": code,
        "mode": rng.choice(["fifer", "static"]),
        "scale": rng.choice([0.02, 0.04, 0.06]),
        "seed": rng.choice([1, 2, 3]),
        "max_cycles": rng.choice([5_000, 20_000]),
        "config": config,
    }


def _build_config(spec: dict) -> SystemConfig:
    kwargs = dict(spec)
    if "memory" in kwargs:
        kwargs["memory"] = MemoryConfig(**kwargs["memory"])
    if "stage_speedup" in kwargs:
        kwargs["stage_speedup"] = tuple(
            (name, factor) for name, factor in kwargs["stage_speedup"])
    return SystemConfig(**kwargs)


def _canon(value):
    """Canonicalize a functional result for exact comparison."""
    if isinstance(value, dict):
        return tuple(sorted((k, _canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, np.ndarray):
        return (value.dtype.str, value.shape, value.tobytes())
    return value


def run_fingerprint(case: dict, engine: str, prepared=None,
                    codegen: bool = False):
    """Run one engine; return its complete observable fingerprint.

    A mid-flight exception *is* the fingerprint for truncated runs: the
    type name plus the full report (cycle count, per-stage blocked
    reasons, queue occupancies) must match byte for byte across
    engines.
    """
    if prepared is None:
        prepared = prepare_input(case["app"], case["code"],
                                 scale=case["scale"], seed=case["seed"])
    config = _build_config(case["config"])
    try:
        res = run_experiment(case["app"], case["code"], case["mode"],
                             prepared=prepared, config=config,
                             engine=engine, max_cycles=case["max_cycles"],
                             codegen=codegen, check=False)
    except Exception as exc:  # deadlock/timeout/config rejection
        return ("raise", type(exc).__name__, str(exc))
    raw = res.raw
    return (
        raw.cycles,
        tuple(_canon(c.as_dict()) for c in raw.pe_counters),
        tuple(_canon(s) for s in raw.cpi_stacks()),
        tuple(_canon(s) for s in raw.l1_stats),
        _canon(raw.llc_stats),
        _canon(raw.mem_stats),
        _canon(raw.result),
    )


def case_fails(case: dict) -> dict | None:
    """Run engines x codegen; return {label: fingerprint} on mismatch.

    The property crosses every engine with both execution paths
    (interpreted coroutines and compiled step-functions): all six
    fingerprints must be identical, including on truncated runs, where
    a codegen stage's ``stage.pending`` request must clamp exactly
    like the interpreter's.
    """
    prepared = prepare_input(case["app"], case["code"],
                             scale=case["scale"], seed=case["seed"])
    prints = {f"{engine}/{label}": run_fingerprint(
                  case, engine, prepared=prepared, codegen=codegen)
              for engine in ENGINES
              for label, codegen in (("interp", False), ("codegen", True))}
    reference = prints["naive/interp"]
    if all(fp == reference for fp in prints.values()):
        return None
    return prints


def shrink_case(case: dict) -> dict:
    """Greedily simplify a failing case while it still fails.

    Each step proposes a strictly simpler variant (smaller slice,
    fewer PEs, one knob back to its default); a variant is kept only
    if the engines still disagree on it.
    """
    default = SystemConfig()

    def variants(current):
        if current["scale"] > 0.02:
            yield {**current, "scale": 0.02}
        if current["config"].get("n_pes", 16) > 4:
            yield {**current,
                   "config": {**current["config"], "n_pes": 4}}
        if current["mode"] != "fifer":
            yield {**current, "mode": "fifer"}
        for knob in list(current["config"]):
            if knob == "n_pes":
                continue
            simpler = dict(current["config"])
            if knob in ("memory", "stage_speedup"):
                simpler.pop(knob)
            else:
                if simpler[knob] == getattr(default, knob):
                    continue
                simpler[knob] = getattr(default, knob)
            yield {**current, "config": simpler}

    current = case
    improved = True
    while improved:
        improved = False
        for candidate in variants(current):
            if case_fails(candidate) is not None:
                current = candidate
                improved = True
                break
    return current


def _persist_regression(seed: int, case: dict, prints: dict) -> pathlib.Path:
    REGRESSION_DIR.mkdir(exist_ok=True)
    path = REGRESSION_DIR / f"engine_fuzz_{seed}.json"
    mismatch = {engine: repr(fp)[:2000] for engine, fp in prints.items()}
    path.write_text(json.dumps(
        {"seed": seed, "case": case, "mismatch": mismatch}, indent=2)
        + "\n")
    return path


@pytest.mark.parametrize("seed", range(BASE_SEED, BASE_SEED + SEED_BUDGET))
def test_random_configs_engines_identical(seed):
    import random
    rng = random.Random(seed)
    case = generate_case(rng)
    prints = case_fails(case)
    if prints is None:
        return
    minimal = shrink_case(case)
    minimal_prints = case_fails(minimal) or prints
    path = _persist_regression(seed, minimal, minimal_prints)
    engines = sorted(minimal_prints)
    pytest.fail(
        f"engines disagree on seed {seed} (shrunk case persisted to "
        f"{path}):\n  case: {minimal}\n  " + "\n  ".join(
            f"{e}: {repr(minimal_prints[e])[:400]}" for e in engines))


def _persisted_cases():
    if not REGRESSION_DIR.is_dir():
        return []
    return sorted(REGRESSION_DIR.glob("engine_fuzz_*.json"))


@pytest.mark.parametrize(
    "path", _persisted_cases() or [None],
    ids=lambda p: p.name if p else "none")
def test_persisted_regressions(path):
    """Every previously failing (now fixed) case replays identically."""
    if path is None:
        pytest.skip("no persisted engine-fuzz regressions")
    case = json.loads(path.read_text())["case"]
    prints = case_fails(case)
    assert prints is None, (
        f"persisted regression {path.name} reproduces an engine "
        f"mismatch:\n" + "\n".join(
            f"{e}: {repr(fp)[:400]}" for e, fp in sorted(prints.items())))
