"""Service-cache benchmark: cold vs warm submit, compile-cache reuse.

Quantifies what the experiment service's two cache layers buy:

* **result cache** — one spec submitted to a live in-process server
  twice; the cold submission simulates, the warm one replays stored
  canonical bytes. Reports both latencies and the speedup.
* **artifact cache** — a kernel compiled against a cold and a warm
  :class:`repro.cache.ArtifactCache` (split analysis skipped on the
  warm pass), and a stage DFG mapped cold/warm through
  :func:`repro.cgra.map_dfg_cached`.

The warm/cold ratios are host-independent enough to eyeball; the
absolute times are provenance for the emitted block. Manifests for the
submitted points land under ``results/manifests/`` so ``repro
bench-diff`` can gate the simulated cycles like any other benchmark.
"""

from __future__ import annotations

import asyncio
import json
import shutil
import threading
import time

from bench_common import (ALL_APPS, ENGINE, MANIFEST_DIR, RESULTS_DIR,
                          SCALE_MULT, app_inputs, emit)
from repro.cache import ArtifactCache
from repro.cgra import FabricSpec, map_dfg_cached
from repro.config import FabricConfig
from repro.frontend.kernels import bfs_kernel
from repro.frontend.lower import compile_kernel
from repro.harness import format_table, merge_sweep_manifests
from repro.harness.run import GRAPH_APPS, default_scale
from repro.ir import DFGBuilder
from repro.service import ExperimentServer, ServiceClient
from repro.stats.manifest import write_manifest


def _bench_spec() -> dict:
    app = next((a for a in ALL_APPS if a in GRAPH_APPS), ALL_APPS[0])
    code = app_inputs(app)[0]
    # Half the default scale: the point of this benchmark is cache
    # behavior, not simulation fidelity.
    return {"app": app, "input_code": code, "system": "fifer",
            "scale": round(default_scale(app, code) * SCALE_MULT * 0.5, 6),
            "engine": ENGINE}


def _submit_timings(spec: dict, cache_root) -> dict:
    """Cold and warm submit latency against a live server."""
    server = ExperimentServer(cache_root=cache_root, port=0, workers=2)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=lambda: (asyncio.set_event_loop(loop), loop.run_forever()),
        daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=60)
    client = ServiceClient(port=server.port, timeout=600)
    try:
        t0 = time.perf_counter()
        cold = client.submit(spec)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = client.submit(spec)
        warm_s = time.perf_counter() - t0
        assert not cold.served_from_cache and warm.served_from_cache
        assert cold.manifest_bytes == warm.manifest_bytes
        return {"cold_s": cold_s, "warm_s": warm_s,
                "compute_s": cold.wall_time_s,
                "manifest": cold.manifest}
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(
            timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


def _stage_dfg():
    b = DFGBuilder("enumerate")
    element = b.deq("q_start")
    end = b.deq("q_end")
    addr = b.lea(b.const(0x1000), element)
    b.enq("q_ngh", b.load(addr))
    b.lt(b.add(element, b.const(1)), end)
    return b.finish()


def _compile_timings() -> dict:
    """Split-analysis and fabric-mapping reuse through the cache."""
    cache = ArtifactCache()
    t0 = time.perf_counter()
    compile_kernel(bfs_kernel(), cache=cache)
    compile_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    compile_kernel(bfs_kernel(), cache=cache)
    compile_warm_s = time.perf_counter() - t0
    assert cache.counters["split_plan.hit"] == 1

    fabric = FabricSpec.from_config(FabricConfig())
    dfg = _stage_dfg()
    t0 = time.perf_counter()
    map_dfg_cached(dfg, fabric, cache=cache)
    map_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    map_dfg_cached(dfg, fabric, cache=cache)
    map_warm_s = time.perf_counter() - t0
    assert cache.counters["mapping.hit"] == 1
    return {"compile_cold_s": compile_cold_s,
            "compile_warm_s": compile_warm_s,
            "map_cold_s": map_cold_s, "map_warm_s": map_warm_s}


def run_service_cache() -> None:
    spec = _bench_spec()
    cache_root = RESULTS_DIR / "service-cache"
    shutil.rmtree(cache_root, ignore_errors=True)

    submit = _submit_timings(spec, cache_root)
    compile_t = _compile_timings()

    MANIFEST_DIR.mkdir(parents=True, exist_ok=True)
    write_manifest(submit["manifest"], MANIFEST_DIR)
    merged = merge_sweep_manifests([submit["manifest"]])
    (MANIFEST_DIR / "sweep.json").write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n")

    def _x(cold, warm):
        return f"{cold / warm:,.0f}x" if warm > 0 else "-"

    rows = [
        ["result cache (submit)", f"{submit['cold_s'] * 1e3:,.1f}",
         f"{submit['warm_s'] * 1e3:,.1f}",
         _x(submit["cold_s"], submit["warm_s"])],
        ["split analysis (compile)", f"{compile_t['compile_cold_s'] * 1e3:,.1f}",
         f"{compile_t['compile_warm_s'] * 1e3:,.1f}",
         _x(compile_t["compile_cold_s"], compile_t["compile_warm_s"])],
        ["fabric mapping", f"{compile_t['map_cold_s'] * 1e3:,.1f}",
         f"{compile_t['map_warm_s'] * 1e3:,.1f}",
         _x(compile_t["map_cold_s"], compile_t["map_warm_s"])],
    ]
    label = f"{spec['app']}/{spec['input_code']} ({spec['engine']} engine)"
    text = format_table(
        ["layer", "cold (ms)", "warm (ms)", "speedup"], rows,
        title=f"service cache: cold vs warm, {label}; cold submit "
              f"includes {submit['compute_s']:.2f}s of simulation")
    emit("service_cache", text)


if __name__ == "__main__":
    run_service_cache()
