"""Decoupled reference machines (DRMs), paper Sec. 5.4.

A DRM is a small finite state machine that performs memory accesses on
the PE's behalf: the fabric enqueues addresses into the DRM's input
queue, the DRM performs the loads (overlapping misses out of order, up
to ``max_outstanding``), and places results in-order into an output
queue for the consumer stage. DRMs are configured once at
initialization and keep working regardless of which stage is currently
scheduled on the PE.

Modes (paper Sec. 5.4):

* **dereference** — input operands are addresses whose memory values are
  enqueued to the output. Extensions used by our pipelines: a token may
  carry ``width`` consecutive addresses (a multi-word dereference, e.g.
  ``offsets[v]``/``offsets[v+1]``) and an opaque *payload* tag that rides
  along to the output (as Pipette's reference accelerators do), and the
  output queue may be selected per-token from address/payload bits
  (``route``), implementing the owner-sharded cross-PE hop of Sec. 5.6.
* **scanning** — a token gives a ``(start_addr, end_addr)`` range to
  fetch sequentially and enqueue.
* **strided** — a token gives ``(start_addr, count, stride_bytes)``;
  the DRM fetches ``count`` elements ``stride_bytes`` apart, traversing
  arrays of structs. (The paper notes this mode "could be easily added";
  its benchmarks did not need it, but the mode is implemented here as
  the suggested extension.)

Control values pass through DRMs in order; a routing DRM broadcasts each
control value to every possible destination so iteration boundaries
reach all consumers (Sec. 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.memory.cache import Cache
from repro.memory.memmap import MemoryMap
from repro.queues.queue import Queue


@dataclass(frozen=True)
class DRMSpec:
    """Configuration of one DRM (fixed at program initialization)."""

    name: str
    mode: str                       # "deref" or "scan"
    in_queue: str
    out_queue: Optional[str] = None
    route: Optional[Callable] = None      # (values, payload) -> queue name
    route_targets: tuple = ()             # all queues `route` may select
    width: int = 1                        # addresses per deref token
    payload: bool = False                 # tokens carry a tag-along payload

    def __post_init__(self):
        if self.mode not in ("deref", "scan", "strided"):
            raise ValueError(f"DRM {self.name!r}: unknown mode {self.mode!r}")
        if (self.out_queue is None) == (self.route is None):
            raise ValueError(
                f"DRM {self.name!r}: exactly one of out_queue/route required")
        if self.route is not None and not self.route_targets:
            raise ValueError(
                f"DRM {self.name!r}: route requires route_targets")


class DRM:
    """Runtime state of one decoupled reference machine."""

    def __init__(self, spec: DRMSpec, pe_id: int, in_q: Queue,
                 out_queues: dict, l1: Cache, memmap: MemoryMap,
                 max_outstanding: int, l1_latency: int,
                 issue_width: int = 1):
        self.spec = spec
        self.pe_id = pe_id
        self.in_q = in_q
        self.out_queues = out_queues  # name -> Queue, for all targets
        self.l1 = l1
        self.memmap = memmap
        self.max_outstanding = max_outstanding
        self.l1_latency = l1_latency
        self.issue_width = issue_width
        # DRM spec names are unique per shard by construction.
        self.producer_key = spec.name
        # Scanning/strided-mode cursor (persists across quanta and
        # stage switches).
        self._scan_addr: Optional[int] = None
        self._scan_end: int = 0
        self._scan_elem_bytes: int = 8
        self._scan_stride: int = 8
        self._scan_remaining: int = 0
        # Statistics.
        self.loads = 0
        self.miss_stall_cycles = 0.0
        self.busy_cycles = 0.0
        # Optional telemetry Probe (repro.stats.telemetry).
        self.probe = None

    def _targets(self) -> Sequence[str]:
        if self.spec.route is not None:
            return self.spec.route_targets
        return (self.spec.out_queue,)

    def _access_cost(self, addrs) -> float:
        """One issue slot of throughput plus amortized miss stall.

        ``issue_width`` accesses issue per cycle (banked L1 ports feeding
        SIMD-replicated consumers); misses overlap out of order up to
        ``max_outstanding``, so a stream of misses costs the miss latency
        divided by the outstanding-access window.
        """
        worst = 0.0
        for addr in addrs:
            worst = max(worst, self.l1.access(addr))
            self.loads += 1
        extra = max(0.0, worst - self.l1_latency) / self.max_outstanding
        self.miss_stall_cycles += extra
        return 1.0 / self.issue_width + extra

    def _step_scan(self) -> Optional[float]:
        out = self.out_queues[self.spec.out_queue]
        if not out.can_enq(self.producer_key):
            return None
        cost = self._access_cost((self._scan_addr,))
        out.enq(self.memmap.read(self._scan_addr), producer=self.producer_key)
        if self.spec.mode == "strided":
            self._scan_addr += self._scan_stride
            self._scan_remaining -= 1
            if self._scan_remaining <= 0:
                self._scan_addr = None
        else:
            self._scan_addr += self._scan_elem_bytes
            if self._scan_addr >= self._scan_end:
                self._scan_addr = None
        return cost

    def _step_control(self, token) -> Optional[float]:
        targets = [self.out_queues[name] for name in self._targets()]
        if not all(t.can_enq(self.producer_key, is_control=True)
                   for t in targets):
            return None
        self.in_q.deq()
        for target in targets:
            target.enq(token.value, is_control=True,
                       producer=self.producer_key)
        return 1.0

    def _step_deref(self, token) -> Optional[float]:
        value = token.value
        if self.spec.width > 1 or self.spec.payload:
            parts = tuple(value)
        else:
            parts = (value,)
        addrs = parts[:self.spec.width]
        payload = parts[self.spec.width:] if self.spec.payload else ()
        loaded = tuple(self.memmap.read(a) for a in addrs)
        if self.spec.route is not None:
            out_name = self.spec.route(loaded, payload)
        else:
            out_name = self.spec.out_queue
        out = self.out_queues[out_name]
        if not out.can_enq(self.producer_key):
            return None
        cost = self._access_cost(addrs)
        if len(loaded) == 1 and not self.spec.payload:
            result = loaded[0]
        else:
            result = loaded + payload
        self.in_q.deq()
        out.enq(result, producer=self.producer_key)
        return cost

    def run(self, budget: float) -> float:
        """Advance the DRM for up to ``budget`` cycles; returns cycles used."""
        spent = 0.0
        while spent < budget:
            if self._scan_addr is not None:
                cost = self._step_scan()
            elif not self.in_q.can_deq():
                break
            else:
                token = self.in_q.peek()
                if token.is_control:
                    cost = self._step_control(token)
                elif self.spec.mode == "scan":
                    start, end = token.value
                    self.in_q.deq()
                    self._scan_addr = start if start < end else None
                    self._scan_end = end
                    if start < end:
                        self._scan_elem_bytes = self.memmap.elem_bytes_at(start)
                    cost = 1.0
                elif self.spec.mode == "strided":
                    start, count, stride = token.value
                    self.in_q.deq()
                    self._scan_addr = start if count > 0 else None
                    self._scan_remaining = int(count)
                    self._scan_stride = int(stride)
                    cost = 1.0
                else:
                    cost = self._step_deref(token)
            if cost is None:  # blocked on a full output queue
                if self.probe is not None and self.probe.bus.sinks:
                    self.probe.emit("drm.blocked", drm=self.spec.name,
                                    pe=self.pe_id)
                break
            spent += cost
        self.busy_cycles += spent
        return spent
