"""Content-addressed caches for compiled artifacts and results.

Fifer's compile path (annotated kernel → split plan → per-stage DFGs →
fabric mappings) is deterministic and pure, so every product is
reusable once it is keyed by content. This package provides:

* :mod:`repro.cache.content` — the content-addressing primitives
  (code version, dataset digests, kernel fingerprints, mapping keys);
* :mod:`repro.cache.artifacts` — the two-layer (memory + disk)
  :class:`ArtifactCache` with per-kind hit/miss counters.

The experiment *result* store (manifests keyed by
:func:`repro.stats.manifest.manifest_key`) lives with its only
consumer in :mod:`repro.service.store`; both stores share one cache
root (``REPRO_CACHE_DIR`` or ``~/.cache/repro``).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.cache.artifacts import (ArtifactCache, configure_artifact_cache,
                                   get_artifact_cache)
from repro.cache.content import (callable_fingerprint, code_version,
                                 dataset_digest, kernel_fingerprint,
                                 mapping_key, sha256_text)


def default_cache_root() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro"


__all__ = [
    "ArtifactCache", "configure_artifact_cache", "get_artifact_cache",
    "callable_fingerprint", "code_version", "dataset_digest",
    "kernel_fingerprint", "mapping_key", "sha256_text",
    "default_cache_root",
]
