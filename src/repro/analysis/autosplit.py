"""Auto-decoupling: infer load-split points from the dependence graph.

The annotated-kernel front-end (paper Sec. 4) trusts the author's
``load()`` markings. This module removes that trust: given a kernel
with *no* markings (every access written with
:meth:`~repro.frontend.kernel.GraphKernel.access`, or stripped with
:func:`~repro.analysis.depgraph.strip_annotations`), it

1. builds the whole-kernel dependence graph
   (:mod:`repro.analysis.depgraph`);
2. runs discopop-style pattern detectors over it — indirect-load
   chains, per-vertex maps, guarded reductions, owner-write conflicts —
   so every candidate cut point is identified structurally, not just
   the author-marked ones;
3. prices each candidate with a cost model fed by the front-end's own
   liveness-derived channel widths
   (:func:`repro.frontend.split.channel_widths`) and the memory-model
   latencies, and ranks them;
4. applies the top-ranked decision by rebuilding the kernel with the
   inferred markings (:func:`apply_split`) and lowering it through the
   *unchanged* existing pipeline — so the result is provably
   bit-identical to hand annotation whenever the decisions agree
   (:func:`apply_and_verify` checks kernel fingerprints, compile
   descriptions, and the deadlock certificate).

Exactness argument: the decision space is small and the skeleton is
rigid. Every array access is a latency boundary the 4-stage skeleton
*must* decouple (the split analysis rejects any unmarked residue), so
"which accesses to cut" has exactly one feasible answer — all of
them — and the only real choice is *which* access is owner-routed.
The owner-write-conflict detector pins that choice: the store that
writes a mutable array at an indirectly-loaded index can only execute
on the index's owner shard, so the load feeding the update of the same
array at the same index must be the routed one. The cost model agrees
(that load sits at the deepest cut, behind the most main-memory
latency per edge), so ranking and feasibility coincide — which is why
the inferred decision reproduces the hand markings exactly on every
registered kernel, a property the test suite asserts.

Everything here imports the front-end lazily: ``repro.frontend``
imports :mod:`repro.analysis.graph` during its own initialization, so
a module-level back-import would see a partially-initialized package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.depgraph import (Access, DependenceGraph,
                                     _index_loads, build_dependence_graph,
                                     clone_kernel, strip_annotations)

#: Candidate roles, from shallowest to deepest cut.
ROLES = ("csr-bounds", "vertex-fetch", "edge-enumerate", "edge-fetch",
         "owner-fetch")

#: Detector kinds, in report order.
PATTERN_KINDS = ("indirect-load-chain", "vertex-map", "reduction",
                 "owner-write-conflict")


class AutosplitError(Exception):
    """The kernel's dependence graph defeats split inference."""


@dataclass(frozen=True)
class PatternMatch:
    """One detector hit: a named structure in the dependence graph."""

    kind: str           # one of PATTERN_KINDS
    nodes: tuple        # node keys, producer-first
    detail: str

    def as_dict(self) -> dict:
        return {"kind": self.kind, "nodes": list(self.nodes),
                "detail": self.detail}


@dataclass(frozen=True)
class CutCandidate:
    """One rankable cut point: an access the pipeline could split at."""

    node: str
    label: str
    ref: str
    index_class: str
    depth: int
    role: str           # one of ROLES
    owner: bool         # would this cut be owner-routed?
    score: float
    rationale: str

    def as_dict(self) -> dict:
        return {"node": self.node, "label": self.label, "ref": self.ref,
                "index_class": self.index_class, "depth": self.depth,
                "role": self.role, "owner": self.owner,
                "score": round(self.score, 3),
                "rationale": self.rationale}


class SplitCostModel:
    """Price a cut candidate: hidden latency minus queue occupancy.

    *Benefit*: the latency a decoupled stage hides — main-memory
    latency for indirect accesses (they miss), LLC latency for affine
    streams — times the trip weight (1 per vertex, ``avg_degree`` per
    edge-loop access).

    *Cost*: the words the cut's tokens occupy on the skeleton channel
    that carries them, taken from the front-end's liveness-derived
    :func:`~repro.frontend.split.channel_widths` — the *same* helper
    the split analysis uses to size the queues, so the analyzer and
    the compiler price a cut identically. The owner cut pays both the
    request (``val``) and the cross-shard routed (``inbox``) channels.
    """

    #: Which skeleton channel a cut at each role occupies.
    ROLE_CHANNELS = {
        "csr-bounds": ("off",),
        "vertex-fetch": ("off",),
        "edge-enumerate": ("ngh",),
        "edge-fetch": ("ngh",),
        "owner-fetch": ("val", "inbox"),
    }

    def __init__(self, config=None, avg_degree: float = 8.0):
        if config is None:
            from repro.config import SystemConfig
            config = SystemConfig()
        self.config = config
        self.avg_degree = float(avg_degree)

    def latency(self, access: Access) -> float:
        if access.index_class == "indirect":
            return float(self.config.memory.latency)
        return float(self.config.llc_latency)

    def trips(self, access: Access) -> float:
        return self.avg_degree if access.in_edge_loop else 1.0

    def queue_words(self, role: str, widths: dict) -> float:
        return float(sum(widths[ch] for ch in self.ROLE_CHANNELS[role]))

    def score(self, access: Access, role: str, widths: dict) -> float:
        return (self.latency(access) * self.trips(access)
                - self.queue_words(role, widths))


@dataclass
class SplitAdvice:
    """The analyzer's full answer for one kernel."""

    kernel: str
    patterns: list = field(default_factory=list)
    candidates: list = field(default_factory=list)   # ranked, best first
    decision: dict = field(default_factory=dict)     # vid -> {cut, owner}
    owner_node: Optional[str] = None
    hand_marked: Optional[dict] = None               # vid -> {cut, owner}
    matches_hand_marked: Optional[bool] = None
    notes: list = field(default_factory=list)

    def compare_to(self, kernel) -> None:
        """Record the hand markings of ``kernel`` and compare.

        ``kernel`` must be structurally identical to the analyzed one
        (e.g. its un-stripped original): value ids line up by
        construction of :func:`~repro.analysis.depgraph.clone_kernel`.
        """
        hand = {v.vid: {"cut": bool(v.attr.marked),
                        "owner": bool(v.attr.owner)}
                for v in kernel.values if v.op == "load"}
        if not any(entry["cut"] for entry in hand.values()):
            self.hand_marked = None
            self.matches_hand_marked = None
            return
        self.hand_marked = hand
        self.matches_hand_marked = self.decision == hand

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "patterns": [p.as_dict() for p in self.patterns],
            "candidates": [c.as_dict() for c in self.candidates],
            "decision": {str(vid): dict(entry)
                         for vid, entry in sorted(self.decision.items())},
            "owner_node": self.owner_node,
            "matches_hand_marked": self.matches_hand_marked,
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"{self.kernel}: {len(self.candidates)} candidate cut "
                 f"point(s), {len(self.patterns)} pattern match(es)"]
        for pattern in self.patterns:
            lines.append(f"  pattern {pattern.kind}: {pattern.detail}")
        for rank, cand in enumerate(self.candidates, start=1):
            owner = " [owner-routed]" if cand.owner else ""
            lines.append(
                f"  #{rank} {cand.label} — {cand.role}, "
                f"{cand.index_class}, depth {cand.depth}, "
                f"score {cand.score:.1f}{owner}")
            lines.append(f"      {cand.rationale}")
        if self.matches_hand_marked is not None:
            verdict = ("matches" if self.matches_hand_marked
                       else "DIFFERS FROM")
            lines.append(f"  decision {verdict} the hand-marked split")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


# -- pattern detectors -----------------------------------------------------

def _preds_load_of(dg: DependenceGraph, stmt, ref) -> Optional[str]:
    """A load of ``ref`` inside the statement's predicates, if any."""

    def find(expr):
        if expr.op == "load" and expr.attr.ref is ref:
            return expr
        if expr.op == "edge":
            return None
        for arg in expr.args:
            got = find(arg)
            if got is not None:
                return got
        return None

    for pred in stmt.preds:
        got = find(pred)
        if got is not None:
            return f"v{got.vid}"
    return None


def detect_patterns(dg: DependenceGraph) -> list:
    """Run every detector over the dependence graph."""
    matches: list = []

    for chain in dg.indirect_chains():
        labels = " -> ".join(dg.value(n).label for n in chain)
        matches.append(PatternMatch(
            "indirect-load-chain", tuple(chain),
            f"{len(chain)}-deep load chain ({labels}); every link is a "
            f"latency boundary a decoupled stage can hide"))

    vertex_maps = [a for a in dg.loads()
                   if a.depth == 1 and a.index_class == "affine"]
    if vertex_maps:
        matches.append(PatternMatch(
            "vertex-map", tuple(a.node for a in vertex_maps),
            f"{len(vertex_maps)} per-vertex affine fetch(es) "
            f"({', '.join(a.ref for a in vertex_maps)}); streamable at "
            f"the fringe stage"))

    for access in dg.stores():
        stmt = dg.statement(access.node)
        guard = _preds_load_of(dg, stmt, stmt.ref)
        if guard is not None:
            matches.append(PatternMatch(
                "reduction", (guard, access.node),
                f"store to {access.ref!r} guarded by a compare against "
                f"the current value ({dg.value(guard).label}): a "
                f"monotone reduction update, safe to re-check at the "
                f"owner"))

    for access in dg.stores():
        if access.index_class != "indirect" or not access.mutable_ref:
            continue
        stmt = dg.statement(access.node)
        feeders = [f"v{l.vid}" for l in _index_loads(stmt.index)]
        same_ref = [a for a in dg.loads()
                    if a.ref == access.ref
                    and dg.value(a.node).args[0].vid == stmt.index.vid]
        matches.append(PatternMatch(
            "owner-write-conflict",
            tuple(feeders + [a.node for a in same_ref] + [access.node]),
            f"{stmt.label} writes {access.ref!r} at an indirectly-loaded "
            f"index: the update must execute on the index's owner shard, "
            f"so the read of {access.ref!r} feeding it must be "
            f"owner-routed"))

    return matches


# -- inference -------------------------------------------------------------

def _role_of(dg: DependenceGraph, access: Access, owner_nodes: set) -> str:
    kernel = dg.kernel
    ref = dg.value(access.node).attr.ref
    if ref is kernel.offsets:
        return "csr-bounds"
    if ref is kernel.neighbors:
        return "edge-enumerate"
    if access.node in owner_nodes:
        return "owner-fetch"
    if access.depth <= 1:
        return "vertex-fetch"
    return "edge-fetch"


def infer_split(kernel, config=None,
                avg_degree: float = 8.0) -> SplitAdvice:
    """Infer the split decision for ``kernel`` from its dependence graph.

    Never reads the kernel's own ``marked``/``owner`` flags except to
    report the final comparison — inference on a hand-marked kernel
    and on its :func:`~repro.analysis.depgraph.strip_annotations` copy
    is identical by construction (the suite asserts it).
    """
    dg = build_dependence_graph(kernel)
    advice = SplitAdvice(kernel=kernel.name)
    advice.patterns = detect_patterns(dg)

    loads = dg.loads()
    if not loads:
        raise AutosplitError(
            f"kernel {kernel.name!r} performs no array accesses; there "
            f"is nothing to decouple")

    # The owner choice comes from the owner-write-conflict detector:
    # the load of the written array at the written index.
    owner_nodes: set = set()
    for match in advice.patterns:
        if match.kind != "owner-write-conflict":
            continue
        store_node = match.nodes[-1]
        for node in match.nodes[:-1]:
            access = dg.access_for(node)
            if (access is not None and access.mode == "load"
                    and access.ref == dg.access_for(store_node).ref):
                owner_nodes.add(node)
    if not owner_nodes:
        raise AutosplitError(
            f"kernel {kernel.name!r}: no owner-write conflict found — no "
            f"store writes a mutable array at an indirectly-loaded "
            f"index, so there is no cross-shard access to route")

    roles = {a.node: _role_of(dg, a, owner_nodes) for a in loads}
    n_vertex = sum(1 for a in loads if roles[a.node] == "vertex-fetch")
    n_edge = sum(1 for a in loads if roles[a.node] == "edge-fetch")

    from repro.frontend.split import channel_widths  # lazy: see module doc
    widths = channel_widths(n_vertex, 1 + n_edge)
    model = SplitCostModel(config, avg_degree=avg_degree)

    candidates = []
    for access in loads:
        role = roles[access.node]
        owner = access.node in owner_nodes
        score = model.score(access, role, widths)
        rationale = (
            f"hides {model.latency(access):.0f} cycles x "
            f"{model.trips(access):.0f} trip(s) for "
            f"{model.queue_words(role, widths):.0f} queue word(s) on "
            f"{'+'.join(model.ROLE_CHANNELS[role])}")
        candidates.append(CutCandidate(
            node=access.node, label=dg.value(access.node).label,
            ref=access.ref, index_class=access.index_class,
            depth=access.depth, role=role, owner=owner, score=score,
            rationale=rationale))
    candidates.sort(key=lambda c: (-c.score, c.node))
    advice.candidates = candidates

    # Decision: the skeleton requires every access decoupled (the split
    # analysis rejects unmarked residue), so every candidate is cut;
    # the top-ranked owner-fetch candidate is routed.
    owner_ranked = [c for c in candidates if c.role == "owner-fetch"]
    if len(owner_nodes) > 1:
        advice.notes.append(
            f"{len(owner_nodes)} owner candidates; picked the "
            f"top-ranked ({owner_ranked[0].label})")
    owner_node = owner_ranked[0].node
    advice.owner_node = owner_node
    advice.decision = {
        int(c.node[1:]): {"cut": True, "owner": c.node == owner_node}
        for c in candidates}
    advice.compare_to(kernel)
    return advice


def advise_kernel(kernel, config=None,
                  avg_degree: float = 8.0) -> SplitAdvice:
    """Strip ``kernel``'s markings, infer, compare against the original.

    The entry point behind ``repro advise``: inference provably runs on
    an annotation-free dependence graph, and the advice records whether
    the inferred decision reproduces the author's hand markings.
    """
    advice = infer_split(strip_annotations(kernel), config=config,
                         avg_degree=avg_degree)
    advice.compare_to(kernel)
    return advice


# -- application and the bit-identity proof --------------------------------

def apply_split(kernel, advice: Optional[SplitAdvice] = None,
                config=None):
    """Rebuild ``kernel`` with the (inferred) decision as markings."""
    if advice is None:
        advice = infer_split(kernel, config=config)
    return clone_kernel(
        kernel,
        owner_by_vid={vid: entry["owner"]
                      for vid, entry in advice.decision.items()},
        marked_by_vid={vid: entry["cut"]
                       for vid, entry in advice.decision.items()})


def apply_and_verify(kernel, config=None,
                     avg_degree: float = 8.0) -> dict:
    """Strip, infer, apply, lower — and prove equivalence end to end.

    Returns the ``--apply`` manifest: the inferred decision, the kernel
    fingerprints of the hand-marked original and the auto-split result
    (equal iff the decisions agree — the fingerprint covers every
    owner/marked flag), digests of both compile descriptions (stage
    DFGs, queue widths, per-stage assembly), the deadlock-certifier
    verdict on the auto-split pipeline, and a per-stage dataflow
    summary from the DFG dependence queries.
    """
    import json as _json

    from repro.cache import kernel_fingerprint, sha256_text
    from repro.config import SystemConfig
    from repro.frontend.lower import _demo_graph, compile_kernel

    if config is None:
        config = SystemConfig()

    advice = advise_kernel(kernel, config=config, avg_degree=avg_degree)
    applied = apply_split(strip_annotations(kernel), advice)

    fp_hand = kernel_fingerprint(kernel)
    fp_auto = kernel_fingerprint(applied)

    pipeline = compile_kernel(applied)
    description = pipeline.describe()
    hand_description = compile_kernel(kernel).describe()

    def digest(document: dict) -> str:
        return sha256_text(_json.dumps(document, sort_keys=True))

    from repro.analysis.verify import analyze_program
    program, workload = pipeline.build(_demo_graph(), config, "fifer",
                                       "decoupled")
    report = analyze_program(program, config, "fifer")

    builders = (("S0:fringe", workload._s0_dfg), ("S1:enum", workload._s1_dfg),
                ("S2:fetch", workload._s2_dfg), ("S3:update", workload._s3_dfg))
    stage_dataflow = []
    for name, builder in builders:
        dfg = builder(0)
        edges = list(dfg.iter_dependence_edges())
        stage_dataflow.append({
            "stage": name,
            "nodes": len(dfg.nodes),
            "dependence_edges": len(edges),
            "reg_carried_edges": sum(1 for _, _, kind in edges
                                     if kind == "reg-carried"),
            "max_fanout": max((len(v) for v in dfg.consumers().values()),
                              default=0),
            "longest_chain": dfg.longest_dependence_chain(),
        })

    return {
        "kernel": kernel.name,
        "advice": advice.as_dict(),
        "fingerprints": {
            "hand_marked": fp_hand,
            "auto_split": fp_auto,
            "equal": fp_hand == fp_auto,
        },
        "describe": {
            "hand_marked": digest(hand_description),
            "auto_split": digest(description),
            "equal": digest(hand_description) == digest(description),
        },
        "lint": {
            "ok": report.ok,
            "errors": [f.as_dict() for f in report.errors],
            "certified": report.certificate is not None,
        },
        "split": description["split"],
        "queues": description["queues"],
        "stage_dataflow": stage_dataflow,
    }
