#!/usr/bin/env python3
"""Building a custom pipeline with the public API.

This example constructs a new irregular application from scratch — a
gather-and-histogram kernel (for each index i in a stream, fetch
``values[indices[i]]`` and add it into one of 16 histogram bins) —
following the paper's recipe (Sec. 4/5):

1. split the program at every long-latency load: one stage generates
   gather addresses (fed by a scanning DRM over the index stream), a
   dereference DRM performs the irregular gather, and a second stage
   accumulates into the histogram;
2. describe each stage's datapath as a dataflow graph (for the mapping:
   pipeline depth, SIMD replication, configuration size);
3. write the stage semantics as coroutines over queues;
4. time-multiplex both stages on a single Fifer PE.

Run:  python examples/custom_pipeline.py
"""

import numpy as np

from repro import (DRMSpec, PEProgram, Program, StageSpec, System,
                   SystemConfig, STOP_VALUE)
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec

N_BINS = 16


def build_program(indices, values):
    space = AddressSpace()
    memmap = MemoryMap()
    idx_ref = space.alloc_array("indices", len(indices))
    val_ref = space.alloc_array("values", len(values))
    memmap.register(idx_ref, indices)
    memmap.register(val_ref, values)
    histogram = np.zeros(N_BINS, dtype=np.int64)
    hist_ref = space.alloc_array("histogram", N_BINS)
    memmap.register(hist_ref, histogram)

    # Stage 1: generate gather addresses from streamed indices.
    b = DFGBuilder("gather.addr")
    index = b.deq("gather.idx_out")
    base = b.const(val_ref.base)
    addr = b.lea(base, index)
    b.enq("gather.val_in", addr)
    b.enq("gather.idx_in", index)
    addr_dfg = b.finish()

    def addr_semantics(ctx):
        start = idx_ref.addr(0)
        yield from ctx.enq("gather.idx_in", (start, start + len(indices) * 8))
        for _ in range(len(indices)):
            token = yield from ctx.deq("gather.idx_out")
            yield from ctx.enq("gather.val_in",
                               (val_ref.addr(int(token.value)),
                                int(token.value)))
        yield from ctx.enq("gather.val_in", STOP_VALUE, is_control=True)

    # Stage 2: accumulate gathered values into bins.
    b = DFGBuilder("gather.accumulate")
    token = b.deq("gather.val_out")
    index = b.ctrl(token)
    mask = b.const(N_BINS - 1)
    bin_id = b.and_(index, mask)
    hist_base = b.const(hist_ref.base)
    slot = b.lea(hist_base, bin_id)
    old = b.load(slot)
    b.store(slot, b.add(old, token))
    acc_dfg = b.finish()

    def acc_semantics(ctx):
        while True:
            token = yield from ctx.deq("gather.val_out")
            if token.is_control:
                return
            value, index = token.value
            bin_id = int(index) % N_BINS
            histogram[bin_id] += int(value)
            yield from ctx.load(hist_ref.addr(bin_id))
            yield from ctx.store(hist_ref.addr(bin_id))

    pe0 = PEProgram(
        shard=0,
        queue_specs=[
            QueueSpec("gather.idx_in", entry_words=2),
            QueueSpec("gather.idx_out"),
            QueueSpec("gather.val_in", entry_words=2, weight=2.0),
            QueueSpec("gather.val_out", entry_words=2, weight=2.0),
        ],
        stage_specs=[
            StageSpec("gather.addr", addr_dfg, addr_semantics),
            StageSpec("gather.accumulate", acc_dfg, acc_semantics),
        ],
        drm_specs=[
            DRMSpec("gather.drm_idx", "scan",
                    in_queue="gather.idx_in", out_queue="gather.idx_out"),
            DRMSpec("gather.drm_val", "deref",
                    in_queue="gather.val_in", out_queue="gather.val_out",
                    payload=True),
        ],
    )
    program = Program("gather-histogram", [pe0], space, memmap,
                      result_fn=lambda: histogram.copy())
    return program


def main():
    rng = np.random.default_rng(3)
    n = 20_000
    values = rng.integers(0, 1000, size=n).astype(np.int64)
    indices = rng.integers(0, n, size=8_000).astype(np.int64)

    golden = np.zeros(N_BINS, dtype=np.int64)
    for i in indices:
        golden[int(i) % N_BINS] += int(values[i])

    config = SystemConfig(n_pes=1)
    program = build_program(indices, values)
    result = System(config, program, mode="fifer").run()
    assert np.array_equal(result.result, golden), "histogram mismatch!"

    print(f"gather-histogram over {len(indices)} irregular gathers: "
          f"{result.cycles:,.0f} cycles on one Fifer PE (verified)")
    print(f"stage residence: {result.avg_residence_cycles:.0f} cycles, "
          f"reconfiguration: {result.avg_reconfig_cycles:.1f} cycles")
    mapping = result.mappings["gather.addr"]
    print(f"address stage mapping: {mapping.n_levels} levels, "
          f"{mapping.replication}x SIMD replication, "
          f"{mapping.config_bytes}-byte configuration")
    print("histogram:", result.result.tolist())


if __name__ == "__main__":
    main()
