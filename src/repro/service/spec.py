"""Experiment specs: the service's wire format and cache identity.

A *spec* is a JSON object naming one experiment in the same shape as
:class:`~repro.harness.sweep.SweepPoint` / the keyword arguments of
:func:`~repro.harness.run.run_experiment`::

    {"app": "bfs", "input_code": "Hu", "system": "fifer",
     "variant": "decoupled", "seed": 1, "engine": "fast",
     "config": {"n_pes": 8}}

:func:`canonicalize_spec` validates a raw spec and normalizes it to a
*canonical* form where every defaultable field is resolved to its
concrete value — ``scale`` to the app/input default, ``config``
expanded to the full :class:`~repro.config.SystemConfig` field dict —
so any two specs describing the same experiment canonicalize to the
same document and therefore share one cache key. :func:`spec_key`
hashes the canonical spec together with the code version and the
dataset digest (:mod:`repro.cache.content`), making the result cache
self-invalidating across code or generator changes.
"""

from __future__ import annotations

import dataclasses

from repro.config import CacheConfig, FabricConfig, MemoryConfig, SystemConfig
from repro.harness.run import APP_INPUTS, SYSTEMS, default_scale
from repro.harness.sweep import SweepPoint
from repro.stats.manifest import manifest_key


class SpecError(ValueError):
    """A submitted spec is malformed; the message says which field."""


#: Fields a raw spec may carry (SweepPoint coordinates).
SPEC_FIELDS = ("app", "input_code", "system", "variant", "scale", "seed",
               "engine", "max_cycles", "check", "config")

_NESTED_CONFIG = {"fabric": FabricConfig, "l1": CacheConfig,
                  "memory": MemoryConfig}


def config_from_dict(overrides) -> SystemConfig:
    """Build a :class:`SystemConfig` from a (possibly partial) dict.

    Accepts both sparse overrides (``{"n_pes": 8}``) and the full
    ``dataclasses.asdict`` form a canonical spec carries — including
    after a JSON round-trip, so nested sections arrive as dicts and
    ``stage_speedup`` as a list of lists.
    """
    if isinstance(overrides, SystemConfig):
        return overrides
    if not overrides:
        return SystemConfig()
    if not isinstance(overrides, dict):
        raise SpecError(f"config must be an object, got "
                        f"{type(overrides).__name__}")
    valid = {f.name: f for f in dataclasses.fields(SystemConfig)}
    kwargs = {}
    for name, value in overrides.items():
        if name not in valid:
            raise SpecError(
                f"unknown config field {name!r} (valid: "
                f"{', '.join(sorted(valid))})")
        if name in _NESTED_CONFIG and isinstance(value, dict):
            try:
                value = _NESTED_CONFIG[name](**value)
            except TypeError as exc:
                raise SpecError(f"config.{name}: {exc}") from None
        elif name == "stage_speedup":
            try:
                value = tuple((str(n), float(f)) for n, f in value)
            except (TypeError, ValueError) as exc:
                raise SpecError(
                    f"config.stage_speedup must be [[name, factor], ...]: "
                    f"{exc}") from None
        kwargs[name] = value
    try:
        return SystemConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"invalid config: {exc}") from None


def canonicalize_spec(raw: dict) -> dict:
    """Validate ``raw`` and return the canonical spec document.

    The canonical form is deterministic and fully resolved: it is what
    :func:`spec_key` hashes and what the server hands to the pool
    worker, so every downstream consumer sees the same experiment no
    matter how sparsely the client wrote it.
    """
    if not isinstance(raw, dict):
        raise SpecError(f"spec must be a JSON object, got "
                        f"{type(raw).__name__}")
    unknown = sorted(set(raw) - set(SPEC_FIELDS))
    if unknown:
        raise SpecError(f"unknown spec field(s): {', '.join(unknown)} "
                        f"(valid: {', '.join(SPEC_FIELDS)})")
    for required in ("app", "input_code", "system"):
        if required not in raw:
            raise SpecError(f"spec is missing required field {required!r}")
    app = str(raw["app"])
    if app not in APP_INPUTS:
        raise SpecError(f"unknown app {app!r} (have: "
                        f"{', '.join(sorted(APP_INPUTS))})")
    input_code = str(raw["input_code"])
    if input_code not in APP_INPUTS[app]:
        raise SpecError(f"unknown input {input_code!r} for app {app!r} "
                        f"(have: {', '.join(APP_INPUTS[app])})")
    system = str(raw["system"])
    if system not in SYSTEMS:
        raise SpecError(f"unknown system {system!r} (have: "
                        f"{', '.join(SYSTEMS)})")
    from repro.core import ENGINES
    engine = str(raw.get("engine", "fast"))
    if engine not in ENGINES:
        raise SpecError(f"unknown engine {engine!r} (have: "
                        f"{', '.join(sorted(ENGINES))})")
    try:
        scale = (float(raw["scale"]) if raw.get("scale") is not None
                 else default_scale(app, input_code))
        seed = int(raw.get("seed", 1))
        max_cycles = float(raw.get("max_cycles", 2e9))
    except (TypeError, ValueError) as exc:
        raise SpecError(f"invalid numeric spec field: {exc}") from None
    if scale <= 0:
        raise SpecError(f"scale must be positive, got {scale}")
    config = config_from_dict(raw.get("config"))
    return {
        "app": app,
        "input_code": input_code,
        "system": system,
        "variant": str(raw.get("variant", "decoupled")),
        "scale": scale,
        "seed": seed,
        "engine": engine,
        "max_cycles": max_cycles,
        "check": bool(raw.get("check", True)),
        "config": dataclasses.asdict(config),
    }


def spec_key(canonical: dict) -> str:
    """Result-cache key of one canonical spec.

    Folds in the code version (any source change invalidates every
    cached result) and the dataset digest (generator code + input
    coordinates) so a stale result can never be served — invalidation
    by construction, no TTLs.
    """
    from repro.cache import code_version, dataset_digest
    extra = {
        "code": code_version(),
        "dataset": dataset_digest(canonical["app"], canonical["input_code"],
                                  canonical["scale"], canonical["seed"]),
    }
    return manifest_key(canonical, extra=extra)


def spec_point(canonical: dict) -> SweepPoint:
    """The :class:`SweepPoint` a canonical spec describes."""
    return SweepPoint(
        app=canonical["app"], input_code=canonical["input_code"],
        system=canonical["system"], variant=canonical["variant"],
        scale=canonical["scale"], seed=canonical["seed"],
        engine=canonical["engine"], config=config_from_dict(
            canonical["config"]),
        max_cycles=canonical["max_cycles"], check=canonical["check"])
