"""The compiled-artifact cache: content addressing, reuse, invalidation.

Locks the tentpole properties of :mod:`repro.cache`:

* a repeat compile of an unchanged kernel performs **no split
  analysis** and a repeat mapping of an unchanged DFG performs **no
  placement** (hit counters plus raising stubs prove it);
* any observable edit to a kernel — constant, predicate, init
  function — changes its fingerprint, so the cache misses instead of
  serving a stale plan;
* the disk layer survives process boundaries (modeled as fresh cache
  instances), tolerates corruption, and namespaces by code version.
"""

import numpy as np
import pytest

from repro.cache import (ArtifactCache, callable_fingerprint,
                         code_version, dataset_digest, kernel_fingerprint,
                         mapping_key)
from repro.cgra import FabricSpec, map_dfg, map_dfg_cached
from repro.config import FabricConfig
from repro.frontend.kernel import GraphKernel
from repro.frontend.kernels import bfs_kernel, cc_kernel, sssp_kernel
from repro.frontend.lower import compile_kernel
from repro.ir import DFGBuilder


def _fabric():
    return FabricSpec.from_config(FabricConfig())


def _dfg(base=0x1000):
    b = DFGBuilder("enumerate")
    e = b.deq("q_start")
    end = b.deq("q_end")
    addr = b.lea(b.const(base), e)
    b.enq("q_ngh", b.load(addr))
    b.lt(b.add(e, b.const(1)), end)
    return b.finish()


# -- content addressing ----------------------------------------------------


class TestFingerprints:
    def test_kernel_fingerprint_stable_across_builds(self):
        for factory in (bfs_kernel, cc_kernel, sssp_kernel):
            assert (kernel_fingerprint(factory())
                    == kernel_fingerprint(factory())), factory.__name__

    def test_distinct_kernels_distinct_fingerprints(self):
        prints = {kernel_fingerprint(f())
                  for f in (bfs_kernel, cc_kernel, sssp_kernel)}
        assert len(prints) == 3

    def test_editing_a_constant_changes_the_fingerprint(self):
        def variant(threshold):
            k = GraphKernel("bfs")
            k.param("source", 0)
            dist = k.state("distances", init=lambda g, p: np.full(
                g.n_vertices, -1, dtype=np.int64), output=True)
            k.start_from("source", "source")
            v = k.vertex()
            start = k.load(k.offsets, v)
            end = k.load(k.offsets, v + 1)
            with k.edges(start, end) as e:
                ngh = k.load(k.neighbors, e)
                dv = k.load(dist, ngh, owner=True)
                with k.when(dv < threshold):
                    k.store(dist, ngh, k.epoch())
                    k.push(ngh)
            return k

        assert (kernel_fingerprint(variant(0))
                != kernel_fingerprint(variant(1)))

    def test_editing_an_init_function_changes_the_fingerprint(self):
        def variant(fill):
            k = GraphKernel("bfs")

            def init(graph, params):
                return np.full(graph.n_vertices, fill, dtype=np.int64)

            k.state("distances", init=init, output=True)
            k.start_from("all")
            v = k.vertex()
            k.load(k.offsets, v)
            return k

        assert kernel_fingerprint(variant(-1)) != kernel_fingerprint(
            variant(-2))

    def test_callable_fingerprint_sees_closures(self):
        def make(n):
            def fn(x):
                return x + n
            return fn

        assert callable_fingerprint(make(1)) != callable_fingerprint(make(2))
        assert callable_fingerprint(make(3)) == callable_fingerprint(make(3))
        assert callable_fingerprint(None) is None

    def test_mapping_key_tracks_dfg_and_fabric(self):
        fabric = _fabric()
        assert (mapping_key(_dfg(), fabric, None)
                == mapping_key(_dfg(), fabric, None))
        assert (mapping_key(_dfg(0x1000), fabric, None)
                != mapping_key(_dfg(0x2000), fabric, None))
        small = FabricSpec.from_config(FabricConfig(cols=8))
        assert (mapping_key(_dfg(), fabric, None)
                != mapping_key(_dfg(), small, None))
        assert (mapping_key(_dfg(), fabric, 2)
                != mapping_key(_dfg(), fabric, None))

    def test_dataset_digest_tracks_coordinates(self):
        base = dataset_digest("bfs", "Hu", 0.35, 1)
        assert base == dataset_digest("bfs", "Hu", 0.35, 1)
        assert base != dataset_digest("bfs", "Hu", 0.35, 2)
        assert base != dataset_digest("bfs", "Hu", 0.36, 1)
        assert base != dataset_digest("bfs", "Dy", 0.35, 1)
        assert base != dataset_digest("cc", "Hu", 0.35, 1)

    def test_code_version_is_stable_hex(self):
        assert code_version() == code_version()
        assert len(code_version()) == 64


# -- the two-layer store ---------------------------------------------------


class TestArtifactCache:
    def test_memory_roundtrip_and_counters(self):
        cache = ArtifactCache()
        assert cache.get("split_plan", "aa" * 32) is None
        cache.put("split_plan", "aa" * 32, {"plan": 1})
        assert cache.get("split_plan", "aa" * 32) == {"plan": 1}
        assert cache.counters == {"split_plan.miss": 1,
                                  "split_plan.store": 1,
                                  "split_plan.hit": 1}

    def test_disk_layer_survives_process_boundary(self, tmp_path):
        key = "bb" * 32
        first = ArtifactCache(root=tmp_path)
        first.put("describe", key, {"stages": [1, 2]})
        # a new instance models a fresh process: memory empty, disk warm
        second = ArtifactCache(root=tmp_path)
        assert second.get("describe", key) == {"stages": [1, 2]}
        assert second.counters["describe.disk_hit"] == 1
        # and the entry was promoted into memory
        assert second.get("describe", key) == {"stages": [1, 2]}
        assert second.counters["describe.hit"] == 2
        assert second.counters["describe.disk_hit"] == 1

    def test_split_plans_are_memory_only(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.put("split_plan", "cc" * 32, object())
        fresh = ArtifactCache(root=tmp_path)
        assert fresh.get("split_plan", "cc" * 32) is None

    def test_corrupt_disk_entry_is_a_miss_and_removed(self, tmp_path):
        key = "dd" * 32
        cache = ArtifactCache(root=tmp_path)
        cache.put("describe", key, {"ok": True})
        path = cache._disk_path("describe", key)
        path.write_bytes(b"{truncated")
        fresh = ArtifactCache(root=tmp_path)
        assert fresh.get("describe", key) is None
        assert fresh.counters["describe.disk_read_error"] == 1
        assert not path.exists()

    def test_gc_prunes_stale_code_versions(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.put("describe", "ee" * 32, {"v": 1})
        stale = tmp_path / "artifacts" / ("0" * 16)
        stale.mkdir(parents=True)
        (stale / "junk.json").write_text("{}")
        stats = cache.stats()
        assert stats["disk"]["stale_versions"] == 1
        removed = cache.gc()
        assert removed["removed_dirs"] == 1
        assert cache.stats()["disk"]["stale_versions"] == 0
        assert cache.get("describe", "ee" * 32) == {"v": 1}
        removed = cache.gc(all_versions=True)
        assert removed["removed_dirs"] == 1
        assert ArtifactCache(root=tmp_path).get("describe",
                                                "ee" * 32) is None


# -- reuse oracles: no re-analysis, no re-mapping --------------------------


class TestCompileReuse:
    def test_repeat_compile_performs_no_split_analysis(self, monkeypatch):
        cache = ArtifactCache()
        compile_kernel(bfs_kernel(), cache=cache)
        assert cache.counters == {"split_plan.miss": 1,
                                  "split_plan.store": 1}

        # Stronger than counters: re-analysis would have to call
        # analyze(), which we now make explosive.
        def boom(kernel):
            raise AssertionError("split analysis ran on a warm cache")

        monkeypatch.setattr("repro.frontend.lower.analyze", boom)
        pipeline = compile_kernel(bfs_kernel(), cache=cache)
        assert cache.counters["split_plan.hit"] == 1
        assert pipeline.describe()["feed_forward"] is True

    def test_edited_kernel_reanalyzes(self):
        cache = ArtifactCache()
        compile_kernel(bfs_kernel(), cache=cache)
        compile_kernel(cc_kernel(), cache=cache)
        assert cache.counters["split_plan.miss"] == 2
        assert "split_plan.hit" not in cache.counters

    def test_repeat_mapping_performs_no_placement(self, monkeypatch):
        cache = ArtifactCache()
        fabric = _fabric()
        first = map_dfg_cached(_dfg(), fabric, cache=cache)
        assert cache.counters == {"mapping.miss": 1, "mapping.store": 1}

        def boom(dfg, fabric, max_replication=None):
            raise AssertionError("placement ran on a warm cache")

        monkeypatch.setattr("repro.cgra.mapper.map_dfg", boom)
        second = map_dfg_cached(_dfg(), fabric, cache=cache)
        assert cache.counters["mapping.hit"] == 1
        assert second is first

    def test_mapping_cache_distinguishes_replication_caps(self):
        cache = ArtifactCache()
        fabric = _fabric()
        map_dfg_cached(_dfg(), fabric, cache=cache)
        map_dfg_cached(_dfg(), fabric, max_replication=1, cache=cache)
        assert cache.counters["mapping.miss"] == 2

    def test_cached_mapping_equals_uncached(self):
        cache = ArtifactCache()
        fabric = _fabric()
        cached = map_dfg_cached(_dfg(), fabric, cache=cache)
        direct = map_dfg(_dfg(), fabric)
        assert cached.render() == direct.render()

    def test_mapping_persists_across_processes(self, tmp_path):
        fabric = _fabric()
        first = ArtifactCache(root=tmp_path)
        map_dfg_cached(_dfg(), fabric, cache=first)
        fresh = ArtifactCache(root=tmp_path)
        map_dfg_cached(_dfg(), fabric, cache=fresh)
        assert fresh.counters["mapping.disk_hit"] == 1


class TestDescribeCached:
    def test_describe_cached_matches_direct(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.cache import configure_artifact_cache
        from repro.frontend import describe_cached, get_frontend
        cache = configure_artifact_cache(tmp_path)
        try:
            direct = get_frontend("sssp").describe()
            assert describe_cached("sssp") == direct
            assert cache.counters["describe.miss"] == 1
            assert describe_cached("sssp") == direct
            assert cache.counters["describe.hit"] == 1
            # fresh process: served from disk as JSON
            fresh = configure_artifact_cache(tmp_path)
            assert describe_cached("sssp") == direct
            assert fresh.counters["describe.disk_hit"] == 1
        finally:
            configure_artifact_cache(None)
