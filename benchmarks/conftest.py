"""Make the shared benchmark helpers importable and configure pytest."""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
