"""Table 5: average residence time and reconfiguration period.

The paper reports, per application, the average time a configuration
resides on a PE and the time needed to complete a reconfiguration:

    app     BFS   CC    PRD   Radii  SpMM  Silo   Mean
    resid.  140   279   927   564    30    1490   448
    reconf. 12.5  13.9  20.4  27.7   12.6  60.1   19.7

Expected shape: SpMM has by far the shortest residences (it switches
constantly at the end of every short merge-intersection); reconfig
periods are tens of cycles, an order of magnitude below residences.
Quadrupling queue storage lengthens residences (~3x in the paper).
"""

from bench_common import (ALL_APPS, REPRESENTATIVE, emit, experiment, point,
                          prefetch)
from repro.harness import format_table

_PAPER = {"bfs": (140, 12.5), "cc": (279, 13.9), "prd": (927, 20.4),
          "radii": (564, 27.7), "spmm": (30, 12.6), "silo": (1490, 60.1)}


def run_table5():
    prefetch(point(app, REPRESENTATIVE[app], "fifer", queue_scale=scale)
             for app in ALL_APPS for scale in (1.0, 4.0))
    rows = []
    residences = {}
    for app in ALL_APPS:
        code = REPRESENTATIVE[app]
        raw = experiment(app, code, "fifer").raw
        big = experiment(app, code, "fifer", queue_scale=4.0).raw
        paper_res, paper_rcfg = _PAPER[app]
        rows.append([app, paper_res, f"{raw.avg_residence_cycles:.0f}",
                     paper_rcfg, f"{raw.avg_reconfig_cycles:.1f}",
                     f"{big.avg_residence_cycles:.0f}"])
        residences[app] = (raw.avg_residence_cycles,
                           raw.avg_reconfig_cycles,
                           big.avg_residence_cycles)
    table = format_table(
        ["app", "paper resid.", "measured resid.", "paper reconf.",
         "measured reconf.", "resid. @4x queues"],
        rows,
        title="Table 5: average residence time / reconfiguration period "
              "(cycles)")
    emit("table5_residence", table)
    return residences


def test_table5_residence(benchmark):
    residences = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    # The paper's extremes reproduce: SpMM has the shortest residences
    # (constant switching at pair ends) and Silo the longest (pipelined
    # lookups keep its stages fed).
    by_residence = sorted(residences, key=lambda app: residences[app][0])
    assert by_residence[0] == "spmm"
    assert by_residence[-1] == "silo"
    # Reconfiguration periods are tens of cycles, well below residences
    # (the absolute residences are scale-dependent; see EXPERIMENTS.md).
    for app, (resid, reconf, big) in residences.items():
        assert 2.0 < reconf < 200.0
        assert resid > reconf
    # Larger queues lengthen residences (paper Sec. 8.3).
    longer = sum(big > resid for resid, _, big in residences.values())
    assert longer >= 4
