"""Dataflow graphs (DFGs) for pipeline stages.

A DFG is a directed graph of :class:`Node` operations. Forward edges
carry operands between functional units; back-edges are only allowed
into ``REG`` nodes (loop-carried state). ``levels()`` computes an ASAP
levelization ignoring register back-edges, which the mapper uses for
row-by-row placement and to derive the configuration's pipeline depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.ops import Op, OpKind, OP_INFO


class DFGError(Exception):
    """Structural problem in a dataflow graph."""


@dataclass
class Node:
    """One operation in a DFG."""

    node_id: int
    op: Op
    operands: tuple = ()

    @property
    def kind(self) -> OpKind:
        return self.op.kind

    def __hash__(self) -> int:
        return self.node_id

    def __repr__(self) -> str:
        ops = ",".join(f"n{o.node_id}" for o in self.operands)
        return f"n{self.node_id}={self.op}({ops})"


@dataclass
class DataflowGraph:
    """A stage's computation as a feed-forward graph of FU operations."""

    name: str
    nodes: list[Node] = field(default_factory=list)

    def add(self, op: Op, *operands: Node) -> Node:
        info = OP_INFO[op.kind]
        if info.arity >= 0 and len(operands) != info.arity:
            raise DFGError(
                f"{op}: expected {info.arity} operands, got {len(operands)}")
        for operand in operands:
            if operand not in self.nodes:
                raise DFGError(f"operand {operand!r} is not in graph {self.name!r}")
        node = Node(len(self.nodes), op, tuple(operands))
        self.nodes.append(node)
        return node

    def set_reg_input(self, reg: Node, value: Node) -> None:
        """Connect the loop-carried input of a REG node (a back-edge)."""
        if reg.kind is not OpKind.REG:
            raise DFGError(f"{reg!r} is not a REG node")
        if value not in self.nodes:
            raise DFGError(f"{value!r} is not in graph {self.name!r}")
        reg.operands = (value,)

    # -- queries -----------------------------------------------------------

    def inputs(self) -> list[Node]:
        return [n for n in self.nodes if n.kind is OpKind.DEQ]

    def outputs(self) -> list[Node]:
        return [n for n in self.nodes if n.kind in (OpKind.ENQ, OpKind.ST)]

    def input_queues(self) -> list[str]:
        return [n.op.attr for n in self.inputs()]

    def output_queues(self) -> list[str]:
        return [n.op.attr for n in self.nodes if n.kind is OpKind.ENQ]

    @property
    def n_fma_ops(self) -> int:
        return sum(1 for n in self.nodes if OP_INFO[n.kind].needs_fma)

    @property
    def n_memory_ops(self) -> int:
        return sum(1 for n in self.nodes if OP_INFO[n.kind].is_memory)

    @property
    def n_compute_ops(self) -> int:
        """Ops that occupy a functional unit (everything but queue edges)."""
        return sum(1 for n in self.nodes if not OP_INFO[n.kind].is_edge)

    # -- structure ---------------------------------------------------------

    def _forward_operands(self, node: Node) -> Iterable[Node]:
        """Operand edges excluding REG back-edges."""
        if node.kind is OpKind.REG:
            return ()
        return node.operands

    def validate(self) -> None:
        """Check the graph is feed-forward apart from REG back-edges."""
        if not self.nodes:
            raise DFGError(f"graph {self.name!r} is empty")
        self.levels()  # raises on cycles

    def levels(self) -> list[list[Node]]:
        """ASAP levelization: level of a node = 1 + max(level of operands).

        REG back-edges are ignored (a REG sources its value from the
        previous traversal of the pipeline). Raises :class:`DFGError` on
        a combinational cycle.
        """
        level: dict[int, int] = {}
        state: dict[int, int] = {}  # 0=unvisited, 1=on stack, 2=done

        def visit(node: Node) -> int:
            seen = state.get(node.node_id, 0)
            if seen == 1:
                raise DFGError(
                    f"graph {self.name!r} has a combinational cycle through "
                    f"{node!r}")
            if seen == 2:
                return level[node.node_id]
            state[node.node_id] = 1
            depth = 0
            for operand in self._forward_operands(node):
                depth = max(depth, visit(operand) + 1)
            state[node.node_id] = 2
            level[node.node_id] = depth
            return depth

        for node in self.nodes:
            visit(node)
        if not level:
            return []
        n_levels = max(level.values()) + 1
        result: list[list[Node]] = [[] for _ in range(n_levels)]
        for node in self.nodes:
            result[level[node.node_id]].append(node)
        return result

    @property
    def depth(self) -> int:
        """Number of dataflow levels (combinational pipeline stages)."""
        return len(self.levels())

    def pseudo_assembly(self) -> str:
        """Render the DFG in the pseudo-assembly style of paper Fig. 6."""
        lines = []
        for node in self.nodes:
            ops = ", ".join(f"%n{o.node_id}" for o in node.operands)
            attr = f" ${node.op.attr}" if node.op.attr is not None else ""
            lines.append(f"  %n{node.node_id} = {node.kind.value}{attr} {ops}".rstrip())
        return f"{self.name}:\n" + "\n".join(lines)
