"""Causal what-if estimation: virtual speedups, Coz-style.

``predict_speedup(profile, target, percent)`` answers "how many cycles
would the run take if ``target`` were ``percent``% faster?" without
re-simulating: a component that is k% faster does its critical-path
work in ``1/(1+k/100)`` of the time, so the predicted end-to-end cycle
count shrinks by that fraction of the cycles the critical path
attributes to the component. This is the virtual-speedup estimate of
Coz (Curtsinger & Berger, SOSP'15) transplanted from sampled callstacks
to the simulator's exact dependency chain.

``apply_whatif_config(config, target, percent)`` realizes the same
hypothesis as an actual :class:`~repro.config.SystemConfig` so the
prediction can be validated against a real re-simulation:

* a stage name (base or per-shard) becomes a ``stage_speedup`` entry,
* ``memory`` divides the main-memory latency,
* ``reconfig`` with 100% maps to ``zero_cost_reconfig`` (the idealized
  design of paper Sec. 8.3).

The tests require predictions within 15% of the re-simulated cycle
counts on small inputs (``tests/test_profiling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import MemoryConfig, SystemConfig
from repro.profiling.topology import MEMORY, RECONFIG, base_name

#: Spellings accepted for the non-stage targets.
_MEMORY_NAMES = ("memory", "mem", MEMORY)
_RECONFIG_NAMES = ("reconfig", RECONFIG)


@dataclass
class WhatIfPrediction:
    """One virtual-speedup estimate (plus optional validation)."""

    target: str
    percent: float
    baseline_cycles: float
    predicted_cycles: float
    attributed_cycles: float     # critical-path cycles charged to target
    actual_cycles: float = field(default=float("nan"))

    @property
    def predicted_speedup(self) -> float:
        return (self.baseline_cycles / self.predicted_cycles
                if self.predicted_cycles else float("inf"))

    @property
    def error(self) -> float:
        """|predicted - actual| / actual (nan before validation)."""
        if self.actual_cycles != self.actual_cycles:  # nan
            return float("nan")
        if not self.actual_cycles:
            return float("inf")
        return (abs(self.predicted_cycles - self.actual_cycles)
                / self.actual_cycles)

    def as_dict(self) -> dict:
        record = {
            "target": self.target,
            "percent": self.percent,
            "baseline_cycles": self.baseline_cycles,
            "predicted_cycles": self.predicted_cycles,
            "attributed_cycles": self.attributed_cycles,
            "predicted_speedup": self.predicted_speedup,
        }
        if self.actual_cycles == self.actual_cycles:
            record["actual_cycles"] = self.actual_cycles
            record["error"] = self.error
        return record


def parse_whatif(spec: str) -> tuple:
    """Parse a ``TARGET=PERCENT`` CLI argument into ``(target, float)``.

    ``PERCENT`` is the virtual speedup in percent (``fetch=50`` means
    "the fetch stage is 50% faster").
    """
    target, sep, amount = spec.partition("=")
    if not sep or not target:
        raise ValueError(
            f"what-if spec {spec!r} must look like STAGE=PERCENT "
            f"(e.g. bfs.fetch=50, memory=100, reconfig=100)")
    try:
        percent = float(amount)
    except ValueError:
        raise ValueError(f"what-if spec {spec!r}: {amount!r} is not a number")
    if percent <= 0:
        raise ValueError(f"what-if spec {spec!r}: percent must be > 0")
    return target.strip(), percent


def _attributed(profile, target: str) -> float:
    """Critical-path cycles charged to ``target`` (stage names match on
    their base form, so ``bfs.fetch`` covers every shard)."""
    attributed = profile.critical_path().attributed()
    if target in _MEMORY_NAMES:
        return attributed.get(MEMORY, 0.0)
    if target in _RECONFIG_NAMES:
        return attributed.get(RECONFIG, 0.0)
    return attributed.get(base_name(target), 0.0)


def predict_speedup(profile, target: str,
                    percent: float) -> WhatIfPrediction:
    """Virtual speedup: shrink the target's critical-path share.

    A component sped up by ``percent``% finishes its serialized work in
    ``1/(1 + percent/100)`` of the original time, so the saved cycles
    are ``attributed * (1 - 1/(1+p))``, clamped to the attribution.
    """
    if percent <= 0:
        raise ValueError(f"percent must be > 0, got {percent}")
    factor = 1.0 + percent / 100.0
    attributed = _attributed(profile, target)
    saved = attributed * (1.0 - 1.0 / factor)
    predicted = max(0.0, profile.cycles - saved)
    return WhatIfPrediction(target=target, percent=percent,
                            baseline_cycles=profile.cycles,
                            predicted_cycles=predicted,
                            attributed_cycles=attributed)


def apply_whatif_config(config: SystemConfig, target: str,
                        percent: float) -> SystemConfig:
    """Realize the what-if hypothesis as a concrete SystemConfig."""
    if percent <= 0:
        raise ValueError(f"percent must be > 0, got {percent}")
    factor = 1.0 + percent / 100.0
    if target in _MEMORY_NAMES:
        memory = config.memory
        return config.replace(memory=MemoryConfig(
            latency=max(1, round(memory.latency / factor)),
            bandwidth_bytes_per_cycle=memory.bandwidth_bytes_per_cycle))
    if target in _RECONFIG_NAMES:
        if abs(percent - 100.0) > 1e-9:
            raise ValueError(
                "reconfig what-ifs support only percent=100 "
                "(zero-cost reconfiguration, paper Sec. 8.3)")
        return config.replace(zero_cost_reconfig=True)
    return config.replace(
        stage_speedup=config.stage_speedup + ((target, factor),))


def validate_prediction(prediction: WhatIfPrediction, app: str,
                        input_code: str, system: str = "fifer",
                        config: SystemConfig = None,
                        **run_kwargs) -> WhatIfPrediction:
    """Re-simulate the what-if config and attach the actual cycles.

    ``run_kwargs`` pass through to :func:`repro.harness.run.
    run_experiment` (scale, seed, engine, prepared, ...). Returns the
    same prediction object, with ``actual_cycles`` filled in.
    """
    from repro.harness.run import run_experiment
    modified = apply_whatif_config(config or SystemConfig(),
                                   prediction.target, prediction.percent)
    result = run_experiment(app, input_code, system, config=modified,
                            **run_kwargs)
    prediction.actual_cycles = float(result.cycles)
    return prediction
