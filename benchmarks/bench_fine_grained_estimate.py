"""Estimating the fine-grained time-multiplexing alternative (Sec. 2.3).

The paper positions Fifer as the CGRA analog of *coarse-grained*
multithreading, against Triggered Instructions' cycle-level switching
(the FGMT analog), and argues TI's flexibility needs substantially more
hardware per PE. This benchmark brackets what cycle-level switching
could buy, using two configurations expressible in this model:

* **upper bound** — zero-cost reconfiguration with the full fabric per
  stage: switching is free and each stage still fills the array. Real
  fine-grained hardware cannot beat this.
* **space-shared estimate** — zero-cost switching but each stage only
  gets a quarter of the fabric's SIMD replication, reflecting that a
  TI-style PE holds all resident operations at once rather than
  reconfiguring the whole array per stage.

The paper's conclusion (Sec. 8.3) — that even free reconfiguration buys
only ~10% — is what makes coarse-grained switching the right tradeoff;
this benchmark reproduces that bracket per application.
"""

from bench_common import (ALL_APPS, REPRESENTATIVE, emit, experiment, point,
                          prefetch)
from repro.harness import format_table, gmean


def run_fine_grained():
    prefetch(point(app, REPRESENTATIVE[app], "fifer", **kwargs)
             for app in ALL_APPS
             for kwargs in (dict(), dict(zero_cost=True),
                            dict(zero_cost=True, max_simd_replication=2)))
    rows = []
    upper_bounds = []
    shared = []
    for app in ALL_APPS:
        code = REPRESENTATIVE[app]
        fifer = experiment(app, code, "fifer").cycles
        free = experiment(app, code, "fifer", zero_cost=True).cycles
        # Zero-cost switching with a quarter of the per-stage SIMD width.
        quarter = experiment(app, code, "fifer", zero_cost=True,
                             max_simd_replication=2).cycles
        rows.append([app, f"{fifer / free:.2f}x", f"{fifer / quarter:.2f}x"])
        upper_bounds.append(fifer / free)
        shared.append(fifer / quarter)
    rows.append(["gmean", f"{gmean(upper_bounds):.2f}x",
                 f"{gmean(shared):.2f}x"])
    table = format_table(
        ["app", "free switching, full fabric (upper bound)",
         "free switching, shared fabric"],
        rows,
        title=("Sec. 2.3 bracket: what cycle-level time-multiplexing "
               "could buy over Fifer (values > 1 favor fine-grained)"))
    emit("fine_grained_estimate", table)
    return gmean(upper_bounds), gmean(shared)


def test_fine_grained_estimate(benchmark):
    upper, shared = benchmark.pedantic(run_fine_grained, rounds=1,
                                       iterations=1)
    # Even the unbeatable upper bound gains only modestly over Fifer...
    assert upper < 1.5
    # ...and paying for it with fabric sharing erases (or inverts) it.
    assert shared < upper
