"""Fifer reproduction: dynamic temporal pipelining for irregular
applications on coarse-grain reconfigurable arrays.

This package reproduces *Fifer: Practical Acceleration of Irregular
Applications on Reconfigurable Architectures* (Nguyen & Sanchez,
MICRO 2021): a cycle-level model of a multi-PE CGRA system in which
pipeline stages of irregular applications are time-multiplexed onto
processing elements with fast, double-buffered reconfiguration.

Quick start::

    from repro import SystemConfig, System
    from repro.datasets.graphs import make_graph
    from repro.workloads import bfs

    config = SystemConfig()
    graph = make_graph("Hu")
    program, workload = bfs.build(graph, config, mode="fifer")
    result = System(config, program, mode="fifer").run()
    print(result.cycles, result.result)  # cycles, distances array

Higher-level experiments (all four evaluated systems, verified against
golden references, with energy breakdowns) go through
:func:`repro.harness.run_experiment`.
"""

from repro.config import (CacheConfig, FabricConfig, MemoryConfig, OOOConfig,
                          SystemConfig, DEFAULT_CONFIG)
from repro.core import (System, SimulationResult, DeadlockError,
                        Program, PEProgram, StageSpec, StageContext,
                        DRM, DRMSpec, STOP_VALUE)
from repro.baselines import run_ooo, OOOResult
from repro.energy import EnergyModel

__version__ = "1.0.0"

__all__ = [
    "CacheConfig", "FabricConfig", "MemoryConfig", "OOOConfig",
    "SystemConfig", "DEFAULT_CONFIG",
    "System", "SimulationResult", "DeadlockError",
    "Program", "PEProgram", "StageSpec", "StageContext",
    "DRM", "DRMSpec", "STOP_VALUE",
    "run_ooo", "OOOResult", "EnergyModel",
    "__version__",
]
