"""Tests for the out-of-order core timing model."""

import numpy as np
import pytest

from repro.baselines import run_ooo
from repro.baselines.kernels import bfs_kernel, silo_kernel, spmm_kernel
from repro.baselines.ooo import build_ooo_machines
from repro.config import MemoryConfig, OOOConfig
from repro.datasets.btree import BPlusTree
from repro.datasets.graphs import power_law_graph
from repro.datasets.matrices import random_sparse_matrix
from repro.workloads.bfs import bfs_reference
from repro.workloads.silo import silo_reference
from repro.workloads.spmm import spmm_reference


class TestOOOMachine:
    def _machine(self, **kwargs):
        machines, _, _ = build_ooo_machines(1, OOOConfig(**kwargs),
                                            MemoryConfig())
        return machines[0]

    def test_instruction_cycles(self):
        m = self._machine(effective_ipc=2.0)
        m.instr(100)
        assert m.cycles == pytest.approx(50.0)

    def test_dependent_misses_stall_more(self):
        dep = self._machine()
        ind = self._machine()
        for i in range(16):
            dep.load(0x100000 + i * 4096, dependent=True)
            ind.load(0x100000 + i * 4096, dependent=False)
        assert dep.stall_cycles > ind.stall_cycles

    def test_l1_hits_do_not_stall(self):
        m = self._machine()
        m.load(0x1000)
        m.load(0x1000)
        first_stall = m.stall_cycles
        m.load(0x1000)
        assert m.stall_cycles == first_stall

    def test_stores_never_stall(self):
        m = self._machine()
        m.store(0x900000)
        assert m.stall_cycles == 0.0


class TestMulticore:
    def test_barrier_aligns_cores(self):
        def kernel(machines, barrier):
            machines[0].instr(1000)
            machines[1].instr(10)
            barrier()
            return None

        result = run_ooo(kernel, n_cores=2)
        # Total time is set by the slow core plus the barrier cost.
        assert result.cycles >= 1000 / OOOConfig().effective_ipc
        assert result.sync_cycles > 0

    def test_serial_has_no_barrier_cost(self):
        def kernel(machines, barrier):
            machines[0].instr(100)
            barrier()
            return None

        result = run_ooo(kernel, n_cores=1)
        assert result.sync_cycles == 0.0

    def test_multicore_faster_than_serial_on_parallel_work(self):
        graph = power_law_graph(800, 8.0, seed=4)
        serial = run_ooo(bfs_kernel(graph, 0, 1), 1)
        parallel = run_ooo(bfs_kernel(graph, 0, 4), 4)
        assert parallel.cycles < serial.cycles

    def test_cpi_stack_covers_cycles(self):
        graph = power_law_graph(300, 6.0, seed=5)
        result = run_ooo(bfs_kernel(graph, 0, 4), 4)
        stack = result.merged_cpi_stack()
        assert stack["issued"] > 0
        assert stack["stall_mem"] > 0


class TestKernelsMatchReferences:
    def test_bfs_kernel_functional(self):
        graph = power_law_graph(500, 6.0, seed=6)
        for cores in (1, 4):
            result = run_ooo(bfs_kernel(graph, 0, cores), cores)
            np.testing.assert_array_equal(result.result,
                                          bfs_reference(graph, 0))

    def test_spmm_kernel_functional(self):
        matrix = random_sparse_matrix(80, 6.0, seed=7)
        rows = np.arange(0, 80, 3, dtype=np.int64)
        cols = np.arange(0, 80, 5, dtype=np.int64)
        result = run_ooo(spmm_kernel(matrix, rows, cols, 4), 4)
        assert result.result == spmm_reference(matrix, rows, cols)

    def test_silo_kernel_functional(self):
        keys = np.arange(2000, dtype=np.int64) * 2
        tree = BPlusTree(keys, keys * 3, fanout=8)
        ops = np.concatenate([keys[::7], keys[::11] + 1])
        result = run_ooo(silo_kernel(tree, ops, 4), 4)
        assert tuple(result.result) == silo_reference(tree, ops)

    def test_silo_is_memory_bound(self):
        """Pointer-chasing lookups should be dominated by memory stalls
        (paper Sec. 8.1: OOO cores cannot handle these accesses)."""
        keys = np.arange(50_000, dtype=np.int64)
        tree = BPlusTree(keys, keys, fanout=8)
        rng = np.random.default_rng(0)
        ops = rng.integers(0, 50_000, size=500)
        result = run_ooo(silo_kernel(tree, ops, 1), 1)
        stack = result.merged_cpi_stack()
        assert stack["stall_mem"] > stack["issued"]
