"""Dataflow graphs (DFGs) for pipeline stages.

A DFG is a directed graph of :class:`Node` operations. Forward edges
carry operands between functional units; back-edges are only allowed
into ``REG`` nodes (loop-carried state). ``levels()`` computes an ASAP
levelization ignoring register back-edges, which the mapper uses for
row-by-row placement and to derive the configuration's pipeline depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.ops import Op, OpKind, OP_INFO


class DFGError(Exception):
    """Structural problem in a dataflow graph."""


@dataclass
class Node:
    """One operation in a DFG."""

    node_id: int
    op: Op
    operands: tuple = ()

    @property
    def kind(self) -> OpKind:
        return self.op.kind

    def __hash__(self) -> int:
        return self.node_id

    def __repr__(self) -> str:
        ops = ",".join(f"n{o.node_id}" for o in self.operands)
        return f"n{self.node_id}={self.op}({ops})"


@dataclass
class DataflowGraph:
    """A stage's computation as a feed-forward graph of FU operations."""

    name: str
    nodes: list[Node] = field(default_factory=list)

    def add(self, op: Op, *operands: Node) -> Node:
        info = OP_INFO[op.kind]
        if info.arity >= 0 and len(operands) != info.arity:
            raise DFGError(
                f"{op}: expected {info.arity} operands, got {len(operands)}")
        for operand in operands:
            if operand not in self.nodes:
                raise DFGError(f"operand {operand!r} is not in graph {self.name!r}")
        node = Node(len(self.nodes), op, tuple(operands))
        self.nodes.append(node)
        return node

    def set_reg_input(self, reg: Node, value: Node) -> None:
        """Connect the loop-carried input of a REG node (a back-edge)."""
        if reg.kind is not OpKind.REG:
            raise DFGError(f"{reg!r} is not a REG node")
        if value not in self.nodes:
            raise DFGError(f"{value!r} is not in graph {self.name!r}")
        if reg.operands:
            raise DFGError(
                f"stage {self.name!r}: register {reg!r} is multiply "
                f"driven (already connected to {reg.operands[0]!r})")
        reg.operands = (value,)

    # -- queries -----------------------------------------------------------

    def inputs(self) -> list[Node]:
        return [n for n in self.nodes if n.kind is OpKind.DEQ]

    def outputs(self) -> list[Node]:
        return [n for n in self.nodes if n.kind in (OpKind.ENQ, OpKind.ST)]

    def input_queues(self) -> list[str]:
        return [n.op.attr for n in self.inputs()]

    def output_queues(self) -> list[str]:
        return [n.op.attr for n in self.nodes if n.kind is OpKind.ENQ]

    def iter_queue_ops(self) -> Iterable[tuple[str, str]]:
        """Walk queue edges in node order as ``(kind, queue_name)`` pairs.

        ``kind`` is ``"deq"`` or ``"enq"``. This is the walker backends
        use to recover a stage's I/O protocol from its graph without
        caring about the datapath in between (``repro.codegen`` checks
        generated step-functions against it).
        """
        for node in self.nodes:
            if node.kind is OpKind.DEQ:
                yield "deq", node.op.attr
            elif node.kind is OpKind.ENQ:
                yield "enq", node.op.attr

    def queue_signature(self) -> tuple[frozenset, frozenset]:
        """The stage's I/O contract: ``(consumed names, produced names)``.

        Derived from :meth:`iter_queue_ops`; two stages with the same
        signature are interchangeable at the queue-wiring level even if
        their datapaths differ.
        """
        consumed, produced = set(), set()
        for kind, name in self.iter_queue_ops():
            (consumed if kind == "deq" else produced).add(name)
        return frozenset(consumed), frozenset(produced)

    def iter_dependence_edges(self) -> Iterable[tuple]:
        """Walk every dependence edge as ``(producer, consumer, kind)``.

        ``kind`` is ``"data"`` for forward operand edges and
        ``"reg-carried"`` for the loop-carried back-edge into a REG
        node (the value written this traversal, read the next). This is
        the per-stage counterpart of the whole-kernel dependence graph
        (:mod:`repro.analysis.depgraph`): analyses that reason about
        chains of dependences walk this instead of re-deriving operand
        structure from node kinds.
        """
        for node in self.nodes:
            kind = "reg-carried" if node.kind is OpKind.REG else "data"
            for operand in node.operands:
                yield operand, node, kind

    def consumers(self) -> dict:
        """Map ``node_id`` -> list of nodes consuming its result.

        REG back-edge consumption is included (kind ``"reg-carried"``
        in :meth:`iter_dependence_edges`); a node absent from the map
        is dangling in the :meth:`iter_dangling_nodes` sense unless its
        kind is a sink.
        """
        fanout: dict = {}
        for producer, consumer, _kind in self.iter_dependence_edges():
            fanout.setdefault(producer.node_id, []).append(consumer)
        return fanout

    def longest_dependence_chain(self) -> int:
        """Length (in edges) of the longest forward data-dependence
        chain — the stage's dataflow critical path, excluding
        reg-carried back-edges. Equals ``depth - 1`` on a non-empty
        graph; exposed as a dependence query so cost models name the
        quantity they price."""
        return max(self.depth - 1, 0)

    @property
    def n_fma_ops(self) -> int:
        return sum(1 for n in self.nodes if OP_INFO[n.kind].needs_fma)

    @property
    def n_memory_ops(self) -> int:
        return sum(1 for n in self.nodes if OP_INFO[n.kind].is_memory)

    @property
    def n_compute_ops(self) -> int:
        """Ops that occupy a functional unit (everything but queue edges)."""
        return sum(1 for n in self.nodes if not OP_INFO[n.kind].is_edge)

    # -- structure ---------------------------------------------------------

    def _forward_operands(self, node: Node) -> Iterable[Node]:
        """Operand edges excluding REG back-edges."""
        if node.kind is OpKind.REG:
            return ()
        return node.operands

    # Kinds whose result may legitimately go unconsumed: queue and
    # memory edges are sinks, comparisons drive (implicit) predication,
    # CTRL steers a token that the datapath may ignore, and a REG can be
    # written without being read back this stage.
    _SINK_KINDS = frozenset((OpKind.DEQ, OpKind.ENQ, OpKind.ST, OpKind.REG,
                             OpKind.CMP_LT, OpKind.CMP_EQ, OpKind.CTRL))

    def validate(self, strict: bool = False) -> None:
        """Check the graph is feed-forward apart from REG back-edges.

        With ``strict=True``, additionally reject dangling nodes: any
        value-producing node whose result no other node consumes (REG
        back-edge operands count as consumption). Hand-authored toy
        graphs may leave sinks unconsumed, so strictness is opt-in; the
        workload pipelines and the front-end lowering always use it.
        """
        if not self.nodes:
            raise DFGError(f"graph {self.name!r} is empty")
        self.levels()  # raises on cycles
        if not strict:
            return
        for node in self.iter_dangling_nodes():
            raise DFGError(
                f"stage {self.name!r}: dangling node {node!r} — its "
                f"result is never consumed")

    def consumed_ids(self) -> set[int]:
        """Node ids that appear as an operand somewhere (REG back-edge
        operands count as consumption)."""
        consumed = set()
        for node in self.nodes:
            for operand in node.operands:
                consumed.add(operand.node_id)
        return consumed

    def iter_dangling_nodes(self) -> Iterable[Node]:
        """Value-producing nodes whose result nothing consumes.

        Shared by strict :meth:`validate` and the dead-node pass in
        ``repro.analysis.dfg_passes`` so both report the same set.
        """
        consumed = self.consumed_ids()
        for node in self.nodes:
            if node.kind in self._SINK_KINDS:
                continue
            if node.node_id not in consumed:
                yield node

    def levels(self) -> list[list[Node]]:
        """ASAP levelization: level of a node = 1 + max(level of operands).

        REG back-edges are ignored (a REG sources its value from the
        previous traversal of the pipeline). Raises :class:`DFGError` on
        a combinational cycle.
        """
        level: dict[int, int] = {}
        state: dict[int, int] = {}  # 0=unvisited, 1=on stack, 2=done

        def visit(node: Node) -> int:
            seen = state.get(node.node_id, 0)
            if seen == 1:
                raise DFGError(
                    f"graph {self.name!r} has a combinational cycle through "
                    f"{node!r}")
            if seen == 2:
                return level[node.node_id]
            state[node.node_id] = 1
            depth = 0
            for operand in self._forward_operands(node):
                depth = max(depth, visit(operand) + 1)
            state[node.node_id] = 2
            level[node.node_id] = depth
            return depth

        for node in self.nodes:
            visit(node)
        if not level:
            return []
        n_levels = max(level.values()) + 1
        result: list[list[Node]] = [[] for _ in range(n_levels)]
        for node in self.nodes:
            result[level[node.node_id]].append(node)
        return result

    @property
    def depth(self) -> int:
        """Number of dataflow levels (combinational pipeline stages)."""
        return len(self.levels())

    def pseudo_assembly(self) -> str:
        """Render the DFG in the pseudo-assembly style of paper Fig. 6."""
        lines = []
        for node in self.nodes:
            ops = ", ".join(f"%n{o.node_id}" for o in node.operands)
            attr = f" ${node.op.attr}" if node.op.attr is not None else ""
            lines.append(f"  %n{node.node_id} = {node.kind.value}{attr} {ops}".rstrip())
        return f"{self.name}:\n" + "\n".join(lines)

    _ASM_BINARY = {
        OpKind.ADD: "add", OpKind.SUB: "sub", OpKind.MUL: "mul",
        OpKind.AND: "and", OpKind.OR: "or", OpKind.XOR: "xor",
        OpKind.SHL: "shl", OpKind.SHR: "shr",
        OpKind.CMP_LT: "cmplt", OpKind.CMP_EQ: "cmpeq",
        OpKind.FADD: "fadd", OpKind.FMUL: "fmul",
    }

    def to_asm(self) -> str:
        """Render in :func:`repro.ir.asmparse.parse_stage_asm`'s dialect.

        Parsing the result back yields an isomorphic graph: the same
        node sequence, operand edges, and attributes (REG debug names
        excepted). ``setreg`` lines are emitted last so loop-carried
        inputs defined after their register still resolve.
        """
        lines = []
        setregs = []

        def ref(node: Node) -> str:
            return f"%n{node.node_id}"

        for node in self.nodes:
            kind, ops = node.kind, node.operands
            if kind is OpKind.DEQ:
                lines.append(f"deq {ref(node)}, ${node.op.attr}")
            elif kind is OpKind.ENQ:
                lines.append(f"enq ${node.op.attr}, {ref(ops[0])}")
            elif kind is OpKind.CONST:
                lines.append(f"mov {ref(node)}, {node.op.attr!r}")
            elif kind is OpKind.REG:
                lines.append(f"reg {ref(node)}")
                if ops:
                    setregs.append(f"setreg {ref(node)}, {ref(ops[0])}")
            elif kind is OpKind.LEA:
                scale = "" if node.op.attr == 8 else f", {node.op.attr}"
                lines.append(
                    f"lea {ref(node)}, {ref(ops[0])}, {ref(ops[1])}{scale}")
            elif kind is OpKind.LD:
                lines.append(f"ld {ref(node)}, {ref(ops[0])}")
            elif kind is OpKind.ST:
                lines.append(f"st {ref(ops[0])}, {ref(ops[1])}")
            elif kind is OpKind.SEL:
                lines.append(f"sel {ref(node)}, {ref(ops[0])}, "
                             f"{ref(ops[1])}, {ref(ops[2])}")
            elif kind is OpKind.FMA:
                lines.append(f"fma {ref(node)}, {ref(ops[0])}, "
                             f"{ref(ops[1])}, {ref(ops[2])}")
            elif kind is OpKind.CTRL:
                lines.append(f"ctrl {ref(node)}, {ref(ops[0])}")
            elif kind in self._ASM_BINARY:
                lines.append(f"{self._ASM_BINARY[kind]} {ref(node)}, "
                             f"{ref(ops[0])}, {ref(ops[1])}")
            else:  # pragma: no cover - OpKind is closed
                raise DFGError(f"cannot print {node!r} as pseudo-assembly")
        return "\n".join(lines + setregs) + "\n"


def check_queue_wiring(stages: Iterable[DataflowGraph],
                       declared: Iterable[str],
                       drm_consumed: Iterable[str] = (),
                       drm_produced: Iterable[str] = (),
                       external: Iterable[str] = ()) -> None:
    """Cross-stage ENQ/DEQ consistency for a set of stage graphs.

    ``declared`` are the queue names the program allocates; DRMs consume
    ``drm_consumed`` and produce ``drm_produced``; ``external`` queues
    are fed or drained outside the fabric (the control core's iteration
    queues, the barrier). Raises :class:`DFGError` naming the offending
    node and stage when a fabric edge references an undeclared queue, or
    when a declared queue has a consumer but no producer (or vice
    versa) — instead of the mapper or a hung simulation finding out.
    """
    stages = list(stages)
    declared = set(declared)
    external = set(external)
    produced = set(drm_produced) | external
    consumed = set(drm_consumed) | external
    for stage in stages:
        for node in stage.nodes:
            if node.kind is OpKind.ENQ:
                if node.op.attr not in declared:
                    raise DFGError(
                        f"stage {stage.name!r}: {node!r} enqueues to "
                        f"undeclared queue {node.op.attr!r}")
                produced.add(node.op.attr)
            elif node.kind is OpKind.DEQ:
                if node.op.attr not in declared:
                    raise DFGError(
                        f"stage {stage.name!r}: {node!r} dequeues from "
                        f"undeclared queue {node.op.attr!r}")
                consumed.add(node.op.attr)
    for stage in stages:
        for node in stage.nodes:
            if node.kind is OpKind.DEQ and node.op.attr not in produced:
                raise DFGError(
                    f"stage {stage.name!r}: {node!r} dequeues from "
                    f"{node.op.attr!r}, which no stage or DRM produces")
            if node.kind is OpKind.ENQ and node.op.attr not in consumed:
                raise DFGError(
                    f"stage {stage.name!r}: {node!r} enqueues to "
                    f"{node.op.attr!r}, which no stage or DRM consumes")
