"""Engine micro-benchmark: fast vs naive wall time on the Fig. 13 grid.

The fast engine bulk-charges blocked spans instead of ticking them
cycle by cycle (docs/performance.md); both engines are cycle- and
counter-exact (tests/test_engine_equivalence.py), so the only
difference is wall time. This benchmark runs the full Fig. 13
experiment grid end-to-end under each engine and asserts the fast
engine clears a regression floor; the measured ratio is recorded in
``benchmarks/results/engine_speedup.txt``.

Two different ratios matter here and they are easy to conflate:

* **engine speedup** (this benchmark): naive vs fast *on the same
  build*. Both engines share the optimized simulation primitives
  (queues, caches, counters, DRM stepping), so this isolates what the
  bulk-stall shortcut alone buys. The floor below is deliberately a
  regression guard, not a marketing number.
* **end-to-end speedup** (the PR-level claim): the pre-change
  bench_fig13 wall time vs the current default engine. That includes
  the shared hot-path optimizations, which sped the naive reference up
  too; the measured before/after record lives in
  ``benchmarks/results/fig13_wall_time.txt`` and docs/performance.md.
"""

import time
from dataclasses import replace

from bench_common import WORKERS, emit
from bench_fig13_performance import fig13_points
from repro.harness import format_table, run_sweep

# Same-build naive-vs-fast floor. The blocked-span shortcut only pays
# where stall cycles dominate (static/fifer points); OOO baseline
# points are engine-neutral, so the grid-wide ratio is well under the
# per-point peaks (~3x on stall-heavy points).
SPEEDUP_FLOOR = 1.15


def _timed_sweep(points, engine):
    pts = [replace(p, engine=engine) for p in points]
    start = time.perf_counter()
    results = run_sweep(pts, workers=WORKERS)
    return time.perf_counter() - start, results


def run_engine_speedup():
    points = fig13_points()
    # Warm the per-process input caches so neither engine pays for
    # synthetic input generation inside its timed window.
    _timed_sweep(points, "fast")
    t_naive, naive = _timed_sweep(points, "naive")
    t_fast, fast = _timed_sweep(points, "fast")
    assert [r.cycles for r in naive] == [r.cycles for r in fast]
    speedup = t_naive / t_fast
    rows = [
        ["naive (per-cycle reference)", f"{t_naive:.2f}", "1.00x"],
        ["fast (bulk stall skip)", f"{t_fast:.2f}", f"{speedup:.2f}x"],
    ]
    table = format_table(
        ["engine", "wall time (s)", "speedup"], rows,
        title=(f"fig13 grid ({len(points)} experiments) end-to-end wall "
               f"time by simulation engine, same build (floor: >= "
               f"{SPEEDUP_FLOOR}x; see fig13_wall_time.txt for the "
               f"before/after record)"))
    emit("engine_speedup", table)
    return speedup


def test_engine_speedup(benchmark):
    speedup = benchmark.pedantic(run_engine_speedup, rounds=1, iterations=1)
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast engine speedup {speedup:.2f}x is under the "
        f"{SPEEDUP_FLOOR}x floor")
