"""Event-driven simulation primitives: wake times and the event queue.

The event engine (``System.run(engine="event")``) advances the same
quantum-stepped machine as the fast engine, but it only *visits* the
components that can act. Everything else sleeps, and wall time scales
with simulation events instead of cycles (ROADMAP's third engine;
docs/performance.md).

Two kinds of "next interesting time" exist in this machine:

* **Queue-driven wakes.** Stages and DRMs block exclusively on queue
  state (an empty input or a full/credit-exhausted output); the memory
  model charges latencies inline, so there are no in-flight timers. A
  blocked component's wake time is therefore *unknown but observable*:
  it is exactly the next enqueue/dequeue on one of the queues it waits
  on. Sleeping components register on those queues' waiter sets and the
  queue hooks (:attr:`repro.queues.queue.Queue.on_event`) deliver the
  wake.
* **Clock-driven horizons.** Deadlock detection and the caller's cycle
  limit fire at computable future cycles, and a memory model may expose
  a timed event of its own (:meth:`MainMemory.next_event_cycle`). These
  are real priority-queue entries: when every component sleeps and the
  control core is provably passive, the engine pops the earliest
  horizon and jumps straight to it.

Both derivations reuse the quiescence analysis the fast-forward
shortcuts introduced (``ProcessingElement.can_progress``,
``DRM.can_progress``): a component is only put to sleep when that
analysis proves the next quantum would charge stall cycles and nothing
else. Whenever the proof fails — telemetry sinks or samplers could
observe intermediate state, debts or non-integral quanta make bulk
arithmetic inexact — the engine falls back to exact replay of the
per-quantum loop, so results stay bit-identical by construction.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional


class EventQueue:
    """A priority queue of ``(cycle, key)`` events with lazy cancellation.

    Entries are ordered by cycle, then by insertion order (so ties pop
    deterministically). Rescheduling a key supersedes its previous
    entry; superseded and cancelled entries are skipped lazily on pop.
    """

    def __init__(self):
        self._heap: list = []
        self._entries: dict = {}          # key -> (cycle, seq)
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def schedule(self, key, cycle: float) -> None:
        """Schedule (or reschedule) ``key`` to fire at ``cycle``."""
        seq = next(self._seq)
        self._entries[key] = (cycle, seq)
        heapq.heappush(self._heap, (cycle, seq, key))

    def cancel(self, key) -> None:
        """Remove ``key``; a no-op when it is not scheduled."""
        self._entries.pop(key, None)

    def scheduled_cycle(self, key) -> Optional[float]:
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def _skim(self) -> None:
        """Drop stale heap heads (cancelled or superseded entries)."""
        heap = self._heap
        entries = self._entries
        while heap:
            cycle, seq, key = heap[0]
            if entries.get(key) == (cycle, seq):
                return
            heapq.heappop(heap)

    def next_cycle(self) -> Optional[float]:
        """Cycle of the earliest live event, or None when empty."""
        self._skim()
        return self._heap[0][0] if self._heap else None

    def pop(self):
        """Remove and return ``(cycle, key)`` for the earliest event."""
        self._skim()
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        cycle, _seq, key = heapq.heappop(self._heap)
        del self._entries[key]
        return cycle, key


@dataclass
class SleepState:
    """Deferred-stall ledger for one sleeping processing element.

    While a PE sleeps the engine charges nothing; this record carries
    everything needed to reproduce, bit for bit, the stall cycles the
    per-quantum loop would have charged: the first uncharged quantum
    boundary (``owed_from``) and the Fig. 14 bucket that was captured
    *at sleep time* (classification must not be recomputed at wake
    time — the very queue activity that wakes the PE could flip it).
    """

    owed_from: float
    bucket: str
    # Queues whose waiter sets this PE joined (cleared on wake).
    watching: tuple = field(default_factory=tuple)


def wake_queue_names(pe) -> set:
    """The queues whose activity could make ``pe`` progress again.

    Derived from the same state ``can_progress`` inspects, for a PE it
    just proved quiescent:

    * every started, unfinished stage is blocked on its pending
      queue request — any enqueue (for ``deq``/``peek``) or dequeue
      (space or credits back, for ``enq``) on that queue may unblock it;
    * every DRM waits either on its input queue (empty) or on one of
      its output targets (full or out of credits). Routed DRMs are
      watched on *all* route targets: the route choice depends on
      loaded values, so any target draining may unblock the head token.

    The set is deliberately conservative — a spurious wake only costs a
    re-check (the woken PE re-blocks and charges the same stalls the
    ledger would have), never correctness.
    """
    names = set()
    for stage in pe.stages:
        if stage.done or stage.pending is None:
            continue
        request = stage.pending
        if request[0] in ("deq", "peek", "enq", "try_deq"):
            names.add(request[1])
    for drm in pe.drms:
        names.add(drm.in_q.name)
        names.update(drm.watch_queue_names())
    return names
