"""Memory substrate: flat address space, set-associative caches, HBM model.

Workload data lives in numpy arrays registered with the
:class:`AddressSpace`; the caches simulate timing for the addresses those
arrays occupy while functional values are read directly from the arrays.
"""

from repro.memory.address import AddressSpace, ArrayRef
from repro.memory.cache import Cache, MainMemory, build_hierarchy

__all__ = ["AddressSpace", "ArrayRef", "Cache", "MainMemory", "build_hierarchy"]
