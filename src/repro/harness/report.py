"""ASCII rendering of the paper's figures (bar charts, stacked bars).

The benchmarks print tables; these helpers additionally render the data
the way the paper's figures look — grouped bars for Fig. 13/16/17 and
stacked bars for Fig. 14/15 — entirely in ASCII so results are readable
in a terminal or a results file.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_STACK_GLYPHS = "#=+~. "


def bar_chart(values: Mapping[str, float], width: int = 50,
              title: str = "", unit: str = "x") -> str:
    """Horizontal bar chart of labeled values."""
    if not values:
        raise ValueError("no values to chart")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar chart needs a positive maximum")
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label:<{label_width}} |{bar:<{width}}| "
                     f"{value:.2f}{unit}")
    return "\n".join(lines)


def stacked_bars(stacks: Mapping[str, Mapping[str, float]],
                 buckets: Sequence[str], width: int = 50,
                 title: str = "") -> str:
    """Stacked horizontal bars (e.g., CPI stacks), normalized to the
    largest total; each bucket gets a distinct glyph."""
    if not stacks:
        raise ValueError("no stacks to chart")
    glyphs = {bucket: _STACK_GLYPHS[i % len(_STACK_GLYPHS)]
              for i, bucket in enumerate(buckets)}
    peak = max(sum(stack.get(b, 0.0) for b in buckets)
               for stack in stacks.values())
    if peak <= 0:
        raise ValueError("stacked bars need a positive maximum")
    label_width = max(len(k) for k in stacks)
    lines = [title] if title else []
    for label, stack in stacks.items():
        row = []
        for bucket in buckets:
            cells = int(round(width * stack.get(bucket, 0.0) / peak))
            row.append(glyphs[bucket] * cells)
        total = sum(stack.get(b, 0.0) for b in buckets)
        lines.append(f"{label:<{label_width}} |{''.join(row):<{width}}| "
                     f"{total:,.0f}")
    legend = "  ".join(f"{glyphs[b]}={b}" for b in buckets)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def speedup_bars(per_input: Mapping[str, Mapping[str, float]],
                 systems: Sequence[str], width: int = 40,
                 title: str = "") -> str:
    """Grouped bars: one block per input, one bar per system."""
    lines = [title] if title else []
    for code, speedups in per_input.items():
        lines.append(f"[{code}]")
        lines.append(bar_chart({s: speedups[s] for s in systems},
                               width=width))
    return "\n".join(lines)
