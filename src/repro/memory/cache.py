"""Set-associative cache and main-memory timing models.

Caches are functional-timing only: they track which line addresses are
resident (LRU within each set) and return access latencies; data values
live in numpy arrays outside the cache model. Writes are write-allocate
and write-back; dirty evictions are counted as memory write traffic for
the energy model.

Main memory models the paper's high-bandwidth memory: fixed 120-cycle
latency plus a per-quantum bandwidth budget (256 GB/s at 2 GHz = 128
bytes/cycle); traffic beyond the budget pays a queueing penalty.
"""

from __future__ import annotations

from repro.config import CacheConfig, MemoryConfig


class MainMemory:
    """Latency + bandwidth model for HBM."""

    # Optional telemetry Probe (repro.stats.telemetry); instance attrs
    # shadow this when System.attach_telemetry wires the hierarchy.
    probe = None

    def __init__(self, config: MemoryConfig, line_bytes: int = 64):
        self.config = config
        self.line_bytes = line_bytes
        self.reads = 0
        self.writes = 0
        self._quantum_bytes = 0.0
        self._quantum_budget = float("inf")
        self._latency = float(config.latency)
        self._bw = config.bandwidth_bytes_per_cycle

    def begin_quantum(self, cycles: int) -> None:
        """Reset the bandwidth budget for a new simulation quantum."""
        self._quantum_bytes = 0.0
        self._quantum_budget = self.config.bandwidth_bytes_per_cycle * cycles

    # -- next-event hooks (event-driven engine) ---------------------------

    def next_event_cycle(self) -> "float | None":
        """Cycle of this channel's next self-driven event, or None.

        The HBM model charges latency and queueing penalties inline at
        ``access`` time and carries no in-flight request state, so it
        never wakes the system on its own. A refresh- or
        controller-modelling subclass would return the cycle of its
        next timed action here; the event engine clamps any quiescence
        jump to it (:meth:`repro.core.system.System._run_event`).
        """
        return None

    def quantum_state_is_transient(self) -> bool:
        """Whether per-quantum state dies at the quantum boundary.

        True for this model: ``begin_quantum`` fully resets the
        bandwidth window, so quanta in which no component can issue an
        access may skip the reset without changing any later latency.
        The event engine relies on this to elide ``begin_quantum`` for
        quanta where every PE sleeps.
        """
        return True

    def access(self, addr: int, write: bool = False) -> float:
        if write:
            self.writes += 1
        else:
            self.reads += 1
        self._quantum_bytes += self.line_bytes
        latency = self._latency
        over = self._quantum_bytes - self._quantum_budget
        if over > 0:
            # Queueing penalty: excess traffic drains at the peak rate.
            latency += over / self._bw
        # mem.complete rides behind the mem.issue guard: subscribe to
        # both kinds to observe completions.
        if self.probe is not None and "mem.issue" in self.probe.bus.wants:
            now = self.probe.bus.now
            self.probe.emit("mem.issue", cycle=now, addr=addr, write=write)
            self.probe.emit("mem.complete", cycle=now + latency, addr=addr,
                            latency=latency)
        return latency

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_transferred(self) -> int:
        return self.accesses * self.line_bytes


class Cache:
    """One level of a set-associative, LRU, write-back cache.

    ``parent`` is the next level (another ``Cache`` or ``MainMemory``).
    ``access`` returns the total latency of the access including any
    parent latencies on a miss.
    """

    # Optional telemetry Probe; see MainMemory.probe.
    probe = None

    def __init__(self, name: str, config: CacheConfig, parent):
        self.name = name
        self.config = config
        self.parent = parent
        n_sets = config.n_sets
        if n_sets <= 0 or n_sets & (n_sets - 1):
            raise ValueError(
                f"cache {name!r}: set count {n_sets} is not a positive power of two")
        self._set_mask = n_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._latency = float(config.latency)
        self._ways = config.ways
        # One ordered dict per set: line_addr -> dirty flag. Python dicts
        # preserve insertion order, which we exploit for LRU.
        self._sets: list[dict[int, bool]] = [dict() for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0

    def _locate(self, addr: int) -> tuple[int, dict[int, bool]]:
        line = addr >> self._line_shift
        return line, self._sets[line & self._set_mask]

    def contains(self, addr: int) -> bool:
        line, cache_set = self._locate(addr)
        return line in cache_set

    def access(self, addr: int, write: bool = False) -> float:
        """Access one address; returns total latency in cycles."""
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]
        if line in cache_set:
            self.hits += 1
            dirty = cache_set.pop(line) or write
            cache_set[line] = dirty  # move to MRU position
            return self._latency
        self.misses += 1
        if self.probe is not None and "cache.miss" in self.probe.bus.wants:
            self.probe.emit("cache.miss", level=self.name, addr=addr,
                            write=write)
        latency = self.config.latency + self.parent.access(addr, write=False)
        if len(cache_set) >= self._ways:
            victim, victim_dirty = next(iter(cache_set.items()))
            del cache_set[victim]
            if victim_dirty:
                self.dirty_evictions += 1
                self.parent.access(victim << self._line_shift, write=True)
        cache_set[line] = write
        return latency

    def touch_range(self, base: int, size: int, write: bool = False) -> float:
        """Access every line in ``[base, base+size)``; returns total latency."""
        latency = 0.0
        line_bytes = self.config.line_bytes
        addr = base & ~(line_bytes - 1)
        while addr < base + size:
            latency += self.access(addr, write=write)
            addr += line_bytes
        return latency

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def flush(self) -> None:
        """Drop all resident lines (writing back dirty ones)."""
        for cache_set in self._sets:
            for line, dirty in cache_set.items():
                if dirty:
                    self.dirty_evictions += 1
                    self.parent.access(line << self._line_shift, write=True)
            cache_set.clear()


def build_hierarchy(l1_config: CacheConfig, llc_config: CacheConfig,
                    mem_config: MemoryConfig, n_l1s: int):
    """Build ``n_l1s`` private L1s over a shared LLC over main memory.

    Returns ``(l1s, llc, memory)``.
    """
    memory = MainMemory(mem_config, line_bytes=llc_config.line_bytes)
    llc = Cache("llc", llc_config, memory)
    l1s = [Cache(f"l1.{i}", l1_config, llc) for i in range(n_l1s)]
    return l1s, llc, memory
