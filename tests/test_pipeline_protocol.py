"""Integration tests for the pipeline control protocol: iteration
barriers, END/STOP propagation, fringe double-buffering, and the Silo
in-flight window under stress."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.datasets.btree import BPlusTree
from repro.datasets.graphs import CSRGraph, power_law_graph, grid_graph
from repro.workloads import bfs, cc, silo
from repro.workloads.spmm import SpMMWorkload, spmm_reference
from repro.datasets.matrices import random_sparse_matrix


class TestIterationProtocol:
    def test_every_iteration_processes_once(self):
        """END counting at S3 must deliver exactly one barrier signal per
        shard per iteration; if it over- or under-counted, BFS levels
        would be skipped or duplicated and distances would be wrong."""
        graph = grid_graph(30, 2)  # long, narrow: many iterations
        config = SystemConfig()
        program, workload = bfs.build(graph, config, "fifer")
        result = System(config, program, mode="fifer").run()
        golden = bfs.bfs_reference(graph, 0)
        np.testing.assert_array_equal(result.result, golden)
        # Max distance + a final empty-discovery iteration.
        assert workload.iterations_run == golden.max() + 1

    def test_fringe_double_buffering_isolates_iterations(self):
        """Vertices discovered during iteration k must not be processed
        until iteration k+1 (write buffer vs read buffer)."""
        # A cycle graph: each iteration discovers exactly 2 vertices.
        n = 24
        offsets = np.arange(0, 2 * n + 1, 2, dtype=np.int64)
        neighbors = np.zeros(2 * n, dtype=np.int64)
        for v in range(n):
            neighbors[2 * v] = (v - 1) % n
            neighbors[2 * v + 1] = (v + 1) % n
        graph = CSRGraph(offsets, neighbors)
        config = SystemConfig()
        program, workload = bfs.build(graph, config, "fifer")
        result = System(config, program, mode="fifer").run()
        golden = bfs.bfs_reference(graph, 0)
        np.testing.assert_array_equal(result.result, golden)
        assert result.result.max() == n // 2

    def test_stop_terminates_all_stages(self):
        graph = power_law_graph(200, 5.0, seed=30)
        config = SystemConfig()
        program, _ = bfs.build(graph, config, "fifer")
        system = System(config, program, mode="fifer")
        system.run()
        for pe in system.pes:
            assert all(stage.done for stage in pe.stages)

    def test_queues_drained_at_completion(self):
        graph = power_law_graph(200, 5.0, seed=31)
        config = SystemConfig()
        program, _ = bfs.build(graph, config, "fifer")
        system = System(config, program, mode="fifer")
        system.run()
        for name, queue in system._queues.items():
            assert queue.is_empty(), f"queue {name} not drained"

    def test_single_vertex_graph(self):
        graph = CSRGraph(np.array([0, 0], dtype=np.int64),
                         np.zeros(0, dtype=np.int64))
        config = SystemConfig()
        program, _ = bfs.build(graph, config, "fifer")
        result = System(config, program, mode="fifer").run()
        assert list(result.result) == [0]

    def test_empty_iteration_shards_still_barrier(self):
        """Shards whose fringe slice is empty must still emit their END
        tokens so the barrier completes (count=0 dispatches)."""
        # A star graph: all work concentrates on the hub's shard.
        n = 64
        hub_edges = np.arange(1, n, dtype=np.int64)
        offsets = np.concatenate([[0, n - 1],
                                  np.arange(n, 2 * n - 1, dtype=np.int64)])
        neighbors = np.concatenate([hub_edges,
                                    np.zeros(n - 1, dtype=np.int64)])
        graph = CSRGraph(offsets.astype(np.int64),
                         neighbors.astype(np.int64))
        config = SystemConfig()
        program, _ = bfs.build(graph, config, "fifer")
        result = System(config, program, mode="fifer").run()
        golden = bfs.bfs_reference(graph, 0)
        np.testing.assert_array_equal(result.result, golden)


class TestTinyQueues:
    """The whole protocol must stay deadlock-free with minimal buffering
    (1 KB queue memory: every queue is a handful of entries)."""

    @pytest.mark.parametrize("mode", ["fifer", "static"])
    def test_bfs_with_minimal_queues(self, mode):
        graph = power_law_graph(150, 5.0, seed=32)
        config = SystemConfig(queue_mem_bytes=1024)
        program, _ = bfs.build(graph, config, mode)
        result = System(config, program, mode=mode).run(max_cycles=5e7)
        np.testing.assert_array_equal(result.result,
                                      bfs.bfs_reference(graph, 0))

    def test_cc_with_minimal_queues(self):
        graph = power_law_graph(120, 4.0, seed=33)
        config = SystemConfig(queue_mem_bytes=1024)
        program, _ = cc.build(graph, config, "fifer")
        result = System(config, program, mode="fifer").run(max_cycles=5e7)
        np.testing.assert_array_equal(result.result,
                                      cc.cc_reference(graph))

    def test_spmm_with_minimal_queues(self):
        matrix = random_sparse_matrix(100, 6.0, seed=34)
        rows = np.arange(0, 100, 7, dtype=np.int64)
        cols = np.arange(0, 100, 9, dtype=np.int64)
        config = SystemConfig(queue_mem_bytes=1024)
        workload = SpMMWorkload(matrix, 16, rows, cols)
        program = workload.build_program(config, "fifer")
        result = System(config, program, mode="fifer").run(max_cycles=5e7)
        assert result.result == spmm_reference(matrix, rows, cols)

    def test_silo_with_minimal_queues(self):
        keys = np.arange(3000, dtype=np.int64) * 2
        tree = BPlusTree(keys, keys + 1, fanout=8)
        ops = keys[::11].copy()
        ops[::3] += 1
        config = SystemConfig(queue_mem_bytes=1024)
        program, workload = silo.build(tree, ops, config, "fifer")
        result = System(config, program, mode="fifer").run(max_cycles=5e7)
        assert result.result == silo.silo_reference(tree, ops)
        # The window shrinks with the queues but never below 1.
        assert all(w >= 1 for w in workload.lookup_window)


class TestSiloWindowStress:
    def test_deep_tree_small_window(self):
        """Fanout 2 gives a deep tree (long recirculation chains)."""
        keys = np.arange(600, dtype=np.int64)
        tree = BPlusTree(keys, keys * 5, fanout=2)
        assert tree.depth >= 9
        ops = keys[::3]
        config = silo.recommended_config(SystemConfig())
        program, _ = silo.build(tree, ops, config, "fifer")
        result = System(config, program, mode="fifer").run(max_cycles=5e7)
        assert result.result == silo.silo_reference(tree, ops)

    def test_all_misses(self):
        keys = np.arange(1000, dtype=np.int64) * 2
        tree = BPlusTree(keys, keys, fanout=8)
        ops = keys[:200] + 1  # every lookup misses
        config = silo.recommended_config(SystemConfig())
        program, _ = silo.build(tree, ops, config, "fifer")
        result = System(config, program, mode="fifer").run(max_cycles=5e7)
        assert result.result == (0, 0)


class TestSpMMProtocol:
    def test_abort_feedback_is_functionally_invisible(self):
        """Crafted so one list always outlives the other: the abort path
        exercises heavily but results stay exact."""
        n = 60
        # Row i has entries at columns [0..i]; column j at rows [0..j]:
        rows_coo, cols_coo = [], []
        for i in range(n):
            for j in range(0, i + 1, 2):
                rows_coo.append(i)
                cols_coo.append(j)
        from repro.datasets.matrices import _from_coo
        matrix = _from_coo(n, np.array(rows_coo, dtype=np.int64),
                           np.array(cols_coo, dtype=np.int64),
                           np.ones(len(rows_coo)))
        rows = np.arange(n, dtype=np.int64)
        cols = np.arange(n, dtype=np.int64)
        config = SystemConfig()
        workload = SpMMWorkload(matrix, 16, rows, cols)
        program = workload.build_program(config, "fifer")
        result = System(config, program, mode="fifer").run(max_cycles=5e7)
        assert result.result == spmm_reference(matrix, rows, cols)

    def test_empty_matrix(self):
        matrix = random_sparse_matrix(40, 0.0, seed=35)
        rows = np.arange(40, dtype=np.int64)
        cols = np.arange(40, dtype=np.int64)
        config = SystemConfig()
        workload = SpMMWorkload(matrix, 16, rows, cols)
        program = workload.build_program(config, "fifer")
        result = System(config, program, mode="fifer").run(max_cycles=5e7)
        assert result.result == {}
