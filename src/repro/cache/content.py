"""Content addressing for the compile/experiment caches.

Every cache in the repository keys entries by *content*, never by name:

* :func:`code_version` — digest of the ``repro`` package sources; the
  on-disk artifact cache namespaces entries under it so a code change
  can never serve stale compiled artifacts;
* :func:`dataset_digest` — digest of the synthetic-input generators
  plus the input coordinates; part of every result-cache key;
* :func:`kernel_fingerprint` — a canonical serialization of an
  annotated kernel's structure (refs, expression graph, statements,
  init-function sources), so editing a kernel in any observable way
  yields a new split-plan key;
* :func:`mapping_key` — the stage DFG's assembly text (a faithful,
  round-trippable serialization — see ``repro.ir.asmparse``) plus the
  fabric geometry, keying fabric mappings.

All digests are sha256 hex strings.
"""

from __future__ import annotations

import hashlib
import inspect
import textwrap
from functools import lru_cache
from pathlib import Path
from typing import Optional


def sha256_text(*parts: str) -> str:
    """Digest a sequence of text parts with unambiguous framing."""
    h = hashlib.sha256()
    for part in parts:
        data = part.encode("utf-8")
        h.update(str(len(data)).encode("ascii"))
        h.update(b":")
        h.update(data)
    return h.hexdigest()


@lru_cache(maxsize=8)
def _tree_digest(root: str) -> str:
    """Digest of every ``*.py`` file under ``root`` (sorted paths)."""
    root_path = Path(root)
    h = hashlib.sha256()
    for path in sorted(root_path.rglob("*.py")):
        rel = path.relative_to(root_path).as_posix()
        data = path.read_bytes()
        h.update(rel.encode("utf-8"))
        h.update(str(len(data)).encode("ascii"))
        h.update(data)
    return h.hexdigest()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the ``repro`` package sources (this checkout)."""
    import repro
    return _tree_digest(str(Path(repro.__file__).resolve().parent))


def dataset_digest(app: str, input_code: str, scale: float,
                   seed: int) -> str:
    """Content-address of one synthetic input.

    The inputs are generated, not stored, so the digest covers the
    generator code (``repro.datasets``) plus the generation
    coordinates — cheaper than hashing the materialized arrays and
    exactly as discriminating, because generation is deterministic.
    """
    import repro.datasets
    generators = _tree_digest(
        str(Path(repro.datasets.__file__).resolve().parent))
    return sha256_text("dataset/v1", generators, app, input_code,
                       repr(float(scale)), repr(int(seed)))


# -- kernel fingerprinting -------------------------------------------------

_SIMPLE_CELL_TYPES = (int, float, str, bool, bytes, type(None))


def callable_fingerprint(fn, _depth: int = 0) -> Optional[str]:
    """Digest a Python callable by source + defaults + closure cells.

    Captured values that cannot be rendered deterministically degrade
    to an in-process-unique token: the cache then misses conservatively
    instead of aliasing two behaviors under one key.
    """
    if fn is None:
        return None
    parts = [getattr(fn, "__qualname__", "") or repr(type(fn))]
    try:
        parts.append(textwrap.dedent(inspect.getsource(fn)))
    except (OSError, TypeError):
        parts.append(f"<no-source:{id(fn)}>")
    defaults = getattr(fn, "__defaults__", None)
    parts.append(repr(defaults) if defaults else "")
    closure = getattr(fn, "__closure__", None)
    if closure and _depth < 8:
        for cell in closure:
            try:
                value = cell.cell_contents
            except ValueError:
                parts.append("<empty-cell>")
                continue
            if isinstance(value, _SIMPLE_CELL_TYPES):
                parts.append(repr(value))
            elif callable(value):
                parts.append(callable_fingerprint(value, _depth + 1) or "")
            else:
                parts.append(f"<cell:{type(value).__name__}:{id(value)}>")
    return sha256_text("callable/v1", *parts)


def _value_entry(value) -> list:
    """Canonical row for one kernel SSA value."""
    attr: object = None
    if value.op == "load":
        attr = ["load", value.attr.ref.name, bool(value.attr.owner),
                bool(value.attr.marked)]
    elif value.op == "const":
        attr = ["const", repr(value.attr)]
    elif value.op == "edge":
        attr = ["edge", [bound.vid for bound in value.attr]]
    return [value.vid, value.op, [a.vid for a in value.args], attr,
            bool(value.in_edge_loop)]


def kernel_fingerprint(kernel) -> str:
    """Canonical content-address of a :class:`GraphKernel`.

    Walks the declaration list, the SSA expression graph, and the
    statement list in definition order; any edit that changes what the
    front-end would compile — a different constant, predicate, ref
    shape, init function, or fringe — changes the digest. Two
    structurally identical kernels (e.g. the same factory called
    twice) fingerprint identically.
    """
    rows = [
        "kernel/v1",
        kernel.name,
        repr(sorted(kernel.params.items())),
        repr(tuple(kernel.fringe)),
    ]
    for ref in kernel.refs:
        rows.append(repr([ref.name, ref.size, bool(ref.mutable),
                          bool(ref.output),
                          callable_fingerprint(ref.init)]))
    for value in kernel.values:
        rows.append(repr(_value_entry(value)))
    for stmt in kernel.statements:
        rows.append(repr([
            stmt.sid, stmt.kind,
            stmt.ref.name if stmt.ref is not None else None,
            stmt.index.vid if stmt.index is not None else None,
            stmt.value.vid if stmt.value is not None else None,
            bool(stmt.dedup),
            [p.vid for p in stmt.preds],
            bool(stmt.in_edge_loop),
        ]))
    return sha256_text(*rows)


def mapping_key(dfg, fabric, max_replication: Optional[int]) -> str:
    """Content-address of one fabric mapping.

    The DFG's assembly text is a faithful serialization (the asm
    round-trip suite asserts it parses back to an equivalent graph),
    so identical asm ⇒ identical mapping inputs; the fabric geometry
    and the replication cap are the only other mapping inputs.
    """
    return sha256_text(
        "mapping/v1", dfg.name, dfg.to_asm(),
        repr((fabric.cols, fabric.rows, fabric.fma_units,
              fabric.config_bytes)),
        repr(max_replication))
