"""Static pipeline verifier + armable sanitizer (repro.analysis).

The contract under test: every registered workload's compiled program
earns a deadlock-freedom certificate, each of the four canonical build
mistakes — an undersized queue, a dropped credit declaration, a
dangling DFG node, an over-budget stage — is rejected *statically* with
a finding naming the offending queue/stage/node, and arming the runtime
sanitizer leaves simulation results bit-identical on both engines.
"""

import json

import pytest

from repro.analysis import (AnalysisError, SanitizerError,
                            SimulationSanitizer, analyze_program,
                            find_cycle_within,
                            strongly_connected_components)
from repro.cgra.fabric import FabricSpec
from repro.cgra.mapper import UnmappableStageError, map_dfg
from repro.config import SystemConfig
from repro.core import PEProgram, Program, StageSpec, System, STOP_VALUE
from repro.harness import APP_INPUTS, prepare_input, run_experiment
from repro.harness.run import analyze_workload
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec
from repro.queues.queue import Queue

_CONFIG = SystemConfig(n_pes=1)


def _source_dfg(name, out_q):
    b = DFGBuilder(name)
    counter = b.reg("i")
    one = b.const(1)
    nxt = b.add(counter, one)
    b.set_reg(counter, nxt)
    b.enq(out_q, nxt)
    return b.finish()


def _sink_dfg(name, in_q):
    # The dequeued value folds into loop-carried state so nothing
    # dangles and the channel is a data channel, not a sync channel.
    b = DFGBuilder(name)
    acc = b.reg("acc")
    x = b.deq(in_q)
    total = b.add(acc, x)
    b.set_reg(acc, total)
    return b.finish()


def _toy_program(queue_spec=None, src_dfg=None):
    """Two stages on one PE: toy.src -> toy.q -> toy.snk."""
    seen = []

    def producer(ctx):
        for i in range(10):
            yield from ctx.enq("toy.q", i)
        yield from ctx.enq("toy.q", STOP_VALUE, is_control=True)

    def consumer(ctx):
        while True:
            token = yield from ctx.deq("toy.q")
            if token.is_control:
                return
            seen.append(token.value)

    pe = PEProgram(
        shard=0,
        queue_specs=[queue_spec or QueueSpec("toy.q")],
        stage_specs=[
            StageSpec("toy.src", src_dfg or _source_dfg("toy.src", "toy.q"),
                      producer),
            StageSpec("toy.snk", _sink_dfg("toy.snk", "toy.q"), consumer),
        ])
    return Program("toy", [pe], AddressSpace(), MemoryMap(),
                   result_fn=lambda: seen)


def _findings(report, pass_name):
    return [f for f in report.findings if f.pass_name == pass_name]


class TestToyBaseline:
    def test_healthy_program_certifies(self):
        report = analyze_program(_toy_program(), _CONFIG)
        assert report.ok
        assert report.certificate["verdict"] == "deadlock-free"
        assert "toy.q" in report.certificate["channels"]
        report.require_clean()  # must not raise

    def test_require_clean_raises_on_errors(self):
        config = SystemConfig(n_pes=1, queue_mem_bytes=64)
        report = analyze_program(
            _toy_program(queue_spec=QueueSpec("toy.q", entry_words=16)),
            config)
        with pytest.raises(AnalysisError, match="toy"):
            report.require_clean()


class TestSeededMutations:
    """Each seeded build mistake must be caught statically, with the
    offending queue/stage/node named in the finding."""

    def test_undersized_queue_memory(self):
        # 64 bytes = 8 words of queue memory; a 16-word entry floors
        # the queue above the whole budget.
        config = SystemConfig(n_pes=1, queue_mem_bytes=64)
        report = analyze_program(
            _toy_program(queue_spec=QueueSpec("toy.q", entry_words=16)),
            config)
        assert not report.ok
        assert report.certificate is None
        budget = _findings(report, "deadlock.budget")
        assert budget and "'toy.q'" in budget[0].message
        assert "does not fit" in budget[0].message

    def test_dropped_credit_declaration(self):
        # toy.src enqueues, but the spec only grants credits to a ghost
        # producer: the enqueue would raise at runtime.
        spec = QueueSpec("toy.q", producers=("toy.ghost", "toy.other"))
        report = analyze_program(_toy_program(queue_spec=spec), _CONFIG)
        assert not report.ok
        credit = _findings(report, "deadlock.credit")
        errors = [f for f in credit if f.severity == "error"]
        assert errors and "'toy.src'" in errors[0].message
        assert "without a credit" in errors[0].message
        # ...and the reserved-but-unused shares are flagged too.
        assert any(f.severity == "warning" for f in credit)

    def test_dangling_dfg_node(self):
        b = DFGBuilder("toy.src")
        counter = b.reg("i")
        one = b.const(1)
        nxt = b.add(counter, one)
        b.set_reg(counter, nxt)
        b.enq("toy.q", nxt)
        dead = b.mul(nxt, nxt)  # result never consumed
        report = analyze_program(_toy_program(src_dfg=b.finish()), _CONFIG)
        assert not report.ok
        found = _findings(report, "dfg.dead")
        assert found and found[0].subject == f"toy.src.n{dead.node_id}"
        assert "never consumed" in found[0].message

    def test_over_budget_stage(self):
        # 17 adds on one dataflow level exceed the 16-column fabric; the
        # pass must name the first node that does not fit, and the
        # mapper must agree the stage is unmappable.
        b = DFGBuilder("toy.src")
        counter = b.reg("i")
        one = b.const(1)
        nxt = b.add(counter, one)
        b.set_reg(counter, nxt)
        lanes = [b.add(nxt, one) for _ in range(17)]
        for lane in lanes:
            b.enq("toy.q", lane)
        dfg = b.finish()
        report = analyze_program(_toy_program(src_dfg=dfg), _CONFIG)
        assert not report.ok
        feas = _findings(report, "dfg.feasibility")
        assert feas and feas[0].subject == f"toy.src.n{lanes[16].node_id}"
        assert "needs 17 columns" in feas[0].message
        assert not report.stages["toy.src"]["fits"]
        with pytest.raises(UnmappableStageError):
            map_dfg(dfg, FabricSpec.from_config(_CONFIG.fabric))


class TestWorkloadCertification:
    @pytest.mark.parametrize("app", sorted(APP_INPUTS))
    def test_every_workload_certifies(self, app):
        report = analyze_workload(app, APP_INPUTS[app][0], scale=0.1)
        assert report.ok, [f.message for f in report.errors]
        assert report.certificate["verdict"] == "deadlock-free"
        assert all(rec["fits"] for rec in report.stages.values())

    def test_static_mode_certifies(self):
        report = analyze_workload("bfs", "Hu", system="static", scale=0.1)
        assert report.ok
        assert report.mode == "static"

    def test_sync_channels_recorded(self):
        # silo's traversal credits and spmm's producer-pacing channels
        # are pure synchronization: the certificate must record them as
        # assumptions rather than silently dropping their wait edges.
        silo = analyze_workload("silo", "YC", scale=0.1)
        assert any("credits" in name
                   for name in silo.certificate["sync_channels"])
        spmm = analyze_workload("spmm", APP_INPUTS["spmm"][0], scale=0.1)
        sync = spmm.certificate["sync_channels"]
        assert any("next_a" in name for name in sync)
        assert any("next_b" in name for name in sync)

    def test_json_report_is_deterministic(self):
        report = analyze_workload("bfs", "Hu", scale=0.1)
        text = report.to_json()
        payload = json.loads(text)
        assert list(payload) == sorted(payload)
        assert list(payload["certificate"]) == sorted(payload["certificate"])
        assert text == analyze_workload("bfs", "Hu", scale=0.1).to_json()


class TestGraphWalkers:
    def test_scc_partition(self):
        edges = {1: [2], 2: [3], 3: [1], 4: [1]}
        sccs = strongly_connected_components(
            [1, 2, 3, 4], lambda n: edges.get(n, []))
        assert sorted(sorted(s) for s in sccs) == [[1, 2, 3], [4]]

    def test_find_cycle_within(self):
        edges = {1: [(2, "a")], 2: [(3, "b"), (5, "x")], 3: [(1, "c")]}
        cycle = find_cycle_within({1, 2, 3},
                                  lambda n: iter(edges.get(n, [])))
        nodes = [n for n, _ in cycle]
        assert sorted(nodes) == [1, 2, 3]
        labels = {label for _, label in cycle}
        assert labels == {"a", "b", "c"}

    def test_acyclic_subgraph_has_no_cycle(self):
        edges = {1: [(2, "a")], 2: []}
        assert find_cycle_within({1, 2},
                                 lambda n: iter(edges.get(n, []))) == []


class TestSanitizerUnit:
    def _system(self):
        return System(_CONFIG, _toy_program(), mode="fifer")

    def test_armed_run_matches_unarmed(self):
        plain = self._system().run()
        armed_system = self._system()
        sanitizer = SimulationSanitizer().arm(armed_system)
        armed = armed_system.run()
        sanitizer.disarm()
        assert armed.cycles == plain.cycles
        assert armed.result == plain.result == list(range(10))
        assert sanitizer.checked_quanta > 0

    def test_deep_mode_audits_events(self):
        system = self._system()
        sanitizer = SimulationSanitizer(deep=True).arm(system)
        result = system.run()
        sanitizer.disarm()
        assert result.result == list(range(10))
        assert sanitizer.checked_events > 0

    def test_disarm_detaches_owned_bus(self):
        system = self._system()
        sanitizer = SimulationSanitizer().arm(system)
        assert system.telemetry is not None
        bus = sanitizer.bus
        sanitizer.disarm()
        assert system.telemetry is None
        assert sanitizer not in bus.samplers
        with pytest.raises(RuntimeError):
            SimulationSanitizer().arm(system).arm(system)

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError, match="stride must be positive"):
            SimulationSanitizer(stride=0)

    def test_detects_occupancy_corruption(self):
        system = self._system()
        sanitizer = SimulationSanitizer().arm(system)
        system.queues["toy.q"]._occupancy_words += 1
        with pytest.raises(SanitizerError, match="stored tokens"):
            sanitizer.check(system)

    def test_detects_credit_leak(self):
        def noop(ctx):
            yield from ()

        dfg_a = _source_dfg("two.a", "two.q")
        dfg_b = _source_dfg("two.b", "two.q")
        pe = PEProgram(
            shard=0,
            queue_specs=[QueueSpec("two.q",
                                   producers=("two.a", "two.b"))],
            stage_specs=[
                StageSpec("two.a", dfg_a, noop),
                StageSpec("two.b", dfg_b, noop),
                StageSpec("two.snk", _sink_dfg("two.snk", "two.q"), noop),
            ])
        program = Program("two", [pe], AddressSpace(), MemoryMap(),
                          result_fn=lambda: None)
        system = System(_CONFIG, program, mode="fifer")
        sanitizer = SimulationSanitizer().arm(system)
        credits = system.queues["two.q"]._credits
        credits[next(iter(credits))] -= 1
        with pytest.raises(SanitizerError, match="credit leaked"):
            sanitizer.check(system)

    def test_detects_double_buffer_violation(self):
        system = self._system()
        sanitizer = SimulationSanitizer().arm(system)
        system.pes[0]._reconfig_remaining = 5.0
        with pytest.raises(SanitizerError, match="double-buffer"):
            sanitizer.check(system)

    def test_detects_clock_rollback(self):
        system = self._system()
        sanitizer = SimulationSanitizer().arm(system)
        sanitizer._pe_clock[0] = system.pes[0].now + 100.0
        with pytest.raises(SanitizerError, match="clock moved backwards"):
            sanitizer.check(system)


# Tiny scales: the sanitizer's invariants are scale-independent, and the
# differential check runs each workload three times (two engines).
_SANITIZE_SCALES = {"spmm": 0.3, "silo": 0.5}
_APPS = sorted(APP_INPUTS)


@pytest.fixture(scope="module")
def sanitize_inputs():
    return {app: prepare_input(app, APP_INPUTS[app][0],
                               scale=_SANITIZE_SCALES.get(app, 0.1))
            for app in _APPS}


@pytest.mark.parametrize("app", _APPS)
def test_sanitized_runs_are_bit_identical(app, sanitize_inputs):
    """Every workload that passes the analyzer completes under both
    engines with the sanitizer armed, at the unarmed cycle count."""
    code = APP_INPUTS[app][0]
    prepared = sanitize_inputs[app]
    plain = run_experiment(app, code, "fifer", prepared=prepared)
    armed = run_experiment(app, code, "fifer", prepared=prepared,
                           sanitize=True)
    naive = run_experiment(app, code, "fifer", prepared=prepared,
                           engine="naive", sanitize=True)
    assert plain.correct and armed.correct and naive.correct
    assert armed.cycles == plain.cycles == naive.cycles


class TestValidationErrors:
    def test_queue_spec_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="entry_words must be positive"):
            QueueSpec("q", entry_words=0)
        with pytest.raises(ValueError, match="weight must be positive"):
            QueueSpec("q", weight=0)

    def test_queue_rejects_zero_entry_words(self):
        with pytest.raises(ValueError, match="entry_words must be positive"):
            Queue("q", capacity_words=8, entry_words=0)

    def test_config_names_offending_field(self):
        with pytest.raises(ValueError, match="n_drms must be >= 0"):
            SystemConfig(n_drms=-1)
        with pytest.raises(ValueError, match="drm_issue_width"):
            SystemConfig(drm_issue_width=0)
        with pytest.raises(ValueError, match="drm_max_outstanding"):
            SystemConfig(drm_max_outstanding=0)
        with pytest.raises(ValueError, match="max_queues_per_pe"):
            SystemConfig(max_queues_per_pe=0)
        with pytest.raises(ValueError, match="deadlock_quanta"):
            SystemConfig(deadlock_quanta=0)


class TestLintExitCodeContract:
    """`repro lint` exit codes: nonzero on counterexample/error findings
    (including builds that fail outright), zero when the certificate is
    issued — with or without assumptions."""

    @staticmethod
    def _patch(monkeypatch, outcome):
        import repro.harness.run as run_mod

        def fake_analyze(app, code, **kwargs):
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        monkeypatch.setattr(run_mod, "analyze_workload", fake_analyze)

    @staticmethod
    def _report(findings=(), certified=True):
        from repro.analysis.report import AnalysisReport, Finding
        report = AnalysisReport(program="bfs/Hu", mode="fifer")
        for severity, message in findings:
            report.findings.append(
                Finding(severity, "deadlock.sync", "q", message))
        if certified and report.ok:
            report.certificate = {
                "verdict": "deadlock-free",
                "wait_graph": {"nodes": 2, "edges": 1},
                "round_trips": [], "sync_channels": [],
                "assumptions": ["q assumed pure synchronization"],
            }
        return report

    def test_zero_on_certify_with_assumptions(self, monkeypatch, capsys):
        from repro.cli import main
        self._patch(monkeypatch, self._report(
            findings=[("warning", "channel assumed pure synchronization")]))
        assert main(["lint", "bfs"]) == 0
        assert "deadlock-free" in capsys.readouterr().out

    def test_nonzero_on_error_finding(self, monkeypatch, capsys):
        from repro.cli import main
        self._patch(monkeypatch, self._report(
            findings=[("error", "credit cycle: a -> b -> a")],
            certified=False))
        assert main(["lint", "bfs"]) == 1
        assert "credit cycle" in capsys.readouterr().out

    def test_nonzero_when_build_raises(self, monkeypatch, capsys):
        from repro.cli import main
        self._patch(monkeypatch, RuntimeError("queue_mem_bytes too small"))
        assert main(["lint", "bfs", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        (finding,) = payload["findings"]
        assert finding["pass"] == "lint.build"
        assert finding["severity"] == "error"
        assert "queue_mem_bytes too small" in finding["message"]

    def test_suggest_findings_are_info_only(self, monkeypatch, capsys):
        from repro.cli import main
        self._patch(monkeypatch, self._report())
        assert main(["lint", "bfs", "--suggest", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        advise = [f for f in payload["findings"]
                  if f["pass"] == "autosplit.advise"]
        assert advise and advise[0]["severity"] == "info"
        assert "matches the hand-marked split" in advise[0]["message"]

    def test_suggest_on_non_frontend_app(self, monkeypatch, capsys):
        from repro.cli import main
        self._patch(monkeypatch, self._report())
        assert main(["lint", "silo", "--suggest", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        advise = [f for f in payload["findings"]
                  if f["pass"] == "autosplit.advise"]
        assert advise and "no annotated kernel" in advise[0]["message"]
