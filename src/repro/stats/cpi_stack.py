"""CPI-stack cycle breakdowns (paper Fig. 14).

The paper extends the CPI-stack methodology of Eyerman et al. to PEs,
reporting cycles spent (1) performing useful computation ("issued"),
(2) waiting on backend/CGRA stalls from non-decoupled loads, (3) full or
empty queues, (4) reconfigurations, and (5) idle (a PE completely
inactive waiting on others, e.g., a barrier).
"""

from __future__ import annotations

from repro.stats.counters import Counters

CPI_BUCKETS = ("issued", "stall_mem", "queue", "reconfig", "idle")

# PE counter names folded into each reported bucket.
_BUCKET_SOURCES = {
    "issued": ("issued",),
    "stall_mem": ("stall_mem",),
    "queue": ("stall_queue_full", "stall_queue_empty"),
    "reconfig": ("reconfig",),
    "idle": ("idle",),
}


def cpi_stack(counters: Counters, total_cycles: float) -> dict[str, float]:
    """Fold PE counters into the five reported buckets.

    Any cycles not attributed by the counters (e.g., a PE that finished
    early and sat inactive until the program ended) are charged to
    ``idle`` so the buckets always sum to ``total_cycles``.
    """
    stack = {
        bucket: sum(counters[name] for name in names)
        for bucket, names in _BUCKET_SOURCES.items()
    }
    accounted = sum(stack.values())
    stack["idle"] += max(0.0, total_cycles - accounted)
    return stack


def merge_stacks(stacks) -> dict[str, float]:
    """Sum per-PE stacks into a system-level stack."""
    merged = {bucket: 0.0 for bucket in CPI_BUCKETS}
    for stack in stacks:
        for bucket in CPI_BUCKETS:
            merged[bucket] += stack.get(bucket, 0.0)
    return merged
