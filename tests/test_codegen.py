"""The codegen backend: determinism, caching, fallback, and the CLI.

Locks the tentpole properties of :mod:`repro.codegen`:

* source generation is **deterministic** — the same stage shape emits
  byte-identical Python, so the text content-addresses cleanly under
  the artifact cache's ``codegen`` kind;
* a warm cache performs **zero source generation** (emission counter
  plus a raising stub prove it), both within a process and across a
  process boundary via the disk layer;
* stages without a codegen descriptor (spmm, silo) **fall back** to
  the interpreted coroutine path instead of erroring, and the run
  reports bound/fallback counts in ``engine_stats``;
* ``repro compile --emit-python`` dumps the exact source the binder
  would execute.
"""

import json

import pytest

from repro.cache.artifacts import ArtifactCache
from repro.cli import main as cli_main
from repro.codegen import (CODEGEN_VERSION, ROLES, StageShape, bind_system,
                           emitted_count, source_for, stage_source)
from repro.harness import prepare_input, run_experiment
from repro.ir import DFGBuilder
from repro.workloads.bfs import BFSWorkload


@pytest.fixture(scope="module")
def bfs_prepared():
    return prepare_input("bfs", "Hu", scale=0.1)


def _bfs_workload(n_shards=2):
    return BFSWorkload(prepare_input("bfs", "Hu", scale=0.1).data,
                       n_shards=n_shards)


def _bfs_shapes():
    """The four stage shapes of a bfs shard, via the descriptor hook."""
    specs = _bfs_workload()._shard_stage_specs(0)
    return {key: specs[key].codegen[0] for key in ("s0", "s1", "s2", "s3")}


# -- determinism ----------------------------------------------------------


class TestDeterminism:

    def test_same_shape_emits_identical_source(self):
        for role in ROLES:
            shape = StageShape(role, simple_edges=True, trivial_vp=False)
            again = StageShape(role, simple_edges=True, trivial_vp=False)
            assert stage_source(shape) == stage_source(again)
            assert shape.key() == again.key()

    def test_distinct_shapes_distinct_sources(self):
        keys, sources = set(), set()
        for role in ROLES:
            for simple in (False, True):
                for trivial in (False, True):
                    shape = StageShape(role, simple_edges=simple,
                                       trivial_vp=trivial)
                    keys.add(shape.key())
                    sources.add(stage_source(shape))
        # s2/s3 don't depend on both axes, so sources collapse — but
        # every (role, axes) combination still compiles.
        assert len(keys) == len(ROLES) * 4
        assert len(sources) >= len(ROLES)

    def test_key_is_versioned(self):
        shape = StageShape("s1", simple_edges=True, trivial_vp=False)
        assert CODEGEN_VERSION in repr(stage_source(shape))
        # The key is a stable hex digest (cache addressing).
        key = shape.key()
        assert key == shape.key()
        int(key, 16)

    def test_shards_share_shapes(self):
        """Every shard of a workload maps to the same four shapes, so a
        16-PE system compiles at most four step-function bodies."""
        workload = _bfs_workload(n_shards=4)
        keys = set()
        for shard in range(4):
            specs = workload._shard_stage_specs(shard)
            keys.update(specs[k].codegen[0].key()
                        for k in ("s0", "s1", "s2", "s3"))
        assert len(keys) == 4

    def test_generated_source_compiles(self):
        for key, shape in _bfs_shapes().items():
            source = stage_source(shape)
            namespace: dict = {}
            exec(compile(source, "<test>", "exec"), namespace)
            assert callable(namespace["make_step"]), key


# -- caching: warm runs perform zero source generation --------------------


class TestCaching:

    def test_miss_store_hit_counters(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        shape = _bfs_shapes()["s1"]
        before = emitted_count()
        first = source_for(shape, cache)
        assert emitted_count() == before + 1
        assert cache.counters["codegen.miss"] == 1
        assert cache.counters["codegen.store"] == 1
        second = source_for(shape, cache)
        assert second == first
        assert cache.counters["codegen.hit"] == 1
        assert emitted_count() == before + 1  # no second generation

    def test_disk_layer_survives_process_boundary(self, tmp_path,
                                                  monkeypatch):
        shape = _bfs_shapes()["s1"]
        warm = ArtifactCache(root=tmp_path)
        first = source_for(shape, warm)
        # A "new process": fresh cache instance over the same root,
        # with the emitter rigged to blow up if invoked.
        def boom(_shape):
            raise AssertionError("warm run generated source")
        monkeypatch.setattr("repro.codegen.runtime.stage_source", boom)
        fresh = ArtifactCache(root=tmp_path)
        assert source_for(shape, fresh) == first
        assert fresh.counters["codegen.disk_hit"] == 1

    def test_warm_bind_generates_nothing(self, bfs_prepared, monkeypatch):
        """After one codegen run, rebinding (the warm service-submit
        path) must not emit source: the raising stub proves neither the
        artifact cache nor the factory cache falls through."""
        run_experiment("bfs", "Hu", "fifer", prepared=bfs_prepared,
                       codegen=True)
        def boom(_shape):
            raise AssertionError("warm bind generated source")
        monkeypatch.setattr("repro.codegen.runtime.stage_source", boom)
        before = emitted_count()
        res = run_experiment("bfs", "Hu", "fifer", prepared=bfs_prepared,
                             codegen=True)
        assert emitted_count() == before
        assert res.raw.engine_stats["codegen_stages"] == 64


# -- fallback -------------------------------------------------------------


class TestFallback:

    def test_graph_apps_bind_all_stages(self, bfs_prepared):
        res = run_experiment("bfs", "Hu", "fifer", prepared=bfs_prepared,
                             codegen=True)
        stats = res.raw.engine_stats
        assert stats["codegen_stages"] == 64
        assert stats["codegen_fallback"] == 0

    @pytest.mark.parametrize("app,code,scale", [("spmm", "GE", 0.1),
                                                ("silo", "YC", 1.0)])
    def test_undescribed_stages_fall_back(self, app, code, scale):
        """Workloads without codegen descriptors run unchanged on the
        interpreted path — same cycles, fallback counted, no error."""
        prepared = prepare_input(app, code, scale=scale)
        interp = run_experiment(app, code, "fifer", prepared=prepared,
                                codegen=False)
        compiled = run_experiment(app, code, "fifer", prepared=prepared,
                                  codegen=True)
        assert compiled.raw.cycles == interp.raw.cycles
        stats = compiled.raw.engine_stats
        assert stats["codegen_stages"] == 0
        assert stats["codegen_fallback"] == 64

    def test_signature_mismatch_falls_back(self, bfs_prepared):
        """A descriptor whose queue contract disagrees with the stage
        DFG is rejected at bind time (defensive fallback, not a wrong
        answer)."""
        from repro.config import SystemConfig
        from repro.core import System
        from repro.workloads import bfs as bfs_mod
        program, _workload = bfs_mod.build(bfs_prepared.data,
                                           SystemConfig(), "fifer")
        system = System(SystemConfig(), program, mode="fifer")
        # Corrupt one spec's recorded contract.
        stage = system.pes[0].stages[0]
        shape, bindings = stage.spec.codegen
        bad = dict(bindings)
        bad["consumed"] = frozenset({"no.such.queue"})
        object.__setattr__(stage.spec, "codegen", (shape, bad))
        bound, fallback = bind_system(system)
        assert fallback >= 1
        assert bound + fallback == sum(len(pe.stages) for pe in system.pes)

    def test_interp_run_clears_stale_step_fns(self, bfs_prepared):
        """Toggling codegen off on the same System really re-interprets
        (stale step-functions are dropped, not silently reused)."""
        from repro.config import SystemConfig
        from repro.core import System
        from repro.workloads import bfs as bfs_mod
        program, _workload = bfs_mod.build(bfs_prepared.data,
                                           SystemConfig(), "fifer")
        system = System(SystemConfig(), program, mode="fifer")
        bind_system(system)
        assert any(s.step_fn is not None
                   for pe in system.pes for s in pe.stages)
        system.run(codegen=False)
        assert all(s.step_fn is None
                   for pe in system.pes for s in pe.stages)


# -- the IR walker the binder cross-checks against ------------------------


def test_iter_queue_ops_and_signature():
    b = DFGBuilder("walker")
    x = b.deq("q_in")
    b.enq("q_out", b.add(x, b.const(1)))
    b.enq("q_out", x)
    dfg = b.finish()
    ops = list(dfg.iter_queue_ops())
    assert ops == [("deq", "q_in"), ("enq", "q_out"), ("enq", "q_out")]
    assert dfg.queue_signature() == (frozenset({"q_in"}),
                                     frozenset({"q_out"}))


# -- the CLI dump ---------------------------------------------------------


class TestEmitPythonCLI:

    def test_dumps_all_stages(self, capsys):
        assert cli_main(["compile", "bfs", "--emit-python"]) == 0
        out = capsys.readouterr().out
        assert out.count("# stage ") == 4
        assert "def make_step(pe, stage, b):" in out

    def test_single_stage_json_matches_generated_source(self, capsys):
        assert cli_main(["compile", "bfs", "--emit-python", "--json",
                         "--stage", "1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["role"] == "s1"
        # Round-trip: rebuild the shape from the dumped header and
        # confirm the CLI printed exactly what the emitter generates.
        header = next(line for line in record["source"].splitlines()
                      if line.startswith("# shape:"))
        shape = StageShape("s1",
                           simple_edges="simple_edges=True" in header,
                           trivial_vp="trivial_vp=True" in header)
        assert record["source"] == stage_source(shape)
        assert record["key"] == shape.key()

    def test_stage_out_of_range_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["compile", "bfs", "--emit-python", "--stage", "7"])


# -- env knobs ------------------------------------------------------------


class TestEnvKnobs:

    def test_codegen_flag_spellings(self, monkeypatch):
        from repro.env import EnvKnobError, env_flag
        for raw, expected in (("1", True), ("true", True), ("ON", True),
                              ("0", False), ("off", False)):
            monkeypatch.setenv("REPRO_CODEGEN", raw)
            assert env_flag("REPRO_CODEGEN") is expected
        monkeypatch.setenv("REPRO_CODEGEN", "maybe")
        with pytest.raises(EnvKnobError, match="REPRO_CODEGEN"):
            env_flag("REPRO_CODEGEN")

    def test_run_honors_env_default(self, bfs_prepared, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "1")
        res = run_experiment("bfs", "Hu", "fifer", prepared=bfs_prepared)
        assert res.raw.engine_stats["codegen_stages"] == 64

    def test_bench_engine_knob_validated(self, monkeypatch):
        from repro.env import EnvKnobError, env_choice
        from repro.core import ENGINES
        monkeypatch.setenv("REPRO_BENCH_ENGINE", "warp")
        with pytest.raises(EnvKnobError, match="REPRO_BENCH_ENGINE"):
            env_choice("REPRO_BENCH_ENGINE", "fast", ENGINES)
