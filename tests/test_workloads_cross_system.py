"""Cross-system functional verification for every workload.

Every workload must produce the golden reference result on all four
evaluated systems (serial OOO, 4-core OOO, static pipeline, Fifer) and
on the merged pipeline variants — the property the whole evaluation
rests on.
"""

import pytest

from repro.harness import prepare_input, run_experiment
from repro.harness.run import APP_INPUTS, SYSTEMS

_FAST_CASES = [
    ("bfs", "Hu", 0.2),
    ("cc", "Ci", 0.15),
    ("prd", "Hu", 0.15),
    ("radii", "In", 0.15),
    ("spmm", "Gr", 0.5),
    ("silo", "YC", 1.0),
]


@pytest.fixture(scope="module")
def prepared_inputs():
    return {(app, code): prepare_input(app, code, scale=scale)
            for app, code, scale in _FAST_CASES}


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("app,code,scale", _FAST_CASES)
def test_all_systems_match_reference(app, code, scale, system,
                                     prepared_inputs):
    # run_experiment raises AssertionError on a reference mismatch.
    result = run_experiment(app, code, system,
                            prepared=prepared_inputs[(app, code)])
    assert result.correct
    assert result.cycles > 0


@pytest.mark.parametrize("mode", ["static", "fifer"])
@pytest.mark.parametrize("app,code,scale", _FAST_CASES)
def test_merged_variants_match_reference(app, code, scale, mode,
                                         prepared_inputs):
    result = run_experiment(app, code, mode, variant="merged",
                            prepared=prepared_inputs[(app, code)])
    assert result.correct


@pytest.mark.parametrize("app,code,scale", _FAST_CASES)
def test_energy_breakdown_is_positive(app, code, scale, prepared_inputs):
    result = run_experiment(app, code, "fifer",
                            prepared=prepared_inputs[(app, code)])
    assert all(v >= 0 for v in result.energy.values())
    assert sum(result.energy.values()) > 0


def test_all_registered_inputs_generate():
    for app, codes in APP_INPUTS.items():
        for code in codes:
            prepared = prepare_input(app, code, scale=0.1)
            assert prepared.golden is not None
