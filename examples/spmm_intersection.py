#!/usr/bin/env python3
"""SpMM: merge-intersection and the cost of control-intensive pipelines.

Sparse matrix-matrix multiplication is the paper's control-intensive
workload: the merge-intersect stage redirects its producers at the end
of every row/column pair, so sparser matrices mean shorter
intersections, more frequent queue-empty events, and more
reconfigurations on Fifer (Sec. 8.2). This example multiplies a very
sparse (p2p-network-like) and a denser (structural-mechanics-like)
matrix, comparing the decoupled pipelines against the merged variant
that trades decoupling for data parallelism (Sec. 8.4).

Run:  python examples/spmm_intersection.py
"""

from repro import System, SystemConfig
from repro.datasets.matrices import make_matrix
from repro.harness import format_table
from repro.workloads import spmm


def run_case(matrix, mode, variant, config):
    program, workload = spmm.build(matrix, config, mode, variant,
                                   n_rows=48, n_cols=48)
    result = System(config, program, mode=mode).run()
    golden = spmm.spmm_reference(matrix, workload.rows, workload.cols)
    assert result.result == golden, "SpMM result mismatch!"
    return result


def main():
    config = SystemConfig()
    rows = []
    for code, label in (("FS", "sparse (2.4 nnz/row)"),
                        ("St", "dense (52.9 nnz/row)")):
        matrix = make_matrix(code, scale=0.8)
        fifer = run_case(matrix, "fifer", "decoupled", config)
        static = run_case(matrix, "static", "decoupled", config)
        merged = run_case(matrix, "static", "merged", config)
        rows.append([
            f"{code} {label}",
            f"{static.cycles:,.0f}",
            f"{static.cycles / fifer.cycles:.2f}x",
            f"{static.cycles / merged.cycles:.2f}x",
            f"{fifer.avg_residence_cycles:.0f}",
            f"{fifer.avg_reconfig_cycles:.1f}",
        ])
        print(f"{code}: {matrix.n}x{matrix.n}, {matrix.nnz} non-zeros "
              f"(verified on all variants)")
    print()
    print(format_table(
        ["matrix", "static cycles", "Fifer speedup", "merged-static speedup",
         "Fifer residence", "Fifer reconfig"],
        rows,
        title="Inner-product SpMM: the sparse input favors the merged "
              "pipeline, the dense input favors decoupling (paper Fig. 17)"))


if __name__ == "__main__":
    main()
