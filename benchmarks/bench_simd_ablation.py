"""SIMD datapath-replication ablation (paper Sec. 5.6).

The paper exploits SIMD-style parallelism within a PE by replicating a
stage's datapath across unused fabric columns ("a 16x5 grid ... can be
configured as four copies of a datapath that fit on a smaller 4x5 grid,
yielding a potential 4x throughput improvement"). This benchmark caps
the replication factor at 1/2/4/unbounded and reports Fifer's
performance, quantifying how much of its throughput comes from filling
the fabric.
"""

from bench_common import emit, experiment, prepared
from repro.config import SystemConfig
from repro.harness import format_table
from repro.harness.run import run_experiment

CAPS = (1, 2, 4, None)


def _run(app, code, cap):
    config = SystemConfig(max_simd_replication=cap)
    return run_experiment(app, code, "fifer", prepared=prepared(app, code),
                          config=config).cycles


def run_simd_ablation():
    rows = []
    gains = {}
    for app, code in (("bfs", "In"), ("cc", "Hu"), ("spmm", "GE")):
        base = _run(app, code, None)
        speedups = [base / _run(app, code, cap) for cap in CAPS]
        rows.append([f"{app}/{code}"]
                    + [f"{s:.2f}" for s in speedups])
        gains[app] = speedups
    table = format_table(
        ["app"] + [str(c or "unbounded") for c in CAPS], rows,
        title=("SIMD replication ablation: Fifer performance vs the "
               "replication cap (1.0 = unbounded)"))
    emit("simd_ablation", table)
    return gains


def test_simd_ablation(benchmark):
    gains = benchmark.pedantic(run_simd_ablation, rounds=1, iterations=1)
    for app, speedups in gains.items():
        # No SIMD replication costs real performance...
        assert speedups[0] < 0.95, (app, speedups)
        # ...and more replication never hurts (monotone within noise).
        assert speedups[0] <= speedups[2] + 0.05
        assert abs(speedups[3] - 1.0) < 1e-9
