"""Tests for the experiment harness and configuration plumbing."""

import dataclasses

import numpy as np
import pytest

from repro.config import SystemConfig, FabricConfig
from repro.harness import prepare_input, run_experiment, speedup_table
from repro.harness.run import APP_INPUTS, default_scale, _check


class TestConfig:
    def test_defaults_match_table2(self):
        config = SystemConfig()
        assert config.n_pes == 16
        assert config.l1.size_bytes == 32 * 1024
        assert config.l1.ways == 8 and config.l1.latency == 4
        assert config.llc_per_pe_bytes == 512 * 1024
        assert config.llc_latency == 40
        assert config.memory.latency == 120
        assert config.queue_mem_bytes == 16 * 1024
        assert config.max_queues_per_pe == 16

    def test_fabric_matches_paper(self):
        fabric = FabricConfig()
        assert fabric.cols * fabric.rows == 80       # 16x5 FUs
        assert fabric.fma_units == 4
        assert fabric.config_chunks == 6             # ~360 B / 64 B
        assert fabric.activation_cycles == 2

    def test_replace_is_pure(self):
        base = SystemConfig()
        other = base.replace(queue_mem_bytes=4096)
        assert other.queue_mem_bytes == 4096
        assert base.queue_mem_bytes == 16 * 1024
        assert dataclasses.is_dataclass(other)

    def test_llc_aggregate(self):
        config = SystemConfig()
        assert config.llc.size_bytes == 16 * 512 * 1024


class TestHarnessPlumbing:
    def test_registered_inputs(self):
        assert set(APP_INPUTS) == {"bfs", "cc", "prd", "radii", "sssp",
                                   "spmm", "silo"}
        assert all(len(v) >= 1 for v in APP_INPUTS.values())

    def test_default_scales(self):
        # Low-degree, high-diameter inputs get larger scales.
        assert default_scale("bfs", "Dy") > default_scale("bfs", "Hu")
        assert default_scale("spmm", "FS") == default_scale("spmm", "St")

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            prepare_input("sorting", "Hu")

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("bfs", "Hu", "tpu")

    def test_speedup_table(self):
        class R:
            def __init__(self, cycles):
                self.cycles = cycles

        table = speedup_table({"multicore": R(100.0), "fifer": R(25.0)})
        assert table["fifer"] == pytest.approx(4.0)
        assert table["multicore"] == pytest.approx(1.0)

    def test_check_exact_for_int_apps(self):
        golden = np.array([1, 2, 3])
        assert _check("bfs", np.array([1, 2, 3]), golden)
        assert not _check("bfs", np.array([1, 2, 4]), golden)

    def test_check_tolerant_for_prd(self):
        # PRD tolerance scales as ~1/n (threshold-crossing wiggle room).
        golden = np.full(200, 0.005)
        assert _check("prd", golden + 1e-9, golden)
        assert not _check("prd", golden + 1.0, golden)

    def test_check_spmm_requires_same_coordinates(self):
        golden = {(0, 1): 2.0}
        assert _check("spmm", {(0, 1): 2.0}, golden)
        assert not _check("spmm", {(0, 2): 2.0}, golden)
        assert not _check("spmm", {}, golden)

    def test_mismatch_raises(self, monkeypatch):
        prepared = prepare_input("bfs", "Hu", scale=0.1)
        poisoned = dataclasses.replace(
            prepared, golden=prepared.golden + 1)
        with pytest.raises(AssertionError):
            run_experiment("bfs", "Hu", "fifer", prepared=poisoned)

    def test_ooo_config_override(self):
        from repro.config import OOOConfig
        prepared = prepare_input("bfs", "Hu", scale=0.1)
        fast = run_experiment("bfs", "Hu", "serial", prepared=prepared,
                              ooo_config=OOOConfig(effective_ipc=6.0))
        slow = run_experiment("bfs", "Hu", "serial", prepared=prepared,
                              ooo_config=OOOConfig(effective_ipc=0.5))
        assert fast.cycles < slow.cycles

    def test_silo_config_gets_4kb_queues(self):
        prepared = prepare_input("silo", "YC")
        result = run_experiment("silo", "YC", "fifer", prepared=prepared)
        assert result.raw.config.queue_mem_bytes == 4 * 1024
