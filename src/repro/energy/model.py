"""Per-event energy model (paper Sec. 7.1, Fig. 15).

The paper models core and uncore energy at 22 nm with McPAT, HBM energy
from O'Connor et al., and fabric energy from post-synthesis power scaled
from 45 nm to 22 nm. We substitute a per-event model with constants in
those tools' ranges (all in picojoules at ~22 nm):

* 64-bit ALU op through a fabric functional unit + switch hop: ~3 pJ.
* Queue SRAM push/pop: ~2 pJ.
* 32 KB L1 access ~15 pJ; 256 KB L2 ~40 pJ; multi-MB LLC ~100 pJ.
* HBM: ~4 pJ/bit => ~2 nJ per 64-byte line.
* OOO core pipeline energy per retired instruction (fetch/decode/rename/
  issue/bypass, excluding caches): ~250 pJ — the instruction
  interpretation overhead the paper's introduction calls out.
* Leakage: proportional to area and runtime (~50 mW/mm^2 at 22 nm).

The Fig. 15 buckets are: Memory (HBM dynamic), Caches (L1/L2/LLC
dynamic), Compute (fabric or core dynamic), Leakage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.area import ooo_core_area_mm2, pe_area_mm2

PJ = 1e-12

E_FABRIC_OP = 3.0 * PJ
E_QUEUE_OP = 2.0 * PJ
E_DRM_OP = 2.0 * PJ
E_L1 = 15.0 * PJ
E_L2 = 40.0 * PJ
E_LLC = 100.0 * PJ
E_DRAM_LINE = 2000.0 * PJ
E_OOO_INSTR = 250.0 * PJ
LEAKAGE_W_PER_MM2 = 0.05
LLC_AREA_MM2_PER_MB = 2.0
FREQ_HZ = 2e9


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per Fig. 15 bucket."""

    memory: float
    caches: float
    compute: float
    leakage: float

    @property
    def total(self) -> float:
        return self.memory + self.caches + self.compute + self.leakage

    def as_dict(self) -> dict[str, float]:
        return {"memory": self.memory, "caches": self.caches,
                "compute": self.compute, "leakage": self.leakage}


class EnergyModel:
    """Computes Fig. 15 energy breakdowns for both system families."""

    def __init__(self, llc_mb: float = 8.0):
        self.llc_mb = llc_mb

    def _leakage(self, logic_area_mm2: float, cycles: float) -> float:
        area = logic_area_mm2 + self.llc_mb * LLC_AREA_MM2_PER_MB
        return LEAKAGE_W_PER_MM2 * area * cycles / FREQ_HZ

    def cgra_energy(self, sim_result) -> EnergyBreakdown:
        """Energy of a Fifer or static-pipeline run (SimulationResult)."""
        counters = sim_result.counters
        l1_accesses = sum(s["hits"] + s["misses"]
                          for s in sim_result.l1_stats)
        llc_accesses = (sim_result.llc_stats["hits"]
                        + sim_result.llc_stats["misses"])
        mem_lines = (sim_result.mem_stats["reads"]
                     + sim_result.mem_stats["writes"])
        # Two queue-SRAM events (push + pop) per token, plus DRM work.
        queue_ops = 2.0 * counters["tokens"]
        compute = (counters["fabric_ops"] * E_FABRIC_OP
                   + queue_ops * E_QUEUE_OP)
        caches = l1_accesses * E_L1 + llc_accesses * E_LLC
        memory = mem_lines * E_DRAM_LINE
        n_pes = len(sim_result.pe_counters)
        leakage = self._leakage(n_pes * pe_area_mm2(), sim_result.cycles)
        return EnergyBreakdown(memory, caches, compute, leakage)

    def ooo_energy(self, ooo_result) -> EnergyBreakdown:
        """Energy of a serial or multicore OOO run (OOOResult)."""
        l1_accesses = sum(s["hits"] + s["misses"]
                          for s in ooo_result.l1_stats)
        llc_accesses = (ooo_result.llc_stats["hits"]
                        + ooo_result.llc_stats["misses"])
        mem_lines = (ooo_result.mem_stats["reads"]
                     + ooo_result.mem_stats["writes"])
        compute = ooo_result.instructions * E_OOO_INSTR
        # L2 sits between the counted L1 misses and the LLC.
        l2_accesses = sum(s["misses"] for s in ooo_result.l1_stats)
        caches = (l1_accesses * E_L1 + l2_accesses * E_L2
                  + llc_accesses * E_LLC)
        memory = mem_lines * E_DRAM_LINE
        leakage = self._leakage(
            ooo_result.n_cores * ooo_core_area_mm2(), ooo_result.cycles)
        return EnergyBreakdown(memory, caches, compute, leakage)
