"""Flat address-space allocator for simulated workload data.

The simulator separates *functional* state (numpy arrays the workloads
read and write directly) from *timing* state (the addresses those arrays
occupy, fed to the cache models). ``AddressSpace`` hands out
non-overlapping, line-aligned regions; ``ArrayRef`` maps element indices
of a registered array to byte addresses.
"""

from __future__ import annotations

from dataclasses import dataclass


class AllocationError(Exception):
    """Raised on overlapping or invalid allocations."""


@dataclass(frozen=True)
class Region:
    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


class AddressSpace:
    """Bump allocator over a flat 64-bit address space.

    Regions are aligned to cache lines so distinct arrays never share a
    line (avoiding spurious false sharing between unrelated structures).
    """

    def __init__(self, base: int = 0x1000_0000, align: int = 64):
        if align <= 0 or align & (align - 1):
            raise AllocationError(f"alignment must be a power of two, got {align}")
        self._align = align
        self._next = self._round_up(base)
        self._regions: dict[str, Region] = {}

    def _round_up(self, addr: int) -> int:
        return (addr + self._align - 1) & ~(self._align - 1)

    def alloc(self, name: str, size: int) -> Region:
        """Reserve ``size`` bytes under ``name`` and return the region."""
        if name in self._regions:
            raise AllocationError(f"region {name!r} already allocated")
        if size <= 0:
            raise AllocationError(f"region {name!r} has non-positive size {size}")
        region = Region(name, self._next, size)
        self._next = self._round_up(region.end)
        self._regions[name] = region
        return region

    def alloc_array(self, name: str, n_elems: int, elem_bytes: int = 8) -> "ArrayRef":
        """Reserve space for ``n_elems`` elements of ``elem_bytes`` each."""
        region = self.alloc(name, max(1, n_elems) * elem_bytes)
        return ArrayRef(region, elem_bytes)

    def region(self, name: str) -> Region:
        return self._regions[name]

    def regions(self) -> list[Region]:
        return list(self._regions.values())

    @property
    def bytes_allocated(self) -> int:
        return sum(r.size for r in self._regions.values())


@dataclass(frozen=True)
class ArrayRef:
    """Address mapping for one registered array."""

    region: Region
    elem_bytes: int

    def __post_init__(self):
        # Cached for the hot addr() path (frozen dataclass, hence the
        # object.__setattr__; not fields, so eq/hash are unchanged).
        object.__setattr__(self, "_base", self.region.base)
        object.__setattr__(self, "_n", self.region.size // self.elem_bytes)

    @property
    def base(self) -> int:
        return self._base

    @property
    def n_elems(self) -> int:
        return self._n

    def addr(self, index: int) -> int:
        """Byte address of element ``index`` (bounds-checked)."""
        if 0 <= index < self._n:
            return self._base + index * self.elem_bytes
        raise IndexError(
            f"index {index} out of range for {self.region.name!r} "
            f"({self._n} elements)")
