"""Dependence analysis: split the kernel at every marked load.

This implements the paper's decoupling rule (Sec. 4): the whole-kernel
dataflow graph is cut at each long-latency load, producing the
feed-forward stage pipeline of Fig. 4. The cut *depth* of a load is
1 + the deepest load its index transitively depends on, so for graph
kernels the cuts land exactly on the four-stage skeleton:

* depth 1 — loads indexed by the active vertex: the CSR bounds
  ``offsets[v]``/``offsets[v+1]`` plus any vertex-state fetches
  (serviced by ``drm_fr``/``drm_off``, consumed by S1);
* depth 2 — loads indexed by the edge induction variable:
  ``neighbors[e]`` plus any per-edge extras (``drm_ngh``, consumed by
  S2);
* depth 3 — the single ``owner=True`` load indexed by the fetched
  neighbor id: routed to the owner shard (``drm_val``, consumed by S3).

Liveness across each cut determines the channel widths; the analysis
enforces the calling convention of the generated skeleton (the vertex
id plus at most one payload word ride along each hop) and rejects
kernels that need more with actionable errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.frontend.kernel import FrontendError, GraphKernel, Value
from repro.frontend.lint import (check_back_edges, check_edge_escape,
                                 check_feed_forward, compute_edgy,
                                 compute_levels, PipelineLintError)


@dataclass(frozen=True)
class QueueEdge:
    """One channel of the inter-stage queue graph."""

    queue: str
    src: str
    dst: str
    src_stage: int
    dst_stage: int
    words: int
    control: bool = False
    cross_shard: bool = False

    def as_dict(self) -> dict:
        return {"queue": self.queue, "src": self.src, "dst": self.dst,
                "words": self.words, "control": self.control,
                "cross_shard": self.cross_shard}


def channel_widths(vertex_fetch_words: int,
                   edge_fetch_words: int) -> dict:
    """Liveness-derived words-per-token of every skeleton channel.

    The widths fall out of what is live across each cut under the
    one-payload-word calling convention: ``off`` carries the vertex id,
    the CSR bounds, and the per-vertex state fetches; ``ngh`` the vertex
    payload plus the neighbor id and per-edge extras; ``val``/``inbox``
    the routed neighbor id, the fetched value, and the payload word.
    Shared by :meth:`StagePlan.queue_graph` and the auto-decoupling
    cost model (:mod:`repro.analysis.autosplit`) so both price a cut
    identically.
    """
    return {
        "iter": 1,
        "fr_in": 2,
        "fr_out": 1,
        "off": 3 + vertex_fetch_words,
        "ngh": 1 + edge_fetch_words,
        "val": 3,
        "inbox": 3,
        "barrier": 2,
    }


@dataclass
class StagePlan:
    """Everything the lowering pass needs, extracted from one kernel."""

    kernel: GraphKernel
    level: dict                      # vid -> stage level / cut depth
    bounds: tuple                    # (offsets[v] load, offsets[v+1] load)
    vertex_loads: list               # cut-1 state fetches, in vid order
    route_load: Value                # the neighbors[e] load (route key)
    edge_extra_loads: list           # cut-2 extras, in vid order
    owner_load: Value                # the routed cut-3 load
    p0: Optional[Value]              # vertex-level value crossing cut 2
    s2_value: Optional[Value]        # edge-level value crossing cut 3
    s3_payload: Optional[Value]      # == s2_value or p0: the payload word
    cond: Optional[Value]            # shared when() predicate, if any
    update_ops: list = field(default_factory=list)  # S3 statements in order
    uses_epoch: bool = False
    needs_dedup: bool = False

    @property
    def vertex_fetch_words(self) -> int:
        return len(self.vertex_loads)

    @property
    def edge_fetch_words(self) -> int:
        return 1 + len(self.edge_extra_loads)

    def queue_graph(self) -> list:
        """The inter-stage channels with liveness-derived widths."""
        words = channel_widths(self.vertex_fetch_words,
                               self.edge_fetch_words)
        return [
            QueueEdge("iter", "control", "S0:fringe", -1, 0,
                      words["iter"], control=True),
            QueueEdge("fr_in", "S0:fringe", "drm_fr", 0, 0,
                      words["fr_in"]),
            QueueEdge("fr_out", "drm_fr", "S0:fringe", 0, 0,
                      words["fr_out"]),
            QueueEdge("off_in", "S0:fringe", "drm_off", 0, 0,
                      words["off"]),
            QueueEdge("off_out", "drm_off", "S1:enum", 0, 1,
                      words["off"]),
            QueueEdge("ngh_in", "S1:enum", "drm_ngh", 1, 1,
                      words["ngh"]),
            QueueEdge("ngh_out", "drm_ngh", "S2:fetch", 1, 2,
                      words["ngh"]),
            QueueEdge("val_in", "S2:fetch", "drm_val", 2, 2,
                      words["val"]),
            QueueEdge("inbox", "drm_val", "S3:update", 2, 3,
                      words["inbox"], cross_shard=True),
            QueueEdge("barrier", "S3:update", "control", 3, 4,
                      words["barrier"], control=True),
        ]


def _uses(kernel: GraphKernel) -> dict:
    """vid -> list of (how, consumer) for every value consumption site."""
    uses: dict = {v.vid: [] for v in kernel.values}
    for v in kernel.values:
        for a in v.args:
            uses[a.vid].append(("arg", v))
        if v.op == "edge":
            for a in v.attr:
                uses[a.vid].append(("bound", v))
    for s in kernel.statements:
        if s.index is not None:
            uses[s.index.vid].append(("index", s))
        if s.value is not None:
            uses[s.value.vid].append(("value", s))
        for p in s.preds:
            uses[p.vid].append(("pred", s))
    return uses


def _classify_loads(kernel: GraphKernel, level: dict):
    """Bucket the marked loads into the three cuts of the skeleton."""
    name = kernel.name
    loads = kernel.loads()
    if not loads:
        raise FrontendError(f"kernel {name!r} marks no long-latency loads; "
                            f"there is nothing to decouple")
    if kernel._edge_var is None:
        raise FrontendError(f"kernel {name!r} has no edges() loop")
    edge = kernel._edge_var

    owners = [v for v in loads if v.attr.owner]
    if not owners:
        raise FrontendError(
            f"kernel {name!r} has no owner load; mark the cross-shard "
            f"access with load(..., owner=True)")
    if len(owners) > 1:
        raise FrontendError(
            f"kernel {name!r}: only one owner-routed load is supported, "
            f"got {', '.join(v.label for v in owners)}")
    owner = owners[0]
    route = owner.args[0]
    if route.op != "load" or route.attr.ref is not kernel.neighbors:
        raise FrontendError(
            f"kernel {name!r}: {owner.label} must be indexed by a "
            f"neighbors[e] load (the routed neighbor id), not "
            f"{route.label}")

    start, end = edge.attr
    for bound, what in ((start, "start"), (end, "end")):
        if bound.op != "load" or bound.attr.ref is not kernel.offsets:
            raise FrontendError(
                f"kernel {name!r}: edges() {what} bound {bound.label} "
                f"must be an offsets load — the skeleton enumerates CSR "
                f"ranges offsets[v] .. offsets[v+1]")
    vertex = kernel._vertex
    if vertex is None or start.args[0].vid != vertex.vid:
        raise FrontendError(
            f"kernel {name!r}: the edges() start bound must be "
            f"offsets[vertex()]")
    end_idx = end.args[0]
    if not (end_idx.op == "add" and
            {a.op for a in end_idx.args} == {"vertex", "const"} and
            next(a.attr for a in end_idx.args if a.op == "const") == 1):
        raise FrontendError(
            f"kernel {name!r}: the edges() end bound must be "
            f"offsets[vertex() + 1]")

    vertex_loads, edge_loads = [], []
    neighbor_loads = []
    for v in loads:
        if v is owner or v is start or v is end:
            continue
        depth = level[v.vid]
        if v.attr.ref is kernel.neighbors:
            neighbor_loads.append(v)
            continue
        if depth == 1:
            if v.attr.ref.builtin:
                raise FrontendError(
                    f"kernel {name!r}: {v.label} — extra loads of the CSR "
                    f"structure are not supported; use edges()")
            if v.in_edge_loop:
                raise FrontendError(
                    f"kernel {name!r}: {v.label} is a vertex-level fetch "
                    f"issued inside the edge loop; hoist it out of "
                    f"edges()")
            vertex_loads.append(v)
        elif depth == 2:
            if v.args[0].vid != edge.vid:
                raise FrontendError(
                    f"kernel {name!r}: {v.label} must be indexed directly "
                    f"by the edge variable to ride the edge-fetch channel")
            edge_loads.append(v)
        else:
            raise FrontendError(
                f"kernel {name!r}: {v.label} at cut depth {depth} — only "
                f"the owner-routed access may depend on a fetched value")

    if not neighbor_loads:
        raise FrontendError(
            f"kernel {name!r}: the edge loop must load neighbors[e]")
    if len(neighbor_loads) > 1:
        raise FrontendError(
            f"kernel {name!r}: only one neighbors[e] load is supported")
    if neighbor_loads[0] is not route:
        raise FrontendError(
            f"kernel {name!r}: {owner.label} must be indexed by the "
            f"neighbors[e] load")
    if route.args[0].vid != edge.vid:
        raise FrontendError(
            f"kernel {name!r}: {route.label} must be indexed directly by "
            f"the edge variable")

    vertex_loads.sort(key=lambda v: v.vid)
    edge_loads.sort(key=lambda v: v.vid)
    return (start, end), vertex_loads, route, edge_loads, owner


def _pick_p0(kernel: GraphKernel, level: dict, uses: dict, bounds,
             vertex, route, owner) -> Optional[Value]:
    """The vertex-level value that must ride the edge channel (p0)."""
    bound_vids = {bounds[0].vid, bounds[1].vid}
    candidates = []
    for v in kernel.values:
        if level[v.vid] > 1 or v.op in ("const", "epoch"):
            continue
        if v.vid in bound_vids:
            continue
        consumed_later = False
        for how, consumer in uses[v.vid]:
            if how == "bound":
                continue
            if isinstance(consumer, Value):
                if consumer.op == "load":
                    continue  # address generation happens at the load's cut
                if how == "arg" and level[consumer.vid] >= 2:
                    consumed_later = True
            elif consumer.in_edge_loop:  # statements lower to S3
                consumed_later = True
        if consumed_later:
            candidates.append(v)
    if not candidates:
        return None
    if len(candidates) > 1:
        raise FrontendError(
            f"kernel {kernel.name!r}: one payload word crosses the edge "
            f"cut, but {', '.join(v.label for v in candidates)} all need "
            f"to; fold them into a single value")
    p0 = candidates[0]
    if p0.op == "edge" or p0.in_edge_loop:
        raise FrontendError(
            f"kernel {kernel.name!r}: {p0.label} varies per edge; only a "
            f"vertex-level value can cross cut 2 as the payload")
    return p0


def _pick_s2(kernel: GraphKernel, level: dict, uses: dict, route,
             owner) -> Optional[Value]:
    """The edge-level value crossing the cross-shard hop, if any."""
    candidates = []
    for v in kernel.values:
        if level[v.vid] != 2 or v.op in ("const", "epoch"):
            continue
        if v.vid == route.vid:
            continue  # the route key has its own word
        consumed_at_3 = False
        for how, consumer in uses[v.vid]:
            if isinstance(consumer, Value):
                if consumer.op == "load" and consumer.attr.owner:
                    continue  # owner address generation
                if how == "arg" and level[consumer.vid] >= 3:
                    consumed_at_3 = True
            else:
                if how == "index" or (how == "value" and
                                      consumer.kind == "push"):
                    continue  # route-key positions, validated separately
                consumed_at_3 = True
        if consumed_at_3:
            candidates.append(v)
    if not candidates:
        return None
    if len(candidates) > 1:
        raise FrontendError(
            f"kernel {kernel.name!r}: one payload word crosses the "
            f"cross-shard hop, but "
            f"{', '.join(v.label for v in candidates)} all need to; fold "
            f"them into a single value")
    return candidates[0]


def _first_unreachable(v: Value, allowed: set) -> Optional[Value]:
    """The first leaf under ``v`` not available at the update stage."""
    if v.vid in allowed or v.op in ("const", "epoch"):
        return None
    if v.op in ("load", "vertex", "edge"):
        return v
    for a in v.args:
        leaf = _first_unreachable(a, allowed)
        if leaf is not None:
            return leaf
    return None


def _check_s3_liveness(kernel: GraphKernel, plan: StagePlan) -> None:
    """Update-stage expressions may use only what crosses the hop."""
    allowed = {plan.owner_load.vid, plan.route_load.vid}
    if plan.s3_payload is not None:
        allowed.add(plan.s3_payload.vid)
    payload = (plan.s3_payload.label if plan.s3_payload is not None
               else "none")

    def walk(expr: Value, where: str) -> None:
        leaf = _first_unreachable(expr, allowed)
        if leaf is not None:
            raise PipelineLintError(
                f"kernel {kernel.name!r}: {where} uses {leaf.label}, "
                f"which is not live across the cross-shard hop into the "
                f"update stage; only the routed neighbor id and one "
                f"payload word cross (currently: {payload})")

    if plan.cond is not None:
        walk(plan.cond, "the when() predicate")
    for s in plan.update_ops:
        if s.kind == "store":
            walk(s.value, s.label)


def _collect_update(kernel: GraphKernel, plan: StagePlan) -> None:
    """Validate and order the update-stage side effects."""
    name = kernel.name
    route_vid = plan.route_load.vid
    stmts = [s for s in kernel.statements if s.in_edge_loop]
    leftovers = [s for s in kernel.statements if not s.in_edge_loop]
    if leftovers:
        raise FrontendError(
            f"kernel {name!r}: {leftovers[0].label} outside the edge loop "
            f"— vertex-context side effects are not supported by the "
            f"4-stage skeleton")
    if not any(s.kind == "store" for s in stmts):
        raise FrontendError(
            f"kernel {name!r}: the update stage needs at least one store")
    pred_vids = tuple(p.vid for p in stmts[0].preds)
    for s in stmts:
        if tuple(p.vid for p in s.preds) != pred_vids:
            raise FrontendError(
                f"kernel {name!r}: {s.label} is predicated differently "
                f"from {stmts[0].label}; all updates must share one "
                f"when() block")
    if len(pred_vids) > 1:
        raise FrontendError(
            f"kernel {name!r}: nested when() blocks are not supported; "
            f"combine the conditions into a single predicate")
    plan.cond = stmts[0].preds[0] if pred_vids else None
    for s in stmts:
        if s.kind == "store":
            if s.index.vid != route_vid:
                raise FrontendError(
                    f"kernel {name!r}: {s.label} must index the "
                    f"owner-routed vertex ({plan.route_load.label}); "
                    f"got {s.index.label}")
            if s.ref is not plan.owner_load.attr.ref:
                # already vetted by check_back_edges when the ref is
                # read elsewhere; a write to a never-read array still
                # has no DRM to route it.
                raise FrontendError(
                    f"kernel {name!r}: {s.label} writes {s.ref.name!r}, "
                    f"but only the owner-routed array "
                    f"({plan.owner_load.attr.ref.name!r}) can be written "
                    f"at the update stage")
        else:
            if s.value.vid != route_vid:
                raise FrontendError(
                    f"kernel {name!r}: {s.label} must push the routed "
                    f"neighbor id ({plan.route_load.label}); got "
                    f"{s.value.label}")
    plan.update_ops = stmts
    plan.needs_dedup = any(s.kind == "push" and s.dedup for s in stmts)


def analyze(kernel: GraphKernel) -> StagePlan:
    """Run the full split analysis; lint; return the stage plan."""
    unmarked = kernel.unmarked_accesses()
    if unmarked:
        raise FrontendError(
            f"kernel {kernel.name!r}: {unmarked[0].label} is an "
            f"unannotated access() — no decoupling decision has been "
            f"taken for it. Run the auto-decoupling analyzer "
            f"(`repro advise {kernel.name} --apply`, or "
            f"repro.analysis.autosplit.apply_split) to infer the split "
            f"markings, or mark it with load() by hand.")
    level = compute_levels(kernel)
    edgy = compute_edgy(kernel)
    check_edge_escape(kernel, edgy)

    bounds, vertex_loads, route, edge_loads, owner = _classify_loads(
        kernel, level)
    check_back_edges(kernel, owner.attr.ref, level)

    uses = _uses(kernel)
    p0 = _pick_p0(kernel, level, uses, bounds, kernel._vertex, route, owner)
    s2_value = _pick_s2(kernel, level, uses, route, owner)
    s3_payload = s2_value if s2_value is not None else p0

    plan = StagePlan(
        kernel=kernel, level=level, bounds=bounds,
        vertex_loads=vertex_loads, route_load=route,
        edge_extra_loads=edge_loads, owner_load=owner,
        p0=p0, s2_value=s2_value, s3_payload=s3_payload, cond=None,
        uses_epoch=kernel._epoch is not None)
    _collect_update(kernel, plan)
    _check_s3_liveness(kernel, plan)
    check_feed_forward(kernel.name, plan.queue_graph())
    return plan
