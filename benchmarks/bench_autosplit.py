"""Auto-decoupling benchmark: inferred splits vs hand markings.

The auto-decoupling analyzer (``repro.analysis.autosplit``,
docs/analysis.md) must reconstruct every registered kernel's hand
markings from the unannotated dependence graph — same cuts, same
owner-routed access, bit-identical ``kernel_fingerprint``. This
benchmark asserts that parity and records the analyzer's own cost:
wall time of inference (graph build + detectors + cost model) and of
the full apply-and-verify round trip (clone, lower, certify), written
to ``benchmarks/results/autosplit.txt``.
"""

import time

from bench_common import emit
from repro.analysis.autosplit import advise_kernel, apply_and_verify
from repro.frontend.kernels import FRONTEND_KERNELS
from repro.harness import format_table


def run_autosplit():
    rows, parity = [], {}
    for name, factory in sorted(FRONTEND_KERNELS.items()):
        kernel = factory()
        start = time.perf_counter()
        advice = advise_kernel(kernel)
        advise_ms = (time.perf_counter() - start) * 1e3
        assert advice.matches_hand_marked, name

        start = time.perf_counter()
        manifest = apply_and_verify(factory())
        verify_ms = (time.perf_counter() - start) * 1e3
        assert manifest["fingerprints"]["equal"], name
        assert manifest["describe"]["equal"], name
        assert manifest["lint"]["ok"] and manifest["lint"]["certified"], name

        top = advice.candidates[0]
        parity[name] = (advice.matches_hand_marked,
                        manifest["fingerprints"]["equal"])
        rows.append([name, str(len(advice.patterns)),
                     str(len(advice.candidates)),
                     f"{top.role} ({top.score:.0f})", "yes",
                     f"{advise_ms:.2f}", f"{verify_ms:.1f}"])
    table = format_table(
        ["kernel", "patterns", "cuts", "top candidate (score)",
         "matches hand", "advise (ms)", "apply+verify (ms)"],
        rows,
        title=("auto-decoupling parity: inferred splits must reproduce "
               "the hand markings bit-identically (all kernels)"))
    emit("autosplit", table)
    return parity


def test_autosplit(benchmark):
    parity = benchmark.pedantic(run_autosplit, rounds=1, iterations=1)
    assert parity
    for name, (matches, fp_equal) in parity.items():
        assert matches and fp_equal, name
