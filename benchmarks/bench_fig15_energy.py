"""Figure 15: breakdown of energy, normalized to the static pipeline.

The paper reports dynamic memory energy, cache energy, compute energy,
and leakage for the serial OOO (I), OOO multicore (D), static pipeline
(S), and Fifer (F). Expected shape (Sec. 8.2):

* the OOO systems suffer considerable leakage and high dynamic energy
  per instruction;
* the static pipeline achieves gmean ~12x better energy efficiency
  than the OOO multicore;
* Fifer reduces energy a further ~1.5x over the static pipeline
  (mostly by finishing faster and cutting leakage), ~19x over the
  4-core OOO.
"""

from bench_common import (ALL_APPS, REPRESENTATIVE, emit, experiment, point,
                          prefetch)
from repro.harness import format_table, gmean

_SYSTEMS = (("I", "serial"), ("D", "multicore"),
            ("S", "static"), ("F", "fifer"))
_BUCKETS = ("memory", "caches", "compute", "leakage")


def run_fig15():
    prefetch(point(app, REPRESENTATIVE[app], system)
             for app in ALL_APPS for _, system in _SYSTEMS)
    rows = []
    ratios_static_vs_multicore = []
    ratios_fifer_vs_static = []
    for app in ALL_APPS:
        code = REPRESENTATIVE[app]
        energies = {system: experiment(app, code, system).energy
                    for _, system in _SYSTEMS}
        totals = {s: sum(e.values()) for s, e in energies.items()}
        for label, system in _SYSTEMS:
            energy = energies[system]
            total = totals[system]
            rows.append([app, label, f"{total / totals['static']:.2f}"]
                        + [f"{energy[b] / total:.2f}" for b in _BUCKETS])
        ratios_static_vs_multicore.append(
            totals["multicore"] / totals["static"])
        ratios_fifer_vs_static.append(totals["static"] / totals["fifer"])
    summary = format_table(
        ["metric", "paper", "measured"],
        [["static vs multicore energy (gmean)", "12x",
          f"{gmean(ratios_static_vs_multicore):.1f}x"],
         ["Fifer vs static energy (gmean)", "1.5x",
          f"{gmean(ratios_fifer_vs_static):.2f}x"]],
        title="Fig. 15 summary (paper vs. measured)")
    table = format_table(
        ["app", "sys", "norm. energy"] + list(_BUCKETS), rows,
        title=("Fig. 15: energy breakdowns (normalized to the static "
               "pipeline; fractions per bucket)"))
    emit("fig15_energy", table + "\n\n" + summary)
    return gmean(ratios_static_vs_multicore), gmean(ratios_fifer_vs_static)


def test_fig15_energy(benchmark):
    static_gain, fifer_gain = benchmark.pedantic(run_fig15, rounds=1,
                                                 iterations=1)
    assert static_gain > 2.0   # CGRAs are much more energy-efficient
    assert fifer_gain > 1.0    # Fifer improves on the static pipeline
