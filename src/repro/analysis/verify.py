"""Whole-program driver: run every static pass over a compiled program."""

from __future__ import annotations

from repro.cgra.fabric import FabricSpec
from repro.config import SystemConfig
from repro.analysis.deadlock import analyze_deadlock
from repro.analysis.dfg_passes import analyze_stage
from repro.analysis.graph import build_channel_graph
from repro.analysis.report import AnalysisReport


def analyze_program(program, config: SystemConfig,
                    mode: str = "fifer") -> AnalysisReport:
    """Run the full pass suite on a compiled :class:`Program`.

    Pure inspection of the compiled artifacts (queue specs, stage DFGs,
    DRM specs): no :class:`~repro.core.system.System` is instantiated
    and no simulation runs. ``mode`` is recorded for the report only —
    the artifacts already reflect the fifer/static build choice.
    """
    report = AnalysisReport(program=program.name, mode=mode)
    graph = build_channel_graph(program, config)
    deadlock_findings, certificate = analyze_deadlock(graph, config)
    report.extend(deadlock_findings)

    fabric = FabricSpec.from_config(config.fabric)
    for snode in graph.stages:
        spec = snode.spec
        caps = [c for c in (spec.max_replication,
                            config.max_simd_replication) if c is not None]
        record, findings = analyze_stage(
            spec.dfg, fabric, min(caps) if caps else None)
        report.extend(findings)
        report.stages[spec.name] = record

    if report.ok:
        report.certificate = certificate
    return report
