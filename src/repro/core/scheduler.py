"""Stage-selection policies for the Fifer scheduler (paper Sec. 5.2).

The scheduler keeps a PE configured to the current stage until it is
blocked by a full output queue or an empty input queue. When it must
select a new stage, it examines queue occupancies and, of the unblocked
stages, selects the one with the greatest amount of work available in
its input queues; this reduces the number of reconfigurations.

A round-robin policy is also provided — the paper reports it performs
worse (it increases reconfiguration frequency), which the
``bench_scheduler_policy`` benchmark reproduces.
"""

from __future__ import annotations

from typing import Optional

from repro.core.stage import StageInstance


class MostWorkScheduler:
    """Pick the ready stage with the most words queued at its inputs."""

    name = "most-work"

    def pick(self, pe) -> Optional[StageInstance]:
        best = None
        best_work = -1
        for stage in pe.stages:
            if stage.done or not pe.stage_runnable(stage):
                continue
            work = pe.stage_input_work(stage)
            if work > best_work:
                best, best_work = stage, work
        return best


class RoundRobinScheduler:
    """Cycle through stages, picking the next runnable one."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def pick(self, pe) -> Optional[StageInstance]:
        n = len(pe.stages)
        for offset in range(1, n + 1):
            stage = pe.stages[(self._cursor + offset) % n]
            if not stage.done and pe.stage_runnable(stage):
                self._cursor = (self._cursor + offset) % n
                return stage
        return None


def any_runnable(pe) -> bool:
    """Whether any stage on ``pe`` could be picked right now.

    Policy-independent: every policy picks *some* stage iff at least
    one is runnable, so the fast engine's quiescence check can use this
    without consulting (or perturbing) the policy's internal state —
    ``RoundRobinScheduler`` only moves its cursor when a stage is
    actually returned, and this helper never returns one.
    """
    return any(pe.stage_runnable(stage) for stage in pe.stages)


_POLICIES = {
    MostWorkScheduler.name: MostWorkScheduler,
    RoundRobinScheduler.name: RoundRobinScheduler,
}


def make_scheduler(policy: str):
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy {policy!r}; "
            f"choose from {sorted(_POLICIES)}") from None
