"""Latency-insensitive channel substrate.

Queues carry data tokens and *control values* (paper Sec. 5.5): a control
bit travels alongside each word, delineating iteration boundaries and
carrying point-to-point synchronization. Queues are virtualized on a
small per-PE queue memory (paper Sec. 3); inter-PE queues with multiple
producers use credit-based flow control (paper Sec. 5.6).
"""

from repro.queues.queue import Queue, QueueFullError, QueueEmptyError, Token
from repro.queues.queue_memory import QueueMemory, QueueSpec

__all__ = [
    "Queue", "QueueFullError", "QueueEmptyError", "Token",
    "QueueMemory", "QueueSpec",
]
