"""Table 1: implementation costs for major components of a Fifer PE.

The paper synthesizes the PE components (Yosys + FreePDK45 at 2 GHz,
CACTI for memory arrays); this repository reproduces the published
area table and the derived provisioning rule (each PE is 4.6% of an
OOO core, hence 4 PEs per core in the evaluation).
"""

from bench_common import emit
from repro.energy import PE_AREA_BREAKDOWN_MM2, pe_area_mm2, ooo_core_area_mm2
from repro.energy.area import PE_FRACTION_OF_CORE
from repro.harness import format_table


def run_table1():
    rows = [[name.replace("_", " "), f"{area:.4f}"]
            for name, area in PE_AREA_BREAKDOWN_MM2.items()]
    rows.append(["total area (per PE)", f"{pe_area_mm2():.2f}"])
    rows.append(["implied OOO core area",
                 f"{ooo_core_area_mm2():.1f}"])
    table = format_table(["item", "area (mm^2)"], rows,
                         title="Table 1: per-PE implementation costs (45 nm)")
    emit("table1_area", table)
    return pe_area_mm2()


def test_table1_area(benchmark):
    total = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    assert abs(total - 1.34) < 0.01   # paper: 1.34 mm^2 per PE
    assert abs(pe_area_mm2() / ooo_core_area_mm2()
               - PE_FRACTION_OF_CORE) < 1e-9
