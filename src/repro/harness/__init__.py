"""Experiment harness: runs (app, input, system) combinations and
formats the paper's tables and figures."""

from repro.harness.run import (ExperimentResult, GRAPH_APPS, APP_INPUTS,
                               SYSTEMS, prepare_input, run_experiment,
                               speedup_table)
from repro.harness.format import format_table, gmean

__all__ = [
    "ExperimentResult", "GRAPH_APPS", "APP_INPUTS", "SYSTEMS",
    "prepare_input", "run_experiment", "speedup_table",
    "format_table", "gmean",
]
