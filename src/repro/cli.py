"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run APP INPUT [--system ...] [--variant ...] [--scale ...]`` —
  run one experiment, verify it, and print cycles, the CPI stack, and
  the energy breakdown.
* ``compare APP INPUT`` — run all four evaluated systems on one input
  and print a speedup chart (a one-input slice of Fig. 13).
* ``inputs`` — list the apps, their inputs, and the paper datasets the
  synthetic generators stand in for.
* ``trace APP INPUT`` — run Fifer with activation tracing and print the
  per-PE stage timeline (dynamic temporal pipelining, visualized).
"""

from __future__ import annotations

import argparse
import sys

from repro.config import SystemConfig
from repro.harness import (format_table, prepare_input, run_experiment,
                           speedup_table)
from repro.harness.report import bar_chart
from repro.harness.run import APP_INPUTS, SYSTEMS
from repro.stats.trace import ActivationTracer


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", choices=sorted(APP_INPUTS))
    parser.add_argument("input", metavar="INPUT",
                        help="input code (see `inputs`)")
    parser.add_argument("--scale", type=float, default=None,
                        help="input scale factor (default: per-input)")
    parser.add_argument("--seed", type=int, default=1)


def _check_input(app: str, code: str) -> None:
    if code not in APP_INPUTS[app]:
        raise SystemExit(
            f"unknown input {code!r} for {app}; choose from "
            f"{', '.join(APP_INPUTS[app])}")


def cmd_run(args) -> int:
    _check_input(args.app, args.input)
    result = run_experiment(args.app, args.input, args.system,
                            variant=args.variant, scale=args.scale,
                            seed=args.seed)
    print(f"{args.app}/{args.input} on {args.system} ({args.variant}): "
          f"{result.cycles:,.0f} cycles (verified against the reference)")
    raw = result.raw
    stack = raw.merged_cpi_stack()
    total = sum(stack.values())
    rows = [[bucket, f"{value:,.0f}", f"{value / total:.1%}"]
            for bucket, value in stack.items()]
    print()
    print(format_table(["bucket", "cycles", "share"], rows,
                       title="cycle breakdown (all contexts)"))
    print()
    rows = [[bucket, f"{joules * 1e6:.2f}"]
            for bucket, joules in result.energy.items()]
    print(format_table(["bucket", "energy (uJ)"], rows,
                       title="energy breakdown"))
    if args.system == "fifer":
        print(f"\navg residence {raw.avg_residence_cycles:.0f} cycles, "
              f"avg reconfiguration {raw.avg_reconfig_cycles:.1f} cycles")
    return 0


def cmd_compare(args) -> int:
    _check_input(args.app, args.input)
    prepared = prepare_input(args.app, args.input, scale=args.scale,
                             seed=args.seed)
    results = {system: run_experiment(args.app, args.input, system,
                                      prepared=prepared)
               for system in SYSTEMS}
    speedups = speedup_table(results)
    print(bar_chart(speedups,
                    title=f"{args.app}/{args.input}: speedup over the "
                          f"4-core OOO multicore"))
    return 0


def cmd_inputs(args) -> int:
    from repro.datasets.graphs import TABLE3_GRAPHS
    from repro.datasets.matrices import TABLE4_MATRICES
    rows = []
    for app, codes in APP_INPUTS.items():
        for code in codes:
            if code in TABLE3_GRAPHS:
                paper = TABLE3_GRAPHS[code]["paper"]
            elif code in TABLE4_MATRICES:
                paper = TABLE4_MATRICES[code]["paper"]
            else:
                paper = "YCSB-C zipfian lookups over a B+tree"
            rows.append([app, code, paper])
    print(format_table(["app", "input", "stands in for (paper Table 3/4)"],
                       rows))
    return 0


def cmd_trace(args) -> int:
    _check_input(args.app, args.input)
    from repro.core import System
    from repro.harness.run import (_build_cgra_program, _system_config,
                                   prepare_input as prep)
    prepared = prep(args.app, args.input, scale=args.scale, seed=args.seed)
    config = _system_config(args.app, SystemConfig())
    program, _ = _build_cgra_program(prepared, config, "fifer", "decoupled")
    system = System(config, program, mode="fifer")
    tracer = ActivationTracer().attach(system)
    result = system.run()
    print(f"{args.app}/{args.input} on Fifer: {result.cycles:,.0f} cycles, "
          f"{len(tracer.events)} activations\n")
    print(tracer.gantt(result.cycles, max_pes=args.pes))
    shares = tracer.stage_cycle_share(result.cycles)
    total = sum(shares.values())
    print("\nresident-cycle share by stage:")
    for stage, share in sorted(shares.items(),
                               key=lambda kv: -kv[1])[:12]:
        print(f"  {stage:<24} {share / total:6.1%}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fifer (MICRO 2021) reproduction: run the simulated "
                    "systems from the command line.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one experiment")
    _add_common(p_run)
    p_run.add_argument("--system", choices=SYSTEMS, default="fifer")
    p_run.add_argument("--variant", choices=("decoupled", "merged"),
                       default="decoupled")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="all four systems on one input")
    _add_common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_inputs = sub.add_parser("inputs", help="list apps and inputs")
    p_inputs.set_defaults(func=cmd_inputs)

    p_trace = sub.add_parser("trace", help="Fifer activation timeline")
    _add_common(p_trace)
    p_trace.add_argument("--pes", type=int, default=8,
                         help="PEs to show in the Gantt chart")
    p_trace.set_defaults(func=cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
