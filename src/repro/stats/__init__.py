"""Statistics: counters, CPI stacks, residence-time tracking."""

from repro.stats.counters import Counters
from repro.stats.cpi_stack import CPI_BUCKETS, cpi_stack, merge_stacks
from repro.stats.trace import ActivationEvent, ActivationTracer

__all__ = ["Counters", "CPI_BUCKETS", "cpi_stack", "merge_stacks",
           "ActivationEvent", "ActivationTracer"]
