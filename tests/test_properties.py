"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MemoryConfig
from repro.datasets.btree import BPlusTree
from repro.datasets.graphs import power_law_graph, uniform_random_graph
from repro.datasets.matrices import random_sparse_matrix
from repro.memory import AddressSpace, Cache, MainMemory
from repro.queues import Queue
from repro.workloads.bfs import bfs_reference
from repro.workloads.cc import cc_reference
from repro.workloads.spmm import spmm_reference

_settings = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# -- queues ------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(), st.booleans()), max_size=60))
@_settings
def test_queue_preserves_fifo_order_and_occupancy(items):
    q = Queue("q", capacity_words=200, entry_words=2)
    accepted = []
    for value, is_control in items:
        if q.can_enq(is_control=is_control):
            q.enq(value, is_control=is_control)
            accepted.append((value, is_control))
    # Occupancy: control values cost 1 word, data 2.
    expected = sum(1 if c else 2 for _, c in accepted)
    assert q.occupancy_words == expected
    out = [(t.value, t.is_control) for t in (q.deq() for _ in range(len(q)))]
    assert out == accepted
    assert q.occupancy_words == 0


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=80))
@_settings
def test_credit_conservation(producers):
    q = Queue("q", capacity_words=30, producers=("a", "b", "c"))
    share = 10
    outstanding = {p: 0 for p in "abc"}
    for p in producers:
        if q.can_enq(p):
            q.enq(p, producer=p)
            outstanding[p] += 1
        assert outstanding[p] <= share
    while q.can_deq():
        token = q.deq()
        outstanding[token.producer] -= 1
    assert all(v == 0 for v in outstanding.values())
    assert all(q.can_enq(p) for p in "abc")


# -- address space ------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1,
                max_size=40))
@_settings
def test_address_space_regions_disjoint(sizes):
    space = AddressSpace()
    regions = [space.alloc(f"r{i}", size) for i, size in enumerate(sizes)]
    spans = sorted((r.base, r.end) for r in regions)
    for (b1, e1), (b2, _) in zip(spans, spans[1:]):
        assert e1 <= b2


# -- caches --------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=200))
@_settings
def test_cache_inclusion_of_recent_lines(line_ids):
    """After any access sequence, the most recent `ways` distinct lines
    of each set are resident (LRU invariant)."""
    memory = MainMemory(MemoryConfig())
    memory.begin_quantum(10 ** 9)
    ways = 4
    cache = Cache("c", CacheConfig(16 * 64 // 4 * ways, ways, 1), memory)
    n_sets = cache.config.n_sets
    for line in line_ids:
        cache.access(line * 64)
    # Replay per set: last `ways` distinct lines must be resident.
    per_set = {}
    for line in line_ids:
        per_set.setdefault(line % n_sets, []).append(line)
    for lines in per_set.values():
        recent = []
        for line in reversed(lines):
            if line not in recent:
                recent.append(line)
            if len(recent) == ways:
                break
        for line in recent:
            assert cache.contains(line * 64)


# -- B+tree ---------------------------------------------------------------------

@given(st.sets(st.integers(min_value=-10 ** 6, max_value=10 ** 6),
               min_size=1, max_size=300),
       st.integers(min_value=2, max_value=16))
@_settings
def test_btree_finds_exactly_its_keys(keys, fanout):
    keys = np.array(sorted(keys), dtype=np.int64)
    tree = BPlusTree(keys, keys * 2 + 1, fanout=fanout)
    for key in keys:
        assert tree.lookup(int(key)) == int(key) * 2 + 1
    for key in keys:
        probe = int(key) + 1
        if probe not in set(int(k) for k in keys):
            assert tree.lookup(probe) is None


@given(st.sets(st.integers(min_value=0, max_value=10 ** 5), min_size=2,
               max_size=400),
       st.integers(min_value=2, max_value=8))
@_settings
def test_btree_paths_have_tree_depth(keys, fanout):
    keys = np.array(sorted(keys), dtype=np.int64)
    tree = BPlusTree(keys, keys, fanout=fanout)
    for key in list(keys)[:: max(1, len(keys) // 5)]:
        path = tree.lookup_path(int(key))
        assert len(path) == tree.depth
        assert tree.nodes[path[-1]].is_leaf
        assert all(not tree.nodes[n].is_leaf for n in path[:-1])


# -- graph algorithm invariants ---------------------------------------------------

@given(st.integers(min_value=2, max_value=120),
       st.floats(min_value=1.0, max_value=6.0),
       st.integers(min_value=0, max_value=10 ** 6))
@_settings
def test_bfs_distances_satisfy_triangle_property(n, deg, seed):
    graph = uniform_random_graph(n, deg, seed=seed)
    distances = bfs_reference(graph, 0)
    assert distances[0] == 0
    for v in range(n):
        if distances[v] < 0:
            continue
        for ngh in graph.neighbors_of(v):
            assert distances[ngh] >= 0
            assert abs(distances[ngh] - distances[v]) <= 1


@given(st.integers(min_value=2, max_value=100),
       st.floats(min_value=1.0, max_value=6.0),
       st.integers(min_value=0, max_value=10 ** 6))
@_settings
def test_cc_labels_constant_within_edges(n, deg, seed):
    graph = power_law_graph(n, deg, seed=seed)
    labels = cc_reference(graph)
    for v in range(n):
        for ngh in graph.neighbors_of(v):
            assert labels[v] == labels[ngh]
    # Each component's label is its minimum member id.
    for v in range(n):
        assert labels[v] <= v


# -- SpMM reference vs dense ------------------------------------------------------

@given(st.integers(min_value=2, max_value=40),
       st.floats(min_value=0.5, max_value=8.0),
       st.integers(min_value=0, max_value=10 ** 6))
@_settings
def test_spmm_reference_matches_dense_product(n, density, seed):
    matrix = random_sparse_matrix(n, density, seed=seed)
    rows = np.arange(n, dtype=np.int64)
    cols = np.arange(n, dtype=np.int64)
    sparse = spmm_reference(matrix, rows, cols)
    dense = matrix.to_dense() @ matrix.to_dense()
    for (i, j), value in sparse.items():
        assert np.isclose(value, dense[i, j])
    # Every significant dense entry is present in the sparse result.
    for i in range(n):
        for j in range(n):
            if abs(dense[i, j]) > 1e-12:
                assert (i, j) in sparse
