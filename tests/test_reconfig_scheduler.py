"""Unit tests for reconfiguration timing and scheduler policies."""

import pytest

from repro.config import CacheConfig, MemoryConfig, SystemConfig
from repro.core.reconfig import ReconfigurationModel
from repro.core.scheduler import (MostWorkScheduler, RoundRobinScheduler,
                                  make_scheduler)
from repro.memory import Cache, MainMemory


def _l1():
    memory = MainMemory(MemoryConfig(latency=120))
    memory.begin_quantum(10 ** 9)
    return Cache("l1", CacheConfig(32 * 1024, 8, 4), memory)


class TestReconfigurationModel:
    def test_warm_load_matches_paper(self):
        """Paper Sec. 6: loading from L1 is 10 cycles (6 chunks + 4)."""
        model = ReconfigurationModel(SystemConfig(), _l1())
        model.load_cycles(0x1000, 360)            # cold
        assert model.load_cycles(0x1000, 360) == pytest.approx(10.0)

    def test_minimum_reconfiguration_is_12_cycles(self):
        """Paper Sec. 6: minimum 12 cycles (10 load + 2 activation)."""
        model = ReconfigurationModel(SystemConfig(), _l1())
        model.load_cycles(0x1000, 360)  # warm the config lines
        period = model.reconfiguration_period(0.0, 0x1000, 360)
        assert period == pytest.approx(12.0)

    def test_double_buffering_overlaps_drain_and_load(self):
        l1 = _l1()
        db = ReconfigurationModel(SystemConfig(double_buffered=True), l1)
        sb = ReconfigurationModel(SystemConfig(double_buffered=False), l1)
        db.load_cycles(0x1000, 360)
        drain = 11.0
        overlapped = db.reconfiguration_period(drain, 0x1000, 360)
        serialized = sb.reconfiguration_period(drain, 0x1000, 360)
        assert overlapped == pytest.approx(max(drain, 10.0) + 2)
        assert serialized == pytest.approx(drain + 10.0 + 2)

    def test_draining_dominates_deep_configs(self):
        """Paper Sec. 5.1: configs with >6 pipeline stages drain longer
        than they load, making drain the dominant reconfiguration cost."""
        model = ReconfigurationModel(SystemConfig(), _l1())
        model.load_cycles(0x1000, 360)
        deep = model.reconfiguration_period(30.0, 0x1000, 360)
        assert deep == pytest.approx(32.0)

    def test_zero_cost_config(self):
        model = ReconfigurationModel(
            SystemConfig(zero_cost_reconfig=True), _l1())
        assert model.reconfiguration_period(50.0, 0x1000, 360) == 0.0

    def test_cold_config_pays_memory_latency(self):
        model = ReconfigurationModel(SystemConfig(), _l1())
        cold = model.reconfiguration_period(0.0, 0x2000, 360)
        warm = model.reconfiguration_period(0.0, 0x2000, 360)
        assert cold > warm


class _FakePE:
    """Minimal PE interface for scheduler unit tests."""

    def __init__(self, stages, runnable, work):
        self.stages = stages
        self._runnable = runnable
        self._work = work

    def stage_runnable(self, stage):
        return self._runnable[stage.name]

    def stage_input_work(self, stage):
        return self._work[stage.name]


class _FakeStage:
    def __init__(self, name, done=False):
        self.name = name
        self.done = done


class TestSchedulers:
    def test_most_work_picks_largest_queue(self):
        stages = [_FakeStage("a"), _FakeStage("b"), _FakeStage("c")]
        pe = _FakePE(stages, {"a": True, "b": True, "c": True},
                     {"a": 5, "b": 50, "c": 20})
        assert MostWorkScheduler().pick(pe).name == "b"

    def test_most_work_skips_blocked_stages(self):
        stages = [_FakeStage("a"), _FakeStage("b")]
        pe = _FakePE(stages, {"a": True, "b": False}, {"a": 1, "b": 99})
        assert MostWorkScheduler().pick(pe).name == "a"

    def test_most_work_skips_done_stages(self):
        stages = [_FakeStage("a", done=True), _FakeStage("b")]
        pe = _FakePE(stages, {"a": True, "b": True}, {"a": 99, "b": 1})
        assert MostWorkScheduler().pick(pe).name == "b"

    def test_returns_none_when_nothing_runnable(self):
        stages = [_FakeStage("a")]
        pe = _FakePE(stages, {"a": False}, {"a": 10})
        assert MostWorkScheduler().pick(pe) is None
        assert RoundRobinScheduler().pick(pe) is None

    def test_round_robin_cycles(self):
        stages = [_FakeStage("a"), _FakeStage("b"), _FakeStage("c")]
        pe = _FakePE(stages, {"a": True, "b": True, "c": True},
                     {"a": 1, "b": 1, "c": 1})
        scheduler = RoundRobinScheduler()
        order = [scheduler.pick(pe).name for _ in range(4)]
        assert order == ["b", "c", "a", "b"]

    def test_factory(self):
        assert isinstance(make_scheduler("most-work"), MostWorkScheduler)
        assert isinstance(make_scheduler("round-robin"), RoundRobinScheduler)
        with pytest.raises(ValueError):
            make_scheduler("oracle")
