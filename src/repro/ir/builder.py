"""Fluent construction of stage dataflow graphs.

Workloads describe each stage's datapath with a :class:`DFGBuilder`,
mirroring the lowering of paper Fig. 5/6 (annotated source -> LLVM IR ->
DFG). The builder methods correspond one-to-one to functional-unit
operations.
"""

from __future__ import annotations

from repro.ir.dfg import DataflowGraph, Node
from repro.ir.ops import Op, OpKind


class DFGBuilder:
    """Builds a :class:`DataflowGraph` op by op."""

    def __init__(self, name: str):
        self.graph = DataflowGraph(name)

    def finish(self, strict: bool = False) -> DataflowGraph:
        """Validate and return the graph; ``strict`` also rejects
        dangling nodes (see :meth:`DataflowGraph.validate`)."""
        self.graph.validate(strict=strict)
        return self.graph

    # -- fabric edges --------------------------------------------------

    def deq(self, queue: str) -> Node:
        return self.graph.add(Op(OpKind.DEQ, queue))

    def enq(self, queue: str, value: Node) -> Node:
        return self.graph.add(Op(OpKind.ENQ, queue), value)

    # -- constants and state --------------------------------------------

    def const(self, value) -> Node:
        return self.graph.add(Op(OpKind.CONST, value))

    def reg(self, name: str) -> Node:
        """A loop-carried register; connect its input with ``set_reg``."""
        return self.graph.add(Op(OpKind.REG, name))

    def set_reg(self, reg: Node, value: Node) -> None:
        self.graph.set_reg_input(reg, value)

    # -- integer ALU -----------------------------------------------------

    def add(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.ADD), a, b)

    def sub(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.SUB), a, b)

    def mul(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.MUL), a, b)

    def and_(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.AND), a, b)

    def or_(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.OR), a, b)

    def xor(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.XOR), a, b)

    def shl(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.SHL), a, b)

    def shr(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.SHR), a, b)

    def lt(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.CMP_LT), a, b)

    def eq(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.CMP_EQ), a, b)

    def sel(self, cond: Node, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.SEL), cond, a, b)

    def lea(self, base: Node, index: Node, scale: int = 8) -> Node:
        """Address generation: ``base + index * scale``."""
        return self.graph.add(Op(OpKind.LEA, scale), base, index)

    def ctrl(self, value: Node) -> Node:
        """Control-value steering/predication of ``value``."""
        return self.graph.add(Op(OpKind.CTRL), value)

    # -- memory ----------------------------------------------------------

    def load(self, addr: Node) -> Node:
        return self.graph.add(Op(OpKind.LD), addr)

    def store(self, addr: Node, value: Node) -> Node:
        return self.graph.add(Op(OpKind.ST), addr, value)

    # -- floating point (FMA units) ---------------------------------------

    def fadd(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.FADD), a, b)

    def fmul(self, a: Node, b: Node) -> Node:
        return self.graph.add(Op(OpKind.FMUL), a, b)

    def fma(self, a: Node, b: Node, acc: Node) -> Node:
        return self.graph.add(Op(OpKind.FMA), a, b, acc)
