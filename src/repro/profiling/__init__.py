"""Profiling: wait-for attribution, critical paths, causal what-ifs.

The package turns the telemetry event stream into three artifacts:

* a **blame matrix** (:mod:`~repro.profiling.attribution`) charging
  every stalled PE cycle to the component it waited on, reconciled
  exactly against the Fig. 14 CPI stacks;
* a **critical path** (:mod:`~repro.profiling.critical_path`): the
  longest dependency chain through the run, exportable as ranked
  segments, JSON, or folded flamegraph stacks;
* **what-if estimates** (:mod:`~repro.profiling.whatif`): Coz-style
  virtual speedups predicting the end-to-end effect of making one
  stage, queue neighborhood, or subsystem k% faster — validatable by
  re-simulating a modified :class:`~repro.config.SystemConfig`.

:mod:`~repro.profiling.history` adds the benchmark regression
observatory diffing run manifests against committed baselines.

Entry points: ``run_experiment(..., profile=True)`` attaches everything
and returns the profile on the result; ``python -m repro profile`` and
``python -m repro bench-diff`` are the CLI verbs.
"""

from repro.profiling.attribution import (BlameMatrix, RunProfile,
                                         WaitForProfiler)
from repro.profiling.critical_path import (CriticalPath, PathSegment,
                                           extract_critical_path)
from repro.profiling.history import (DEFAULT_BLAME_TOL, DEFAULT_CYCLE_TOL,
                                     DEFAULT_WALL_RATIO, DiffFinding,
                                     DiffReport, bench_diff)
from repro.profiling.topology import Topology, base_name
from repro.profiling.whatif import (WhatIfPrediction, apply_whatif_config,
                                    parse_whatif, predict_speedup,
                                    validate_prediction)

__all__ = [
    "BlameMatrix", "RunProfile", "WaitForProfiler",
    "CriticalPath", "PathSegment", "extract_critical_path",
    "DiffFinding", "DiffReport", "bench_diff",
    "DEFAULT_CYCLE_TOL", "DEFAULT_BLAME_TOL", "DEFAULT_WALL_RATIO",
    "Topology", "base_name",
    "WhatIfPrediction", "apply_whatif_config", "parse_whatif",
    "predict_speedup", "validate_prediction",
    "attach_profiler",
]


def attach_profiler(system, bus=None) -> WaitForProfiler:
    """Wire a :class:`WaitForProfiler` onto a built ``System``.

    Reuses the system's attached :class:`~repro.stats.telemetry.
    EventBus` (or ``bus``) when present, else attaches a fresh one. The
    profiler subscribes kind-filtered, so per-token queue/cache events
    are never constructed on its behalf. After ``system.run(...)``
    returns ``result``, call ``profiler.finalize(result.pe_counters,
    result.cycles)`` (or pass the live PE counters of a truncated run).
    """
    from repro.stats.telemetry import EventBus
    if bus is None:
        bus = system.telemetry or EventBus()
    if system.telemetry is not bus:
        system.attach_telemetry(bus)
    topology = Topology.from_program(system.program, system.config)
    profiler = WaitForProfiler(topology)
    profiler.drms = [drm for pe in system.pes for drm in pe.drms]
    bus.subscribe(profiler, kinds=WaitForProfiler.KINDS)
    return profiler
