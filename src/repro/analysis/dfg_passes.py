"""DFG dataflow analyses: liveness, dead code, constants, feasibility.

These passes run per stage over the same :class:`DataflowGraph` the
mapper consumes, predicting mapper failures (and worse: silent waste)
before :func:`repro.cgra.mapper.map_dfg` is ever called. The
feasibility pass reuses the mapper's own level-folding
(:func:`repro.cgra.mapper.fold_levels`) so its column/FMA accounting is
the mapper's accounting, and names the first node that does not fit —
``map_dfg`` itself only names the stage.
"""

from __future__ import annotations

from repro.cgra.fabric import FabricSpec
from repro.cgra.mapper import fold_levels
from repro.ir.dfg import DataflowGraph, DFGError
from repro.ir.ops import OpKind, OP_INFO
from repro.analysis.report import Finding

# Pure value ops the constant-propagation pass can fold. LD/DEQ/REG
# depend on memory or queue state; CTRL steers control tokens.
_FOLDABLE = {
    OpKind.ADD: lambda a, b: a + b,
    OpKind.SUB: lambda a, b: a - b,
    OpKind.MUL: lambda a, b: a * b,
    OpKind.AND: lambda a, b: a & b,
    OpKind.OR: lambda a, b: a | b,
    OpKind.XOR: lambda a, b: a ^ b,
    OpKind.SHL: lambda a, b: a << b,
    OpKind.SHR: lambda a, b: a >> b,
    OpKind.CMP_LT: lambda a, b: int(a < b),
    OpKind.CMP_EQ: lambda a, b: int(a == b),
    OpKind.SEL: lambda c, a, b: a if c else b,
    OpKind.FADD: lambda a, b: a + b,
    OpKind.FMUL: lambda a, b: a * b,
    OpKind.FMA: lambda a, b, c: a * b + c,
}


def _dead_nodes(dfg: DataflowGraph) -> list:
    findings = []
    for node in dfg.iter_dangling_nodes():
        findings.append(Finding(
            "error", "dfg.dead", f"{dfg.name}.n{node.node_id}",
            f"stage {dfg.name!r}: dangling node {node!r} — its result "
            f"is never consumed"))
    return findings


def _register_liveness(dfg: DataflowGraph) -> list:
    findings = []
    consumed = dfg.consumed_ids()
    for node in dfg.nodes:
        if node.kind is not OpKind.REG:
            continue
        if not node.operands:
            findings.append(Finding(
                "warning", "dfg.liveness", f"{dfg.name}.n{node.node_id}",
                f"stage {dfg.name!r}: register {node!r} is never "
                f"written; it forever holds its initial value"))
        if node.node_id not in consumed:
            findings.append(Finding(
                "warning", "dfg.liveness", f"{dfg.name}.n{node.node_id}",
                f"stage {dfg.name!r}: register {node!r} is written but "
                f"never read — dead loop-carried state"))
    return findings


def _constant_propagation(dfg: DataflowGraph) -> list:
    """Forward constant propagation; foldable nodes become info
    findings (the fabric spends an FU recomputing a known value)."""
    findings = []
    value: dict[int, object] = {}
    for node in dfg.nodes:  # nodes are in def-before-use order
        if node.kind is OpKind.CONST:
            value[node.node_id] = node.op.attr
            continue
        fold = _FOLDABLE.get(node.kind)
        if fold is None:
            continue
        if not all(o.node_id in value for o in node.operands):
            continue
        try:
            folded = fold(*(value[o.node_id] for o in node.operands))
        except Exception:
            continue
        value[node.node_id] = folded
        findings.append(Finding(
            "info", "dfg.constprop", f"{dfg.name}.n{node.node_id}",
            f"stage {dfg.name!r}: {node!r} always computes {folded!r}; "
            f"fold it into a constant to free a functional unit"))
    return findings


def _feasibility(dfg: DataflowGraph, fabric: FabricSpec,
                 max_replication=None) -> tuple:
    """Predict the mapper's verdict; returns (record, findings)."""
    findings = []
    levels = dfg.levels()
    row_load = fold_levels(levels, fabric.rows)
    lane_width = max((len(ops) for ops in row_load), default=0)
    lane_width = max(lane_width, 1)
    if lane_width > fabric.cols:
        widest = max(row_load, key=len)
        offender = widest[fabric.cols]
        findings.append(Finding(
            "error", "dfg.feasibility",
            f"{dfg.name}.n{offender.node_id}",
            f"stage {dfg.name!r}: needs {lane_width} columns, fabric "
            f"has {fabric.cols}; node {offender!r} does not fit — "
            f"split the stage into smaller stages"))

    n_fma = dfg.n_fma_ops
    if n_fma > fabric.fma_units:
        fma_nodes = [n for n in dfg.nodes if OP_INFO[n.kind].needs_fma]
        offender = fma_nodes[fabric.fma_units]
        findings.append(Finding(
            "error", "dfg.feasibility",
            f"{dfg.name}.n{offender.node_id}",
            f"stage {dfg.name!r}: needs {n_fma} FMA units, fabric has "
            f"{fabric.fma_units}; node {offender!r} does not fit"))

    # The bitstream is fixed-size per fabric: 16-byte header, 4 bytes
    # per functional-unit cell, 4-byte checksum (repro.cgra.bitstream).
    config_needed = 16 + 4 * fabric.n_functional_units + 4
    if config_needed > fabric.config_bytes:
        findings.append(Finding(
            "error", "dfg.feasibility", dfg.name,
            f"stage {dfg.name!r}: a {fabric.rows}x{fabric.cols} fabric "
            f"needs {config_needed} configuration bytes but "
            f"config_bytes is {fabric.config_bytes}"))

    replication = fabric.cols // lane_width
    if n_fma:
        replication = min(replication, fabric.fma_units // max(n_fma, 1))
    if max_replication is not None:
        replication = min(replication, max_replication)
    replication = max(replication, 1)

    record = {
        "n_levels": len(levels),
        "lane_width": lane_width,
        "replication": replication,
        "depth_cycles": fabric.pipeline_depth(len(levels)),
        "n_compute_ops": dfg.n_compute_ops,
        "n_fma_ops": n_fma,
        "config_bytes_needed": config_needed,
        "fits": not any(f.severity == "error" for f in findings),
    }
    return record, findings


def analyze_stage(dfg: DataflowGraph, fabric: FabricSpec,
                  max_replication=None) -> tuple:
    """Run all DFG passes on one stage. Returns (record, findings)."""
    try:
        dfg.validate(strict=False)  # empty graphs, combinational cycles
    except DFGError as exc:
        finding = Finding("error", "dfg.structure", dfg.name, str(exc))
        return {"fits": False}, [finding]
    findings = []
    findings += _dead_nodes(dfg)
    findings += _register_liveness(dfg)
    findings += _constant_propagation(dfg)
    record, feas = _feasibility(dfg, fabric, max_replication)
    findings += feas
    return record, findings
