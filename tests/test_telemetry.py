"""Tests for the telemetry subsystem: event bus, sampler, exporters,
run manifests, and the CPI-stack invariant."""

import io
import json
import math

import pytest

from repro.config import SystemConfig
from repro.core import DeadlockError, System
from repro.core.system import SimulationTimeout
from repro.datasets.graphs import power_law_graph
from repro.harness import run_experiment
from repro.stats.counters import Counters
from repro.stats.cpi_stack import CPI_BUCKETS, cpi_stack, merge_stacks
from repro.stats.manifest import (MANIFEST_SCHEMA_VERSION, build_manifest,
                                  load_manifest, load_manifests,
                                  summarize_manifests, write_manifest)
from repro.stats.telemetry import (EventBus, JsonlSink, PeriodicSampler,
                                   RecordingSink, TelemetryEvent,
                                   chrome_trace)
from repro.stats.trace import ActivationTracer
from repro.workloads import bfs


def _build_system(n=300, seed=21):
    config = SystemConfig()
    graph = power_law_graph(n, 6.0, seed=seed)
    program, _ = bfs.build(graph, config, "fifer")
    return System(config, program, mode="fifer")


@pytest.fixture(scope="module")
def telemetry_run():
    system = _build_system()
    bus = EventBus()
    system.attach_telemetry(bus)
    sink = bus.subscribe(RecordingSink())
    sampler = bus.add_sampler(PeriodicSampler(256))
    result = system.run()
    return system, bus, sink, sampler, result


class TestEventBus:
    def test_sequence_is_strictly_increasing(self, telemetry_run):
        _, _, sink, _, _ = telemetry_run
        seqs = [e.seq for e in sink.events]
        assert all(b > a for a, b in zip(seqs, seqs[1:]))

    def test_all_layers_publish(self, telemetry_run):
        _, _, sink, _, _ = telemetry_run
        kinds = {e.kind for e in sink.events}
        for expected in ("stage.activate", "stage.deactivate",
                         "reconfig.begin", "reconfig.end", "sched.switch",
                         "pe.stall", "queue.enq", "queue.deq", "cache.miss",
                         "mem.issue", "mem.complete", "sample"):
            assert expected in kinds, f"no {expected} events published"

    def test_per_pe_event_cycles_are_ordered(self, telemetry_run):
        _, _, sink, _, _ = telemetry_run
        per_pe = {}
        for event in sink.events:
            if event.kind == "stage.activate":
                per_pe.setdefault(event.data["pe"], []).append(event.cycle)
        assert len(per_pe) == 16
        for cycles in per_pe.values():
            assert cycles == sorted(cycles)

    def test_activations_match_reconfig_counter(self, telemetry_run):
        _, _, sink, _, result = telemetry_run
        activations = [e for e in sink.events if e.kind == "stage.activate"]
        assert len(activations) == result.counters["reconfig_events"]

    def test_mem_complete_after_issue(self, telemetry_run):
        _, _, sink, _, _ = telemetry_run
        issues = [e for e in sink.events if e.kind == "mem.issue"]
        completes = [e for e in sink.events if e.kind == "mem.complete"]
        assert len(issues) == len(completes) > 0
        for issue, complete in zip(issues, completes):
            assert complete.cycle >= issue.cycle + 1

    def test_unsubscribed_bus_publishes_nothing(self):
        bus = EventBus()
        sink = RecordingSink()
        bus.subscribe(sink)
        bus.unsubscribe(sink)
        bus.emit("queue.enq", "queue:x", occupancy=1)
        assert sink.events == []
        assert not bus.active

    def test_filtered_recording_sink(self):
        bus = EventBus()
        sink = bus.subscribe(RecordingSink(kinds=("a",)))
        bus.emit("a", "s")
        bus.emit("b", "s")
        assert [e.kind for e in sink.events] == ["a"]


class TestZeroCostDisabled:
    def test_probes_default_to_none(self):
        system = _build_system(n=120, seed=3)
        assert all(pe.probe is None for pe in system.pes)
        assert all(q.probe is None for q in system.queues.values())
        assert system.llc.probe is None and system.memory.probe is None

    def test_detach_restores_uninstrumented_state(self):
        system = _build_system(n=120, seed=3)
        system.attach_telemetry(EventBus())
        assert all(pe.probe is not None for pe in system.pes)
        system.detach_telemetry()
        assert system.telemetry is None
        assert all(pe.probe is None for pe in system.pes)
        assert all(pe.l1.probe is None for pe in system.pes)
        assert all(drm.probe is None
                   for pe in system.pes for drm in pe.drms)
        assert all(q.probe is None for q in system.queues.values())
        assert system.llc.probe is None and system.memory.probe is None


class _FakeQueue:
    def __init__(self, words):
        self.occupancy_words = words


class _FakePE:
    state = "stage"

    def __init__(self):
        self.counters = Counters()


class _FakeSystem:
    def __init__(self):
        self.cycle = 0.0
        self.queues = {"q": _FakeQueue(3)}
        self.pes = [_FakePE()]


class TestSampler:
    def test_period_math_quantum_smaller_than_period(self, telemetry_run):
        _, _, _, sampler, result = telemetry_run
        # One sample per due point k*period, recorded at the first
        # quantum boundary at or after it.
        expected = math.floor(result.cycles / sampler.period) + 1
        assert len(sampler.samples) == expected
        cycles = [s["cycle"] for s in sampler.samples]
        assert cycles == sorted(cycles)
        assert len(set(cycles)) == len(cycles)

    def test_period_smaller_than_quantum_samples_once_per_tick(self):
        sampler = PeriodicSampler(1)
        fake = _FakeSystem()
        for cycle in (64.0, 128.0, 192.0):
            fake.cycle = cycle
            sampler.maybe_sample(fake)
        assert [s["cycle"] for s in sampler.samples] == [64.0, 128.0, 192.0]

    def test_skipped_due_points_collapse(self):
        sampler = PeriodicSampler(10)
        fake = _FakeSystem()
        fake.cycle = 95.0   # due points 0..90 all collapse into one sample
        sampler.maybe_sample(fake)
        fake.cycle = 96.0   # next due point is 100 -> no sample yet
        sampler.maybe_sample(fake)
        assert len(sampler.samples) == 1
        fake.cycle = 100.0
        sampler.maybe_sample(fake)
        assert len(sampler.samples) == 2

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicSampler(0)

    def test_sample_contents(self, telemetry_run):
        system, _, _, sampler, result = telemetry_run
        sample = sampler.samples[-1]
        assert set(sample["queues"]) == set(system.queues)
        assert all(v >= 0 for v in sample["queues"].values())
        assert len(sample["pe_state"]) == 16
        assert len(sample["cpi"]) == 16
        for stack in sample["cpi"]:
            assert set(stack) == set(CPI_BUCKETS)
            assert sum(stack.values()) == pytest.approx(sample["cycle"])

    def test_time_resolved_cpi_is_monotonic(self, telemetry_run):
        _, _, _, sampler, _ = telemetry_run
        # Cumulative issued cycles never decrease between samples.
        issued = [sum(stack["issued"] for stack in s["cpi"])
                  for s in sampler.samples]
        assert all(b >= a - 1e-9 for a, b in zip(issued, issued[1:]))


class TestChromeTrace:
    def test_schema_and_tracks(self, telemetry_run):
        _, _, sink, sampler, result = telemetry_run
        trace = chrome_trace(sink.events, result.cycles,
                             samples=sampler.samples)
        json.dumps(trace)  # must be serializable
        events = trace["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert slices, "no stage slices"
        for entry in slices:
            assert entry["ts"] >= 0 and entry["dur"] >= 0
            assert entry["ts"] + entry["dur"] <= result.cycles + 1e-6
            assert {"name", "cat", "pid", "tid"} <= set(entry)
        # One track per active PE, named via thread_name metadata.
        tids = {e["tid"] for e in slices}
        assert len(tids) == 16
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {f"PE {pe}" for pe in tids}
        # One counter track per queue seen by the sampler.
        counter_names = {e["name"] for e in events if e["ph"] == "C"}
        sampled_queues = set(sampler.samples[0]["queues"])
        assert counter_names == {f"queue {q}" for q in sampled_queues}

    def test_truncated_trace_clamps_spans(self):
        events = [
            TelemetryEvent(0.0, 0, "reconfig.begin", "pe0",
                           {"pe": 0, "stage": "a", "period": 10.0}),
            TelemetryEvent(10.0, 1, "stage.activate", "pe0",
                           {"pe": 0, "stage": "a", "reconfig_cycles": 10.0}),
        ]
        trace = chrome_trace(events, 5.0)
        for entry in trace["traceEvents"]:
            if entry["ph"] == "X":
                assert entry["dur"] >= 0
                assert entry["ts"] + entry["dur"] <= 5.0 + 1e-9


class TestJsonlSink:
    def test_streams_valid_json_lines(self):
        system = _build_system(n=120, seed=3)
        bus = EventBus()
        system.attach_telemetry(bus)
        stream = io.StringIO()
        sink = bus.subscribe(JsonlSink(stream))
        system.run()
        lines = stream.getvalue().splitlines()
        assert len(lines) == sink.n_events > 0
        records = [json.loads(line) for line in lines]
        for record in records:
            assert {"cycle", "seq", "kind", "source"} <= set(record)
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)


class TestActivationTracerSink:
    def test_detach_stops_recording(self):
        system = _build_system(n=120, seed=3)
        tracer = ActivationTracer().attach(system)
        assert system.telemetry is not None  # attach created a bus
        system.run()
        recorded = len(tracer.events)
        assert recorded > 0
        tracer.detach()
        system.telemetry.emit("stage.activate", "pe0", cycle=0.0, pe=0,
                              stage="x", reconfig_cycles=0.0)
        assert len(tracer.events) == recorded

    def test_context_manager_detaches(self):
        system = _build_system(n=120, seed=3)
        with ActivationTracer().attach(system) as tracer:
            system.run()
        assert tracer.events
        assert tracer not in system.telemetry.sinks

    def test_attach_joins_existing_bus(self):
        system = _build_system(n=120, seed=3)
        bus = EventBus()
        system.attach_telemetry(bus)
        tracer = ActivationTracer().attach(system)
        assert system.telemetry is bus and tracer in bus.sinks

    def test_residences_clamp_truncated_traces(self):
        tracer = ActivationTracer()
        tracer.record(0, "a", 0.0, 0.0)
        tracer.record(0, "b", 100.0, 0.0)  # starts after the cut-off
        spans = tracer.residences(50.0)
        assert [(s[1], s[2], s[3]) for s in spans] == [
            ("a", 0.0, 50.0), ("b", 50.0, 0.0)]

    def test_gantt_clamps_truncated_traces(self):
        tracer = ActivationTracer()
        tracer.record(0, "a", 0.0, 0.0)
        tracer.record(0, "b", 100.0, 0.0)
        chart = tracer.gantt(50.0, width=20, max_pes=1)
        row = chart.splitlines()[0]
        assert row == f"PE0  |{'A' * 20}|"


class TestCountersHelpers:
    def test_total_and_items(self):
        counters = Counters()
        counters.add("b", 2.0)
        counters.add("a", 1.0)
        assert counters.total() == pytest.approx(3.0)
        assert counters.items() == [("a", 1.0), ("b", 2.0)]

    def test_scaled_preserves_zero_semantics(self):
        counters = Counters()
        counters.add("x", 4.0)
        scaled = counters.scaled(0.5)
        assert scaled["x"] == pytest.approx(2.0)
        assert scaled["missing"] == 0.0
        assert counters["x"] == pytest.approx(4.0)  # original untouched


class TestCPIStackInvariant:
    def test_buckets_sum_to_total_cycles(self, telemetry_run):
        _, _, _, _, result = telemetry_run
        for stack in result.cpi_stacks():
            assert sum(stack.values()) == pytest.approx(result.cycles)
        merged = result.merged_cpi_stack()
        assert sum(merged.values()) == pytest.approx(result.cycles * 16)

    def test_unattributed_cycles_charge_to_idle(self):
        counters = Counters()
        counters.add("issued", 5.0)
        counters.add("reconfig", 2.0)
        stack = cpi_stack(counters, 10.0)
        assert stack["idle"] == pytest.approx(3.0)
        assert sum(stack.values()) == pytest.approx(10.0)

    def test_merge_stacks_keeps_buckets(self):
        stacks = [{"issued": 1.0}, {"idle": 2.0}]
        merged = merge_stacks(stacks)
        assert set(merged) == set(CPI_BUCKETS)
        assert sum(merged.values()) == pytest.approx(3.0)


class TestManifests:
    @pytest.fixture(scope="class")
    def manifest_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("manifests")
        for seed in (1, 2):
            run_experiment("bfs", "Hu", "fifer", scale=0.12, seed=seed,
                           manifest_dir=directory)
        return directory

    def test_round_trip(self, manifest_dir):
        manifests = load_manifests(manifest_dir)
        assert len(manifests) == 2
        for manifest in manifests:
            assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
            assert manifest["app"] == "bfs" and manifest["input"] == "Hu"
            assert manifest["cycles"] > 0
            assert manifest["wall_time_s"] > 0
            assert manifest["config"]["n_pes"] == 16
            assert sum(manifest["cpi_stack"].values()) == pytest.approx(
                manifest["cycles"] * 16)
            assert manifest["caches"]["l1"]["hits"] > 0
        assert {m["seed"] for m in manifests} == {1, 2}

    def test_collision_free_filenames(self, manifest_dir, tmp_path):
        manifest = load_manifests(manifest_dir)[0]
        first = write_manifest(manifest, tmp_path)
        second = write_manifest(manifest, tmp_path)
        assert first != second
        assert load_manifest(second) == manifest

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps(
            {"schema_version": MANIFEST_SCHEMA_VERSION + 1}))
        with pytest.raises(ValueError):
            load_manifest(path)
        path.write_text(json.dumps({"cycles": 1.0}))
        with pytest.raises(ValueError):
            load_manifest(path)

    def test_summarize_tabulates_all_runs(self, manifest_dir):
        manifests = load_manifests(manifest_dir)
        headers, rows = summarize_manifests(manifests)
        assert len(rows) == 2
        assert all(len(row) == len(headers) for row in rows)
        assert rows[0][0] == "bfs/Hu/fifer/decoupled"

    def test_ooo_manifest(self):
        result = run_experiment("bfs", "Hu", "multicore", scale=0.12)
        manifest = build_manifest(result)
        assert manifest["system"] == "multicore"
        assert manifest["instructions"] > 0
        assert "config" not in manifest  # analytic model has no SystemConfig

    def test_run_experiment_accepts_telemetry(self):
        bus = EventBus()
        sink = bus.subscribe(RecordingSink(kinds=("stage.activate",)))
        run_experiment("bfs", "Hu", "fifer", scale=0.12, telemetry=bus)
        assert sink.events


class TestTruncatedRuns:
    """Sampler series and trace export survive runs that die early.

    Long irregular runs are exactly where one needs the telemetry, and
    exactly where deadlocks and timeouts strike mid-quantum — so the
    sampler's series must stay well-formed, the exporters must clamp to
    the actual end cycle, and the fast engine's fast-forward must
    produce the same sampled series the naive engine would.
    """

    def _truncated(self, max_cycles=512):
        system = _build_system(n=120, seed=5)
        bus = EventBus()
        system.attach_telemetry(bus)
        sink = bus.subscribe(RecordingSink())
        sampler = bus.add_sampler(PeriodicSampler(128))
        with pytest.raises(SimulationTimeout):
            system.run(max_cycles=max_cycles)
        return system, sink, sampler

    def test_timeout_sampler_series_well_formed(self):
        system, _, sampler = self._truncated()
        assert sampler.samples, "no samples before the timeout"
        cycles = [s["cycle"] for s in sampler.samples]
        assert cycles == sorted(set(cycles))
        assert cycles[-1] <= system.cycle
        for sample in sampler.samples:
            assert len(sample["pe_state"]) == 16
            assert len(sample["cpi"]) == 16

    def test_post_mortem_sample_captures_final_state(self):
        # After catching the exception, one explicit sample() gives the
        # at-death snapshot regardless of the period.
        system, _, sampler = self._truncated()
        record = sampler.sample(system)
        assert record["cycle"] == system.cycle
        assert sampler.samples[-1] is record

    def test_timeout_trace_clamps_to_end_cycle(self):
        system, sink, sampler = self._truncated()
        doc = chrome_trace(sink.events, system.cycle,
                           samples=sampler.samples)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices, "truncated run exported no slices"
        for event in slices:
            assert event["ts"] >= 0.0
            assert event["ts"] + event["dur"] <= system.cycle + 1e-9
        assert doc["otherData"]["end_cycle"] == system.cycle
        json.dumps(doc)  # must serialize cleanly

    def test_jsonl_lines_complete_on_truncation(self):
        system = _build_system(n=120, seed=5)
        bus = EventBus()
        system.attach_telemetry(bus)
        stream = io.StringIO()
        sink = bus.subscribe(JsonlSink(stream, kinds=("stage.activate",
                                                      "pe.stall")))
        with pytest.raises(SimulationTimeout):
            system.run(max_cycles=512)
        sink.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == sink.n_events > 0
        for line in lines:
            event = json.loads(line)
            assert event["cycle"] <= system.cycle

    def _deadlocked(self, engine):
        from tests.test_error_reports import _CONFIG, _stuck_program
        system = System(_CONFIG, _stuck_program(), mode="fifer")
        bus = EventBus()
        system.attach_telemetry(bus)
        sink = bus.subscribe(RecordingSink(kinds=("stage.activate",
                                                  "reconfig.begin")))
        sampler = bus.add_sampler(PeriodicSampler(256))
        with pytest.raises(DeadlockError):
            system.run(engine=engine)
        return system, sink, sampler

    def test_deadlock_sampler_series_well_formed(self):
        system, sink, sampler = self._deadlocked("fast")
        cycles = [s["cycle"] for s in sampler.samples]
        assert cycles == sorted(set(cycles))
        assert cycles[-1] <= system.cycle
        doc = chrome_trace(sink.events, system.cycle,
                           samples=sampler.samples)
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert event["ts"] + event["dur"] <= system.cycle + 1e-9

    def test_deadlock_sampled_series_engine_identical(self):
        # The fast engine's fast-forward ticks every quantum boundary
        # when samplers are attached, so the recorded series must match
        # the naive engine's cycle for cycle.
        fast_sys, _, fast_sampler = self._deadlocked("fast")
        naive_sys, _, naive_sampler = self._deadlocked("naive")
        assert fast_sys.cycle == naive_sys.cycle
        assert fast_sampler.samples == naive_sampler.samples
