"""Micro-benchmark: telemetry instrumentation overhead when disabled.

The telemetry subsystem's contract is that instrumented hot paths are a
zero-cost no-op when nothing is listening: every publish site is a
single ``if probe is not None`` attribute check, and an attached bus
with no sinks adds only one guarded method call per (rare) event site.
This benchmark measures simulated-run wall time for the same program in
three states —

* ``off``   — no bus attached (every probe is ``None``),
* ``armed`` — bus attached, no sinks subscribed,
* ``on``    — bus attached with a recording sink (full event stream),

and asserts the ``armed`` state stays within 5% of ``off`` (min-of-N
timing to suppress scheduler noise).
"""

import time

from bench_common import emit
from repro.config import SystemConfig
from repro.core import System
from repro.datasets.graphs import power_law_graph
from repro.harness import format_table
from repro.stats.telemetry import EventBus, RecordingSink
from repro.workloads import bfs

REPEATS = 5
OVERHEAD_BUDGET = 0.05  # acceptance: < 5% with no sinks attached


def _run_once(attach_bus: bool, subscribe: bool) -> float:
    config = SystemConfig()
    graph = power_law_graph(600, 8.0, seed=3)
    program, _ = bfs.build(graph, config, "fifer")
    system = System(config, program, mode="fifer")
    if attach_bus:
        bus = EventBus()
        system.attach_telemetry(bus)
        if subscribe:
            bus.subscribe(RecordingSink())
    start = time.perf_counter()
    system.run()
    return time.perf_counter() - start


def _best(attach_bus: bool, subscribe: bool) -> float:
    return min(_run_once(attach_bus, subscribe) for _ in range(REPEATS))


def run_overhead():
    off = _best(False, False)
    armed = _best(True, False)
    on = _best(True, True)
    rows = [
        ["off (no bus)", f"{off * 1e3:.1f}", "-"],
        ["armed (bus, no sinks)", f"{armed * 1e3:.1f}",
         f"{(armed / off - 1.0):+.1%}"],
        ["on (recording sink)", f"{on * 1e3:.1f}",
         f"{(on / off - 1.0):+.1%}"],
    ]
    table = format_table(
        ["telemetry state", "best wall time (ms)", "vs off"], rows,
        title=(f"telemetry overhead, bfs on a 600-vertex power-law graph "
               f"(min of {REPEATS} runs; budget: armed < "
               f"{OVERHEAD_BUDGET:.0%})"))
    emit("telemetry_overhead", table)
    return off, armed, on


def test_telemetry_overhead(benchmark):
    off, armed, _on = benchmark.pedantic(run_overhead, rounds=1,
                                         iterations=1)
    assert armed <= off * (1.0 + OVERHEAD_BUDGET), (
        f"armed telemetry overhead {(armed / off - 1.0):+.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%}")
