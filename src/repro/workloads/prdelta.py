"""PageRank-Delta (paper Sec. 7.2).

PageRank-Delta only visits vertices whose PageRank change exceeds a
threshold (Ligra's PageRankDelta). The scheme implemented here (the
golden reference and the pipeline are the same algorithm):

* initially every vertex is active with ``delta[v] = 1/n``;
* an active vertex adds ``delta[v]`` to its rank and pushes the
  contribution ``damping * delta[v] / deg(v)`` along its out-edges;
* contributions accumulate into ``acc[u]``; in the next iteration each
  touched vertex u sets ``delta[u] = acc[u]`` (resetting the
  accumulator) and is active again iff ``|delta[u]| > epsilon``.

The vertex-side update is fused into S0 (process fringe); the edge-side
accumulation is S3. Contributions are double-precision, exercising the
fabric's FMA units (which caps SIMD replication of those stages).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.graphs import CSRGraph
from repro.workloads.common import GraphPipelineWorkload

DAMPING = 0.85
EPSILON_FRACTION = 0.05  # epsilon = EPSILON_FRACTION / n


def prd_reference(graph: CSRGraph, max_iterations: int = 1000) -> np.ndarray:
    """Golden PageRank-Delta; returns the rank vector."""
    n = graph.n_vertices
    epsilon = EPSILON_FRACTION / n
    rank = np.zeros(n, dtype=np.float64)
    delta = np.full(n, 1.0 / n, dtype=np.float64)
    acc = np.zeros(n, dtype=np.float64)
    active = list(range(n))
    for _ in range(max_iterations):
        if not active:
            break
        touched = set()
        for v in active:
            if abs(delta[v]) <= epsilon:
                continue
            rank[v] += delta[v]
            degree = graph.out_degree(v)
            if degree == 0:
                continue
            contribution = DAMPING * delta[v] / degree
            for ngh in graph.neighbors_of(v):
                acc[ngh] += contribution
                touched.add(int(ngh))
        active = []
        for v in sorted(touched):
            delta[v] = acc[v]
            acc[v] = 0.0
            active.append(v)
    return rank


class PRDeltaWorkload(GraphPipelineWorkload):
    """Pipeline-parallel PageRank-Delta."""

    name = "prd"
    # drm_off also fetches the vertex's accumulator (or initial delta).
    vertex_fetch_words = 1

    def __init__(self, graph: CSRGraph, n_shards: int, max_iterations=None):
        self.max_iterations = max_iterations
        super().__init__(graph, n_shards)

    def setup(self) -> None:
        n = self.graph.n_vertices
        self.epsilon = EPSILON_FRACTION / n
        self.rank = np.zeros(n, dtype=np.float64)
        self.delta = np.full(n, 1.0 / n, dtype=np.float64)
        self.rank_ref = self.space.alloc_array("rank", n)
        self.delta_ref = self.space.alloc_array("delta", n)
        self.memmap.register(self.rank_ref, self.rank)
        self.memmap.register(self.delta_ref, self.delta)
        # Double-buffered contribution accumulator: S3 of iteration k
        # writes one half while S0 of iteration k consumes (and clears)
        # the other; swapped at the barrier. The pipeline overlaps both
        # phases within an iteration, so a single buffer would mix
        # contributions across iterations.
        self.acc = [np.zeros(n, dtype=np.float64) for _ in range(2)]
        self.acc_refs = [self.space.alloc_array(f"acc.{i}", n)
                         for i in range(2)]
        for ref, array in zip(self.acc_refs, self.acc):
            self.memmap.register(ref, array)
        self._write_buf = 0
        self.first_iteration = True
        self._in_next = [set() for _ in range(self.n_shards)]

    def value_addr(self, ngh: int) -> int:
        return self.acc_refs[self._write_buf].addr(ngh)

    def initial_fringe(self):
        return range(self.graph.n_vertices)

    def vertex_fetch_addrs(self, v: int) -> tuple:
        if self.first_iteration:
            return (self.delta_ref.addr(v),)
        return (self.acc_refs[self._write_buf ^ 1].addr(v),)

    def vertex_process(self, ctx, shard: int, v: int, start: int, end: int):
        """Vertex-side update: refresh delta from the accumulator,
        apply the activation threshold, update the rank."""
        if not self.first_iteration:
            read_buf = self._write_buf ^ 1
            self.delta[v] = self.acc[read_buf][v]
            self.acc[read_buf][v] = 0.0
            yield ("store", self.acc_refs[read_buf].addr(v))
            yield ("store", self.delta_ref.addr(v))
        if abs(self.delta[v]) <= self.epsilon:
            return None
        self.rank[v] += self.delta[v]
        yield ("store", self.rank_ref.addr(v))
        return float(self.delta[v])

    def s1_edge_payload(self, v: int, start: int, end: int, p0):
        if end == start:  # zero-degree vertex: no edges will be pushed
            return 0.0
        return DAMPING * p0 / (end - start)

    def s3_update(self, ctx, shard: int, ngh: int, value, p0):
        buf = self._write_buf
        self.acc[buf][ngh] += p0
        yield ("store", self.acc_refs[buf].addr(ngh))
        if ngh not in self._in_next[shard]:
            self._in_next[shard].add(ngh)
            yield from self.push_touched(ctx, shard, ngh)

    def at_barrier(self, iteration: int) -> None:
        self.first_iteration = False
        self._write_buf ^= 1
        for pending in self._in_next:
            pending.clear()

    def result(self) -> np.ndarray:
        return self.rank

    def vertex_extra_ops(self, b, v_node):
        damping = b.const(DAMPING)
        return b.fmul(v_node, damping)

    def s3_extra_ops(self, b, value_node, payload_node):
        return b.fadd(value_node, payload_node)


def build(graph: CSRGraph, config, mode: str, variant: str = "decoupled",
          max_iterations=None):
    from repro.workloads.common import shards_for_mode

    n_stages = 4 if variant == "decoupled" else 2
    workload = PRDeltaWorkload(graph, shards_for_mode(config, mode, n_stages),
                               max_iterations=max_iterations)
    return workload.build_program(config, mode, variant), workload
