"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's
evaluation (Sec. 8). Results are printed and also written to
``benchmarks/results/<name>.txt`` so they survive pytest's output
capture. Runs are cached within a session so benchmarks that share
experiments (e.g., Fig. 13/14/15) do not repeat simulations, and each
``run_*`` entry point prefetches its full experiment grid through
:func:`repro.harness.run_sweep` so points fan out across cores.

Environment knobs:

* ``REPRO_BENCH_SCALE``   — multiplies the per-input default scales
  (raise for higher-fidelity, slower runs; lower for smoke tests).
* ``REPRO_BENCH_WORKERS`` — process-pool width for prefetched sweeps
  (default: one worker per CPU; ``1`` forces inline execution).
* ``REPRO_BENCH_ENGINE``  — simulation engine: ``fast`` (default),
  ``event``, or ``naive`` (``repro.core.ENGINES``); anything else is
  rejected at import so a typo cannot silently fall back.
* ``REPRO_BENCH_APPS``    — comma-separated app filter (e.g.
  ``bfs,spmm``) applied to ``ALL_APPS``/``REPRESENTATIVE``.
* ``REPRO_BENCH_INPUTS``  — keep only the first N inputs per app.
* ``REPRO_BENCH_RESULTS_DIR`` — override the results directory
  (the benchmark smoke test points this at a temp dir).
"""

from __future__ import annotations

import os
import pathlib

from repro.config import SystemConfig
from repro.core import ENGINES
from repro.env import env_choice, env_float, env_int
from repro.harness import SweepPoint, prepare_input, run_sweep
from repro.harness.run import APP_INPUTS, default_scale

# Knobs are validated by repro.env at import, so a typo'd value fails
# fast with an error naming the knob and its allowed values.
SCALE_MULT = env_float("REPRO_BENCH_SCALE", 1.0, minimum=0.0)
ENGINE = env_choice("REPRO_BENCH_ENGINE", "fast", ENGINES)
WORKERS = env_int("REPRO_BENCH_WORKERS", None, minimum=1)
RESULTS_DIR = pathlib.Path(
    os.environ.get("REPRO_BENCH_RESULTS_DIR")
    or pathlib.Path(__file__).resolve().parent / "results")
# Every benchmark experiment leaves a schema-versioned run manifest
# next to its results/*.txt so figures carry provenance and runs are
# diffable with `python -m repro report benchmarks/results/manifests`.
MANIFEST_DIR = RESULTS_DIR / "manifests"

ALL_APPS = ("bfs", "cc", "prd", "radii", "spmm", "silo")
_APPS_FILTER = os.environ.get("REPRO_BENCH_APPS")
if _APPS_FILTER:
    _selected = tuple(a.strip() for a in _APPS_FILTER.split(",") if a.strip())
    ALL_APPS = tuple(a for a in ALL_APPS if a in _selected) or ALL_APPS
# One representative input per app for the expensive sweeps.
REPRESENTATIVE = {app: code for app, code in
                  (("bfs", "In"), ("cc", "Hu"), ("prd", "Ci"),
                   ("radii", "Dy"), ("spmm", "FS"), ("silo", "YC"))
                  if app in ALL_APPS}
_INPUTS_LIMIT = env_int("REPRO_BENCH_INPUTS", 0, minimum=0)


def app_inputs(app: str):
    codes = APP_INPUTS[app]
    return codes[:_INPUTS_LIMIT] if _INPUTS_LIMIT else codes


def prepared(app: str, code: str):
    return prepare_input(app, code,
                         scale=default_scale(app, code) * SCALE_MULT)


def _config(queue_scale: float = 1.0, double_buffered: bool = True,
            zero_cost: bool = False, policy: str = "most-work",
            n_pes=None, max_simd_replication="default",
            drm_max_outstanding=None, drm_issue_width=None) -> SystemConfig:
    config = SystemConfig()
    overrides = dict(
        queue_mem_bytes=max(256, int(config.queue_mem_bytes * queue_scale)),
        double_buffered=double_buffered,
        zero_cost_reconfig=zero_cost,
        scheduler_policy=policy,
    )
    if n_pes is not None:
        overrides["n_pes"] = n_pes
    if max_simd_replication != "default":
        overrides["max_simd_replication"] = max_simd_replication
    if drm_max_outstanding is not None:
        overrides["drm_max_outstanding"] = drm_max_outstanding
    if drm_issue_width is not None:
        overrides["drm_issue_width"] = drm_issue_width
    return config.replace(**overrides)


def point(app: str, code: str, system: str, variant: str = "decoupled",
          **config_kwargs) -> SweepPoint:
    """Coordinates of one benchmark experiment (hashable cache key)."""
    return SweepPoint(app, code, system, variant=variant,
                      scale=default_scale(app, code) * SCALE_MULT,
                      engine=ENGINE, config=_config(**config_kwargs))


_CACHE: dict = {}


def prefetch(points) -> None:
    """Run (and cache) every uncached point, fanned across workers.

    Benchmarks call this with their full experiment grid up front so
    the points run on the process pool; subsequent ``experiment()``
    calls are cache hits.
    """
    missing = list(dict.fromkeys(p for p in points if p not in _CACHE))
    if not missing:
        return
    results = run_sweep(missing, workers=WORKERS, manifest_dir=MANIFEST_DIR)
    _CACHE.update(zip(missing, results))


def experiment(app: str, code: str, system: str, variant: str = "decoupled",
               **config_kwargs):
    """One cached experiment; see :func:`_config` for the config knobs."""
    pt = point(app, code, system, variant=variant, **config_kwargs)
    prefetch([pt])
    return _CACHE[pt]


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
