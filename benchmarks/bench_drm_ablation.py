"""DRM ablation (our extension; paper Sec. 5.4 motivates DRMs but does
not sweep their parameters).

Sweeps the two DRM timing parameters this model exposes:

* ``drm_max_outstanding`` — how many misses a DRM overlaps out of
  order; at 1 every miss serializes (a coupled-load-like DRM), so this
  quantifies the value of decoupled, out-of-order memory access.
* ``drm_issue_width`` — accesses issued per cycle to the banked L1;
  at 1 the DRMs throttle SIMD-replicated datapaths.

Both sweeps run Fifer on BFS and Silo (the most DRM-dependent apps).
"""

from bench_common import ALL_APPS, emit, experiment, point, prefetch
from repro.harness import format_table

_CASES = tuple((app, code) for app, code in (("bfs", "In"), ("silo", "YC"))
               if app in ALL_APPS)
_CONFIGS = (
    ("no miss overlap", dict(drm_max_outstanding=1)),
    ("2 outstanding", dict(drm_max_outstanding=2)),
    ("8 outstanding (default)", dict()),
    ("1 access/cycle", dict(drm_issue_width=1)),
    ("4 accesses/cycle (default)", dict()),
)


def _run(app, code, **config_kwargs):
    return experiment(app, code, "fifer", **config_kwargs).cycles


def run_drm_ablation():
    prefetch(point(app, code, "fifer", **kwargs)
             for app, code in _CASES for _, kwargs in _CONFIGS)
    rows = []
    outcomes = {}
    for app, code in _CASES:
        base = _run(app, code)
        for label, kwargs in _CONFIGS:
            cycles = _run(app, code, **kwargs)
            rows.append([f"{app}/{code}", label, f"{base / cycles:.2f}x"])
            outcomes[(app, label)] = base / cycles
    table = format_table(
        ["app", "DRM configuration", "relative performance"], rows,
        title="DRM ablation: Fifer performance vs the default DRMs")
    emit("drm_ablation", table)
    return outcomes


def test_drm_ablation(benchmark):
    outcomes = benchmark.pedantic(run_drm_ablation, rounds=1, iterations=1)
    # Serializing DRM misses costs BFS most of its performance (its
    # neighbor/distance fetches are miss-heavy); Silo's zipfian working
    # set is cache-friendlier at this scale, so its loss is smaller.
    assert outcomes[("bfs", "no miss overlap")] < 0.6
    assert outcomes[("silo", "no miss overlap")] <= 1.02
    # More overlap never makes things worse (within scheduling noise).
    for app in ("bfs", "silo"):
        assert (outcomes[(app, "no miss overlap")]
                <= outcomes[(app, "2 outstanding")] + 0.05)
