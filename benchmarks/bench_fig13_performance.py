"""Figure 13: per-input performance of all evaluated applications.

The paper reports the speedup of the serial OOO core, the static
16-PE pipeline, and 16-PE Fifer, normalized to the 4-core OOO
multicore, for every application/input pair. Headline results this
benchmark checks for shape (Sec. 8.1/8.2):

* Fifer outperforms the static pipeline by gmean ~2.8x (up to 5.5x);
* the static pipeline and Fifer are ~25x and ~72x faster than the
  serial OOO core;
* Fifer beats the 4-core OOO multicore by gmean ~17x.

Absolute factors differ (scaled inputs, analytic OOO model); the
ordering Fifer > static > multicore > serial should hold per the paper.
"""

import time
from dataclasses import replace

from bench_common import (ALL_APPS, WORKERS, app_inputs, emit, experiment,
                          point, prefetch)
from repro.harness import format_table, gmean, run_sweep
from repro.harness.run import SYSTEMS


def fig13_points():
    """The full Fig. 13 grid: every app x input x system."""
    return [point(app, code, system)
            for app in ALL_APPS
            for code in app_inputs(app)
            for system in SYSTEMS]


def _speedups(app: str):
    rows = []
    per_system = {system: [] for system in SYSTEMS}
    for code in app_inputs(app):
        cycles = {system: experiment(app, code, system).cycles
                  for system in SYSTEMS}
        base = cycles["multicore"]
        row = [code] + [f"{base / cycles[s]:.2f}" for s in SYSTEMS]
        for system in SYSTEMS:
            per_system[system].append(base / cycles[system])
        rows.append(row)
    rows.append(["gmean"] + [f"{gmean(per_system[s]):.2f}" for s in SYSTEMS])
    return rows, per_system


def _timed_grid(codegen: bool):
    """End-to-end wall time of the full grid (fresh sweep, cold
    bench-cache) with compiled step-functions on or off."""
    pts = [replace(p, codegen=codegen) for p in fig13_points()]
    start = time.perf_counter()
    results = run_sweep(pts, workers=WORKERS)
    return time.perf_counter() - start, [r.cycles for r in results]


def run_fig13():
    prefetch(fig13_points())
    blocks = []
    fifer_all, static_all, serial_all = [], [], []
    for app in ALL_APPS:
        rows, per_system = _speedups(app)
        blocks.append(format_table(
            ["input"] + list(SYSTEMS), rows,
            title=f"Fig. 13 ({app}): speedup over the 4-core OOO multicore"))
        fifer_all += per_system["fifer"]
        static_all += per_system["static"]
        serial_all += per_system["serial"]
    fifer_vs_static = gmean(f / s for f, s in zip(fifer_all, static_all))
    fifer_vs_serial = gmean(f / s for f, s in zip(fifer_all, serial_all))
    static_vs_serial = gmean(s / x for s, x in zip(static_all, serial_all))
    summary = format_table(
        ["metric", "paper", "measured"],
        [["Fifer / static (gmean)", "2.8x", f"{fifer_vs_static:.2f}x"],
         ["Fifer / serial (gmean)", "72x", f"{fifer_vs_serial:.1f}x"],
         ["static / serial (gmean)", "25x", f"{static_vs_serial:.1f}x"],
         ["Fifer / multicore (gmean)", "17x", f"{gmean(fifer_all):.1f}x"]],
        title="Fig. 13 summary (paper vs. measured)")
    # Wall time of the whole grid with compiled step-functions on/off —
    # the simulator-throughput companion to the cycle tables above. The
    # regression observatory compares these against the pre-codegen
    # baselines in benchmarks/results/history/.
    interp_wall, interp_cycles = _timed_grid(codegen=False)
    codegen_wall, codegen_cycles = _timed_grid(codegen=True)
    assert codegen_cycles == interp_cycles, "codegen changed fig13 cycles"
    wall_table = format_table(
        ["execution path", "wall time (s)", "vs interpreted"],
        [["interpreted coroutines", f"{interp_wall:.2f}", "1.00x"],
         ["compiled step-functions", f"{codegen_wall:.2f}",
          f"{interp_wall / codegen_wall:.2f}x"]],
        title=("fig13 grid end-to-end wall time, fast engine, "
               "identical cycles both paths"))
    emit("fig13_performance", "\n\n".join(blocks + [summary, wall_table]))
    return fifer_vs_static, gmean(fifer_all), interp_wall / codegen_wall


def test_fig13_performance(benchmark):
    fifer_vs_static, fifer_vs_multicore, codegen_ratio = benchmark.pedantic(
        run_fig13, rounds=1, iterations=1)
    # Shape assertions: who wins, in the paper's direction.
    assert fifer_vs_static > 1.3
    assert fifer_vs_multicore > 3.0
    # Codegen must not regress simulator throughput on the grid.
    assert codegen_ratio >= 1.0, (
        f"compiled step-functions slowed the fig13 grid to "
        f"{codegen_ratio:.2f}x of interpreted")
