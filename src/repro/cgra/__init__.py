"""CGRA fabric model, DFG-to-fabric mapping, and bitstream generation.

This plays the role of CGRA-ME in the paper's toolflow (Sec. 6/7.1): the
cycle-level simulator consumes *mapping information* — placement,
pipeline depth, SIMD replication factor, and configuration size — which
the :mod:`repro.cgra.mapper` produces for each stage's dataflow graph.
"""

from repro.cgra.fabric import FabricSpec
from repro.cgra.mapper import (Mapping, UnmappableStageError, map_dfg,
                               map_dfg_cached)
from repro.cgra.bitstream import generate_bitstream, parse_bitstream

__all__ = ["FabricSpec", "Mapping", "UnmappableStageError", "map_dfg",
           "map_dfg_cached", "generate_bitstream", "parse_bitstream"]
