"""Sparse matrix-matrix multiplication, inner-product dataflow
(paper Sec. 7.2, Fig. 12(a)).

SpMM multiplies a CSR matrix A by a CSC matrix B one output element at a
time: C[i,j] is the inner product of row A_i and column B_j. In
compressed form only coordinates present in *both* lists contribute, so
the pipeline is:

  stream rows of A ──┐
                     ├─> merge-intersect ─> accumulate
  stream cols of B ──┘

The merge-intersect stage walks the two coordinate lists in tandem; when
one list ends it *directs the producer of the other to stop fetching
unneeded data* — the abort feedback that makes SpMM control-intensive
and reconfiguration-heavy on sparse inputs (paper Sec. 8.2).

Each shard owns a contiguous block of the sampled output rows; as in
the paper, a subset of rows and columns is multiplied to keep runs
tractable.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.core.drm import DRMSpec
from repro.core.program import PEProgram, Program
from repro.core.stage import STOP_VALUE, StageSpec
from repro.datasets.matrices import SparseMatrix
from repro.ir import DFGBuilder
from repro.memory.address import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues.queue_memory import QueueSpec
from repro.workloads.common import shards_for_mode

END_LIST = "__END_LIST__"


def spmm_reference(matrix: SparseMatrix, rows, cols) -> dict:
    """Golden sampled inner-product SpMM: {(i, j): value}, non-zeros only.

    Accumulation follows ascending coordinate order — the same order the
    pipeline's merge-intersect uses — so results match bit-for-bit.
    """
    out = {}
    for i in rows:
        a_idx, a_val = matrix.row(i)
        for j in cols:
            b_idx, b_val = matrix.col(j)
            acc = 0.0
            pa = pb = 0
            while pa < len(a_idx) and pb < len(b_idx):
                if a_idx[pa] == b_idx[pb]:
                    acc += a_val[pa] * b_val[pb]
                    pa += 1
                    pb += 1
                elif a_idx[pa] < b_idx[pb]:
                    pa += 1
                else:
                    pb += 1
            if acc != 0.0:
                out[(int(i), int(j))] = acc
    return out


def sample_rows_cols(matrix: SparseMatrix, n_rows: int, n_cols: int,
                     seed: int = 5):
    """Pick the sampled row/column subsets (sorted, without replacement)."""
    rng = np.random.default_rng(seed)
    rows = np.sort(rng.choice(matrix.n, size=min(n_rows, matrix.n),
                              replace=False))
    cols = np.sort(rng.choice(matrix.n, size=min(n_cols, matrix.n),
                              replace=False))
    return rows.astype(np.int64), cols.astype(np.int64)


class SpMMWorkload:
    """Pipeline-parallel inner-product SpMM."""

    name = "spmm"

    def __init__(self, matrix: SparseMatrix, n_shards: int, rows, cols):
        self.matrix = matrix
        self.n_shards = n_shards
        self.rows = np.asarray(rows, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.space = AddressSpace()
        self.memmap = MemoryMap()
        self.output: dict = {}

        self.row_ptr_ref = self.space.alloc_array("row_ptr", matrix.n + 1)
        self.row_idx_ref = self.space.alloc_array("row_idx",
                                                  max(1, matrix.nnz))
        self.row_val_ref = self.space.alloc_array("row_val",
                                                  max(1, matrix.nnz))
        self.col_ptr_ref = self.space.alloc_array("col_ptr", matrix.n + 1)
        self.col_idx_ref = self.space.alloc_array("col_idx",
                                                  max(1, matrix.nnz))
        self.col_val_ref = self.space.alloc_array("col_val",
                                                  max(1, matrix.nnz))
        self.out_ref = self.space.alloc_array(
            "c_out", max(1, len(self.rows) * len(self.cols)))
        for ref, array in ((self.row_ptr_ref, matrix.row_ptr),
                           (self.row_idx_ref, matrix.row_idx),
                           (self.row_val_ref, matrix.row_val),
                           (self.col_ptr_ref, matrix.col_ptr),
                           (self.col_idx_ref, matrix.col_idx),
                           (self.col_val_ref, matrix.col_val)):
            self.memmap.register(ref, array)
        self.memmap.register(self.out_ref,
                             np.zeros(self.out_ref.n_elems))

        # Contiguous blocks of sampled rows per shard (paper Sec. 7.2).
        bounds = np.linspace(0, len(self.rows), n_shards + 1).astype(int)
        self.shard_rows = [self.rows[bounds[s]:bounds[s + 1]]
                           for s in range(n_shards)]

    # -- naming ----------------------------------------------------------------

    def q(self, kind: str, shard: int) -> str:
        return f"{self.name}.{kind}@{shard}"

    def stage_name(self, stage: str, shard: int) -> str:
        return f"{self.name}.{stage}@{shard}"

    def _out_index(self, i: int, j: int) -> int:
        return (int(np.searchsorted(self.rows, i)) * len(self.cols)
                + int(np.searchsorted(self.cols, j)))

    # -- stage semantics ----------------------------------------------------------

    def _pairs(self, shard: int):
        for i in self.shard_rows[shard]:
            for j in self.cols:
                yield int(i), int(j)

    # How many pairs a producer may stream ahead of the intersect
    # stage's pair-advance directives.
    PAIR_WINDOW = 4

    def _stream_semantics(self, shard: int, side: str):
        """SA/SB: stream one coordinate list per pair.

        Producers are paced by the merge-intersect stage: a ``NEXT``
        control value both advances the pair window and — when it
        arrives for the pair currently being streamed — aborts the rest
        of that list ("directs the producer to stop fetching unneeded
        data", paper Sec. 8.2).
        """
        q = self.q
        if side == "a":
            ptr, idx_ref = self.matrix.row_ptr, self.row_idx_ref
            in_q, next_q = q("a_in", shard), q("next_a", shard)
        else:
            ptr, idx_ref = self.matrix.col_ptr, self.col_idx_ref
            in_q, next_q = q("b_in", shard), q("next_b", shard)
        window = self.PAIR_WINDOW

        def run(ctx):
            if side == "a":
                pairs = self._pairs(shard)
            outstanding = 0
            while True:
                if side == "a":
                    pair = next(pairs, None)
                    if pair is None:
                        while outstanding > 0:
                            yield from ctx.deq(next_q)
                            outstanding -= 1
                        yield from ctx.enq(q("pair_b", shard), STOP_VALUE,
                                           is_control=True)
                        yield from ctx.enq(in_q, STOP_VALUE, is_control=True)
                        return
                    i, j = pair
                    yield from ctx.enq(q("pair_b", shard), ("PAIR", i, j),
                                       is_control=True)
                else:
                    token = yield from ctx.deq(q("pair_b", shard))
                    if token.value == STOP_VALUE:
                        while outstanding > 0:
                            yield from ctx.deq(next_q)
                            outstanding -= 1
                        yield from ctx.enq(in_q, STOP_VALUE, is_control=True)
                        return
                    _, i, j = token.value
                while outstanding >= window:
                    yield from ctx.deq(next_q)
                    outstanding -= 1
                yield from ctx.enq(in_q, ("PAIR", i, j), is_control=True)
                outstanding += 1
                key = i if side == "a" else j
                lo, hi = int(ptr[key]), int(ptr[key + 1])
                for pos in range(lo, hi):
                    advance = yield from ctx.try_deq(next_q)
                    if advance is not None:
                        outstanding -= 1
                        if advance.value[1:] == (i, j):
                            break  # abort the rest of this list
                    yield from ctx.enq(in_q, (idx_ref.addr(pos), pos))
                yield from ctx.enq(in_q, END_LIST, is_control=True)

        return run

    def _intersect_semantics(self, shard: int):
        q = self.q
        row_val, col_val = self.row_val_ref, self.col_val_ref

        def next_token(ctx, queue):
            token = yield from ctx.deq(queue)
            return token

        def run(ctx):
            a_out, b_out = q("a_out", shard), q("b_out", shard)
            next_a, next_b = q("next_a", shard), q("next_b", shard)
            vals_in = q("vals_in", shard)
            while True:
                atok = yield from ctx.deq(a_out)
                btok = yield from ctx.deq(b_out)
                if atok.value == STOP_VALUE:
                    assert btok.value == STOP_VALUE
                    yield from ctx.enq(vals_in, STOP_VALUE, is_control=True)
                    return
                assert atok.is_control and btok.is_control
                _, i, j = atok.value
                assert atok.value == btok.value, "pair misalignment"
                a = yield from next_token(ctx, a_out)
                b = yield from next_token(ctx, b_out)
                while not a.is_control and not b.is_control:
                    ca, pa = a.value
                    cb, pb = b.value
                    if ca == cb:
                        yield from ctx.enq(vals_in, (row_val.addr(int(pa)),
                                                     col_val.addr(int(pb))))
                        a = yield from next_token(ctx, a_out)
                        b = yield from next_token(ctx, b_out)
                    elif ca < cb:
                        a = yield from next_token(ctx, a_out)
                    else:
                        b = yield from next_token(ctx, b_out)
                # One side ended: direct the other producer to stop
                # fetching unneeded data (its NEXT doubles as the abort),
                # then drain what it already enqueued.
                if a.is_control and not b.is_control:
                    yield from ctx.enq(next_b, ("NEXT", i, j),
                                       is_control=True)
                    while not b.is_control:
                        b = yield from next_token(ctx, b_out)
                    yield from ctx.enq(next_a, ("NEXT", i, j),
                                       is_control=True)
                elif b.is_control and not a.is_control:
                    yield from ctx.enq(next_a, ("NEXT", i, j),
                                       is_control=True)
                    while not a.is_control:
                        a = yield from next_token(ctx, a_out)
                    yield from ctx.enq(next_b, ("NEXT", i, j),
                                       is_control=True)
                else:
                    yield from ctx.enq(next_a, ("NEXT", i, j),
                                       is_control=True)
                    yield from ctx.enq(next_b, ("NEXT", i, j),
                                       is_control=True)
                yield from ctx.enq(vals_in, ("PAIR_DONE", i, j),
                                   is_control=True)

        return run

    def _accumulate_semantics(self, shard: int):
        q = self.q

        def run(ctx):
            acc = 0.0
            while True:
                token = yield from ctx.deq(q("vals_out", shard))
                if token.is_control:
                    if token.value == STOP_VALUE:
                        return
                    _, i, j = token.value  # PAIR_DONE
                    if acc != 0.0:
                        self.output[(i, j)] = acc
                        yield from ctx.store(
                            self.out_ref.addr(self._out_index(i, j)))
                    acc = 0.0
                    continue
                a_val, b_val = token.value
                acc += float(a_val) * float(b_val)

        return run

    # -- stage dataflow graphs -------------------------------------------------

    def _stream_dfg(self, shard: int, side: str):
        b = DFGBuilder(self.stage_name(f"stream_{side}", shard))
        if side == "b":
            b.deq(self.q("pair_b", shard))
        b.deq(self.q(f"next_{side}", shard))
        base = b.const(0)
        pos = b.reg("pos")
        one = b.const(1)
        nxt = b.add(pos, one)
        b.set_reg(pos, nxt)
        addr = b.lea(base, nxt)
        b.lt(nxt, one)
        b.enq(self.q(f"{side}_in", shard), addr)
        b.enq(self.q(f"{side}_in", shard), nxt)
        if side == "a":
            # SA also forwards the pair stream to SB (see
            # _stream_semantics); declare the edge so the static channel
            # graph sees pair_b's producer.
            b.enq(self.q("pair_b", shard), nxt)
        return b.finish()

    def _intersect_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("intersect", shard))
        a = b.deq(self.q("a_out", shard))
        c = b.deq(self.q("b_out", shard))
        lt = b.lt(a, c)
        eq = b.eq(a, c)
        base_a = b.const(0)
        base_b = b.const(1)
        addr_a = b.lea(base_a, a)
        addr_b = b.lea(base_b, c)
        b.enq(self.q("vals_in", shard), addr_a)
        b.enq(self.q("vals_in", shard), addr_b)
        b.enq(self.q("next_a", shard), lt)
        b.enq(self.q("next_b", shard), eq)
        return b.finish()

    def _accumulate_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("accumulate", shard))
        token = b.deq(self.q("vals_out", shard))
        other = b.ctrl(token)
        acc = b.reg("acc")
        total = b.fma(token, other, acc)
        b.set_reg(acc, total)
        base = b.const(0)
        b.store(b.lea(base, token), total)
        return b.finish()

    # -- merged variant (Fig. 17): whole multiply in one stage -----------------------

    def _merged_semantics(self, shard: int):
        matrix = self.matrix

        def run(ctx):
            for i, j in self._pairs(shard):
                a_lo, a_hi = int(matrix.row_ptr[i]), int(matrix.row_ptr[i + 1])
                b_lo, b_hi = int(matrix.col_ptr[j]), int(matrix.col_ptr[j + 1])
                acc = 0.0
                pa, pb = a_lo, b_lo
                while pa < a_hi and pb < b_hi:
                    yield from ctx.load(self.row_idx_ref.addr(pa))
                    yield from ctx.load(self.col_idx_ref.addr(pb))
                    yield from ctx.cycles(1)
                    ca, cb = int(matrix.row_idx[pa]), int(matrix.col_idx[pb])
                    if ca == cb:
                        yield from ctx.load(self.row_val_ref.addr(pa))
                        yield from ctx.load(self.col_val_ref.addr(pb))
                        acc += float(matrix.row_val[pa] * matrix.col_val[pb])
                        pa += 1
                        pb += 1
                    elif ca < cb:
                        pa += 1
                    else:
                        pb += 1
                if acc != 0.0:
                    self.output[(i, j)] = acc
                    yield from ctx.store(
                        self.out_ref.addr(self._out_index(i, j)))
            return
            yield  # pragma: no cover

        return run

    def _merged_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("merged", shard))
        base = b.const(0)
        pa = b.reg("pa")
        pb = b.reg("pb")
        one = b.const(1)
        ca = b.load(b.lea(base, pa))
        cb = b.load(b.lea(b.const(1), pb))
        eq = b.eq(ca, cb)
        lt = b.lt(ca, cb)
        pa_n = b.add(pa, b.or_(eq, lt))
        pb_n = b.add(pb, b.sub(one, lt))
        b.set_reg(pa, pa_n)
        b.set_reg(pb, pb_n)
        av = b.load(b.lea(b.const(2), pa_n))
        bv = b.load(b.lea(b.const(3), pb_n))
        acc = b.reg("acc")
        total = b.fma(av, bv, acc)
        b.set_reg(acc, total)
        b.store(b.lea(base, eq), total)
        return b.finish()

    # -- program assembly ---------------------------------------------------------

    def _shard_groups(self, shard: int):
        q = self.q
        queue_specs = {
            "sa": [QueueSpec(q("next_a", shard)),
                   QueueSpec(q("a_in", shard), entry_words=2)],
            "sb": [QueueSpec(q("pair_b", shard)),
                   QueueSpec(q("next_b", shard)),
                   QueueSpec(q("b_in", shard), entry_words=2)],
            "sx": [QueueSpec(q("a_out", shard), entry_words=2),
                   QueueSpec(q("b_out", shard), entry_words=2),
                   QueueSpec(q("vals_in", shard), entry_words=2)],
            "sacc": [QueueSpec(q("vals_out", shard), entry_words=2)],
        }
        drm_specs = {
            "sa": [DRMSpec(f"{self.name}.drm_a@{shard}", "deref",
                           in_queue=q("a_in", shard),
                           out_queue=q("a_out", shard),
                           width=1, payload=True)],
            "sb": [DRMSpec(f"{self.name}.drm_b@{shard}", "deref",
                           in_queue=q("b_in", shard),
                           out_queue=q("b_out", shard),
                           width=1, payload=True)],
            "sx": [DRMSpec(f"{self.name}.drm_vals@{shard}", "deref",
                           in_queue=q("vals_in", shard),
                           out_queue=q("vals_out", shard),
                           width=2)],
        }
        stage_specs = {
            "sa": StageSpec(self.stage_name("stream_a", shard),
                            self._stream_dfg(shard, "a"),
                            self._stream_semantics(shard, "a")),
            "sb": StageSpec(self.stage_name("stream_b", shard),
                            self._stream_dfg(shard, "b"),
                            self._stream_semantics(shard, "b")),
            "sx": StageSpec(self.stage_name("intersect", shard),
                            self._intersect_dfg(shard),
                            self._intersect_semantics(shard)),
            "sacc": StageSpec(self.stage_name("accumulate", shard),
                              self._accumulate_dfg(shard),
                              self._accumulate_semantics(shard)),
        }
        return queue_specs, drm_specs, stage_specs

    def build_program(self, config: SystemConfig, mode: str,
                      variant: str = "decoupled") -> Program:
        if mode not in ("fifer", "static"):
            raise ValueError(f"unknown mode {mode!r}")
        pe_programs = []
        if variant == "merged":
            for shard in range(self.n_shards):
                pe_programs.append(PEProgram(
                    shard=shard,
                    queue_specs=[],
                    stage_specs=[StageSpec(self.stage_name("merged", shard),
                                           self._merged_dfg(shard),
                                           self._merged_semantics(shard))],
                ))
        elif variant == "decoupled":
            groups = ("sa", "sb", "sx", "sacc")
            for shard in range(self.n_shards):
                queue_specs, drm_specs, stage_specs = self._shard_groups(shard)
                if mode == "fifer":
                    pe_programs.append(PEProgram(
                        shard=shard,
                        queue_specs=[s for g in groups
                                     for s in queue_specs[g]],
                        stage_specs=[stage_specs[g] for g in groups],
                        drm_specs=[d for g in groups
                                   for d in drm_specs.get(g, [])]))
                else:
                    for group in groups:
                        pe_programs.append(PEProgram(
                            shard=shard,
                            queue_specs=queue_specs[group],
                            stage_specs=[stage_specs[group]],
                            drm_specs=drm_specs.get(group, [])))
        else:
            raise ValueError(f"unknown variant {variant!r}")
        return Program(
            name=self.name,
            pe_programs=pe_programs,
            address_space=self.space,
            memmap=self.memmap,
            result_fn=lambda: dict(self.output),
        )


def build(matrix: SparseMatrix, config, mode: str,
          variant: str = "decoupled", n_rows: int = 48, n_cols: int = 48,
          seed: int = 5):
    """Build a sampled SpMM program (rows x cols output block)."""
    n_stages = 4 if variant == "decoupled" else 1
    n_shards = shards_for_mode(config, mode, n_stages)
    rows, cols = sample_rows_cols(matrix, n_rows, n_cols, seed)
    workload = SpMMWorkload(matrix, n_shards, rows, cols)
    return workload.build_program(config, mode, variant), workload
