"""FIFO queues with control values and credit-based flow control.

A queue stores :class:`Token` entries. Data tokens occupy ``entry_words``
words of queue memory; control tokens always occupy one word (a control
value is a single word plus the control bit, paper Sec. 5.5).

Queues declared with multiple producers implement the paper's
credit-based flow control (Sec. 5.6): free space is divided evenly
across producers as credits; a producer stalls when it runs out of
credits, and a credit returns to the producer that enqueued the token
when it is dequeued.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Optional, Sequence


class QueueFullError(Exception):
    """Enqueue attempted with no space/credit available."""


class QueueEmptyError(Exception):
    """Dequeue attempted on an empty queue."""


class Token:
    """One queue entry: a value plus the control bit."""

    __slots__ = ("value", "is_control", "producer")

    def __init__(self, value: Any, is_control: bool = False,
                 producer: Optional[Hashable] = None):
        self.value = value
        self.is_control = is_control
        self.producer = producer

    def words(self, entry_words: int) -> int:
        return 1 if self.is_control else entry_words

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (self.value == other.value
                and self.is_control == other.is_control
                and self.producer == other.producer)

    def __hash__(self) -> int:
        return hash((self.value, self.is_control, self.producer))

    def __repr__(self) -> str:
        return (f"Token(value={self.value!r}, is_control={self.is_control!r}, "
                f"producer={self.producer!r})")


class Queue:
    """A FIFO channel virtualized in a PE's queue memory.

    ``capacity_words`` bounds total occupancy in machine words.
    ``entry_words`` is the width of one data token (e.g., a
    ``(start, end)`` pair is two words). ``producers`` enables
    credit-based flow control when it names more than one producer.
    """

    # Optional telemetry Probe (repro.stats.telemetry), shadowed per
    # instance by System.attach_telemetry; the class default keeps the
    # uninstrumented hot path to one attribute lookup.
    probe = None
    # Optional next-event hook, armed per instance by the event-driven
    # engine only while some sleeping PE watches this queue: called as
    # ``on_event(queue, is_enq)`` after an enqueue/dequeue, it is how
    # sleepers learn that a queue they block on changed. The class
    # default keeps every unwatched queue's hot path to one attribute
    # check.
    on_event = None
    # Sleeping-PE wake set managed by the event engine (ids of PEs
    # blocked on this queue); non-empty exactly while armed.
    ev_waiters = frozenset()

    def __init__(self, name: str, capacity_words: int, entry_words: int = 1,
                 producers: Sequence[Hashable] = (),
                 control_only: bool = False):
        self.control_only = control_only
        if entry_words < 1:
            raise ValueError(
                f"queue {name!r}: entry_words must be positive, "
                f"got {entry_words}")
        if capacity_words < entry_words:
            raise ValueError(
                f"queue {name!r}: capacity {capacity_words} words cannot hold "
                f"one {entry_words}-word entry")
        self.name = name
        self.capacity_words = capacity_words
        self.entry_words = entry_words
        self._tokens: deque[Token] = deque()
        self._occupancy_words = 0
        self.total_enqueued = 0
        self.producers = tuple(producers)
        self._credits: Optional[dict[Hashable, int]] = None
        if len(self.producers) > 1:
            share = capacity_words // len(self.producers)
            if share < entry_words:
                raise ValueError(
                    f"queue {name!r}: per-producer credit share {share} words "
                    f"cannot hold one {entry_words}-word entry")
            self._credits = {p: share for p in self.producers}

    # -- occupancy ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tokens)

    @property
    def occupancy_words(self) -> int:
        return self._occupancy_words

    @property
    def free_words(self) -> int:
        return self.capacity_words - self._occupancy_words

    def is_empty(self) -> bool:
        return not self._tokens

    def token_words(self) -> int:
        """Recount occupancy from the stored tokens (sanitizer oracle)."""
        return sum(t.words(self.entry_words) for t in self._tokens)

    def credit_state(self) -> Optional[dict[Hashable, int]]:
        """Snapshot of per-producer credits, or None when uncredited."""
        if self._credits is None:
            return None
        return dict(self._credits)

    def describe(self) -> str:
        """One-line occupancy summary for deadlock/timeout reports."""
        text = (f"{len(self._tokens)} tokens, "
                f"{self._occupancy_words}/{self.capacity_words} words")
        if self._credits is not None:
            credits = ", ".join(f"{p}={c}"
                                for p, c in sorted(self._credits.items(),
                                                   key=lambda kv: str(kv[0])))
            text += f", credits: {credits}"
        return text

    # -- enqueue side ------------------------------------------------------

    def can_enq(self, producer: Optional[Hashable] = None,
                is_control: bool = False) -> bool:
        words = 1 if is_control else self.entry_words
        credits = self._credits
        if credits is None:
            return self.capacity_words - self._occupancy_words >= words
        if producer not in credits:
            raise KeyError(
                f"queue {self.name!r}: unknown producer {producer!r}")
        ok = credits[producer] >= words
        if (not ok and self.probe is not None
                and "queue.credit_stall" in self.probe.bus.wants
                and self.free_words >= words):
            # Space exists but this producer's credit share is
            # exhausted: the Sec. 5.6 flow-control stall.
            self.probe.emit("queue.credit_stall", queue=self.name,
                            producer=str(producer))
        return ok

    def enq(self, value: Any, is_control: bool = False,
            producer: Optional[Hashable] = None) -> None:
        words = 1 if is_control else self.entry_words
        credits = self._credits
        if credits is None:
            if self.capacity_words - self._occupancy_words < words:
                raise QueueFullError(
                    f"queue {self.name!r} full (producer {producer!r})")
        else:
            if producer not in credits:
                raise KeyError(
                    f"queue {self.name!r}: unknown producer {producer!r}")
            if credits[producer] < words:
                # Route through can_enq so an unchecked caller still gets
                # the credit_stall probe before the raise.
                self.can_enq(producer, is_control)
                raise QueueFullError(
                    f"queue {self.name!r} full (producer {producer!r})")
            credits[producer] -= words
        self._tokens.append(Token(value, is_control, producer))
        self._occupancy_words += words
        self.total_enqueued += 1
        if self.probe is not None and "queue.enq" in self.probe.bus.wants:
            self.probe.emit("queue.enq", queue=self.name, words=words,
                            occupancy=self._occupancy_words,
                            control=is_control)
        if self.on_event is not None:
            self.on_event(self, True)

    # -- dequeue side ------------------------------------------------------

    def can_deq(self) -> bool:
        return bool(self._tokens)

    def peek(self) -> Token:
        if not self._tokens:
            raise QueueEmptyError(f"queue {self.name!r} empty")
        return self._tokens[0]

    def deq(self) -> Token:
        if not self._tokens:
            raise QueueEmptyError(f"queue {self.name!r} empty")
        token = self._tokens.popleft()
        words = 1 if token.is_control else self.entry_words
        self._occupancy_words -= words
        if self._credits is not None:
            self._credits[token.producer] += words
        if self.probe is not None and "queue.deq" in self.probe.bus.wants:
            self.probe.emit("queue.deq", queue=self.name, words=words,
                            occupancy=self._occupancy_words)
        if self.on_event is not None:
            self.on_event(self, False)
        return token
