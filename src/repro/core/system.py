"""The multi-PE system: builds PEs from a program and steps the clock.

The system owns the memory hierarchy (private L1s, shared LLC, HBM), the
global queue registry (every queue is reachable by name so producers on
any PE can enqueue to consumers anywhere, subject to credits), and the
quantum-stepped simulation loop. PEs and DRMs advance in fixed quanta of
a few tens of cycles — the same timescale as Fifer's reconfigurations —
with all queue and cache state globally visible at quantum boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cgra.bitstream import generate_bitstream
from repro.cgra.fabric import FabricSpec
from repro.cgra.mapper import Mapping, map_dfg
from repro.config import SystemConfig
from repro.core.drm import DRM
from repro.core.pe import ProcessingElement
from repro.core.program import Program
from repro.core.stage import StageContext, StageInstance
from repro.memory.cache import build_hierarchy
from repro.queues.queue import Queue
from repro.queues.queue_memory import QueueMemory
from repro.stats.counters import Counters
from repro.stats.cpi_stack import cpi_stack, merge_stacks


#: Valid ``System.run(engine=...)`` values. ``fast`` skips blocked and
#: quiescent spans in bulk (cycle- and counter-exact vs ``naive``, see
#: docs/performance.md); ``naive`` is the original per-cycle reference
#: loop kept as the differential-testing oracle.
ENGINES = ("fast", "naive")


class DeadlockError(Exception):
    """No token moved for many quanta while the program is unfinished."""


class SimulationTimeout(Exception):
    """The run exceeded the caller's cycle limit."""


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    program_name: str
    mode: str
    cycles: float
    config: SystemConfig
    pe_counters: list[Counters]
    l1_stats: list[dict]
    llc_stats: dict
    mem_stats: dict
    result: Any
    mappings: dict[str, Mapping] = field(default_factory=dict)
    engine: str = "fast"

    @property
    def counters(self) -> Counters:
        merged = Counters()
        for counters in self.pe_counters:
            merged.merge(counters)
        return merged

    def cpi_stacks(self) -> list[dict[str, float]]:
        return [cpi_stack(c, self.cycles) for c in self.pe_counters]

    def merged_cpi_stack(self) -> dict[str, float]:
        return merge_stacks(self.cpi_stacks())

    @property
    def avg_residence_cycles(self) -> float:
        merged = self.counters
        events = merged["residence_events"]
        return merged["residence_sum"] / events if events else 0.0

    @property
    def avg_reconfig_cycles(self) -> float:
        merged = self.counters
        events = merged["reconfig_events"]
        return merged["reconfig_sum"] / events if events else 0.0


class System:
    """Instantiates a :class:`Program` on Fifer or the static baseline."""

    def __init__(self, config: SystemConfig, program: Program,
                 mode: str = "fifer", telemetry=None):
        if mode not in ("fifer", "static"):
            raise ValueError(f"unknown mode {mode!r}")
        if program.n_pes != config.n_pes:
            raise ValueError(
                f"program targets {program.n_pes} PEs, system has "
                f"{config.n_pes}")
        self.config = config
        self.program = program
        self.mode = mode
        self.cycle = 0.0
        self.fabric = FabricSpec.from_config(config.fabric)

        l1s, self.llc, self.memory = build_hierarchy(
            config.l1, config.llc, config.memory, config.n_pes)
        self._queues: dict[str, Queue] = dict(program.external_queues)
        self.pes: list[ProcessingElement] = []
        self.mappings: dict[str, Mapping] = {}

        # Pass 1: carve queue memories so every queue exists before any
        # stage or DRM resolves names.
        queue_memories = []
        for pe_id, pe_program in enumerate(program.pe_programs):
            qmem = QueueMemory(config.queue_mem_bytes, config.max_queues_per_pe)
            if pe_program.queue_specs:
                for name, queue in qmem.carve(pe_program.queue_specs).items():
                    if name in self._queues:
                        raise ValueError(f"duplicate queue name {name!r}")
                    self._queues[name] = queue
            queue_memories.append(qmem)

        # Pass 2: build PEs, stages (with mapped configurations), DRMs.
        speedups = dict(config.stage_speedup)
        for pe_id, pe_program in enumerate(program.pe_programs):
            pe = ProcessingElement(
                pe_id, config, l1s[pe_id], queue_memories[pe_id],
                self.resolve_queue, time_multiplex=(mode == "fifer"))
            for spec in pe_program.stage_specs:
                caps = [cap for cap in (spec.max_replication,
                                        config.max_simd_replication)
                        if cap is not None]
                mapping = map_dfg(spec.dfg, self.fabric,
                                  max_replication=min(caps) if caps else None)
                self.mappings[spec.name] = mapping
                config_region = program.address_space.alloc(
                    f"__cfg_{spec.name}", mapping.config_bytes)
                generate_bitstream(spec.dfg, mapping)  # validates budget
                ctx = StageContext(pe_id, spec.name, pe_program.shard,
                                   self._n_shards())
                stage = StageInstance(spec, ctx, mapping, config_region.base)
                if speedups:
                    # Exact per-shard name wins over the base name that
                    # matches every shard ("bfs.fetch" -> "bfs.fetch@*").
                    factor = speedups.get(
                        spec.name,
                        speedups.get(spec.name.split("@", 1)[0]))
                    if factor is not None:
                        stage.speed = float(factor)
                pe.attach_stage(stage)
            for drm_spec in pe_program.drm_specs:
                targets = (drm_spec.route_targets if drm_spec.route
                           else (drm_spec.out_queue,))
                out_queues = {name: self.resolve_queue(name)
                              for name in targets}
                drm = DRM(drm_spec, pe_id,
                          self.resolve_queue(drm_spec.in_queue), out_queues,
                          l1s[pe_id], program.memmap,
                          config.drm_max_outstanding, config.l1.latency,
                          issue_width=config.drm_issue_width)
                if speedups:
                    factor = speedups.get(
                        drm_spec.name,
                        speedups.get(drm_spec.name.split("@", 1)[0]))
                    if factor is not None:
                        # Scale the DRM's issue throughput (misses still
                        # cost full latency; what-ifs model the engine,
                        # not the memory behind it).
                        drm._inv_issue = drm._inv_issue / float(factor)
                pe.attach_drm(drm)
            pe.finalize()
            self.pes.append(pe)
        # Optional telemetry bus (repro.stats.telemetry.EventBus).
        self.telemetry = None
        if program.post_build is not None:
            program.post_build(self)
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def _n_shards(self) -> int:
        return 1 + max(p.shard for p in self.program.pe_programs)

    def resolve_queue(self, name: str) -> Queue:
        try:
            return self._queues[name]
        except KeyError:
            raise KeyError(f"no queue named {name!r} in the system") from None

    @property
    def queues(self) -> dict:
        """Name -> :class:`Queue` registry (read-only by convention)."""
        return self._queues

    # -- telemetry -----------------------------------------------------------

    def attach_telemetry(self, bus) -> "System":
        """Wire a :class:`~repro.stats.telemetry.EventBus` probe into
        every PE, DRM, queue, cache, and main memory. With no sinks
        subscribed the probes stay near-free; call
        :meth:`detach_telemetry` to restore the uninstrumented state."""
        from repro.stats.telemetry import Probe
        self.telemetry = bus
        for pe in self.pes:
            pe.probe = Probe(bus, f"pe{pe.pe_id}")
            pe.l1.probe = Probe(bus, pe.l1.name)
            for drm in pe.drms:
                drm.probe = Probe(bus, f"drm:{drm.spec.name}")
        for name, queue in self._queues.items():
            queue.probe = Probe(bus, f"queue:{name}")
        self.llc.probe = Probe(bus, "llc")
        self.memory.probe = Probe(bus, "mem")
        return self

    def detach_telemetry(self) -> None:
        """Remove every probe; hot paths return to the zero-cost state."""
        self.telemetry = None
        for pe in self.pes:
            pe.probe = None
            pe.l1.probe = None
            for drm in pe.drms:
                drm.probe = None
        for queue in self._queues.values():
            queue.probe = None
        self.llc.probe = None
        self.memory.probe = None

    # -- simulation ----------------------------------------------------------

    def done(self) -> bool:
        return all(pe.all_done() for pe in self.pes)

    def _progress_fingerprint(self) -> tuple:
        tokens = sum(q.total_enqueued for q in self._queues.values())
        finished = sum(stage.done for pe in self.pes for stage in pe.stages)
        issued = sum(pe.counters["issued"] + pe.counters["stall_mem"]
                     for pe in self.pes)
        return tokens, finished, issued

    def _state_report(self) -> str:
        """Per-PE resident stage + blocked reasons + queue occupancies,
        appended to deadlock/timeout exception messages."""
        lines = []
        for pe in self.pes:
            lines.append(f"  PE{pe.pe_id} resident={pe.state}")
            for stage in pe.stages:
                lines.append(f"    {stage.name}: {pe.blocked_reason(stage)}")
        occupied = [f"    {name}: {queue.describe()}"
                    for name, queue in sorted(self._queues.items())
                    if len(queue)]
        lines.append("  non-empty queues:")
        lines.extend(occupied if occupied else ["    (none)"])
        return "\n".join(lines)

    def _deadlock_report(self) -> str:
        return (f"deadlock in {self.program.name!r} ({self.mode}) at cycle "
                f"{self.cycle:.0f}: no progress for "
                f"{self.config.deadlock_quanta} quanta\n"
                + self._state_report())

    def _timeout_report(self, max_cycles: float) -> str:
        return (f"{self.program.name!r} exceeded {max_cycles} cycles\n"
                + self._state_report())

    def _can_fast_forward(self) -> bool:
        """Whether the fast engine may jump over the remaining quanta.

        Requires that nothing outside the PEs can inject work (no
        ``control_poll``), that quiescence probing cannot emit events a
        sink would record (``can_enq`` publishes ``queue.credit_stall``
        when sinks are attached), and that no PE or DRM can move a
        token. Under those conditions every future quantum only adds
        stall cycles, so the run can only end in deadlock or timeout.
        """
        if self.program.control_poll is not None:
            return False
        if self.telemetry is not None and self.telemetry.sinks:
            return False
        return not any(pe.can_progress() for pe in self.pes)

    def _fast_forward(self, quantum: float, max_cycles: Optional[float],
                      stuck_quanta: int) -> None:
        """Jump a quiescent system to its deadlock/timeout horizon.

        Replicates the naive loop's raise ordering exactly: the naive
        loop checks timeout at the top of an iteration and deadlock
        after running the quantum, so from here deadlock fires after
        ``deadlock_quanta - stuck_quanta`` more quanta and timeout
        after ``ceil((max_cycles - cycle) / quantum)`` quanta have run
        — whichever horizon is closer wins, deadlock on ties. Always
        raises; never returns.
        """
        to_deadlock = self.config.deadlock_quanta - stuck_quanta
        to_timeout = None
        if max_cycles is not None:
            to_timeout = max(0, math.ceil((max_cycles - self.cycle) / quantum))
        raise_deadlock = to_timeout is None or to_deadlock <= to_timeout
        quanta = to_deadlock if raise_deadlock else to_timeout
        if self.telemetry is not None and self.telemetry.samplers:
            # Keep sampled time series identical: tick every boundary.
            for _ in range(quanta):
                self.telemetry.now = self.cycle
                self.memory.begin_quantum(quantum)
                for pe in self.pes:
                    pe.run_quantum(quantum, fast=True)
                self.cycle += quantum
                self.telemetry.on_quantum(self)
        else:
            # No observer: collapse all quanta into one bulk charge per
            # PE. No memory access can occur (nothing can progress), so
            # skipping begin_quantum's bandwidth reset changes nothing.
            for pe in self.pes:
                pe.fast_forward_quanta(quanta, quantum)
            self.cycle += quanta * quantum
            if self.telemetry is not None:
                self.telemetry.now = self.cycle
        if raise_deadlock:
            raise DeadlockError(self._deadlock_report())
        raise SimulationTimeout(self._timeout_report(max_cycles))

    def run(self, max_cycles: Optional[float] = None,
            engine: str = "fast") -> SimulationResult:
        """Run the program to completion and return the results.

        ``engine`` selects the simulation loop: ``"fast"`` (default)
        bulk-charges blocked spans and jumps quiescent systems to their
        deadlock/timeout horizon; ``"naive"`` ticks every cycle. Both
        produce identical cycle counts, counters, CPI stacks, sampled
        time series, and results (tests/test_engine_equivalence.py).
        """
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}")
        fast = engine == "fast"
        quantum = self.config.quantum
        stuck_quanta = 0
        last_fingerprint = None
        while not self.done():
            if max_cycles is not None and self.cycle >= max_cycles:
                raise SimulationTimeout(self._timeout_report(max_cycles))
            if self.telemetry is not None:
                self.telemetry.now = self.cycle
            self.memory.begin_quantum(quantum)
            for pe in self.pes:
                pe.run_quantum(quantum, fast=fast)
            if self.program.control_poll is not None:
                self.program.control_poll(self)
            self.cycle += quantum
            if self.telemetry is not None:
                self.telemetry.on_quantum(self)
            fingerprint = self._progress_fingerprint()
            if fingerprint == last_fingerprint:
                stuck_quanta += 1
                if stuck_quanta >= self.config.deadlock_quanta:
                    raise DeadlockError(self._deadlock_report())
                if fast and self._can_fast_forward():
                    self._fast_forward(quantum, max_cycles, stuck_quanta)
            else:
                stuck_quanta = 0
                last_fingerprint = fingerprint
        return SimulationResult(
            program_name=self.program.name,
            mode=self.mode,
            cycles=self.cycle,
            config=self.config,
            pe_counters=[pe.counters for pe in self.pes],
            l1_stats=[{"hits": pe.l1.hits, "misses": pe.l1.misses,
                       "hit_rate": pe.l1.hit_rate} for pe in self.pes],
            llc_stats={"hits": self.llc.hits, "misses": self.llc.misses,
                       "hit_rate": self.llc.hit_rate},
            mem_stats={"reads": self.memory.reads,
                       "writes": self.memory.writes,
                       "bytes": self.memory.bytes_transferred},
            result=self.program.result(),
            mappings=self.mappings,
            engine=engine,
        )
