"""Unit tests for the PE execution engine: SIMD cost model, control
serialization, coupled-load stalls, residence tracking."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import (PEProgram, Program, StageSpec, System, STOP_VALUE)
from repro.core.stage import StageContext, StageInstance
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec


def _narrow_dfg(name, in_q, out_q):
    """A wide datapath: low replication (fills most columns)."""
    b = DFGBuilder(name)
    x = b.deq(in_q)
    outs = [b.add(x, b.const(i)) for i in range(9)]
    total = outs[0]
    for out in outs[1:]:
        total = b.add(total, out)
    b.enq(out_q, total)
    return b.finish()


def _wide_replication_dfg(name, in_q, out_q):
    """A 1-column datapath: maximal SIMD replication."""
    b = DFGBuilder(name)
    x = b.deq(in_q)
    y = b.add(x, x)
    b.enq(out_q, y)
    return b.finish()


class TestSIMDCostModel:
    def _mapping(self, dfg):
        from repro.cgra import FabricSpec, map_dfg
        from repro.config import FabricConfig
        return map_dfg(dfg, FabricSpec.from_config(FabricConfig()))

    def _instance(self, dfg):
        def semantics(ctx):
            return
            yield

        spec = StageSpec(dfg.name, dfg, semantics)
        ctx = StageContext(0, dfg.name, 0, 1)
        return StageInstance(spec, ctx, self._mapping(dfg), 0x1000)

    def test_data_tokens_cost_inverse_replication(self):
        stage = self._instance(
            _wide_replication_dfg("wide", "in", "out"))
        r = stage.replication
        assert r > 1
        cost = stage.io_cost(1, 0, is_control=False)
        assert cost == pytest.approx(1.0 / r)

    def test_control_tokens_cost_full_cycle(self):
        stage = self._instance(_wide_replication_dfg("wide", "in", "out"))
        assert stage.io_cost(1, 0, is_control=True) == 1.0

    def test_deq_and_enq_overlap(self):
        """A dequeue and an enqueue of the same element share the cycle
        (max-based accounting, not sum)."""
        stage = self._instance(_wide_replication_dfg("wide", "in", "out"))
        r = stage.replication
        total = 0.0
        for _ in range(10):
            total += stage.io_cost(1, 0, False)   # deq
            total += stage.io_cost(0, 1, False)   # enq
        assert total == pytest.approx(10.0 / r)

    def test_enqueue_heavy_stage_charged_by_enqueues(self):
        """One dequeue fanning out to many enqueues is enqueue-limited
        (e.g., enumerate-neighbors)."""
        stage = self._instance(_wide_replication_dfg("wide", "in", "out"))
        r = stage.replication
        total = stage.io_cost(1, 0, False)
        for _ in range(7):
            total += stage.io_cost(0, 1, False)
        assert total == pytest.approx(7.0 / r)

    def test_narrow_datapath_gets_less_replication(self):
        wide = self._instance(_wide_replication_dfg("w", "in", "out"))
        narrow = self._instance(_narrow_dfg("n", "in", "out"))
        assert narrow.replication < wide.replication


class _MiniProgram:
    """A configurable one-PE program for engine behavior tests."""

    def __init__(self, producer, consumer, queue_words=1024):
        self.space = AddressSpace()
        self.memmap = MemoryMap()
        self.data = np.arange(4096, dtype=np.int64)
        self.ref = self.space.alloc_array("data", 4096)
        self.memmap.register(self.ref, self.data)
        b = DFGBuilder("mini.src")
        reg = b.reg("i")
        one = b.const(1)
        nxt = b.add(reg, one)
        b.set_reg(reg, nxt)
        b.enq("mini.q", nxt)
        src_dfg = b.finish()
        b = DFGBuilder("mini.snk")
        x = b.deq("mini.q")
        b.add(x, x)
        snk_dfg = b.finish()
        pe = PEProgram(
            shard=0,
            queue_specs=[QueueSpec("mini.q")],
            stage_specs=[StageSpec("mini.src", src_dfg, producer),
                         StageSpec("mini.snk", snk_dfg, consumer)])
        self.program = Program("mini", [pe], self.space, self.memmap)


class TestCoupledLoads:
    def test_cold_misses_charge_stall_cycles(self):
        outer = {}

        def producer(ctx):
            for i in range(64):
                # Stride over lines: every load is a cold miss.
                yield from ctx.load(outer["ref"].addr(i * 8))
                yield from ctx.enq("mini.q", i)
            yield from ctx.enq("mini.q", STOP_VALUE, is_control=True)

        def consumer(ctx):
            while True:
                token = yield from ctx.deq("mini.q")
                if token.is_control:
                    return

        mini = _MiniProgram(producer, consumer)
        outer["ref"] = mini.ref
        result = System(SystemConfig(n_pes=1), mini.program,
                        mode="fifer").run()
        assert result.counters["stall_mem"] > 64 * 30  # LLC+mem latencies

    def test_warm_loads_do_not_stall(self):
        outer = {}

        def producer(ctx):
            for i in range(64):
                yield from ctx.load(outer["ref"].addr(0))
                yield from ctx.enq("mini.q", i)
            yield from ctx.enq("mini.q", STOP_VALUE, is_control=True)

        def consumer(ctx):
            while True:
                token = yield from ctx.deq("mini.q")
                if token.is_control:
                    return

        mini = _MiniProgram(producer, consumer)
        outer["ref"] = mini.ref
        result = System(SystemConfig(n_pes=1), mini.program,
                        mode="fifer").run()
        # One cold miss only.
        assert result.counters["stall_mem"] < 200

    def test_stores_never_stall(self):
        outer = {}

        def producer(ctx):
            for i in range(64):
                yield from ctx.store(outer["ref"].addr(i * 8))
                yield from ctx.enq("mini.q", i)
            yield from ctx.enq("mini.q", STOP_VALUE, is_control=True)

        def consumer(ctx):
            while True:
                token = yield from ctx.deq("mini.q")
                if token.is_control:
                    return

        mini = _MiniProgram(producer, consumer)
        outer["ref"] = mini.ref
        result = System(SystemConfig(n_pes=1), mini.program,
                        mode="fifer").run()
        assert result.counters["stall_mem"] == 0


class TestResidenceTracking:
    def test_residence_and_reconfig_counted(self):
        def producer(ctx):
            for i in range(500):
                yield from ctx.enq("mini.q", i)
            yield from ctx.enq("mini.q", STOP_VALUE, is_control=True)

        def consumer(ctx):
            while True:
                token = yield from ctx.deq("mini.q")
                if token.is_control:
                    return

        mini = _MiniProgram(producer, consumer)
        result = System(SystemConfig(n_pes=1), mini.program,
                        mode="fifer").run()
        counters = result.counters
        assert counters["reconfig_events"] >= 2
        # Residences average out positive and exceed reconfig periods.
        assert result.avg_residence_cycles > 0
        assert counters["reconfig_sum"] > 0
        # The CPI stack's reconfig bucket matches the summed periods.
        assert counters["reconfig"] == pytest.approx(
            counters["reconfig_sum"], rel=0.05)

    def test_explicit_cycles_request(self):
        def producer(ctx):
            yield from ctx.cycles(123)
            yield from ctx.enq("mini.q", STOP_VALUE, is_control=True)

        def consumer(ctx):
            token = yield from ctx.deq("mini.q")
            assert token.is_control

        mini = _MiniProgram(producer, consumer)
        result = System(SystemConfig(n_pes=1), mini.program,
                        mode="fifer").run()
        assert result.counters["issued"] >= 123
