"""Decoupled reference machines (DRMs), paper Sec. 5.4.

A DRM is a small finite state machine that performs memory accesses on
the PE's behalf: the fabric enqueues addresses into the DRM's input
queue, the DRM performs the loads (overlapping misses out of order, up
to ``max_outstanding``), and places results in-order into an output
queue for the consumer stage. DRMs are configured once at
initialization and keep working regardless of which stage is currently
scheduled on the PE.

Modes (paper Sec. 5.4):

* **dereference** — input operands are addresses whose memory values are
  enqueued to the output. Extensions used by our pipelines: a token may
  carry ``width`` consecutive addresses (a multi-word dereference, e.g.
  ``offsets[v]``/``offsets[v+1]``) and an opaque *payload* tag that rides
  along to the output (as Pipette's reference accelerators do), and the
  output queue may be selected per-token from address/payload bits
  (``route``), implementing the owner-sharded cross-PE hop of Sec. 5.6.
* **scanning** — a token gives a ``(start_addr, end_addr)`` range to
  fetch sequentially and enqueue.
* **strided** — a token gives ``(start_addr, count, stride_bytes)``;
  the DRM fetches ``count`` elements ``stride_bytes`` apart, traversing
  arrays of structs. (The paper notes this mode "could be easily added";
  its benchmarks did not need it, but the mode is implemented here as
  the suggested extension.)

Control values pass through DRMs in order; a routing DRM broadcasts each
control value to every possible destination so iteration boundaries
reach all consumers (Sec. 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.memory.cache import Cache
from repro.memory.memmap import MemoryMap
from repro.queues.queue import Queue, Token


@dataclass(frozen=True)
class DRMSpec:
    """Configuration of one DRM (fixed at program initialization)."""

    name: str
    mode: str                       # "deref" or "scan"
    in_queue: str
    out_queue: Optional[str] = None
    route: Optional[Callable] = None      # (values, payload) -> queue name
    route_targets: tuple = ()             # all queues `route` may select
    width: int = 1                        # addresses per deref token
    payload: bool = False                 # tokens carry a tag-along payload

    def __post_init__(self):
        if self.mode not in ("deref", "scan", "strided"):
            raise ValueError(f"DRM {self.name!r}: unknown mode {self.mode!r}")
        if (self.out_queue is None) == (self.route is None):
            raise ValueError(
                f"DRM {self.name!r}: exactly one of out_queue/route required")
        if self.route is not None and not self.route_targets:
            raise ValueError(
                f"DRM {self.name!r}: route requires route_targets")


class DRM:
    """Runtime state of one decoupled reference machine."""

    def __init__(self, spec: DRMSpec, pe_id: int, in_q: Queue,
                 out_queues: dict, l1: Cache, memmap: MemoryMap,
                 max_outstanding: int, l1_latency: int,
                 issue_width: int = 1):
        self.spec = spec
        self.pe_id = pe_id
        self.in_q = in_q
        self.out_queues = out_queues  # name -> Queue, for all targets
        self.l1 = l1
        self.memmap = memmap
        self.max_outstanding = max_outstanding
        self.l1_latency = l1_latency
        self.issue_width = issue_width
        # DRM spec names are unique per shard by construction.
        self.producer_key = spec.name
        # Spec fields and queue objects hoisted out of the per-token
        # paths (the spec is frozen and the queue set is fixed).
        self._mode = spec.mode
        self._width = spec.width
        self._payload = spec.payload
        self._route = spec.route
        self._out_q = (out_queues[spec.out_queue]
                       if spec.out_queue is not None else None)
        self._target_queues = tuple(out_queues[name]
                                    for name in self._targets())
        self._inv_issue = 1.0 / issue_width
        # Scanning/strided-mode cursor (persists across quanta and
        # stage switches).
        self._scan_addr: Optional[int] = None
        self._scan_end: int = 0
        self._scan_elem_bytes: int = 8
        self._scan_stride: int = 8
        self._scan_remaining: int = 0
        # Statistics.
        self.loads = 0
        self.miss_stall_cycles = 0.0
        self.busy_cycles = 0.0
        # Name of the output queue the last blocked step waited on
        # (written only on blocked paths; read by the drm.blocked probe).
        self._blocked_on: Optional[str] = None
        # Optional telemetry Probe (repro.stats.telemetry).
        self.probe = None

    def _targets(self) -> Sequence[str]:
        if self.spec.route is not None:
            return self.spec.route_targets
        return (self.spec.out_queue,)

    def _access_cost(self, addrs) -> float:
        """One issue slot of throughput plus amortized miss stall.

        ``issue_width`` accesses issue per cycle (banked L1 ports feeding
        SIMD-replicated consumers); misses overlap out of order up to
        ``max_outstanding``, so a stream of misses costs the miss latency
        divided by the outstanding-access window.
        """
        worst = 0.0
        access = self.l1.access
        for addr in addrs:
            latency = access(addr)
            if latency > worst:
                worst = latency
        self.loads += len(addrs)
        over = worst - self.l1_latency
        extra = over / self.max_outstanding if over > 0.0 else 0.0
        self.miss_stall_cycles += extra
        return self._inv_issue + extra

    def _step_scan(self) -> Optional[float]:
        out = self._out_q
        if not out.can_enq(self.producer_key):
            self._blocked_on = out.name
            return None
        cost = self._access_cost((self._scan_addr,))
        # Inlined out.enq — Queue.enq verbatim, minus the full-queue
        # raise the can_enq gate above already ruled out.
        producer = self.producer_key
        words = out.entry_words
        credits = out._credits
        if credits is not None:
            credits[producer] -= words
        out._tokens.append(Token(self.memmap.read(self._scan_addr), False,
                                 producer))
        out._occupancy_words += words
        out.total_enqueued += 1
        probe = out.probe
        if probe is not None and "queue.enq" in probe.bus.wants:
            probe.emit("queue.enq", queue=out.name, words=words,
                       occupancy=out._occupancy_words, control=False)
        ev = out.on_event
        if ev is not None:
            ev(out, True)
        if self._mode == "strided":
            self._scan_addr += self._scan_stride
            self._scan_remaining -= 1
            if self._scan_remaining <= 0:
                self._scan_addr = None
        else:
            self._scan_addr += self._scan_elem_bytes
            if self._scan_addr >= self._scan_end:
                self._scan_addr = None
        return cost

    def _step_control(self, token) -> Optional[float]:
        targets = self._target_queues
        for target in targets:
            if not target.can_enq(self.producer_key, is_control=True):
                self._blocked_on = target.name
                return None
        self.in_q.deq()
        for target in targets:
            target.enq(token.value, is_control=True,
                       producer=self.producer_key)
        return 1.0

    def _step_deref(self, token) -> Optional[float]:
        value = token.value
        width = self._width
        has_payload = self._payload
        read = self.memmap.read
        if width > 1 or has_payload:
            parts = tuple(value)
            addrs = parts[:width]
            payload = parts[width:] if has_payload else ()
            # Unrolled for the common widths (1 and 2 cover every
            # pipeline in the suite).
            if width == 1:
                loaded = (read(addrs[0]),)
            elif width == 2:
                loaded = (read(addrs[0]), read(addrs[1]))
            else:
                loaded = tuple([read(a) for a in addrs])
        else:
            addrs = (value,)
            payload = ()
            loaded = (read(value),)
        route = self._route
        if route is not None:
            out = self.out_queues[route(loaded, payload)]
        else:
            out = self._out_q
        if not out.can_enq(self.producer_key):
            self._blocked_on = out.name
            return None
        # Inlined _access_cost (this is the DRM's per-token hot path).
        worst = 0.0
        access = self.l1.access
        for addr in addrs:
            latency = access(addr)
            if latency > worst:
                worst = latency
        self.loads += len(addrs)
        over = worst - self.l1_latency
        extra = over / self.max_outstanding if over > 0.0 else 0.0
        self.miss_stall_cycles += extra
        cost = self._inv_issue + extra
        if len(loaded) == 1 and not has_payload:
            result = loaded[0]
        else:
            result = loaded + payload
        # Inlined in_q.deq() / out.enq() — Queue.deq / Queue.enq
        # verbatim (this transfer pair dominates the DRM's per-token
        # cost). The dequeued head is the data token examined by run(),
        # so it occupies entry_words; the full-queue raise was ruled
        # out by the can_enq gate above.
        in_q = self.in_q
        tok = in_q._tokens.popleft()
        words = in_q.entry_words
        in_q._occupancy_words -= words
        credits = in_q._credits
        if credits is not None:
            credits[tok.producer] += words
        probe = in_q.probe
        if probe is not None and "queue.deq" in probe.bus.wants:
            probe.emit("queue.deq", queue=in_q.name, words=words,
                       occupancy=in_q._occupancy_words)
        ev = in_q.on_event
        if ev is not None:
            ev(in_q, False)
        producer = self.producer_key
        words = out.entry_words
        credits = out._credits
        if credits is not None:
            credits[producer] -= words
        out._tokens.append(Token(result, False, producer))
        out._occupancy_words += words
        out.total_enqueued += 1
        probe = out.probe
        if probe is not None and "queue.enq" in probe.bus.wants:
            probe.emit("queue.enq", queue=out.name, words=words,
                       occupancy=out._occupancy_words, control=False)
        ev = out.on_event
        if ev is not None:
            ev(out, True)
        return cost

    def watch_queue_names(self):
        """Output queues whose *dequeues* could unblock this DRM.

        Complements the input queue (whose enqueues obviously matter):
        a DRM that cannot progress is either starved (input empty) or
        back-pressured by a full/credit-exhausted output. For routed
        DRMs every route target is included — the destination of the
        head token depends on loaded values, so proving which single
        target matters would cost as much as just re-checking on any of
        them. Used by the event engine's wake-time derivation
        (:func:`repro.core.events.wake_queue_names`).
        """
        if self._out_q is not None:
            return (self._out_q.name,)
        return tuple(q.name for q in self._target_queues)

    def can_progress(self) -> bool:
        """Whether :meth:`run` would perform at least one step right now.

        Side-effect free: replays ``run``'s first-step decision (scan
        cursor, control broadcast, scan/strided setup, or a routed
        dereference) against the current queue state without touching
        caches or statistics. The fast engine's quiescence check uses
        this to prove a quantum would be a no-op for this DRM.
        """
        if self._scan_addr is not None:
            return self._out_q.can_enq(self.producer_key)
        in_q = self.in_q
        if not in_q._tokens:
            return False
        token = in_q._tokens[0]
        if token.is_control:
            return all(q.can_enq(self.producer_key, is_control=True)
                       for q in self._target_queues)
        if self._mode != "deref":
            return True  # scan/strided cursor setup always costs one cycle
        value = token.value
        width = self._width
        has_payload = self._payload
        read = self.memmap.read
        if width > 1 or has_payload:
            parts = tuple(value)
            payload = parts[width:] if has_payload else ()
            if width == 1:
                loaded = (read(parts[0]),)
            elif width == 2:
                loaded = (read(parts[0]), read(parts[1]))
            else:
                loaded = tuple([read(a) for a in parts[:width]])
        else:
            payload = ()
            loaded = (read(value),)
        route = self._route
        if route is not None:
            return self.out_queues[route(loaded, payload)].can_enq(
                self.producer_key)
        return self._out_q.can_enq(self.producer_key)

    def run(self, budget: float) -> float:
        """Advance the DRM for up to ``budget`` cycles; returns cycles used."""
        spent = 0.0
        in_q = self.in_q
        in_tokens = in_q._tokens
        if self._scan_addr is None and self._mode == "deref" and in_tokens:
            # Hot path: back-to-back dereferences with every per-token
            # attribute lookup hoisted. Replays _step_deref exactly
            # (same per-token float accumulation order); bails to the
            # general ladder below on control tokens.
            width = self._width
            has_payload = self._payload
            mm = self.memmap
            read = mm.read
            route = self._route
            out_queues = self.out_queues
            default_out = self._out_q
            l1 = self.l1
            access = l1.access
            l1_sets = l1._sets
            l1_shift = l1._line_shift
            l1_mask = l1._set_mask
            l1_hit_lat = l1._latency
            l1_latency = self.l1_latency
            max_out = self.max_outstanding
            inv_issue = self._inv_issue
            producer = self.producer_key
            in_words = in_q.entry_words
            in_credits = in_q._credits
            in_name = in_q.name
            # Stats carried as locals (running totals, so float
            # accumulation order — and thus rounding — is unchanged);
            # flushed at every exit from the hot loop.
            n_loads = self.loads
            miss_stall = self.miss_stall_cycles
            while spent < budget and in_tokens:
                token = in_tokens[0]
                if token.is_control:
                    break
                value = token.value
                # Loads inline MemoryMap.read's locality-cache fast
                # path (re-read _last per address: a miss refills it).
                if width > 1 or has_payload:
                    parts = tuple(value)
                    addrs = parts[:width]
                    payload = parts[width:] if has_payload else ()
                    if width == 1:
                        a = addrs[0]
                        ml = mm._last
                        loaded = ((ml[4][(a - ml[0]) // ml[2]]
                                   if ml[0] <= a < ml[1] else read(a)),)
                    elif width == 2:
                        a = addrs[0]
                        ml = mm._last
                        v0 = (ml[4][(a - ml[0]) // ml[2]]
                              if ml[0] <= a < ml[1] else read(a))
                        a = addrs[1]
                        ml = mm._last
                        v1 = (ml[4][(a - ml[0]) // ml[2]]
                              if ml[0] <= a < ml[1] else read(a))
                        loaded = (v0, v1)
                    else:
                        loaded = tuple([read(a) for a in addrs])
                else:
                    addrs = (value,)
                    payload = ()
                    a = value
                    ml = mm._last
                    loaded = ((ml[4][(a - ml[0]) // ml[2]]
                               if ml[0] <= a < ml[1] else read(a)),)
                if route is not None:
                    out = out_queues[route(loaded, payload)]
                else:
                    out = default_out
                # Queue.can_enq's uncredited arm verbatim; credited
                # targets keep the method (credit_stall probe).
                if out._credits is None:
                    ok = (out.capacity_words - out._occupancy_words
                          >= out.entry_words)
                else:
                    ok = out.can_enq(producer)
                if not ok:
                    self._blocked_on = out.name
                    if (self.probe is not None
                            and "drm.blocked" in self.probe.bus.wants):
                        self.probe.emit("drm.blocked", drm=self.spec.name,
                                        pe=self.pe_id, queue=self._blocked_on)
                    self.loads = n_loads
                    self.miss_stall_cycles = miss_stall
                    self.busy_cycles += spent
                    return spent
                # Cache.access's L1-hit path verbatim (LRU move-to-MRU
                # included); misses take the full method.
                worst = 0.0
                for addr in addrs:
                    line = addr >> l1_shift
                    cset = l1_sets[line & l1_mask]
                    if line in cset:
                        l1.hits += 1
                        cset[line] = cset.pop(line)
                        latency = l1_hit_lat
                    else:
                        latency = access(addr)
                    if latency > worst:
                        worst = latency
                n_loads += len(addrs)
                over = worst - l1_latency
                extra = over / max_out if over > 0.0 else 0.0
                miss_stall += extra
                cost = inv_issue + extra
                if len(loaded) == 1 and not has_payload:
                    result = loaded[0]
                else:
                    result = loaded + payload
                # Inlined in_q.deq() / out.enq() (Queue.deq / Queue.enq
                # verbatim; the head is the data token just examined).
                tok = in_tokens.popleft()
                in_q._occupancy_words -= in_words
                if in_credits is not None:
                    in_credits[tok.producer] += in_words
                probe = in_q.probe
                if probe is not None and "queue.deq" in probe.bus.wants:
                    probe.emit("queue.deq", queue=in_name, words=in_words,
                               occupancy=in_q._occupancy_words)
                ev = in_q.on_event
                if ev is not None:
                    ev(in_q, False)
                words = out.entry_words
                credits = out._credits
                if credits is not None:
                    credits[producer] -= words
                out._tokens.append(Token(result, False, producer))
                out._occupancy_words += words
                out.total_enqueued += 1
                probe = out.probe
                if probe is not None and "queue.enq" in probe.bus.wants:
                    probe.emit("queue.enq", queue=out.name, words=words,
                               occupancy=out._occupancy_words, control=False)
                ev = out.on_event
                if ev is not None:
                    ev(out, True)
                spent += cost
            self.loads = n_loads
            self.miss_stall_cycles = miss_stall
        while spent < budget:
            if self._scan_addr is not None:
                cost = self._step_scan()
            elif not in_q._tokens:
                break
            else:
                token = in_q._tokens[0]
                if token.is_control:
                    cost = self._step_control(token)
                elif self._mode == "deref":
                    cost = self._step_deref(token)
                elif self._mode == "scan":
                    start, end = token.value
                    in_q.deq()
                    self._scan_addr = start if start < end else None
                    self._scan_end = end
                    if start < end:
                        self._scan_elem_bytes = self.memmap.elem_bytes_at(start)
                    cost = 1.0
                else:  # strided
                    start, count, stride = token.value
                    in_q.deq()
                    self._scan_addr = start if count > 0 else None
                    self._scan_remaining = int(count)
                    self._scan_stride = int(stride)
                    cost = 1.0
            if cost is None:  # blocked on a full output queue
                if (self.probe is not None
                        and "drm.blocked" in self.probe.bus.wants):
                    self.probe.emit("drm.blocked", drm=self.spec.name,
                                    pe=self.pe_id, queue=self._blocked_on)
                break
            spent += cost
        self.busy_cycles += spent
        return spent
