"""Smoke test: every benchmark entry point runs end to end.

Runs each ``benchmarks/bench_*.py`` module's ``run_*`` function in a
subprocess at minimal scale (``REPRO_BENCH_SCALE=0.25``, two apps, one
input each, results redirected to a temp dir) and checks it writes its
``results/<name>.txt`` block — and, for the simulation benchmarks, run
manifests under ``results/manifests/``.

Marked ``slow``: excluded from the default `pytest` run (see
``addopts`` in pyproject.toml); run with ``pytest -m slow`` or
``pytest -m ""``. CI runs it in a dedicated job.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

_REPO = Path(__file__).resolve().parent.parent

# (module, entry point, emit name, writes manifests?). Benches that
# simulate through bench_common's prefetch/experiment leave manifests;
# table1 (analytic), telemetry_overhead (self-timed System runs), and
# engine_speedup (timed sweeps, provenance would skew timing) do not.
_BENCHES = [
    ("bench_autosplit", "run_autosplit", "autosplit", False),
    ("bench_drm_ablation", "run_drm_ablation", "drm_ablation", True),
    ("bench_engine_speedup", "run_engine_speedup", "engine_speedup", False),
    ("bench_fig13_performance", "run_fig13", "fig13_performance", True),
    ("bench_fig14_cycle_breakdown", "run_fig14", "fig14_cycle_breakdown",
     True),
    ("bench_fig15_energy", "run_fig15", "fig15_energy", True),
    ("bench_fig16_queue_sweep", "run_fig16", "fig16_queue_sweep", True),
    ("bench_fig17_merged_stages", "run_fig17", "fig17_merged_stages", True),
    ("bench_fine_grained_estimate", "run_fine_grained",
     "fine_grained_estimate", True),
    ("bench_frontend_parity", "run_frontend_parity", "frontend_parity",
     False),
    ("bench_scaling", "run_scaling", "scaling", True),
    ("bench_scheduler_policy", "run_scheduler_policy", "scheduler_policy",
     True),
    ("bench_service_cache", "run_service_cache", "service_cache", True),
    ("bench_simd_ablation", "run_simd_ablation", "simd_ablation", True),
    ("bench_table1_area", "run_table1", "table1_area", False),
    ("bench_table5_residence", "run_table5", "table5_residence", True),
    ("bench_telemetry_overhead", "run_overhead", "telemetry_overhead",
     False),
    ("bench_zero_cost_reconfig", "run_zero_cost", "zero_cost_reconfig",
     True),
]


def test_every_bench_module_is_covered():
    """The smoke list must track benchmarks/ — fail on new bench files."""
    modules = {path.stem for path in (_REPO / "benchmarks").glob("bench_*.py")}
    modules.discard("bench_common")
    assert modules == {module for module, _, _, _ in _BENCHES}


@pytest.mark.slow
@pytest.mark.parametrize("module,entry,name,manifests", _BENCHES,
                         ids=[b[0] for b in _BENCHES])
def test_bench_smoke(module, entry, name, manifests, tmp_path):
    env = dict(os.environ)
    env.update({
        "PYTHONPATH": os.pathsep.join(
            [str(_REPO / "src"), str(_REPO / "benchmarks")]),
        "REPRO_BENCH_SCALE": "0.25",
        "REPRO_BENCH_APPS": "bfs,spmm",
        "REPRO_BENCH_INPUTS": "1",
        "REPRO_BENCH_RESULTS_DIR": str(tmp_path),
    })
    proc = subprocess.run(
        [sys.executable, "-c", f"from {module} import {entry}; {entry}()"],
        cwd=_REPO, env=env, capture_output=True, text=True, timeout=1200)
    assert proc.returncode == 0, (
        f"{module}.{entry}() failed:\n{proc.stdout}\n{proc.stderr}")
    out = tmp_path / f"{name}.txt"
    assert out.exists(), f"{module} wrote no {name}.txt"
    assert out.read_text().strip()
    written = list((tmp_path / "manifests").glob("*.json")) \
        if (tmp_path / "manifests").exists() else []
    if manifests:
        assert written, f"{module} wrote no run manifests"
        assert any(p.name == "sweep.json" for p in written)
    else:
        assert not written
