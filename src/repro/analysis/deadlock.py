"""Queue/deadlock analysis over the channel graph.

A Fifer program is deadlock-free when (paper Secs. 4, 5.5-5.6):

* every channel has both a producer and a consumer (latency-insensitive
  channels drain);
* every enqueuer of a credited (multi-producer) channel holds a credit
  share of at least one entry — the Sec. 5.6 flow-control invariant;
* the per-PE queue memory actually hosts all declared queues at their
  floor sizes (one entry per producer each);
* the stage/queue wait graph is acyclic once the control core's
  iteration loop and bounded stage↔DRM round trips are factored out.

Temporal multiplexing (several stages sharing a PE, Sec. 5.2) does not
add wait edges: the block-driven scheduler switches away from a blocked
stage, so co-resident stages cannot hold the fabric while waiting on
each other. That assumption is recorded in the certificate.

The worst-case in-flight bound per channel is simply its carved
capacity in words — queue memory is the only token store (DRMs admit a
request only when the response queue can accept it, so they hold no
hidden tokens) — split per producer into credit shares when flow
control is on. The analysis checks those bounds are achievable
(capacity >= floor, share >= entry) and flags response queues too
shallow to cover a DRM's ``max_outstanding`` window, which throttles
memory-level parallelism without deadlocking.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig
from repro.analysis.graph import (ChannelGraph,
                                  strongly_connected_components,
                                  find_cycle_within)
from repro.analysis.report import Finding

_ASSUMPTIONS = (
    "block-driven scheduling: a blocked stage yields the fabric, so "
    "temporally-multiplexed stages on one PE add no wait edges",
    "DRMs are flow-controlled: a request is admitted only when the "
    "response channel can accept its result, so DRMs hold no tokens",
    "stage<->DRM round trips are bounded by the response channel "
    "capacity and do not constitute cyclic waits",
    "control channels close the iteration loop only through the "
    "control core, which always drains the barrier",
    "synchronization channels (one-word tokens whose values no "
    "consumer reads) gate admissions into recirculating pipelines; "
    "their credits are replenished by the cycle they bound, with the "
    "initial supply kept below the cycle's queue capacity",
)


def _check_wiring(graph: ChannelGraph) -> list:
    findings = []
    for channel in graph.channels.values():
        if channel.external:
            continue  # control core covers both sides
        if channel.consumers and not channel.producers:
            names = ", ".join(sorted(str(c) for c in channel.consumers))
            findings.append(Finding(
                "error", "deadlock.wiring", channel.name,
                f"queue {channel.name!r} (PE {channel.pe}) is consumed by "
                f"{names} but has no producer; its consumers starve"))
        elif channel.producers and not channel.consumers:
            names = ", ".join(sorted(str(p) for p in channel.producers))
            findings.append(Finding(
                "error", "deadlock.wiring", channel.name,
                f"queue {channel.name!r} (PE {channel.pe}) is produced by "
                f"{names} but has no consumer; it fills and stalls its "
                f"producers"))
        elif not channel.producers and not channel.consumers:
            findings.append(Finding(
                "warning", "deadlock.wiring", channel.name,
                f"queue {channel.name!r} (PE {channel.pe}) has no "
                f"producers or consumers; it wastes queue memory"))
    return findings


def _check_credits(graph: ChannelGraph) -> list:
    findings = []
    for channel in graph.channels.values():
        declared = set(channel.declared_producers)
        share = channel.credit_share_words
        if share is not None and share < channel.entry_words:
            findings.append(Finding(
                "error", "deadlock.credit", channel.name,
                f"queue {channel.name!r}: per-producer credit share "
                f"{share} words cannot hold one "
                f"{channel.entry_words}-word entry "
                f"({len(declared)} producers share "
                f"{channel.capacity_words} words)"))
        if not declared:
            continue
        actual = {p.name for p in channel.fabric_producers()}
        for producer in sorted(actual - declared):
            findings.append(Finding(
                "error", "deadlock.credit", channel.name,
                f"queue {channel.name!r}: {producer!r} enqueues without "
                f"a credit (declared producers: "
                f"{sorted(map(str, declared))}); the enqueue raises at "
                f"runtime"))
        for producer in sorted(declared - actual):
            findings.append(Finding(
                "warning", "deadlock.credit", channel.name,
                f"queue {channel.name!r}: credit share reserved for "
                f"{producer!r}, which never enqueues; "
                f"{share or channel.capacity_words} words of capacity "
                f"leak"))
    return findings


def _check_bounds(graph: ChannelGraph, config: SystemConfig) -> list:
    findings = []
    drm_names = {d.endpoint.name for d in graph.drms}
    for channel in graph.channels.values():
        if channel.capacity_words < channel.floor_words:
            findings.append(Finding(
                "error", "deadlock.bound", channel.name,
                f"queue {channel.name!r}: capacity "
                f"{channel.capacity_words} words is below its floor of "
                f"{channel.floor_words} words (one "
                f"{channel.entry_words}-word entry per producer)"))
            continue
        producers = channel.fabric_producers()
        if (producers
                and all(p.name in drm_names for p in producers)
                and channel.capacity_entries < config.drm_max_outstanding):
            findings.append(Finding(
                "warning", "deadlock.bound", channel.name,
                f"queue {channel.name!r}: holds {channel.capacity_entries} "
                f"entries but its DRM producer may keep "
                f"{config.drm_max_outstanding} requests outstanding; "
                f"memory-level parallelism is throttled"))
    return findings


def _check_budgets(graph: ChannelGraph) -> list:
    findings = []
    for budget in graph.pe_budgets:
        if budget.n_queues > budget.max_queues:
            findings.append(Finding(
                "error", "deadlock.budget", f"pe{budget.pe}",
                f"PE {budget.pe}: {budget.n_queues} queues exceed the "
                f"{budget.max_queues}-queue limit"))
        if budget.overflow_queue is not None:
            findings.append(Finding(
                "error", "deadlock.budget", budget.overflow_queue,
                f"PE {budget.pe}: queue floors need more than "
                f"{budget.budget_words} words of queue memory; queue "
                f"{budget.overflow_queue!r} does not fit — deepen "
                f"queue_mem_bytes or shrink the pipeline"))
    return findings


def _wait_edges(graph: ChannelGraph) -> dict:
    """Producer endpoint -> [(consumer endpoint, channel name)] over
    data channels, excluding the control core."""
    edges: dict = {e: [] for e in graph.endpoints()}
    for channel in graph.channels.values():
        if channel.control_only or channel.sync_only:
            # Control channels close the iteration loop through the
            # control core; sync channels gate admissions (credits,
            # producer pacing) rather than carrying data. Both are
            # certificate assumptions, not wait edges.
            continue
        for producer in channel.fabric_producers():
            for consumer in channel.fabric_consumers():
                edges.setdefault(producer, []).append(
                    (consumer, channel.name))
    return edges


def _classify_scc(scc: list, edges: dict) -> Optional[dict]:
    """Return a round-trip record when ``scc`` is a benign stage↔DRM
    pair, else None (the caller reports a counterexample)."""
    if len(scc) != 2:
        return None
    kinds = sorted(e.kind for e in scc)
    if kinds != ["drm", "stage"]:
        return None
    drm = next(e for e in scc if e.kind == "drm")
    stage = next(e for e in scc if e.kind == "stage")
    requests = sorted({name for dst, name in edges.get(stage, ())
                       if dst == drm})
    responses = sorted({name for dst, name in edges.get(drm, ())
                        if dst == stage})
    return {"stage": stage.name, "drm": drm.name,
            "request": requests, "response": responses}


def _check_cycles(graph: ChannelGraph) -> tuple:
    """Cyclic-wait detection. Returns (findings, round_trips)."""
    findings = []
    round_trips = []
    edges = _wait_edges(graph)
    nodes = list(edges)
    sccs = strongly_connected_components(
        nodes, lambda n: [dst for dst, _ in edges.get(n, ())])
    for scc in sccs:
        if len(scc) == 1:
            node = scc[0]
            self_channels = sorted({name for dst, name in edges.get(node, ())
                                    if dst == node})
            if self_channels:
                findings.append(Finding(
                    "error", "deadlock.cycle", node.name,
                    f"cyclic wait: {node.name} -[{self_channels[0]}]-> "
                    f"{node.name}; the stage feeds its own input queue "
                    f"with no external drain"))
            continue
        trip = _classify_scc(scc, edges)
        if trip is not None:
            # A stage issuing requests to a DRM and draining its
            # responses: bounded by the response channel capacity
            # (certificate assumption), not a cyclic wait.
            round_trips.append(trip)
            continue
        members = set(scc)
        cycle = find_cycle_within(
            members, lambda n: iter(edges.get(n, ())))
        if cycle:
            hops = " -> ".join(
                f"{node.name} -[{label}]" for node, label in cycle)
            path = f"{hops}-> {cycle[0][0].name}"
        else:  # pragma: no cover - SCC > 1 always contains a cycle
            path = " <-> ".join(sorted(e.name for e in scc))
        findings.append(Finding(
            "error", "deadlock.cycle", scc[0].name,
            f"cyclic wait through {len(members)} endpoints: {path}; "
            f"every stage on the cycle can block on a full downstream "
            f"queue — break the cycle with a DRM round trip or a "
            f"credit-bounded window"))
    round_trips.sort(key=lambda t: (t["stage"], t["drm"]))
    return findings, round_trips


def _check_multiplexing(graph: ChannelGraph) -> list:
    """Temporal-multiplexing sanity: a co-resident stage with no input
    channel can never block, so the scheduler would spin on it."""
    findings = []
    stages_by_pe: dict = {}
    for snode in graph.stages:
        stages_by_pe.setdefault(snode.endpoint.pe, []).append(snode)
    for pe, snodes in sorted(stages_by_pe.items()):
        if len(snodes) < 2:
            continue
        for snode in snodes:
            if not snode.spec.dfg.input_queues():
                findings.append(Finding(
                    "warning", "deadlock.multiplex", snode.endpoint.name,
                    f"stage {snode.endpoint.name!r} shares PE {pe} with "
                    f"{len(snodes) - 1} other stage(s) but has no input "
                    f"queue; a block-driven scheduler cannot deschedule "
                    f"it and it may starve its neighbours"))
    return findings


def analyze_deadlock(graph: ChannelGraph,
                     config: SystemConfig) -> tuple:
    """Run the deadlock pass suite. Returns (findings, certificate);
    the certificate is None when any pass reports an error."""
    findings = list(graph.findings)
    findings += _check_wiring(graph)
    findings += _check_credits(graph)
    findings += _check_bounds(graph, config)
    findings += _check_budgets(graph)
    cycle_findings, round_trips = _check_cycles(graph)
    findings += cycle_findings
    findings += _check_multiplexing(graph)

    if any(f.severity == "error" for f in findings):
        return findings, None

    edges = _wait_edges(graph)
    n_edges = sum(len(v) for v in edges.values())
    channels = {}
    for channel in sorted(graph.channels.values(), key=lambda c: c.name):
        channels[channel.name] = {
            "pe": channel.pe,
            "entry_words": channel.entry_words,
            "capacity_words": channel.capacity_words,
            "floor_words": channel.floor_words,
            "bound_words": channel.capacity_words,
            "credit_share_words": channel.credit_share_words,
            "producers": sorted(str(p) for p in channel.producers),
            "consumers": sorted(str(c) for c in channel.consumers),
        }
    certificate = {
        "verdict": "deadlock-free",
        "assumptions": list(_ASSUMPTIONS),
        "sync_channels": sorted(c.name for c in graph.channels.values()
                                if c.sync_only),
        "channels": channels,
        "queue_memory": [
            {"pe": b.pe, "budget_words": b.budget_words,
             "planned_words": b.planned_words, "n_queues": b.n_queues}
            for b in graph.pe_budgets],
        "round_trips": round_trips,
        "wait_graph": {"nodes": len(edges), "edges": n_edges},
    }
    return findings, certificate
