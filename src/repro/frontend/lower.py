"""Lowering: instantiate a stage plan as a runnable pipeline program.

The generated pipeline is a :class:`FrontendWorkload`, a subclass of the
same :class:`~repro.workloads.common.GraphPipelineWorkload` skeleton the
hand-written workloads use: the split analysis fills in the hooks
(vertex fetches, payload datapaths, the update program) that a human
author would write by hand. Because the skeleton is shared, a generated
pipeline is *bit-identical* to its hand-written counterpart — same
per-stage DFGs, queue specs, DRM specs, address-space layout, and
token-for-token identical request streams — which the differential
suite asserts for BFS and CC.

Kernel expressions are lowered twice:

* to *runtime closures* interpreted by the stage semantics coroutines
  (marked loads compile to authoritative re-reads of the live arrays at
  the consuming stage — the DRM-fetched copy may be stale within an
  iteration, exactly as the hand-written workloads treat it);
* to *DFG node emissions* for the mapper (loads that crossed a cut
  become CTRL taps off the stage's input token).

Every generated stage DFG is validated strictly (no dangling nodes) and
the assembled program's queue wiring is checked with
:func:`repro.ir.dfg.check_queue_wiring` before it is returned.
"""

from __future__ import annotations

import operator
from typing import Optional

import numpy as np

from repro.config import SystemConfig
from repro.datasets.graphs import CSRGraph
from repro.frontend.kernel import FrontendError, GraphKernel
from repro.frontend.split import StagePlan, analyze
from repro.ir.dfg import check_queue_wiring
from repro.workloads.common import GraphPipelineWorkload, shards_for_mode


# -- runtime expression compiler ------------------------------------------

_PYOPS = {"add": operator.add, "sub": operator.sub, "mul": operator.mul,
          "lt": operator.lt, "eq": operator.eq}


def _compile(value, bind: dict):
    """Compile a kernel expression to a closure ``fn(workload, env)``.

    ``bind`` maps value ids to env slot names; unbound marked loads
    compile to authoritative re-reads of the live array.
    """
    slot = bind.get(value.vid)
    if slot is not None:
        return lambda wl, env: env[slot]
    op = value.op
    if op == "const":
        const = value.attr
        return lambda wl, env: const
    if op == "epoch":
        return lambda wl, env: wl._epoch
    if op == "vertex":
        return lambda wl, env: env["v"]
    if op == "edge":
        return lambda wl, env: env["e"]
    if op == "load":
        name = value.attr.ref.name
        idx = _compile(value.args[0], bind)
        return lambda wl, env: wl._arrays[name][idx(wl, env)].item()
    if op in _PYOPS:
        left = _compile(value.args[0], bind)
        right = _compile(value.args[1], bind)
        pyop = _PYOPS[op]
        return lambda wl, env: pyop(left(wl, env), right(wl, env))
    raise FrontendError(f"cannot compile {value.label} to a runtime closure")


# -- DFG emission ----------------------------------------------------------

_BIN_EMIT = {"add": "add", "sub": "sub", "mul": "mul", "lt": "lt",
             "eq": "eq"}


def _emit(b, value, bind: dict, memo: dict):
    """Emit a kernel expression as DFG nodes; post-order, memoized.

    ``bind`` maps value ids to already-present nodes (or thunks creating
    them lazily, e.g. a CTRL tap off the stage's input token).
    """
    node = memo.get(value.vid)
    if node is not None:
        return node
    bound = bind.get(value.vid)
    if bound is not None:
        node = bound() if callable(bound) else bound
    elif value.op == "const":
        node = b.const(value.attr)
    elif value.op == "epoch":
        # The iteration counter is a configuration-time constant the
        # control core rewrites at each barrier (paper Sec. 5.5).
        node = b.const(0)
    elif value.op in _BIN_EMIT:
        left = _emit(b, value.args[0], bind, memo)
        right = _emit(b, value.args[1], bind, memo)
        node = getattr(b, _BIN_EMIT[value.op])(left, right)
    else:
        raise FrontendError(
            f"cannot emit {value.label} into this stage's datapath")
    memo[value.vid] = node
    return node


# -- the generated workload ------------------------------------------------

class FrontendWorkload(GraphPipelineWorkload):
    """A pipeline generated from an annotated kernel by the front-end."""

    def __init__(self, plan: StagePlan, graph: CSRGraph, n_shards: int,
                 params: Optional[dict] = None,
                 max_iterations: Optional[int] = None):
        kernel = plan.kernel
        self.plan = plan
        self.kernel = kernel
        # Instance attributes shadow the skeleton's class attributes; the
        # kernel name keys every queue, DRM, and stage name (and thereby
        # the runtime's credit bookkeeping), so a generated "bfs" is
        # indistinguishable from the hand-written one.
        self.name = kernel.name
        self.vertex_fetch_words = len(plan.vertex_loads)
        self.edge_fetch_words = 1 + len(plan.edge_extra_loads)
        self.max_iterations = max_iterations

        self._params = dict(kernel.params)
        for key, value in (params or {}).items():
            if key not in self._params:
                raise FrontendError(
                    f"kernel {kernel.name!r} has no parameter {key!r} "
                    f"(declared: {sorted(self._params) or 'none'})")
            self._params[key] = value

        self._build_closures()
        super().__init__(graph, n_shards)

    def _build_closures(self) -> None:
        plan = self.plan
        kernel = self.kernel
        vbind = {}
        if kernel._vertex is not None:
            vbind[kernel._vertex.vid] = "v"
        # S0: per-vertex state fetch address generators.
        self._vf = [(load.attr.ref.name, _compile(load.args[0], vbind))
                    for load in plan.vertex_loads]
        # S1: the per-vertex payload (cut-1 loads re-read live arrays).
        self._p0_fn = (_compile(plan.p0, vbind)
                       if plan.p0 is not None else None)
        # S1: extra per-edge fetch address generators.
        ebind = dict(vbind)
        if kernel._edge_var is not None:
            ebind[kernel._edge_var.vid] = "e"
        self._extra_addr = [(load.attr.ref.name,
                             _compile(load.args[0], ebind))
                            for load in plan.edge_extra_loads]
        # S2: fold the fetched extras into the hop payload.
        s2bind = {plan.route_load.vid: "ngh"}
        self._s2_slots = []
        for i, load in enumerate(plan.edge_extra_loads):
            slot = f"x{i}"
            s2bind[load.vid] = slot
            self._s2_slots.append(slot)
        if plan.p0 is not None:
            s2bind[plan.p0.vid] = "payload"
        self._s2_fn = (_compile(plan.s2_value, s2bind)
                       if plan.s2_value is not None else None)
        # S3: the update program. The owner load is deliberately NOT
        # bound: it compiles to an authoritative re-read of the live
        # array at the owner shard (the DRM-fetched copy may be stale).
        s3bind = {plan.route_load.vid: "ngh"}
        if plan.s3_payload is not None:
            s3bind[plan.s3_payload.vid] = "payload"
        self._cond_fn = (_compile(plan.cond, s3bind)
                         if plan.cond is not None else None)
        self._update = []
        for stmt in plan.update_ops:
            if stmt.kind == "store":
                self._update.append(
                    ("store", stmt.ref.name, _compile(stmt.value, s3bind),
                     False))
            else:
                self._update.append(("push", None, None, stmt.dedup))

    # -- skeleton hooks: state ------------------------------------------

    def setup(self) -> None:
        self._arrays = {}
        self._refs = {}
        for ref in self.kernel.refs:
            length = ref.length(self.graph)
            array = np.asarray(ref.init(self.graph, self._params))
            if array.shape != (length,):
                raise FrontendError(
                    f"kernel {self.kernel.name!r}: init of {ref.name!r} "
                    f"returned shape {array.shape}, expected ({length},)")
            handle = self.space.alloc_array(ref.name, length)
            self.memmap.register(handle, array)
            self._arrays[ref.name] = array
            self._refs[ref.name] = handle
        self._owner_handle = self._refs[self.plan.owner_load.attr.ref.name]
        self._epoch = 1
        if self.plan.needs_dedup:
            self._in_next = [set() for _ in range(self.n_shards)]

    def value_addr(self, ngh: int) -> int:
        return self._owner_handle.addr(ngh)

    def initial_fringe(self):
        kind, param = self.kernel.fringe
        if kind == "all":
            return range(self.graph.n_vertices)
        return [int(self._params[param])]

    def result(self):
        for ref in self.kernel.refs:
            if ref.output:
                return self._arrays[ref.name]
        return self._arrays[self.kernel.refs[0].name]

    # -- skeleton hooks: stage semantics --------------------------------

    def vertex_fetch_addrs(self, v: int) -> tuple:
        env = {"v": v}
        return tuple(self._refs[name].addr(fn(self, env))
                     for name, fn in self._vf)

    def vertex_process(self, ctx, shard: int, v: int, start: int, end: int):
        fn = self._p0_fn
        if fn is None:
            return 0
        return fn(self, {"v": v})
        yield  # pragma: no cover - makes this a generator

    def edge_extra_addrs(self, e: int) -> tuple:
        env = {"e": e}
        return tuple(self._refs[name].addr(fn(self, env))
                     for name, fn in self._extra_addr)

    def edge_extra_values(self, e: int) -> tuple:
        env = {"e": e}
        return tuple(self._arrays[name][fn(self, env)].item()
                     for name, fn in self._extra_addr)

    def s2_payload(self, ngh: int, extras: tuple, p_edge):
        fn = self._s2_fn
        if fn is None:
            return p_edge
        env = {"ngh": ngh, "payload": p_edge}
        for slot, word in zip(self._s2_slots, extras):
            env[slot] = int(word)
        return fn(self, env)

    def s3_update(self, ctx, shard: int, ngh: int, value, p_edge):
        env = {"ngh": ngh, "payload": p_edge}
        cond = self._cond_fn
        if cond is not None and not cond(self, env):
            return
        for kind, ref_name, value_fn, dedup in self._update:
            if kind == "store":
                self._arrays[ref_name][ngh] = value_fn(self, env)
                yield ("store", self._refs[ref_name].addr(ngh))
            else:
                if dedup:
                    pending = self._in_next[shard]
                    if ngh in pending:
                        continue
                    pending.add(ngh)
                yield from self.push_touched(ctx, shard, ngh)

    def at_barrier(self, iteration: int) -> None:
        if self.plan.uses_epoch:
            self._epoch += 1
        if self.plan.needs_dedup:
            for pending in self._in_next:
                pending.clear()

    # -- skeleton hooks: stage datapaths --------------------------------

    def vertex_extra_ops(self, b, v_node):
        plan = self.plan
        if plan.p0 is None:
            return b.const(0)
        bind = {load.vid: (lambda: b.ctrl(v_node))
                for load in plan.vertex_loads}
        if self.kernel._vertex is not None:
            bind[self.kernel._vertex.vid] = v_node
        return _emit(b, plan.p0, bind, {})

    def s1_extra_edge_ops(self, b, e_next) -> tuple:
        return tuple(
            b.lea(b.const(self._refs[load.attr.ref.name].base), e_next)
            for load in self.plan.edge_extra_loads)

    def s2_extra_ops(self, b, ngh_node):
        plan = self.plan
        if plan.s2_value is None:
            return None
        bind = {plan.route_load.vid: ngh_node}
        if plan.p0 is not None:
            bind[plan.p0.vid] = lambda: b.ctrl(ngh_node)
        for load in plan.edge_extra_loads:
            bind[load.vid] = lambda: b.ctrl(ngh_node)
        return _emit(b, plan.s2_value, bind, {})

    def s3_extra_ops(self, b, value_node, payload_node):
        plan = self.plan
        bind = {plan.owner_load.vid: value_node,
                plan.route_load.vid: (lambda: b.ctrl(value_node))}
        if plan.s3_payload is not None:
            bind[plan.s3_payload.vid] = payload_node
        memo: dict = {}
        cond = (_emit(b, plan.cond, bind, memo)
                if plan.cond is not None else None)
        store = next(s for s in plan.update_ops if s.kind == "store")
        new = _emit(b, store.value, bind, memo)
        if cond is None:
            return new
        return b.sel(cond, new, value_node)

    def merged_extra_ops(self, b, e_next, ngh_node, payload):
        plan = self.plan
        if plan.s2_value is None:
            return payload
        bind = {plan.route_load.vid: ngh_node}
        if plan.p0 is not None:
            bind[plan.p0.vid] = payload
        for load in plan.edge_extra_loads:
            base = self._refs[load.attr.ref.name].base
            bind[load.vid] = (
                lambda base=base: b.load(b.lea(b.const(base), e_next)))
        return _emit(b, plan.s2_value, bind, {})

    # -- program assembly -----------------------------------------------

    def build_program(self, config: SystemConfig, mode: str,
                      variant: str = "decoupled"):
        program = super().build_program(config, mode, variant)
        self._check_wiring(program)
        return program

    def _check_wiring(self, program) -> None:
        declared = set(program.external_queues)
        stages = []
        drm_consumed, drm_produced = set(), set()
        for pe_program in program.pe_programs:
            declared.update(qs.name for qs in pe_program.queue_specs)
            stages.extend(ss.dfg for ss in pe_program.stage_specs)
            for drm in pe_program.drm_specs:
                drm_consumed.add(drm.in_queue)
                if drm.out_queue:
                    drm_produced.add(drm.out_queue)
                drm_produced.update(drm.route_targets or ())
        external = set(program.external_queues)
        external.update(self.q("iter", s) for s in range(self.n_shards))
        check_queue_wiring(stages, declared, drm_consumed=drm_consumed,
                           drm_produced=drm_produced, external=external)


# -- the compiled-pipeline handle ------------------------------------------

def _demo_graph() -> CSRGraph:
    """A tiny fixed graph used to materialize stage DFGs for display."""
    n = 8
    offsets = np.arange(n + 1, dtype=np.int64) * 2
    neighbors = np.empty(2 * n, dtype=np.int64)
    for v in range(n):
        neighbors[2 * v] = (v + 1) % n
        neighbors[2 * v + 1] = (v + 3) % n
    return CSRGraph(offsets, neighbors)


_STAGE_ROLES = (
    ("fringe", "S0 process fringe", ("drm_fr (scan)", "drm_off (deref)")),
    ("enum", "S1 enumerate neighbors", ("drm_ngh (deref)",)),
    ("fetch", "S2 fetch values", ("drm_val (deref, owner-routed)",)),
    ("update", "S3 update data / next fringe", ()),
)


class CompiledPipeline:
    """A kernel that passed split analysis and lint; ready to lower."""

    def __init__(self, kernel: GraphKernel, plan: StagePlan):
        self.kernel = kernel
        self.plan = plan

    @property
    def name(self) -> str:
        return self.kernel.name

    def workload(self, graph: CSRGraph, n_shards: int,
                 max_iterations: Optional[int] = None,
                 **params) -> FrontendWorkload:
        return FrontendWorkload(self.plan, graph, n_shards, params=params,
                                max_iterations=max_iterations)

    def build(self, graph: CSRGraph, config: SystemConfig, mode: str,
              variant: str = "decoupled", **params):
        """Build a ready-to-run program, like the workloads' ``build``."""
        n_stages = 4 if variant == "decoupled" else 2
        workload = self.workload(
            graph, shards_for_mode(config, mode, n_stages), **params)
        return workload.build_program(config, mode, variant), workload

    def describe(self) -> dict:
        """Stage list, queue graph, and per-stage assembly (for the CLI).

        DFGs are materialized on a small fixed graph — node structure is
        graph-independent; only base-address constants vary.
        """
        plan = self.plan
        workload = self.workload(_demo_graph(), 1)
        builders = {"fringe": workload._s0_dfg, "enum": workload._s1_dfg,
                    "fetch": workload._s2_dfg, "update": workload._s3_dfg}
        stages = []
        for index, (key, role, drms) in enumerate(_STAGE_ROLES):
            dfg = builders[key](0)
            stages.append({
                "index": index,
                "name": dfg.name,
                "role": role,
                "drms": list(drms),
                "compute_ops": dfg.n_compute_ops,
                "depth": dfg.depth,
                "asm": dfg.to_asm(),
            })
        return {
            "kernel": self.kernel.name,
            "doc": self.kernel.doc,
            "params": dict(self.kernel.params),
            "arrays": [{"name": ref.name, "size": ref.size,
                        "mutable": ref.mutable, "output": ref.output}
                       for ref in self.kernel.refs],
            "split": {
                "vertex_fetch_words": plan.vertex_fetch_words,
                "edge_fetch_words": plan.edge_fetch_words,
                "owner_array": plan.owner_load.attr.ref.name,
                "payload_across_edge_cut":
                    plan.p0.label if plan.p0 is not None else None,
                "payload_across_hop":
                    (plan.s3_payload.label
                     if plan.s3_payload is not None else None),
                "uses_epoch": plan.uses_epoch,
                "dedup_pushes": plan.needs_dedup,
            },
            "stages": stages,
            "queues": [edge.as_dict() for edge in plan.queue_graph()],
            "feed_forward": True,
        }

    def emit_python(self, stage: Optional[int] = None) -> list:
        """Generated step-function source per stage (``--emit-python``).

        Returns one record per stage — index, stage name, shape role,
        the shape's content key, and the specialized Python source the
        codegen backend would bind at ``run(codegen=True)``. Source is
        fetched through :func:`repro.codegen.runtime.source_for`, so the
        dump shares (and warms) the same artifact-cache entries the
        simulator uses. ``stage`` narrows the dump to one stage index.
        """
        from repro.codegen.runtime import source_for

        workload = self.workload(_demo_graph(), 1)
        specs = workload._shard_stage_specs(0)
        records = []
        for index, key in enumerate(("s0", "s1", "s2", "s3")):
            if stage is not None and index != stage:
                continue
            spec = specs[key]
            shape, _bindings = spec.codegen
            records.append({
                "index": index,
                "name": spec.name,
                "role": shape.role,
                "key": shape.key(),
                "source": source_for(shape),
            })
        return records


def compile_kernel(kernel: GraphKernel,
                   cache=None) -> CompiledPipeline:
    """Split, lint, and prepare ``kernel`` for lowering.

    Split plans are content-addressed by the kernel's structural
    fingerprint (:func:`repro.cache.kernel_fingerprint`): a repeat
    compile of an unchanged kernel performs no split analysis — the
    cached :class:`~repro.frontend.split.StagePlan` is reused, and the
    ``split_plan.hit``/``split_plan.miss`` counters of the artifact
    cache prove it. Any observable edit to the kernel (structure,
    constants, init functions) changes the fingerprint and re-analyzes.
    Plans hold init closures, so this layer is in-memory only; pass an
    explicit ``cache`` to isolate (tests) or share one deliberately.
    """
    from repro.cache import get_artifact_cache, kernel_fingerprint
    if cache is None:
        cache = get_artifact_cache()
    key = kernel_fingerprint(kernel)
    plan = cache.get("split_plan", key)
    if plan is None:
        plan = analyze(kernel)
        cache.put("split_plan", key, plan)
    return CompiledPipeline(kernel, plan)
