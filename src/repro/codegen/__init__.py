"""DFG-to-Python source-generation backend (closure codegen).

Compiles each decoupled graph-pipeline stage to a flat specialized
step-function — straight-line Python with the request protocol and
SIMD cost model inlined and queues/counters bound as locals — selected
by ``System.run(..., codegen=True)`` or ``REPRO_CODEGEN=1``. Stages
codegen cannot express fall back to the interpreted coroutine path.
"""

from repro.codegen.emit import CODEGEN_VERSION, ROLES, StageShape, stage_source
from repro.codegen.runtime import (bind_stage, bind_system, emitted_count,
                                   source_for)

__all__ = [
    "CODEGEN_VERSION",
    "ROLES",
    "StageShape",
    "stage_source",
    "source_for",
    "bind_stage",
    "bind_system",
    "emitted_count",
]
