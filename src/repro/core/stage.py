"""Stage specifications and the coroutine execution protocol.

A stage's *semantics* are a Python generator that yields
micro-architectural requests; the PE engine satisfies each request,
charges its cycle cost, and resumes the generator with the result. The
stage's *timing shape* comes from its dataflow graph's mapping (pipeline
depth, SIMD replication factor, configuration size).

Request protocol (tuples yielded by the coroutine):

* ``("deq", queue_name)`` — dequeue one token; blocks while empty.
* ``("try_deq", queue_name)`` — dequeue if available, else ``None``.
* ``("peek", queue_name)`` — inspect head token; blocks while empty.
* ``("enq", queue_name, value, is_control)`` — enqueue; blocks while
  full (or out of credits on a multi-producer queue).
* ``("load", addr)`` — coupled load: L1 hit latency is hidden in the
  pipeline; a miss stalls the PE (paper Sec. 5.4).
* ``("store", addr)`` — coupled store (write-allocate; misses stall).
* ``("cycles", n)`` — charge ``n`` explicit compute cycles.

Cycle cost of queue I/O follows the SIMD execution model of Sec. 5.6:
with replication factor R, data tokens cost 1/R cycle per dequeue or
enqueue — and dequeues and enqueues of the same element overlap in the
pipelined datapath, so the charged cost is the *max* of the two running
totals, not their sum. Control values are always handled serially and
cost a full cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.ir.dfg import DataflowGraph

# Sentinel control value that terminates a pipeline (propagated downstream
# by every stage; see paper Sec. 5.5 "the end of the program").
STOP_VALUE = "__STOP__"


@dataclass(frozen=True)
class StageSpec:
    """Declaration of one pipeline stage.

    ``semantics`` is called with a :class:`StageContext` and must return
    the stage's coroutine. ``max_replication`` caps SIMD datapath
    replication (e.g., for stages with serial recurrences).
    """

    name: str
    dfg: DataflowGraph
    semantics: Callable[["StageContext"], Generator]
    max_replication: Optional[int] = None
    # Optional (StageShape, bindings) descriptor consumed by
    # repro.codegen; None means the stage always interprets.
    codegen: Optional[Any] = None


class StageContext:
    """Facilities a stage coroutine uses to talk to the PE engine.

    The helper methods are sub-generators: stage code invokes them as
    ``value = yield from ctx.deq("q")``.
    """

    def __init__(self, pe_id: int, stage_name: str, shard: int, n_shards: int):
        self.pe_id = pe_id
        self.stage_name = stage_name
        self.shard = shard
        self.n_shards = n_shards

    @property
    def producer_key(self) -> str:
        """Identity used for credit accounting on multi-producer queues.

        Stage names are unique per shard by construction, so the name
        itself identifies the producer.
        """
        return self.stage_name

    # Each helper is a tiny generator so stage code composes with
    # ``yield from``; the engine only resumes a request once it is
    # satisfiable, so no retry loop is needed here.

    def deq(self, queue: str):
        token = yield ("deq", queue)
        return token

    def try_deq(self, queue: str):
        token = yield ("try_deq", queue)
        return token

    def peek(self, queue: str):
        token = yield ("peek", queue)
        return token

    def enq(self, queue: str, value: Any, is_control: bool = False):
        yield ("enq", queue, value, is_control)

    def load(self, addr: int):
        yield ("load", addr)

    def store(self, addr: int):
        yield ("store", addr)

    def cycles(self, n: float):
        yield ("cycles", n)


@dataclass
class StageInstance:
    """One stage resident on one PE (one shard of the program)."""

    spec: StageSpec
    ctx: StageContext
    mapping: Any  # repro.cgra.mapper.Mapping
    config_addr: int  # where this stage's bitstream lives in memory
    gen: Generator = field(default=None, repr=False)
    pending: Optional[tuple] = None
    started: bool = False
    done: bool = False
    # Running I/O totals for max-based SIMD cost accounting.
    work_deq: float = 0.0
    work_enq: float = 0.0
    # What-if datapath speed factor (SystemConfig.stage_speedup): divides
    # queue-I/O and explicit compute costs. The 1.0 default takes the
    # unscaled code paths so ordinary runs stay bit-identical.
    speed: float = 1.0
    # Codegen attachment (repro.codegen.runtime.bind_stage): a compiled
    # step-function replacing the coroutine trampoline, plus its saved
    # control state (program counter, loop counters, live sub-generator).
    step_fn: Optional[Callable[[float], float]] = field(default=None,
                                                       repr=False)
    cg: Optional[list] = field(default=None, repr=False)

    def __post_init__(self):
        self.gen = self.spec.semantics(self.ctx)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def replication(self) -> int:
        return self.mapping.replication

    def io_cost(self, n_deq: int, n_enq: int, is_control: bool) -> float:
        """Charge queue I/O and return the marginal cycle cost."""
        wd = self.work_deq
        we = self.work_enq
        speed = self.speed
        if is_control:
            # Control values are handled one per cycle (Sec. 5.6).
            inc = 1.0 if speed == 1.0 else 1.0 / speed
            top = (wd if wd >= we else we) + inc
            self.work_deq = self.work_enq = top
            return inc
        before = wd if wd >= we else we
        r = self.mapping.replication
        if speed != 1.0:
            r = r * speed
        wd += n_deq / r
        we += n_enq / r
        self.work_deq = wd
        self.work_enq = we
        return (wd if wd >= we else we) - before

    def advance(self, result: Any) -> Optional[tuple]:
        """Resume the coroutine with ``result``; returns the next request
        (or ``None`` when the stage finishes)."""
        try:
            if not self.started:
                self.started = True
                self.pending = next(self.gen)
            else:
                self.pending = self.gen.send(result)
        except StopIteration:
            self.pending = None
            self.done = True
        return self.pending

    def first_request(self) -> Optional[tuple]:
        """Fetch the initial request if the coroutine has not started."""
        if not self.started and not self.done:
            return self.advance(None)
        return self.pending
