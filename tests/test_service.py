"""The experiment service: spec identity, caching, dedup, byte-identity.

The load-bearing contract: the canonical manifest bytes for a spec are
identical whether the result was

* computed by the server's pool worker,
* replayed from the content-addressed result store, or
* computed locally through ``run_experiment`` (the CLI path),

for every engine. A violation would mean cached results silently
diverge from fresh ones — so the differential tests here compare exact
bytes, not parsed structures. The in-flight dedup test pins the other
acceptance criterion: two concurrent submissions of one uncached spec
run exactly one simulation.
"""

import asyncio
import json
import threading

import pytest

from repro.harness.sweep import run_point
from repro.service import (ExperimentServer, ServiceClient, ServiceError,
                           SpecError, canonicalize_spec, spec_key,
                           spec_point)
from repro.service.store import ResultStore
from repro.stats.manifest import canonical_json, strip_volatile

_SCALE = 0.05


def _spec(app="bfs", code="Hu", engine="fast", **kw):
    return {"app": app, "input_code": code, "system": "fifer",
            "scale": _SCALE, "engine": engine, **kw}


def _local_bytes(spec: dict) -> bytes:
    """The CLI-path bytes: run locally, strip volatiles, canonicalize."""
    result = run_point(spec_point(canonicalize_spec(spec)))
    return canonical_json(strip_volatile(result.to_manifest())).encode()


# -- spec canonicalization (no server) -------------------------------------


class TestSpec:
    def test_defaults_are_resolved(self):
        canonical = canonicalize_spec(
            {"app": "bfs", "input_code": "Hu", "system": "fifer"})
        assert canonical["scale"] == pytest.approx(0.35)
        assert canonical["variant"] == "decoupled"
        assert canonical["seed"] == 1
        assert canonical["engine"] == "fast"
        assert canonical["config"]["n_pes"] == 16

    def test_equivalent_specs_share_a_key(self):
        sparse = {"app": "bfs", "input_code": "Dy", "system": "fifer"}
        explicit = {"app": "bfs", "input_code": "Dy", "system": "fifer",
                    "variant": "decoupled", "scale": 1.0, "seed": 1,
                    "engine": "fast", "check": True, "config": {}}
        assert (spec_key(canonicalize_spec(sparse))
                == spec_key(canonicalize_spec(explicit)))

    def test_key_survives_json_roundtrip(self):
        canonical = canonicalize_spec(_spec(config={"n_pes": 8}))
        roundtripped = json.loads(json.dumps(canonical))
        assert spec_key(canonical) == spec_key(roundtripped)
        # and re-canonicalizing the canonical form is a fixed point
        assert canonicalize_spec(roundtripped) == canonical

    def test_distinct_coordinates_distinct_keys(self):
        base = spec_key(canonicalize_spec(_spec()))
        for change in ({"app": "cc"}, {"code": "Dy"}, {"seed": 2},
                       {"engine": "naive"}, {"config": {"n_pes": 8}}):
            app = change.pop("app", "bfs")
            code = change.pop("code", "Hu")
            other = spec_key(canonicalize_spec(
                _spec(app=app, code=code, **change)))
            assert other != base

    def test_rejects_malformed(self):
        for bad in (
                [],  # not an object
                {"app": "bfs", "input_code": "Hu"},  # missing system
                {"app": "nope", "input_code": "Hu", "system": "fifer"},
                {"app": "bfs", "input_code": "FS", "system": "fifer"},
                {"app": "bfs", "input_code": "Hu", "system": "gpu"},
                {"app": "bfs", "input_code": "Hu", "system": "fifer",
                 "engine": "warp"},
                {"app": "bfs", "input_code": "Hu", "system": "fifer",
                 "scale": -1},
                {"app": "bfs", "input_code": "Hu", "system": "fifer",
                 "turbo": True},
                {"app": "bfs", "input_code": "Hu", "system": "fifer",
                 "config": {"n_pes": -4}},
                {"app": "bfs", "input_code": "Hu", "system": "fifer",
                 "config": {"warp_speed": 9}},
        ):
            with pytest.raises(SpecError):
                canonicalize_spec(bad)

    def test_spec_point_roundtrips_config(self):
        canonical = canonicalize_spec(_spec(config={
            "n_pes": 8, "stage_speedup": [["bfs.fetch", 2.0]],
            "l1": {"size_bytes": 16384, "ways": 4, "latency": 4}}))
        point = spec_point(canonical)
        assert point.config.n_pes == 8
        assert point.config.stage_speedup == (("bfs.fetch", 2.0),)
        assert point.config.l1.size_bytes == 16384
        assert point.scale == pytest.approx(_SCALE)


# -- the result store (no server) ------------------------------------------


class TestResultStore:
    def test_roundtrip_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" * 32
        assert store.get(key) is None
        data = store.put(key, {"cycles": 1.0, "wall_time_s": 9.9,
                               "created": "now"})
        assert store.get(key) == data
        # volatile keys were stripped before storing
        assert b"wall_time_s" not in data and b"created" not in data
        assert key in store
        assert store.counters == {"hits": 1, "misses": 1, "stores": 1}

    def test_corrupt_entry_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" * 32
        store.put(key, {"cycles": 1.0})
        store.path_for(key).write_bytes(b"{broken")
        assert store.get(key) is None
        assert key not in store

    def test_rejects_malformed_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "../../etc/passwd", "ABCD", "xy" * 32):
            with pytest.raises(ValueError):
                store.path_for(bad)

    def test_stats_and_gc(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, {"cycles": 1.0})
        store.put("cd" * 32, {"cycles": 2.0})
        stats = store.stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0
        removed = store.gc()
        assert removed["removed"] == 2
        assert store.stats()["entries"] == 0


# -- a live server ---------------------------------------------------------


class _ServerHarness:
    """ExperimentServer on a background event-loop thread."""

    def __init__(self, cache_root, workers=2):
        self.server = ExperimentServer(cache_root=cache_root, port=0,
                                       workers=workers)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(),
                                         self.loop).result(timeout=30)
        self.client = ServiceClient(port=self.server.port, timeout=300)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def close(self):
        asyncio.run_coroutine_threadsafe(self.server.stop(),
                                         self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    harness = _ServerHarness(tmp_path_factory.mktemp("service-cache"))
    yield harness
    harness.close()
    from repro.cache import configure_artifact_cache
    configure_artifact_cache(None)  # undo the server's global cache


class TestServiceEndpoints:
    def test_health(self, service):
        health = service.client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_unknown_route_is_404(self, service):
        with pytest.raises(ServiceError) as exc:
            service.client._request_json("GET", "/nope")
        assert exc.value.status == 404

    def test_wrong_method_is_405(self, service):
        with pytest.raises(ServiceError) as exc:
            service.client._request_json("GET", "/submit")
        assert exc.value.status == 405

    def test_malformed_spec_is_400(self, service):
        for bad in ({"app": "bfs"},  # missing fields
                    {"app": "nope", "input_code": "Hu", "system": "fifer"},
                    {"app": "bfs", "input_code": "Hu", "system": "fifer",
                     "config": {"warp_speed": 9}}):
            with pytest.raises(ServiceError) as exc:
                service.client.submit(bad)
            assert exc.value.status == 400
        # a non-JSON body is also a 400, not a hang or disconnect
        status, document = next(iter(
            service.client._request_lines("POST", "/submit", b"not json")))
        assert status == 400 and "error" in document

    def test_cache_stats_shape(self, service):
        stats = service.client.cache_stats()
        assert set(stats) == {"results", "artifacts", "server"}
        assert "simulations" in stats["server"]


@pytest.mark.parametrize("app,engine", [
    ("bfs", "fast"), ("bfs", "event"),
    ("sssp", "fast"), ("sssp", "event"),
])
def test_differential_byte_identity(service, app, engine):
    """cold (server-computed) == warm (cache replay) == local CLI path."""
    spec = _spec(app=app, engine=engine)
    cold = service.client.submit(spec)
    warm = service.client.submit(spec)
    assert not cold.served_from_cache
    assert warm.served_from_cache
    assert cold.manifest_bytes == warm.manifest_bytes
    assert cold.manifest_bytes == _local_bytes(spec)
    # a replayed result did no simulation work
    assert warm.engine_stats is None and warm.wall_time_s is None
    # the stored bytes are exactly what both submissions saw
    assert service.server.store.get(warm.key) == warm.manifest_bytes
    # the manifest records the engine that produced it
    assert cold.manifest["engine"] == engine


def test_cold_submission_streams_phases(service):
    spec = _spec(app="cc", code="In")
    outcome = service.client.submit(spec)
    assert not outcome.served_from_cache
    assert outcome.phases == ["preparing", "compiling", "simulating",
                              "verifying"]
    assert outcome.engine_stats and outcome.engine_stats["quanta"] > 0
    assert outcome.wall_time_s > 0
    # warm replay skips the phases entirely: queued -> done
    replay = service.client.submit(spec)
    assert replay.phases == []
    assert [e["event"] for e in replay.events] == ["queued", "done"]


def test_concurrent_identical_specs_share_one_simulation(service):
    spec = _spec(app="cc", engine="fast", seed=5)
    sims_before = service.client.cache_stats()["server"]["simulations"]
    first_queued = threading.Event()
    outcomes = {}

    def submit_first():
        outcomes["first"] = service.client.submit(
            spec, on_event=lambda e: (e["event"] == "queued"
                                      and first_queued.set()))

    worker = threading.Thread(target=submit_first)
    worker.start()
    # enter the race only once the first submission holds the job slot
    assert first_queued.wait(timeout=60)
    outcomes["second"] = service.client.submit(spec)
    worker.join(timeout=300)

    stats = service.client.cache_stats()["server"]
    assert stats["simulations"] == sims_before + 1
    assert (outcomes["first"].manifest_bytes
            == outcomes["second"].manifest_bytes)
    second_queued = outcomes["second"].events[0]
    # the second either joined the in-flight job or (if the first
    # finished inside the race window) replayed its stored result —
    # both mean zero extra simulations
    assert (second_queued.get("deduped")
            or outcomes["second"].served_from_cache)


def test_failing_run_reports_structured_error(service):
    spec = _spec(variant="bogus", seed=7)
    with pytest.raises(ServiceError) as exc:
        service.client.submit(spec)
    detail = exc.value.detail
    assert detail["event"] == "error"
    assert detail["error_type"] == "ValueError"
    assert detail["traceback"]
    errors = service.client.cache_stats()["server"]["errors"]
    assert errors >= 1
    # a failed run must not poison the cache: nothing stored
    key = spec_key(canonicalize_spec(spec))
    assert service.server.store.get(key) is None


def test_cache_gc_clears_results(service):
    spec = _spec(seed=11)
    service.client.submit(spec)
    assert service.client.cache_stats()["results"]["entries"] > 0
    removed = service.client.cache_gc()
    assert removed["results"]["removed"] >= 1
    assert service.client.cache_stats()["results"]["entries"] == 0
    # the next submission recomputes and re-stores
    outcome = service.client.submit(spec)
    assert not outcome.served_from_cache
    assert outcome.manifest_bytes == _local_bytes(spec)
