"""Synthetic inputs matched to the statistics of the paper's datasets.

The paper uses five real-world graphs (Table 3), six SuiteSparse
matrices (Table 4), and a 52 GB YCSB-C database. None of those are
available offline, so each is replaced by a synthetic generator matched
to the published statistics (vertex/edge counts and degree skew; matrix
size and nnz/row; zipfian key popularity) at a scale a pure-Python
cycle-level simulator can run. See DESIGN.md, "Substitutions".
"""

from repro.datasets.graphs import (CSRGraph, uniform_random_graph,
                                   power_law_graph, grid_graph, TABLE3_GRAPHS,
                                   make_graph)
from repro.datasets.matrices import (SparseMatrix, random_sparse_matrix,
                                     TABLE4_MATRICES, make_matrix)
from repro.datasets.btree import BPlusTree
from repro.datasets.ycsb import zipfian_keys

__all__ = [
    "CSRGraph", "uniform_random_graph", "power_law_graph", "grid_graph",
    "TABLE3_GRAPHS", "make_graph",
    "SparseMatrix", "random_sparse_matrix", "TABLE4_MATRICES", "make_matrix",
    "BPlusTree", "zipfian_keys",
]
