"""Program descriptors: what runs where.

A workload builds a :class:`Program` for a given layout: for every PE, a
:class:`PEProgram` lists the queues to carve from that PE's queue
memory, the stages resident there, and the DRMs configured there.
Workloads also register their data arrays in a
:class:`~repro.memory.memmap.MemoryMap` (for DRM address resolution) and
may provide a ``control_poll`` callback — the control core of Fig. 4/7,
responsible for initialization, teardown, and the rare global actions
(iteration barriers, fringe swaps) that need a general-purpose agent.

Layout conventions (paper Sec. 5.6 / Sec. 7.1):

* **Fifer**: every PE hosts a complete temporal pipeline (all stages of
  one shard); 16 PEs = 16 replicated temporal pipelines.
* **Static**: each stage is pinned to its own PE for the whole run, so a
  ``k``-stage pipeline replicated ``n_pes // k`` times fills the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.drm import DRMSpec
from repro.core.stage import StageSpec
from repro.memory.address import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues.queue import Queue
from repro.queues.queue_memory import QueueSpec


@dataclass
class PEProgram:
    """Everything resident on one PE."""

    shard: int
    queue_specs: list[QueueSpec] = field(default_factory=list)
    stage_specs: list[StageSpec] = field(default_factory=list)
    drm_specs: list[DRMSpec] = field(default_factory=list)


@dataclass
class Program:
    """A complete pipeline-parallel program ready to instantiate."""

    name: str
    pe_programs: list[PEProgram]
    address_space: AddressSpace
    memmap: MemoryMap
    # Queues not stored in any PE's queue memory (e.g., the barrier queue
    # read by the control core).
    external_queues: dict[str, Queue] = field(default_factory=dict)
    # Called once per quantum after all PEs run; receives the System.
    control_poll: Optional[Callable[[Any], None]] = None
    # Optional side-effect-free predicate certifying that the *next*
    # control_poll call is a no-op and stays one until some queue
    # activity occurs. The event engine only jumps a fully quiescent
    # system over the control core when this returns True; without it
    # every quantum boundary is visited so the poll keeps running.
    control_poll_idle: Optional[Callable[[Any], bool]] = None
    # Called once after the System instantiates all queues/PEs; lets the
    # workload size windows from the actual carved queue capacities.
    post_build: Optional[Callable[[Any], None]] = None
    # Extracts the program's functional result after completion.
    result_fn: Optional[Callable[[], Any]] = None

    @property
    def n_pes(self) -> int:
        return len(self.pe_programs)

    def result(self) -> Any:
        return self.result_fn() if self.result_fn is not None else None
