"""Breadth-first search (paper Sec. 2.2, Fig. 1/2/10).

BFS finds the distance from a source vertex to all reachable vertices.
The pipeline splits at each level of indirection: process current
fringe -> enumerate neighbors -> fetch distances -> update data / next
fringe, replicated per shard with the fetch->update hop crossing shards
by neighbor ownership.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.graphs import CSRGraph
from repro.workloads.common import GraphPipelineWorkload


def bfs_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Golden serial BFS; -1 marks unreachable vertices."""
    distances = np.full(graph.n_vertices, -1, dtype=np.int64)
    distances[source] = 0
    fringe = [source]
    current = 1
    while fringe:
        next_fringe = []
        for v in fringe:
            for ngh in graph.neighbors_of(v):
                if distances[ngh] < 0:
                    distances[ngh] = current
                    next_fringe.append(int(ngh))
        fringe = next_fringe
        current += 1
    return distances


class BFSWorkload(GraphPipelineWorkload):
    """Pipeline-parallel BFS."""

    name = "bfs"

    def __init__(self, graph: CSRGraph, n_shards: int, source: int = 0):
        self.source = source
        super().__init__(graph, n_shards)

    def setup(self) -> None:
        n = self.graph.n_vertices
        self.distances = np.full(n, -1, dtype=np.int64)
        self.distances[self.source] = 0
        self.dist_ref = self.space.alloc_array("distances", n)
        self.memmap.register(self.dist_ref, self.distances)
        self.current_distance = 1

    def value_addr(self, ngh: int) -> int:
        return self.dist_ref.addr(ngh)

    def initial_fringe(self):
        return [self.source]

    def s3_update(self, ctx, shard: int, ngh: int, value, p0):
        # The DRM-fetched value may be stale within an iteration; the
        # authoritative check reads the array (hardware: the owner PE is
        # the only writer of its vertices, so its L1 copy is current).
        if self.distances[ngh] < 0:
            self.distances[ngh] = self.current_distance
            yield ("store", self.dist_ref.addr(ngh))
            yield from self.push_touched(ctx, shard, ngh)

    def at_barrier(self, iteration: int) -> None:
        self.current_distance += 1

    def result(self) -> np.ndarray:
        return self.distances

    def s3_extra_ops(self, b, value_node, payload_node):
        # distances[ngh] < 0 ? current_distance : distances[ngh]; the
        # iteration counter is a configuration-time constant and the
        # edge payload is unused (BFS pushes no per-edge value).
        unvisited = b.lt(value_node, b.const(0))
        return b.sel(unvisited, b.const(0), value_node)


def build(graph: CSRGraph, config, mode: str, variant: str = "decoupled",
          source: int = 0):
    """Build a ready-to-run BFS program for ``mode`` on ``config``."""
    from repro.workloads.common import shards_for_mode

    n_stages = 4 if variant == "decoupled" else 2
    workload = BFSWorkload(graph, shards_for_mode(config, mode, n_stages),
                           source=source)
    return workload.build_program(config, mode, variant), workload
