"""Figure 14: breakdown of cycles spent executing each application.

The paper reports CPI stacks (issued / backend-memory stalls / queue
full-empty / reconfiguration / idle) for the serial OOO core (I), the
OOO multicore (D), the static pipeline (S), and Fifer (F), normalized
to the static pipeline. Expected shape (Sec. 8.2):

* the OOO systems are dominated by backend (memory) stalls;
* the static pipeline spends a significant fraction of time stalled on
  full or empty queues;
* Fifer converts most of that into useful work plus a small
  reconfiguration share (largest in SpMM, the control-intensive app).
"""

from bench_common import (ALL_APPS, REPRESENTATIVE, emit, experiment, point,
                          prefetch)
from repro.harness import format_table

_SYSTEMS = (("I", "serial"), ("D", "multicore"),
            ("S", "static"), ("F", "fifer"))
_BUCKETS = ("issued", "stall_mem", "queue", "reconfig", "idle")


def _stack(app, code, system):
    raw = experiment(app, code, system).raw
    return raw.merged_cpi_stack()


def run_fig14():
    prefetch(point(app, REPRESENTATIVE[app], system)
             for app in ALL_APPS for _, system in _SYSTEMS)
    rows = []
    fifer_queue_fraction = {}
    static_queue_fraction = {}
    for app in ALL_APPS:
        code = REPRESENTATIVE[app]
        static_total = sum(_stack(app, code, "static").values())
        for label, system in _SYSTEMS:
            stack = _stack(app, code, system)
            total = sum(stack.values())
            rows.append(
                [app, label, f"{total / static_total:.2f}"]
                + [f"{stack[b] / total:.2f}" for b in _BUCKETS])
            if system == "fifer":
                fifer_queue_fraction[app] = stack["queue"] / total
            if system == "static":
                static_queue_fraction[app] = stack["queue"] / total
    table = format_table(
        ["app", "sys", "norm. cycles"] + list(_BUCKETS), rows,
        title=("Fig. 14: cycle breakdowns (normalized to the static "
               "pipeline; fractions per bucket)"))
    emit("fig14_cycle_breakdown", table)
    return static_queue_fraction, fifer_queue_fraction


def test_fig14_cycle_breakdown(benchmark):
    static_q, fifer_q = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    # The static pipeline stalls on queues more than Fifer does for most
    # apps (the paper's central utilization claim).
    wins = sum(static_q[app] > fifer_q[app] for app in static_q)
    assert wins >= len(static_q) // 2 + 1
