"""Content-addressed cache of compiled artifacts.

The compile path — kernel source → split plan → per-stage DFGs →
fabric mappings — is deterministic and pure, so every product can be
reused once it is keyed by content (:mod:`repro.cache.content`). The
:class:`ArtifactCache` layers two stores:

* an **in-memory** map serving every repeat compile within a process
  (the long-running experiment service compiles each kernel once,
  ever);
* an optional **on-disk** store under ``<root>/artifacts/<code>/``
  serving repeat compiles across processes (CLI invocations,
  benchmark reruns). Entries are namespaced by :func:`code_version`,
  so a source change invalidates everything below it; ``gc()`` prunes
  the stale namespaces.

Artifact kinds:

========== ======================== ======================================
kind       persisted as             payload
========== ======================== ======================================
split_plan memory only              :class:`repro.frontend.StagePlan`
           (holds init closures)    keyed by the kernel fingerprint
describe   JSON                     the CLI compile description (stage
                                    list, queue graph, per-stage asm)
mapping    pickle                   :class:`repro.cgra.mapper.Mapping`
                                    keyed by DFG asm + fabric geometry
codegen    JSON                     generated step-function source
                                    keyed by the stage shape
                                    (:mod:`repro.codegen.emit`)
========== ======================== ======================================

Per-kind hit/miss/store counters make cache behavior assertable: the
differential suite proves a repeat compile performs no split analysis
and no mapping by watching them.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Optional

from repro.cache.content import code_version

#: Kinds persisted to disk and their serialization format.
_DISK_KINDS = {"describe": "json", "mapping": "pickle", "codegen": "json"}
_EXT = {"json": ".json", "pickle": ".pkl"}


class ArtifactCache:
    """Two-layer (memory + optional disk) content-addressed store."""

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else None
        self._memory: dict = {}
        self.counters: dict = {}

    # -- bookkeeping ----------------------------------------------------

    def _count(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1

    def _artifact_dir(self) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / "artifacts" / code_version()[:16]

    def _disk_path(self, kind: str, key: str) -> Optional[Path]:
        fmt = _DISK_KINDS.get(kind)
        base = self._artifact_dir()
        if fmt is None or base is None:
            return None
        return base / kind / key[:2] / f"{key}{_EXT[fmt]}"

    # -- the store ------------------------------------------------------

    def get(self, kind: str, key: str):
        """Return the cached artifact or ``None`` (counted per kind)."""
        value = self._memory.get((kind, key))
        if value is not None:
            self._count(f"{kind}.hit")
            return value
        path = self._disk_path(kind, key)
        if path is not None and path.exists():
            value = self._load(kind, path)
            if value is not None:
                self._memory[(kind, key)] = value
                self._count(f"{kind}.hit")
                self._count(f"{kind}.disk_hit")
                return value
        self._count(f"{kind}.miss")
        return None

    def put(self, kind: str, key: str, value) -> None:
        """Store an artifact in memory and (when applicable) on disk."""
        self._memory[(kind, key)] = value
        self._count(f"{kind}.store")
        path = self._disk_path(kind, key)
        if path is None:
            return
        fmt = _DISK_KINDS[kind]
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                       prefix=".tmp-", suffix=_EXT[fmt])
            try:
                with os.fdopen(fd, "wb") as fh:
                    if fmt == "json":
                        fh.write(json.dumps(value, sort_keys=True)
                                 .encode("utf-8"))
                    else:
                        pickle.dump(value, fh,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError, ValueError):
            # The disk layer is an accelerator, never a correctness
            # dependency; a write failure leaves the memory layer valid.
            self._count(f"{kind}.disk_write_error")

    def _load(self, kind: str, path: Path):
        try:
            data = path.read_bytes()
            if _DISK_KINDS[kind] == "json":
                return json.loads(data.decode("utf-8"))
            return pickle.loads(data)
        except Exception:
            # Corrupt/foreign entry: drop it and treat as a miss.
            self._count(f"{kind}.disk_read_error")
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # -- introspection & maintenance ------------------------------------

    def clear_memory(self) -> None:
        self._memory.clear()

    def stats(self) -> dict:
        """Deterministic summary for ``repro cache stats``."""
        disk = {"entries": 0, "bytes": 0, "stale_versions": 0}
        if self.root is not None:
            artifacts = self.root / "artifacts"
            current = self._artifact_dir()
            if artifacts.is_dir():
                for version_dir in artifacts.iterdir():
                    if not version_dir.is_dir():
                        continue
                    if current is not None and version_dir != current:
                        disk["stale_versions"] += 1
                        continue
                    for path in version_dir.rglob("*"):
                        if path.is_file():
                            disk["entries"] += 1
                            disk["bytes"] += path.stat().st_size
        return {
            "root": str(self.root) if self.root is not None else None,
            "code_version": code_version()[:16],
            "memory_entries": len(self._memory),
            "counters": dict(sorted(self.counters.items())),
            "disk": disk,
        }

    def gc(self, all_versions: bool = False) -> dict:
        """Prune on-disk artifacts.

        Default: remove artifact namespaces of *other* code versions
        (their entries can never hit again from this checkout). With
        ``all_versions=True`` the whole artifact store is removed.
        Returns ``{"removed_dirs": n, "removed_bytes": b}``.
        """
        removed = {"removed_dirs": 0, "removed_bytes": 0}
        if self.root is None:
            return removed
        artifacts = self.root / "artifacts"
        if not artifacts.is_dir():
            return removed
        current = self._artifact_dir()
        for version_dir in sorted(artifacts.iterdir()):
            if not version_dir.is_dir():
                continue
            if not all_versions and version_dir == current:
                continue
            removed["removed_bytes"] += sum(
                p.stat().st_size for p in version_dir.rglob("*")
                if p.is_file())
            shutil.rmtree(version_dir, ignore_errors=True)
            removed["removed_dirs"] += 1
        return removed


# -- the process-global cache ----------------------------------------------

_GLOBAL: Optional[ArtifactCache] = None


def get_artifact_cache() -> ArtifactCache:
    """The process-wide artifact cache.

    Memory-only by default; set ``REPRO_CACHE_DIR`` (or call
    :func:`configure_artifact_cache`) to attach the on-disk layer.
    """
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = ArtifactCache(root=os.environ.get("REPRO_CACHE_DIR")
                                or None)
    return _GLOBAL


def configure_artifact_cache(root) -> ArtifactCache:
    """Point the process-global cache at ``root`` (e.g. server startup).

    Replaces the global instance; in-memory contents of the previous
    instance are dropped (they remain correct but re-warm on demand).
    """
    global _GLOBAL
    _GLOBAL = ArtifactCache(root=root)
    return _GLOBAL
