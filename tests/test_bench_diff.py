"""Benchmark regression observatory: bench-diff severity semantics.

Synthetic manifest pairs pin down exactly what fails a diff (cycle
drift, blame-share drift), what only warns (wall time, shrunk
coverage), and what is merely informational (new runs) — the contract
CI's bench-regression job relies on to gate merges without flaking on
host-speed noise.
"""

import json

import pytest

from repro.profiling import (DEFAULT_BLAME_TOL, DEFAULT_CYCLE_TOL,
                             DEFAULT_WALL_RATIO, bench_diff)
from repro.profiling.history import diff_manifests, manifest_key
from repro.stats.manifest import MANIFEST_SCHEMA_VERSION


def make_manifest(app="bfs", code="Hu", engine="fast", cycles=3712.0,
                  wall=1.0, blame=None):
    """Minimal manifest with the keys bench-diff reads."""
    manifest = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "app": app,
        "input": code,
        "system": "fifer",
        "variant": "decoupled",
        "seed": 1,
        "engine": engine,
        "cycles": cycles,
        "wall_time_s": wall,
    }
    if blame is not None:
        manifest["profile"] = {"blame_rollup": dict(blame)}
    return manifest


def write_dir(tmp_path, name, manifests):
    directory = tmp_path / name
    directory.mkdir()
    for i, manifest in enumerate(manifests):
        (directory / f"m{i}.json").write_text(json.dumps(manifest))
    return directory


BLAME = {"bfs.fetch": 600.0, "(memory)": 300.0, "(idle)": 100.0}


class TestDiffManifests:
    def test_identical_runs_are_clean(self):
        manifest = make_manifest(blame=BLAME)
        assert diff_manifests(manifest, dict(manifest)) == []

    def test_cycle_drift_fails(self):
        base = make_manifest(cycles=1000.0)
        drift = 2 * DEFAULT_CYCLE_TOL
        findings = diff_manifests(base,
                                  make_manifest(cycles=1000.0 * (1 + drift)))
        assert [f.severity for f in findings] == ["fail"]
        assert findings[0].kind == "cycles"
        assert "slower" in findings[0].message

    def test_cycle_speedup_also_fails(self):
        # Faster is still drift: cycles are deterministic, so any move
        # is a behavior change the baseline must be updated to bless.
        base = make_manifest(cycles=1000.0)
        findings = diff_manifests(base, make_manifest(cycles=900.0))
        assert [f.kind for f in findings] == ["cycles"]
        assert "faster" in findings[0].message

    def test_drift_within_tolerance_passes(self):
        base = make_manifest(cycles=1000.0)
        assert diff_manifests(
            base,
            make_manifest(cycles=1000.0 * (1 + DEFAULT_CYCLE_TOL / 2))) == []

    def test_blame_share_drift_fails(self):
        base = make_manifest(blame=BLAME)
        shifted = dict(BLAME)
        # Move well over DEFAULT_BLAME_TOL of total share from the
        # fetch stage onto memory, with total cycles unchanged.
        moved = sum(BLAME.values()) * (2 * DEFAULT_BLAME_TOL)
        shifted["bfs.fetch"] -= moved
        shifted["(memory)"] += moved
        findings = diff_manifests(base, make_manifest(blame=shifted))
        assert {f.severity for f in findings} == {"fail"}
        assert {f.kind for f in findings} == {"blame"}
        assert {"bfs.fetch", "(memory)"} \
            == {f.message.split(":")[0] for f in findings}

    def test_blame_skipped_without_profiles(self):
        # A cycle-identical pair where only one side was profiled must
        # not fail: there is nothing to compare shares against.
        assert diff_manifests(make_manifest(blame=BLAME),
                              make_manifest()) == []

    def test_wall_time_only_warns(self):
        base = make_manifest(wall=1.0)
        findings = diff_manifests(
            base, make_manifest(wall=2 * DEFAULT_WALL_RATIO))
        assert [(f.severity, f.kind) for f in findings] \
            == [("warn", "wall_time")]

    def test_custom_tolerances(self):
        base = make_manifest(cycles=1000.0)
        current = make_manifest(cycles=1100.0)
        assert diff_manifests(base, current, cycle_tol=0.2) == []
        assert len(diff_manifests(base, current, cycle_tol=0.01)) == 1


class TestBenchDiff:
    def test_clean_directories_report_ok(self, tmp_path):
        manifests = [make_manifest(code=code, blame=BLAME)
                     for code in ("Hu", "In")]
        baseline = write_dir(tmp_path, "baseline", manifests)
        current = write_dir(tmp_path, "current", manifests)
        report = bench_diff(baseline, current)
        assert report.ok
        assert report.n_compared == 2
        assert report.findings == []
        assert "2 run(s) compared, 0 failure(s)" in report.render()

    def test_regression_fails_report(self, tmp_path):
        baseline = write_dir(tmp_path, "baseline",
                             [make_manifest(cycles=1000.0)])
        current = write_dir(tmp_path, "current",
                            [make_manifest(cycles=1200.0)])
        report = bench_diff(baseline, current)
        assert not report.ok
        assert "REGRESSIONS DETECTED" in report.render()
        assert report.as_dict()["findings"][0]["kind"] == "cycles"

    def test_missing_run_warns(self, tmp_path):
        baseline = write_dir(tmp_path, "baseline",
                             [make_manifest(code="Hu"),
                              make_manifest(code="In")])
        current = write_dir(tmp_path, "current", [make_manifest(code="Hu")])
        report = bench_diff(baseline, current)
        assert report.ok, "shrunk coverage must warn, not fail"
        assert [(f.severity, f.kind) for f in report.findings] \
            == [("warn", "missing")]
        assert report.n_compared == 1

    def test_new_run_is_informational(self, tmp_path):
        baseline = write_dir(tmp_path, "baseline", [make_manifest()])
        current = write_dir(tmp_path, "current",
                            [make_manifest(), make_manifest(engine="naive")])
        report = bench_diff(baseline, current)
        assert report.ok
        assert [(f.severity, f.kind) for f in report.findings] \
            == [("info", "new")]

    def test_empty_baseline_raises(self, tmp_path):
        baseline = write_dir(tmp_path, "baseline", [])
        current = write_dir(tmp_path, "current", [make_manifest()])
        with pytest.raises(ValueError, match="no baseline manifests"):
            bench_diff(baseline, current)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            bench_diff(tmp_path / "nope", tmp_path / "nope")


class TestCommittedBaselines:
    """The committed history manifests must stay self-consistent."""

    def test_history_diffs_clean_against_itself(self, tmp_path):
        from pathlib import Path
        history = Path(__file__).resolve().parent.parent \
            / "benchmarks" / "results" / "history"
        report = bench_diff(history, history)
        assert report.ok
        assert report.findings == []
        assert report.n_compared == 18   # 6 apps x 3 engines

    def test_history_covers_all_engines_with_profiles(self):
        from pathlib import Path
        from repro.stats.manifest import load_manifests
        history = Path(__file__).resolve().parent.parent \
            / "benchmarks" / "results" / "history"
        manifests = load_manifests(history)
        keys = {manifest_key(m) for m in manifests}
        assert len(keys) == len(manifests)
        engines = {m["engine"] for m in manifests}
        assert engines == {"fast", "naive", "event"}
        for manifest in manifests:
            assert manifest["profile"]["blame_rollup"], \
                f"{manifest['app']}: baseline was not profiled"
