"""Section 8.3 ablation: idealized zero-cost reconfiguration.

The paper evaluates a system that perfectly overlaps loading a new
configuration with completing the previous one (zero-cost
reconfiguration) and finds it improves performance by just ~10% gmean
(up to 1.8x on SpMM's Gr input) — concluding it is a poor tradeoff for
its hardware complexity.
"""

from bench_common import (ALL_APPS, REPRESENTATIVE, emit, experiment, point,
                          prefetch)
from repro.harness import format_table, gmean


def run_zero_cost():
    rows = []
    gains = []
    cases = [(app, REPRESENTATIVE[app]) for app in ALL_APPS]
    if "spmm" in ALL_APPS:
        cases.append(("spmm", "Gr"))  # the paper's extreme case
    prefetch(point(app, code, "fifer", zero_cost=zero_cost)
             for app, code in cases for zero_cost in (False, True))
    for app, code in cases:
        base = experiment(app, code, "fifer").cycles
        ideal = experiment(app, code, "fifer", zero_cost=True).cycles
        gain = base / ideal
        rows.append([f"{app}/{code}", f"{gain:.3f}x"])
        gains.append(gain)
    rows.append(["gmean", f"{gmean(gains):.3f}x"])
    table = format_table(
        ["app/input", "speedup from zero-cost reconfig"], rows,
        title=("Sec. 8.3: idealized zero-cost reconfiguration vs Fifer "
               "(paper: ~10% gmean, up to 1.8x on SpMM/Gr)"))
    emit("zero_cost_reconfig", table)
    return gains


def test_zero_cost_reconfig(benchmark):
    gains = benchmark.pedantic(run_zero_cost, rounds=1, iterations=1)
    mean_gain = gmean(gains)
    # Zero-cost reconfiguration helps, but only modestly.
    assert 1.0 <= mean_gain < 1.8
