#!/usr/bin/env python3
"""Graph analytics across all four evaluated systems (a mini Fig. 13).

Runs BFS, connected components, PageRank-Delta, and radii estimation on
a synthetic internet-topology graph, on all four systems the paper
evaluates (serial OOO core, 4-core OOO, static 16-PE pipeline, 16-PE
Fifer), verifying every result against the golden references and
printing speedups normalized to the multicore.

Run:  python examples/graph_analytics.py
"""

from repro.harness import (format_table, prepare_input, run_experiment,
                           speedup_table)
from repro.harness.run import SYSTEMS


def main():
    rows = []
    for app in ("bfs", "cc", "prd", "radii"):
        prepared = prepare_input(app, "In", scale=0.3)
        results = {system: run_experiment(app, "In", system,
                                          prepared=prepared)
                   for system in SYSTEMS}
        speedups = speedup_table(results)
        rows.append([app] + [f"{speedups[s]:.2f}x" for s in SYSTEMS])
        fifer = results["fifer"].raw
        print(f"{app}: verified on all systems; Fifer residence "
              f"{fifer.avg_residence_cycles:.0f} cyc, reconfig "
              f"{fifer.avg_reconfig_cycles:.1f} cyc")
    print()
    print(format_table(
        ["app"] + list(SYSTEMS), rows,
        title="Speedup over the 4-core OOO multicore (graph 'In', "
              "as-Skitter-like)"))


if __name__ == "__main__":
    main()
