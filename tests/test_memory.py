"""Unit tests for the memory substrate: address space, caches, memmap."""

import numpy as np
import pytest

from repro.config import CacheConfig, MemoryConfig
from repro.memory import AddressSpace, Cache, MainMemory, build_hierarchy
from repro.memory.address import AllocationError
from repro.memory.memmap import MemoryMap, MemoryMapError


class TestAddressSpace:
    def test_regions_do_not_overlap(self):
        space = AddressSpace()
        a = space.alloc("a", 100)
        b = space.alloc("b", 100)
        assert a.end <= b.base

    def test_line_alignment(self):
        space = AddressSpace(align=64)
        a = space.alloc("a", 1)
        b = space.alloc("b", 1)
        assert a.base % 64 == 0
        assert b.base % 64 == 0
        assert b.base - a.base >= 64

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("a", 8)
        with pytest.raises(AllocationError):
            space.alloc("a", 8)

    def test_bad_sizes_rejected(self):
        space = AddressSpace()
        with pytest.raises(AllocationError):
            space.alloc("zero", 0)
        with pytest.raises(AllocationError):
            space.alloc("neg", -8)

    def test_array_ref_addresses(self):
        space = AddressSpace()
        ref = space.alloc_array("arr", 10, elem_bytes=8)
        assert ref.addr(3) == ref.base + 24
        with pytest.raises(IndexError):
            ref.addr(10)
        with pytest.raises(IndexError):
            ref.addr(-1)

    def test_non_power_of_two_alignment_rejected(self):
        with pytest.raises(AllocationError):
            AddressSpace(align=48)


class TestCache:
    def _cache(self, size=1024, ways=2, latency=4):
        memory = MainMemory(MemoryConfig(latency=120))
        memory.begin_quantum(10 ** 9)
        return Cache("t", CacheConfig(size, ways, latency), memory), memory

    def test_hit_after_miss(self):
        cache, _ = self._cache()
        assert cache.access(0x1000) > 4
        assert cache.access(0x1000) == 4.0
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_hits(self):
        cache, _ = self._cache()
        cache.access(0x1000)
        assert cache.access(0x103F) == 4.0  # same 64-byte line

    def test_lru_eviction(self):
        cache, _ = self._cache(size=256, ways=2)  # 2 sets, 2 ways
        n_sets = 2
        line = 64
        stride = n_sets * line  # same set
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)   # evicts line 0
        assert not cache.contains(0)
        assert cache.contains(stride)
        # Touching the survivor keeps it MRU; next insert evicts the other.
        cache.access(stride)
        cache.access(3 * stride)
        assert cache.contains(stride)
        assert not cache.contains(2 * stride)

    def test_dirty_eviction_writes_back(self):
        cache, memory = self._cache(size=256, ways=2)
        stride = 2 * 64
        cache.access(0, write=True)
        cache.access(stride)
        cache.access(2 * stride)  # evicts dirty line 0
        assert cache.dirty_evictions == 1
        assert memory.writes == 1

    def test_touch_range_covers_all_lines(self):
        cache, _ = self._cache()
        cache.touch_range(0x1000, 200)
        assert cache.misses == 4  # 200 bytes starting line-aligned

    def test_flush_writes_dirty_lines(self):
        cache, memory = self._cache()
        cache.access(0x40, write=True)
        cache.access(0x80)
        cache.flush()
        assert memory.writes == 1
        assert not cache.contains(0x40)

    def test_bad_geometry_rejected(self):
        memory = MainMemory(MemoryConfig())
        with pytest.raises(ValueError):
            Cache("bad", CacheConfig(192, 1, 1), memory)  # 3 sets


class TestMainMemoryBandwidth:
    def test_penalty_beyond_budget(self):
        memory = MainMemory(MemoryConfig(latency=100,
                                         bandwidth_bytes_per_cycle=64.0))
        memory.begin_quantum(1)  # budget: 64 bytes
        assert memory.access(0) == 100.0
        assert memory.access(64) > 100.0  # over budget

    def test_budget_resets_each_quantum(self):
        memory = MainMemory(MemoryConfig(latency=100,
                                         bandwidth_bytes_per_cycle=64.0))
        memory.begin_quantum(1)
        memory.access(0)
        memory.begin_quantum(1)
        assert memory.access(64) == 100.0


class TestHierarchy:
    def test_llc_shared_between_l1s(self):
        l1s, llc, memory = build_hierarchy(
            CacheConfig(1024, 2, 4), CacheConfig(8192, 4, 40),
            MemoryConfig(), 2)
        memory.begin_quantum(10 ** 9)
        l1s[0].access(0x5000)          # misses everywhere
        latency = l1s[1].access(0x5000)  # misses L1, hits shared LLC
        assert latency == 4 + 40
        assert memory.reads == 1


class TestMemoryMap:
    def test_read_write_roundtrip(self):
        space = AddressSpace()
        memmap = MemoryMap()
        array = np.arange(10, dtype=np.int64)
        ref = space.alloc_array("a", 10)
        memmap.register(ref, array)
        assert memmap.read(ref.addr(4)) == 4
        memmap.write(ref.addr(4), 99)
        assert array[4] == 99

    def test_unmapped_address_raises(self):
        memmap = MemoryMap()
        with pytest.raises(MemoryMapError):
            memmap.read(0x1234)

    def test_multiple_regions_resolve(self):
        space = AddressSpace()
        memmap = MemoryMap()
        a = space.alloc_array("a", 4)
        b = space.alloc_array("b", 4)
        memmap.register(a, np.full(4, 1, dtype=np.int64))
        memmap.register(b, np.full(4, 2, dtype=np.int64))
        assert memmap.read(a.addr(0)) == 1
        assert memmap.read(b.addr(3)) == 2

    def test_elem_bytes_at(self):
        space = AddressSpace()
        memmap = MemoryMap()
        ref = space.alloc_array("a", 4, elem_bytes=4)
        memmap.register(ref, np.zeros(4, dtype=np.int32))
        assert memmap.elem_bytes_at(ref.addr(1)) == 4
