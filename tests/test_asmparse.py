"""Tests for the pseudo-assembly frontend (paper Fig. 5/6)."""

import pytest

from repro.cgra import FabricSpec, map_dfg
from repro.config import FabricConfig
from repro.ir import AsmParseError, DFGBuilder, OpKind, parse_stage_asm

FIG6 = """
; enumerate neighbors (paper Fig. 6)
deq   %e,    $q_start
deq   %end,  $q_end
mov   %base, 0x1000
lea   %addr, %base, %e
ld    %ngh,  %addr
enq   $q_ngh, %ngh
addi  %nxt,  %e, 1
blt   %nxt,  %end
"""


class TestParser:
    def test_fig6_parses(self):
        dfg = parse_stage_asm("enumerate", FIG6)
        assert dfg.input_queues() == ["q_start", "q_end"]
        assert dfg.output_queues() == ["q_ngh"]
        kinds = {node.kind for node in dfg.nodes}
        assert {OpKind.DEQ, OpKind.LEA, OpKind.LD, OpKind.ENQ,
                OpKind.ADD, OpKind.CMP_LT} <= kinds

    def test_parsed_matches_builder_equivalent(self):
        parsed = parse_stage_asm("enumerate", FIG6)
        b = DFGBuilder("enumerate")
        e = b.deq("q_start")
        end = b.deq("q_end")
        base = b.const(0x1000)
        addr = b.lea(base, e)
        ngh = b.load(addr)
        b.enq("q_ngh", ngh)
        one = b.const(1)
        nxt = b.add(e, one)
        b.lt(nxt, end)
        built = b.finish()
        fabric = FabricSpec.from_config(FabricConfig())
        mp, mb = map_dfg(parsed, fabric), map_dfg(built, fabric)
        assert (mp.n_levels, mp.lane_width, mp.replication) == (
            mb.n_levels, mb.lane_width, mb.replication)

    def test_registers_and_setreg(self):
        dfg = parse_stage_asm("acc", """
            deq %x, $in
            reg %acc
            fadd %sum, %acc, %x
            setreg %acc, %sum
            enq $out, %sum
        """)
        regs = [n for n in dfg.nodes if n.kind is OpKind.REG]
        assert len(regs) == 1
        assert len(regs[0].operands) == 1  # back-edge connected

    def test_stores_and_sel(self):
        dfg = parse_stage_asm("upd", """
            deq %v, $in
            sel %m, %v, %v, %v
            st  %m, %v
        """)
        assert dfg.n_memory_ops == 1

    def test_comments_and_blank_lines(self):
        dfg = parse_stage_asm("c", """

            # a comment
            deq %x, $in   ; trailing comment
            enq $out, %x
        """)
        assert len(dfg.nodes) == 2

    def test_hex_and_decimal_immediates(self):
        dfg = parse_stage_asm("imm", """
            deq %x, $in
            addi %a, %x, 0x10
            addi %b, %x, 16
            enq $out, %a
            enq $out, %b
        """)
        consts = [n for n in dfg.nodes if n.kind is OpKind.CONST]
        assert {n.op.attr for n in consts} == {16}

    def test_undefined_value_rejected(self):
        with pytest.raises(AsmParseError, match="undefined value"):
            parse_stage_asm("bad", "enq $out, %nope")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AsmParseError, match="unknown mnemonic"):
            parse_stage_asm("bad", "frobnicate %x, %y")

    def test_wrong_arity_rejected(self):
        with pytest.raises(AsmParseError, match="takes 2 operands"):
            parse_stage_asm("bad", "deq %x, $a, $b")

    def test_bad_queue_token_rejected(self):
        with pytest.raises(AsmParseError, match="expected .queue"):
            parse_stage_asm("bad", "deq %x, notaqueue")

    def test_bad_destination_rejected(self):
        with pytest.raises(AsmParseError, match="destination"):
            parse_stage_asm("bad", "deq 5, $q")

    def test_setreg_without_reg_rejected(self):
        with pytest.raises(AsmParseError, match="undeclared register"):
            parse_stage_asm("bad", """
                deq %x, $in
                setreg %r, %x
            """)

    def test_error_reports_line_number(self):
        with pytest.raises(AsmParseError, match=":3:"):
            parse_stage_asm("bad", "deq %x, $in\nenq $o, %x\nbogus %y")
