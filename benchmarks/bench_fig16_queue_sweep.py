"""Figure 16: sensitivity to queue size and double-buffered cells.

The paper sweeps the per-PE queue memory from 1/4x to 4x of the default
16 KB, with and without double-buffered configuration cells. Expected
shape (Sec. 8.3):

* BFS (and CC/PRD/Radii) lose performance with small queues —
  insufficient decoupling;
* SpMM is flat across queue sizes but loses ~a quarter of its
  performance without double-buffering (control-intensive: it
  reconfigures constantly);
* larger queues make reconfigurations less frequent, so slow
  reconfigurations matter less at large sizes.
"""

from bench_common import (ALL_APPS, REPRESENTATIVE, emit, experiment, point,
                          prefetch)
from repro.harness import format_table

QUEUE_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


def run_fig16():
    prefetch([point(app, REPRESENTATIVE[app], "fifer")
              for app in ALL_APPS]
             + [point(app, REPRESENTATIVE[app], "fifer", queue_scale=scale,
                      double_buffered=double_buffered)
                for app in ALL_APPS
                for double_buffered in (True, False)
                for scale in QUEUE_SCALES])
    rows = []
    shapes = {}
    for app in ALL_APPS:
        code = REPRESENTATIVE[app]
        base = experiment(app, code, "fifer").cycles
        for double_buffered in (True, False):
            speedups = []
            for scale in QUEUE_SCALES:
                cycles = experiment(app, code, "fifer", queue_scale=scale,
                                    double_buffered=double_buffered).cycles
                speedups.append(base / cycles)
            label = "double-buf" if double_buffered else "single-buf"
            rows.append([app, label]
                        + [f"{s:.2f}" for s in speedups])
            shapes[(app, double_buffered)] = speedups
    table = format_table(
        ["app", "config"] + [f"{s:g}x" for s in QUEUE_SCALES], rows,
        title=("Fig. 16: Fifer speedup vs queue-memory scaling "
               "(1x = app default), relative to the default "
               "double-buffered configuration"))
    emit("fig16_queue_sweep", table)
    return shapes


def test_fig16_queue_sweep(benchmark):
    shapes = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    # BFS suffers with 1/4x queues (insufficient decoupling).
    assert shapes[("bfs", True)][0] < 0.95
    # Removing double-buffering never helps (same or slower at default).
    assert shapes[("spmm", False)][2] <= shapes[("spmm", True)][2] + 1e-9
