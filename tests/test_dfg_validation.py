"""Hardened structural validation of stage dataflow graphs.

Locks down the checks the front-end's lowering pass relies on: strict
``validate`` rejects dangling nodes, ``set_reg_input`` rejects
multiply-driven registers, and :func:`repro.ir.dfg.check_queue_wiring`
rejects ENQ/DEQ queue-name mismatches — each with an error naming the
offending node and stage. Finally, every stage DFG of every workload
(hand-written and generated, decoupled and merged) must pass the strict
checks.
"""

import pytest

from repro.frontend import FRONTEND_KERNELS, get_frontend
from repro.frontend.lower import _demo_graph
from repro.ir import DFGBuilder
from repro.ir.dfg import DFGError, check_queue_wiring
from repro.workloads.bfs import BFSWorkload
from repro.workloads.cc import CCWorkload
from repro.workloads.prdelta import PRDeltaWorkload
from repro.workloads.radii import RadiiWorkload


# -- strict validate: dangling nodes ---------------------------------------

def _dangling_graph():
    b = DFGBuilder("stage.x")
    v = b.deq("in")
    one = b.const(1)
    b.add(v, one)             # result never consumed
    b.enq("out", v)
    return b


def test_strict_validate_rejects_dangling_node():
    with pytest.raises(DFGError, match="dangling node") as exc:
        _dangling_graph().finish(strict=True)
    message = str(exc.value)
    assert "stage.x" in message       # names the stage
    assert "add" in message           # names the node


def test_default_validate_allows_dangling_node():
    dfg = _dangling_graph().finish()
    assert dfg.n_compute_ops == 2


def test_strict_validate_allows_sink_kinds():
    # Comparisons, CTRL, stores, and written-only registers are
    # legitimate sinks even under strict validation.
    b = DFGBuilder("stage.sinks")
    v = b.deq("in")
    b.lt(v, b.const(0))
    b.ctrl(v)
    b.store(b.lea(b.const(0x100), v), v)
    reg = b.reg("carry")
    b.set_reg(reg, v)
    b.finish(strict=True)


def test_validate_rejects_empty_graph():
    with pytest.raises(DFGError, match="empty"):
        DFGBuilder("stage.empty").finish()


# -- multiply-driven registers ---------------------------------------------

def test_multiply_driven_register_rejected():
    b = DFGBuilder("stage.reg")
    reg = b.reg("count")
    one = b.const(1)
    nxt = b.add(reg, one)
    b.set_reg(reg, nxt)
    with pytest.raises(DFGError, match="multiply driven") as exc:
        b.set_reg(reg, one)
    message = str(exc.value)
    assert "stage.reg" in message
    assert "count" in message


def test_set_reg_input_rejects_non_reg():
    b = DFGBuilder("stage.reg2")
    one = b.const(1)
    two = b.const(2)
    with pytest.raises(DFGError, match="not a REG node"):
        b.set_reg(one, two)


# -- queue wiring ----------------------------------------------------------

def _stage(name, in_queue, out_queue):
    b = DFGBuilder(name)
    v = b.deq(in_queue)
    b.enq(out_queue, v)
    return b.finish()


def test_wiring_rejects_undeclared_enq():
    stage = _stage("stage.a", "in", "typo_out")
    with pytest.raises(DFGError, match="undeclared queue") as exc:
        check_queue_wiring([stage], declared={"in"}, external={"in"})
    message = str(exc.value)
    assert "stage.a" in message
    assert "typo_out" in message


def test_wiring_rejects_undeclared_deq():
    stage = _stage("stage.b", "typo_in", "out")
    with pytest.raises(DFGError, match="undeclared queue") as exc:
        check_queue_wiring([stage], declared={"out"}, external={"out"})
    assert "typo_in" in str(exc.value)


def test_wiring_rejects_queue_nobody_produces():
    stage = _stage("stage.c", "orphan", "out")
    with pytest.raises(DFGError,
                       match="which no stage or DRM produces") as exc:
        check_queue_wiring([stage], declared={"orphan", "out"},
                           external={"out"})
    message = str(exc.value)
    assert "stage.c" in message
    assert "orphan" in message


def test_wiring_rejects_queue_nobody_consumes():
    stage = _stage("stage.d", "in", "dead_end")
    with pytest.raises(DFGError,
                       match="which no stage or DRM consumes") as exc:
        check_queue_wiring([stage], declared={"in", "dead_end"},
                           external={"in"})
    assert "dead_end" in str(exc.value)


def test_wiring_accepts_drm_and_external_endpoints():
    stage = _stage("stage.e", "from_drm", "to_drm")
    check_queue_wiring([stage], declared={"from_drm", "to_drm"},
                       drm_consumed={"to_drm"}, drm_produced={"from_drm"})
    chain = [_stage("stage.f", "iter", "hop"),
             _stage("stage.g", "hop", "barrier")]
    check_queue_wiring(chain, declared={"iter", "hop", "barrier"},
                       external={"iter", "barrier"})


# -- every workload stage passes strict validation -------------------------

_WORKLOADS = {
    "bfs": lambda g: BFSWorkload(g, 2),
    "cc": lambda g: CCWorkload(g, 2),
    "prd": lambda g: PRDeltaWorkload(g, 2),
    "radii": lambda g: RadiiWorkload(g, 2),
    "sssp": lambda g: get_frontend("sssp").workload(g, 2),
}


@pytest.mark.parametrize("name", sorted(_WORKLOADS))
def test_all_stage_dfgs_strictly_valid(name):
    workload = _WORKLOADS[name](_demo_graph())
    for builder in ("_s0_dfg", "_s1_dfg", "_s2_dfg", "_s3_dfg",
                    "_merged_dfg"):
        for shard in range(2):
            dfg = getattr(workload, builder)(shard)
            dfg.validate(strict=True)


@pytest.mark.parametrize("name", sorted(FRONTEND_KERNELS))
def test_generated_programs_pass_wiring_check(name):
    # FrontendWorkload.build_program runs check_queue_wiring itself;
    # building for both variants exercises it on real programs.
    from repro.config import SystemConfig
    pipeline = get_frontend(name)
    for variant in ("decoupled", "merged"):
        program, _ = pipeline.build(_demo_graph(), SystemConfig(), "fifer",
                                    variant)
        assert program.pe_programs
