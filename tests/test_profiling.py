"""Wait-for profiler invariants: reconciliation, paths, what-ifs.

Three properties anchor the profiler's trustworthiness and are pinned
here on every paper workload (plus SSSP) at reduced scale, on both
simulation engines:

* **reconciliation** — every row of the blame matrix sums to the run's
  total cycles exactly (the matrix is a refinement of the Fig. 14 CPI
  stack, never a second opinion on it);
* **engine independence** — the fast and naive engines produce
  byte-identical blame matrices, so coalesced stall events carry the
  same information as per-cycle ones;
* **conservation on the critical path** — the extracted path's segments
  partition ``[0, cycles]``, so its total weight equals the cycle
  count.

On top of those, the Coz-style what-if estimator is validated causally:
its predictions must land within 15% of an actual re-simulation with
the hypothesized config, and profiling itself must never perturb the
simulation (bit-identical cycle counts with the profiler on and off).
"""

import pickle

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.core.system import ENGINES, SimulationTimeout
from repro.harness.run import default_scale, prepare_input, run_experiment
from repro.profiling import (RunProfile, attach_profiler, parse_whatif,
                             predict_speedup, validate_prediction)
from repro.profiling.whatif import apply_whatif_config
from repro.workloads import bfs

#: Every paper workload's Fig. 13/14 representative input, plus SSSP.
WORKLOADS = (("bfs", "In"), ("cc", "Hu"), ("prd", "Ci"), ("radii", "Dy"),
             ("spmm", "FS"), ("silo", "YC"), ("sssp", "Hu"))

#: Fraction of each input's default scale: small enough for the naive
#: engine in tier-1 time, large enough that every stage activates.
SCALE_MULT = 0.1

_EPS = 1e-6

_cache: dict = {}


def _profiled(app, code, engine):
    """One profiled fifer run per (app, input, engine), cached."""
    key = (app, code, engine)
    if key not in _cache:
        _cache[key] = run_experiment(
            app, code, "fifer", engine=engine, profile=True,
            scale=default_scale(app, code) * SCALE_MULT)
    return _cache[key]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("app,code", WORKLOADS)
class TestReconciliation:
    def test_rows_sum_to_total_cycles(self, app, code, engine):
        result = _profiled(app, code, engine)
        blame = result.profile.blame
        assert blame.rows, "profiled run produced an empty blame matrix"
        for waiter in blame.rows:
            assert blame.row_total(waiter) == pytest.approx(
                result.cycles, abs=_EPS)

    def test_no_unresolved_blame(self, app, code, engine):
        # The profiler is armed from cycle 0, so every queue-stall
        # cycle must resolve to a concrete component.
        result = _profiled(app, code, engine)
        assert "(unresolved)" not in result.profile.blame.waitee_totals()

    def test_critical_path_weight_equals_cycles(self, app, code, engine):
        result = _profiled(app, code, engine)
        path = result.profile.critical_path()
        assert path.total_weight() == pytest.approx(result.cycles,
                                                    abs=1e-3)
        assert path.segments, "critical path has no segments"


@pytest.mark.parametrize("app,code", WORKLOADS)
class TestEngineIndependence:
    def test_blame_matrices_identical(self, app, code):
        fast = _profiled(app, code, "fast")
        naive = _profiled(app, code, "naive")
        assert fast.cycles == naive.cycles
        assert fast.profile.blame.as_dict() == naive.profile.blame.as_dict()

    def test_critical_paths_identical(self, app, code):
        fast = _profiled(app, code, "fast").profile.critical_path()
        naive = _profiled(app, code, "naive").profile.critical_path()
        assert fast.attributed() == naive.attributed()


class TestProfileSideEffects:
    """Arming the profiler must not change the simulation."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_profiled_run_bit_identical(self, engine):
        plain = run_experiment("bfs", "Hu", "fifer", engine=engine,
                               scale=0.1)
        profiled = _profiled_bfs_hu(engine)
        assert profiled.cycles == plain.cycles
        assert (profiled.raw.merged_cpi_stack()
                == plain.raw.merged_cpi_stack())

    def test_run_profile_pickles(self):
        # Sweep workers ship RunProfiles across the process pool.
        profile = _profiled_bfs_hu("fast").profile
        clone = pickle.loads(pickle.dumps(profile))
        assert isinstance(clone, RunProfile)
        assert clone.blame.as_dict() == profile.blame.as_dict()
        assert clone.critical_path().attributed() \
            == profile.critical_path().attributed()


def _profiled_bfs_hu(engine="fast"):
    key = ("bfs-hu-0.1", engine)
    if key not in _cache:
        _cache[key] = run_experiment("bfs", "Hu", "fifer", engine=engine,
                                     profile=True, scale=0.1)
    return _cache[key]


class TestWhatIf:
    """Causal validation: predictions vs actual re-simulation."""

    #: (TARGET=PERCENT, acceptance bound). The ISSUE requires three
    #: scenarios within 15%; the bounds here pin the currently observed
    #: headroom so accuracy regressions surface early.
    SCENARIOS = (("reconfig=100", 0.15),
                 ("bfs.update=100", 0.15),
                 ("memory=50", 0.15))

    @pytest.mark.parametrize("spec,bound",
                             SCENARIOS, ids=[s for s, _ in SCENARIOS])
    def test_prediction_within_bound(self, spec, bound):
        result = _profiled_bfs_hu()
        target, percent = parse_whatif(spec)
        prediction = predict_speedup(result.profile, target, percent)
        assert 0.0 < prediction.predicted_cycles <= result.cycles
        validate_prediction(prediction, "bfs", "Hu", "fifer",
                            scale=0.1, engine="fast")
        assert prediction.error == prediction.error, "validation not run"
        assert prediction.error <= bound, (
            f"{spec}: predicted {prediction.predicted_cycles:.0f} vs "
            f"actual {prediction.actual_cycles:.0f} cycles "
            f"({prediction.error:.1%} off, bound {bound:.0%})")

    def test_parse_whatif_rejects_malformed(self):
        for bad in ("fetch", "=50", "fetch=", "fetch=abc", "fetch=0",
                    "fetch=-10"):
            with pytest.raises(ValueError):
                parse_whatif(bad)

    def test_reconfig_whatif_only_supports_total(self):
        with pytest.raises(ValueError, match="percent=100"):
            apply_whatif_config(SystemConfig(), "reconfig", 50)


class TestStageSpeedup:
    def test_rejects_malformed_entries(self):
        for bad in ((("bfs.update",),),          # missing factor
                    (("bfs.update", 0.0),),      # factor must be > 0
                    (("bfs.update", -2.0),),
                    ((3, 1.5),)):                # name must be a string
            with pytest.raises(ValueError):
                SystemConfig(stage_speedup=bad)

    def test_factor_one_is_bit_identical(self):
        plain = run_experiment("bfs", "Hu", "fifer", scale=0.1)
        noop = run_experiment(
            "bfs", "Hu", "fifer", scale=0.1,
            config=SystemConfig(stage_speedup=(("bfs.update", 1.0),)))
        assert noop.cycles == plain.cycles
        assert noop.raw.merged_cpi_stack() == plain.raw.merged_cpi_stack()

    def test_speedup_reduces_cycles(self):
        # bfs.drm_ngh is the bottleneck access stream on this input
        # (the blame rollup ranks it first), so doubling its rate must
        # shorten the run; a non-bottleneck stage would round away at
        # quantum granularity.
        plain = _profiled_bfs_hu()
        faster = run_experiment(
            "bfs", "Hu", "fifer", scale=0.1,
            config=apply_whatif_config(SystemConfig(), "bfs.drm_ngh", 100))
        assert faster.cycles < plain.cycles


class TestTruncatedRuns:
    """finalize() must reconcile even when the run dies mid-flight."""

    def _truncated_profiler(self):
        config = SystemConfig()
        prepared = prepare_input("bfs", "Hu", scale=0.1)
        program, _ = bfs.build(prepared.data, config, "fifer")
        system = System(config, program, mode="fifer")
        profiler = attach_profiler(system)
        with pytest.raises(SimulationTimeout):
            system.run(max_cycles=512)
        return system, profiler

    def test_timeout_finalize_reconciles(self):
        system, profiler = self._truncated_profiler()
        profile = profiler.finalize(
            [pe.counters for pe in system.pes], system.cycle)
        for waiter in profile.blame.rows:
            assert profile.blame.row_total(waiter) == pytest.approx(
                system.cycle, abs=_EPS)

    def test_timeout_spans_clamped(self):
        system, profiler = self._truncated_profiler()
        profile = profiler.finalize(
            [pe.counters for pe in system.pes], system.cycle)
        for spans in profiler.stage_spans.values():
            for start, end, _stage in spans:
                assert end is not None
                assert start < end <= system.cycle + _EPS
        assert profile.critical_path().total_weight() == pytest.approx(
            system.cycle, abs=1e-3)
