"""Functional memory view: address -> value over registered numpy arrays.

Decoupled reference machines perform loads on a stage's behalf (paper
Sec. 5.4); they receive raw addresses, so they need a way to resolve an
address to the value stored there. ``MemoryMap`` binds each allocated
region's :class:`~repro.memory.address.ArrayRef` to its backing numpy
array and resolves reads/writes by bisecting the sorted region bases.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.memory.address import ArrayRef


class MemoryMapError(Exception):
    """Address does not fall in any registered region."""


class MemoryMap:
    """Address-to-value resolution over registered arrays."""

    def __init__(self):
        self._bases: list[int] = []
        self._entries: list[tuple[ArrayRef, Any]] = []

    def register(self, ref: ArrayRef, array) -> None:
        """Bind ``array`` (numpy or any indexable) to region ``ref``."""
        index = bisect.bisect_left(self._bases, ref.base)
        if index < len(self._bases) and self._bases[index] == ref.base:
            raise MemoryMapError(f"region at {ref.base:#x} already registered")
        self._bases.insert(index, ref.base)
        self._entries.insert(index, (ref, array))

    def _resolve(self, addr: int) -> tuple[ArrayRef, Any, int]:
        index = bisect.bisect_right(self._bases, addr) - 1
        if index >= 0:
            ref, array = self._entries[index]
            offset = addr - ref.base
            if offset < ref.region.size:
                return ref, array, offset // ref.elem_bytes
        raise MemoryMapError(f"address {addr:#x} is unmapped")

    def read(self, addr: int):
        ref, array, elem = self._resolve(addr)
        return array[elem]

    def write(self, addr: int, value) -> None:
        ref, array, elem = self._resolve(addr)
        array[elem] = value

    def elem_bytes_at(self, addr: int) -> int:
        ref, _, _ = self._resolve(addr)
        return ref.elem_bytes
