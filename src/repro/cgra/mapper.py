"""Place a stage's dataflow graph onto the CGRA fabric.

The mapper levelizes the DFG (ASAP), folds levels onto fabric rows when
the graph is deeper than the fabric, packs each level's operations into
columns, and then replicates the resulting datapath across unused
columns to exploit SIMD-style data parallelism (paper Sec. 5.6:
"a 16x5 grid of functional units can be configured as four copies of a
datapath that fit on a smaller 4x5 grid").

The outputs — placement, pipeline depth, replication factor, and
configuration size — are exactly what the cycle-level simulator consumes
(paper Sec. 7.1: "it simulates executing stages using mapping
information produced by CGRA-ME").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cgra.fabric import FabricSpec
from repro.ir.dfg import DataflowGraph, Node
from repro.ir.ops import OP_INFO


class UnmappableStageError(Exception):
    """The DFG does not fit on the fabric; split the stage (paper Sec. 4)."""


@dataclass(frozen=True)
class Mapping:
    """Mapping information for one stage configuration."""

    stage_name: str
    placement: dict[int, tuple[int, int]]  # node_id -> (row, col) in lane 0
    n_levels: int
    lane_width: int
    replication: int
    depth_cycles: int
    config_bytes: int
    n_compute_ops: int
    n_fma_ops: int
    fabric: FabricSpec = field(repr=False, default=None)

    @property
    def fabric_utilization(self) -> float:
        """Fraction of functional units active across all lanes."""
        return (self.n_compute_ops * self.replication /
                self.fabric.n_functional_units)

    def render(self, dfg=None) -> str:
        """ASCII picture of the fabric grid with this configuration.

        Lane 0's placement is drawn with op mnemonics; replicated lanes
        are shown as ``rep``; unused cells as ``.``. Pass the original
        ``dfg`` to label cells with op kinds rather than node ids.
        """
        labels = {}
        if dfg is not None:
            labels = {node.node_id: node.kind.value[:3]
                      for node in dfg.nodes}
        grid = [["." for _ in range(self.fabric.cols)]
                for _ in range(self.fabric.rows)]
        for node_id, (row, col) in self.placement.items():
            text = labels.get(node_id, f"n{node_id}")[:3]
            for lane in range(self.replication):
                lane_col = col + lane * self.lane_width
                if lane_col < self.fabric.cols:
                    grid[row][lane_col] = text if lane == 0 else "rep"
        header = (f"{self.stage_name}: {self.n_levels} levels x "
                  f"{self.lane_width} cols, {self.replication}x SIMD, "
                  f"depth {self.depth_cycles} cycles, "
                  f"{self.config_bytes} B config")
        rows = [" ".join(f"{cell:>3}" for cell in row) for row in grid]
        return "\n".join([header] + rows)


def fold_levels(levels: list[list[Node]], rows: int) -> list[list[Node]]:
    """Fold dataflow levels onto fabric rows (deep graphs traverse the
    fabric more than once through the edge switches). Queue/memory edge
    ops occupy no functional unit and are dropped.

    Shared by the mapper and the fabric-feasibility pass in
    ``repro.analysis.dfg_passes`` so both predict the same placement.
    """
    row_load: list[list[Node]] = [[] for _ in range(rows)]
    for i, level in enumerate(levels):
        compute = [n for n in level if not OP_INFO[n.kind].is_edge]
        row_load[i % rows].extend(compute)
    return row_load


def map_dfg_cached(dfg: DataflowGraph, fabric: FabricSpec,
                   max_replication: int | None = None,
                   cache=None) -> Mapping:
    """Content-addressed :func:`map_dfg`: a repeat mapping costs a hash.

    The key is the DFG's assembly text (a faithful serialization —
    the asm round-trip suite asserts it) plus the fabric geometry and
    the replication cap, so any change to the stage's datapath or the
    target fabric misses and re-maps. Identical content returns the
    cached :class:`Mapping` (frozen, safely shared) from the process
    cache or, when a cache root is configured, from disk — counted
    under the ``mapping.*`` counters of
    :class:`repro.cache.ArtifactCache`.
    """
    from repro.cache import get_artifact_cache, mapping_key
    if cache is None:
        cache = get_artifact_cache()
    key = mapping_key(dfg, fabric, max_replication)
    mapping = cache.get("mapping", key)
    if mapping is None:
        mapping = map_dfg(dfg, fabric, max_replication)
        cache.put("mapping", key, mapping)
    return mapping


def map_dfg(dfg: DataflowGraph, fabric: FabricSpec,
            max_replication: int | None = None) -> Mapping:
    """Map ``dfg`` onto ``fabric``; raises ``UnmappableStageError`` if it
    cannot fit even unreplicated."""
    dfg.validate()
    levels = dfg.levels()

    row_load = fold_levels(levels, fabric.rows)

    lane_width = max((len(ops) for ops in row_load), default=0)
    lane_width = max(lane_width, 1)
    if lane_width > fabric.cols:
        raise UnmappableStageError(
            f"stage {dfg.name!r}: needs {lane_width} columns, fabric has "
            f"{fabric.cols}; split the stage into smaller stages")

    n_fma = dfg.n_fma_ops
    if n_fma > fabric.fma_units:
        raise UnmappableStageError(
            f"stage {dfg.name!r}: needs {n_fma} FMA units, fabric has "
            f"{fabric.fma_units}")

    replication = fabric.cols // lane_width
    if n_fma:
        replication = min(replication, fabric.fma_units // n_fma)
    if max_replication is not None:
        replication = min(replication, max_replication)
    replication = max(replication, 1)

    placement: dict[int, tuple[int, int]] = {}
    for row, ops in enumerate(row_load):
        for col, node in enumerate(ops):
            placement[node.node_id] = (row, col)

    return Mapping(
        stage_name=dfg.name,
        placement=placement,
        n_levels=len(levels),
        lane_width=lane_width,
        replication=replication,
        depth_cycles=fabric.pipeline_depth(len(levels)),
        config_bytes=fabric.config_bytes,
        n_compute_ops=dfg.n_compute_ops,
        n_fma_ops=n_fma,
        fabric=fabric,
    )
