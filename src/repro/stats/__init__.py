"""Statistics: counters, CPI stacks, telemetry bus, tracing, manifests."""

from repro.stats.counters import Counters
from repro.stats.cpi_stack import CPI_BUCKETS, cpi_stack, merge_stacks
from repro.stats.manifest import (MANIFEST_SCHEMA_VERSION, build_manifest,
                                  load_manifest, load_manifests,
                                  summarize_manifests, write_manifest)
from repro.stats.telemetry import (EventBus, EventSink, JsonlSink,
                                   PeriodicSampler, Probe, RecordingSink,
                                   TelemetryEvent, chrome_trace,
                                   write_chrome_trace)
from repro.stats.trace import ActivationEvent, ActivationTracer

__all__ = [
    "Counters", "CPI_BUCKETS", "cpi_stack", "merge_stacks",
    "ActivationEvent", "ActivationTracer",
    "EventBus", "EventSink", "JsonlSink", "PeriodicSampler", "Probe",
    "RecordingSink", "TelemetryEvent", "chrome_trace", "write_chrome_trace",
    "MANIFEST_SCHEMA_VERSION", "build_manifest", "load_manifest",
    "load_manifests", "summarize_manifests", "write_manifest",
]
