"""Critical-path extraction from the wait-for profiler's timelines.

The longest dependency chain through a run is reconstructed backwards
from the final cycle: standing at time ``t`` on some PE, the walker asks
what that PE was doing just before ``t`` —

* running a stage: the path absorbs the contiguous run span;
* reconfiguring, or stalled on memory: the path absorbs the span;
* stalled on a queue: the *dependency* lives on the other side of the
  queue (the producer for an empty-queue wait, the consumer for a
  full-queue wait), so the walk jumps — at the same time ``t`` — to the
  PE hosting that endpoint and continues there;
* inactive: the path absorbs the idle gap back to the PE's previous
  activity (or to cycle 0).

Same-time jumps are bounded (a visited set plus a jump budget); when a
jump cannot make progress the wait itself is absorbed into the path, so
the walk always terminates and the absorbed segments partition
``[0, cycles]`` exactly — the path's total weight equals the run's
cycle count, a property the tests pin down.

Output formats: ranked merged segments (text), a JSON document, and
folded stacks (one ``pe;component;kind weight`` line per segment) that
`flamegraph.pl` or speedscope render directly.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.profiling.topology import MEMORY, RECONFIG, base_name

_EPS = 1e-6

#: Hard iteration ceiling for the backward walk (well above any real
#: path length; a safety net, not a tuning knob).
_MAX_STEPS = 1_000_000

_QUEUE_BUCKETS = ("stall_queue_full", "stall_queue_empty")


@dataclass(frozen=True)
class PathSegment:
    """One hop of the critical path (chronological order)."""

    pe: int
    kind: str      # "run" | "reconfig" | "mem" | "wait" | "idle" | "start"
    name: str      # stage name, queue name, or ""
    cycles: float
    #: For absorbed waits: the component on the far side of the queue
    #: (e.g. a same-PE DRM) the waiter was actually limited by.
    blamed: str = ""

    @property
    def component(self) -> str:
        """Blame-style component label for what-if attribution."""
        if self.kind == "run":
            return base_name(self.name)
        if self.kind == "mem":
            return MEMORY
        if self.kind == "reconfig":
            return RECONFIG
        if self.kind == "wait":
            if self.blamed:
                return base_name(self.blamed)
            return f"(wait:{self.name})"
        return "(slack)"


@dataclass
class CriticalPath:
    """The reconstructed longest dependency chain of one run."""

    segments: list = field(default_factory=list)   # [PathSegment], in time
    cycles: float = 0.0
    # DRM name -> fraction of its busy time that was memory miss stall
    # (from the profiler); splits DRM-limited waits in attributed().
    memory_fractions: dict = field(default_factory=dict)

    def total_weight(self) -> float:
        return sum(s.cycles for s in self.segments)

    def ranked(self) -> list:
        """Segments merged by (pe, kind, name), heaviest first."""
        merged: dict = {}
        for seg in self.segments:
            key = (seg.pe, seg.kind, seg.name, seg.blamed)
            merged[key] = merged.get(key, 0.0) + seg.cycles
        return sorted(
            (PathSegment(pe, kind, name, cycles, blamed)
             for (pe, kind, name, blamed), cycles in merged.items()),
            key=lambda s: (-s.cycles, s.pe, s.kind, s.name))

    def attributed(self) -> dict:
        """Critical-path cycles per component (stage base names,
        ``(memory)``, ``(reconfig)``, waits, slack), heaviest first.
        This is the quantity the causal what-if estimator scales.

        Waits blamed on a DRM split between the DRM's issue engine and
        ``(memory)`` in proportion to the DRM's measured miss-stall
        fraction — a decoupled access stream limited by misses is a
        memory bottleneck, not an engine one."""
        totals: dict = {}
        for seg in self.segments:
            component = seg.component
            cycles = seg.cycles
            if seg.kind == "wait" and seg.blamed:
                fraction = self.memory_fractions.get(
                    seg.blamed,
                    self.memory_fractions.get(base_name(seg.blamed), 0.0))
                if fraction > 0.0:
                    totals[MEMORY] = (totals.get(MEMORY, 0.0)
                                      + cycles * fraction)
                    cycles *= 1.0 - fraction
            totals[component] = totals.get(component, 0.0) + cycles
        return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))

    def folded(self) -> str:
        """Folded-stack lines (``pe;component;kind weight``) for
        flamegraph.pl / speedscope. Weights are rounded to integers;
        zero-weight jump markers are dropped."""
        lines = []
        for seg in self.ranked():
            weight = int(round(seg.cycles))
            if weight <= 0:
                continue
            frame = seg.name if seg.name else seg.kind
            lines.append(f"pe{seg.pe};{frame};{seg.kind} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "total_weight": self.total_weight(),
            "segments": [
                {"pe": s.pe, "kind": s.kind, "name": s.name,
                 "cycles": s.cycles}
                for s in self.ranked()],
            "attributed": self.attributed(),
        }


class _Timeline:
    """Sorted, clamped interval lookups for one PE."""

    def __init__(self, spans, end_cycle: float):
        # spans: iterable of tuples whose first two fields are
        # (start, end); clamp to the run and drop empty spans.
        clean = []
        for span in spans:
            start = min(float(span[0]), end_cycle)
            end = min(float(span[1]), end_cycle)
            if end - start > _EPS:
                clean.append((start, end) + tuple(span[2:]))
        clean.sort(key=lambda s: (s[0], s[1]))
        self.spans = clean
        self._starts = [s[0] for s in clean]

    # Spans can overlap (coalesced memory stalls spill past a quantum
    # and interleave with queue stalls), so both lookups scan a bounded
    # window left of the bisection point instead of trusting the first
    # candidate. The bound trades worst-case fidelity for guaranteed
    # O(1) steps; walker termination never depends on it.
    _SCAN = 64

    def containing(self, t: float):
        """Some span with ``start < t <= end``, or None."""
        i = bisect_right(self._starts, t - _EPS) - 1
        for _ in range(self._SCAN):
            if i < 0:
                return None
            span = self.spans[i]
            if span[1] + _EPS >= t:
                return span
            i -= 1
        return None

    def latest_end_before(self, t: float) -> float:
        """Largest span end strictly below ``t`` (0.0 when none)."""
        best = 0.0
        i = bisect_right(self._starts, t - _EPS) - 1
        for _ in range(self._SCAN):
            if i < 0:
                break
            end = self.spans[i][1]
            if end <= t - _EPS and end > best:
                best = end
            i -= 1
        return best

    def last_end(self) -> float:
        return max((s[1] for s in self.spans), default=0.0)


def extract_critical_path(profile) -> CriticalPath:
    """Walk the profiler's timelines backwards into a CriticalPath.

    ``profile`` is a :class:`repro.profiling.attribution.RunProfile`.
    """
    prof = profile.profiler
    topo = prof.topology
    end_cycle = profile.cycles
    n_pes = len(profile.pe_counters)

    stalls = {pe: _Timeline(((s.start, s.end, s.bucket, s.queue, s.stage)
                             for s in spans), end_cycle)
              for pe, spans in prof.stalls.items()}
    reconfigs = {pe: _Timeline(spans, end_cycle)
                 for pe, spans in prof.reconfigs.items()}
    runs = {pe: _Timeline(spans, end_cycle)
            for pe, spans in prof.stage_spans.items()}
    empty = _Timeline((), end_cycle)

    def timelines(pe):
        return (stalls.get(pe, empty), reconfigs.get(pe, empty),
                runs.get(pe, empty))

    if end_cycle <= _EPS:
        return CriticalPath([], end_cycle)

    # Start on the PE whose activity ends last (ties: lowest id).
    start_pe = 0
    latest = -1.0
    for pe in range(n_pes):
        pe_end = max(tl.last_end() for tl in timelines(pe))
        if pe_end > latest + _EPS:
            latest = pe_end
            start_pe = pe

    segments: list = []
    t = end_cycle
    pe = start_pe
    jump_budget = 2 * max(1, n_pes)
    jumps = 0
    visited: set = set()

    for _ in range(_MAX_STEPS):
        if t <= _EPS:
            break
        stall_tl, reconfig_tl, run_tl = timelines(pe)
        stall = stall_tl.containing(t)
        if stall is not None:
            start, _end, bucket, queue, stage = stall
            if bucket in _QUEUE_BUCKETS:
                blamees = topo.blamees_for_stall(bucket, queue)
                target = None
                for name in blamees:
                    target_pe = topo.pe_of(name)
                    if target_pe >= 0 and target_pe != pe:
                        target = target_pe
                        break
                key = (pe, round(t, 3))
                if (target is not None and jumps < jump_budget
                        and key not in visited):
                    visited.add(key)
                    jumps += 1
                    segments.append(PathSegment(pe, "wait",
                                                queue or bucket, 0.0))
                    pe = target
                    continue
                # No cross-PE dependency (same-PE endpoint such as a
                # DRM, control-core boundary, or a jump cycle): absorb
                # the wait, blaming the far-side component when known.
                blamed = next((n for n in blamees
                               if not n.startswith("(")), "")
                segments.append(PathSegment(pe, "wait", queue or bucket,
                                            t - start, blamed))
            else:
                kind = "mem" if bucket == "stall_mem" else "idle"
                segments.append(PathSegment(pe, kind, stage or "",
                                            t - start))
            t = start
            jumps = 0
            visited.clear()
            continue
        reconfig = reconfig_tl.containing(t)
        if reconfig is not None:
            segments.append(PathSegment(pe, "reconfig", reconfig[2],
                                        t - reconfig[0]))
            t = reconfig[0]
            jumps = 0
            visited.clear()
            continue
        run = run_tl.containing(t)
        if run is not None:
            # Run back to the nearest interruption inside this span.
            boundary = max(run[0],
                           stall_tl.latest_end_before(t),
                           reconfig_tl.latest_end_before(t))
            segments.append(PathSegment(pe, "run", run[2], t - boundary))
            t = boundary
            jumps = 0
            visited.clear()
            continue
        # Inactive gap: back to the PE's previous activity, or cycle 0.
        prev = max(tl.latest_end_before(t) for tl in timelines(pe))
        if prev <= _EPS:
            segments.append(PathSegment(pe, "start", "", t))
            t = 0.0
            break
        segments.append(PathSegment(pe, "idle", "", t - prev))
        t = prev
        jumps = 0
        visited.clear()

    segments.reverse()
    return CriticalPath(segments, end_cycle,
                        dict(profile.drm_memory_fractions))
