"""Validated environment-variable knobs.

Every ``REPRO_*`` environment knob in the repository funnels through
these helpers so a typo'd value fails fast with an error naming the
knob and its allowed values, instead of each call site hand-rolling
(and subtly diverging on) its own parse-and-check.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

# Spellings accepted by boolean knobs (e.g. REPRO_CODEGEN=1).
_FLAG_TRUE = ("1", "true", "yes", "on")
_FLAG_FALSE = ("0", "false", "no", "off")


class EnvKnobError(ValueError):
    """An environment knob is set to a value outside its domain."""


def env_choice(name: str, default: str, choices: Iterable[str]) -> str:
    """Read ``name`` restricted to ``choices`` (default when unset)."""
    choices = tuple(choices)
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw not in choices:
        raise EnvKnobError(
            f"{name}={raw!r} is not a valid choice; choose from {choices}")
    return raw


def env_flag(name: str, default: bool = False) -> bool:
    """Read a boolean knob; accepts 1/0, true/false, yes/no, on/off."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in _FLAG_TRUE:
        return True
    if lowered in _FLAG_FALSE:
        return False
    raise EnvKnobError(
        f"{name}={raw!r} is not a valid flag; choose from "
        f"{_FLAG_TRUE + _FLAG_FALSE}")


def env_float(name: str, default: float,
              minimum: Optional[float] = None) -> float:
    """Read a float knob, optionally bounded below."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise EnvKnobError(
            f"{name}={raw!r} is not a number") from None
    if minimum is not None and value < minimum:
        raise EnvKnobError(
            f"{name}={raw!r} is out of range; must be >= {minimum}")
    return value


def env_int(name: str, default: Optional[int],
            minimum: Optional[int] = None) -> Optional[int]:
    """Read an integer knob, optionally bounded below."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise EnvKnobError(
            f"{name}={raw!r} is not an integer") from None
    if minimum is not None and value < minimum:
        raise EnvKnobError(
            f"{name}={raw!r} is out of range; must be >= {minimum}")
    return value
