"""Content-addressed on-disk store of run-manifest bytes.

One entry per result-cache key (:func:`repro.service.spec.spec_key`):
the canonical JSON text of the volatile-stripped run manifest, stored
at ``root/results/<key[:2]>/<key>.json``. The stored bytes *are* the
service's response payload — a cache hit streams them back verbatim,
which is what makes the byte-identity contract (cache-hit ==
server-computed == CLI-computed) trivially auditable: there is exactly
one serialization, :func:`repro.stats.manifest.canonical_json`, applied
exactly once at :meth:`ResultStore.put`.

Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent writer can never leave a truncated entry; unreadable
entries are treated as misses and removed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.stats.manifest import canonical_json, strip_volatile


class ResultStore:
    """Content-addressed manifest store under ``root/results/``."""

    def __init__(self, root):
        self.root = Path(root)
        self._dir = self.root / "results"
        self.counters = {"hits": 0, "misses": 0, "stores": 0}

    def path_for(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed result key {key!r}")
        return self._dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[bytes]:
        """The stored manifest bytes for ``key``, or None on a miss."""
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.counters["misses"] += 1
            return None
        try:
            json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            # Corrupt entry (torn write from an older crash): drop it
            # and report a miss rather than serve garbage.
            try:
                path.unlink()
            except OSError:
                pass
            self.counters["misses"] += 1
            return None
        self.counters["hits"] += 1
        return data

    def put(self, key: str, manifest: dict) -> bytes:
        """Store ``manifest`` (volatile keys stripped) and return the
        exact bytes every future hit will serve."""
        data = canonical_json(strip_volatile(manifest)).encode("utf-8")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        self.counters["stores"] += 1
        return data

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def _entries(self):
        if not self._dir.is_dir():
            return
        for path in sorted(self._dir.glob("*/*.json")):
            yield path

    def stats(self) -> dict:
        """Entry count and on-disk footprint, plus session counters."""
        n = total = 0
        for path in self._entries():
            n += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return {"entries": n, "bytes": total, "root": str(self._dir),
                **self.counters}

    def gc(self) -> dict:
        """Delete every stored result; returns what was removed.

        Results are pure caches — everything is regenerable from the
        spec — so GC is simply "drop them all" (keys already embed the
        code version, so stale entries die naturally; gc reclaims the
        disk).
        """
        removed = bytes_freed = 0
        for path in list(self._entries()):
            try:
                bytes_freed += path.stat().st_size
                path.unlink()
                removed += 1
            except OSError:
                pass
        return {"removed": removed, "bytes_freed": bytes_freed}
