"""Dataflow IR for pipeline stages.

Each pipeline stage's computation is expressed as a dataflow graph (DFG)
of the operations a PE's functional units can perform (paper Sec. 4,
Fig. 5/6). The DFG receives inputs and sends outputs via queues, and is
what the mapper places onto the CGRA fabric.
"""

from repro.ir.ops import Op, OpKind, OP_INFO
from repro.ir.dfg import (DataflowGraph, DFGError, Node,
                          check_queue_wiring)
from repro.ir.builder import DFGBuilder
from repro.ir.asmparse import AsmParseError, parse_stage_asm

__all__ = ["Op", "OpKind", "OP_INFO", "DataflowGraph", "DFGError", "Node",
           "DFGBuilder", "AsmParseError", "parse_stage_asm",
           "check_queue_wiring"]
