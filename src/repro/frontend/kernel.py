"""Kernel-description layer of the decoupling front-end (paper Sec. 4).

A workload is written as ONE straight-line loop body: the work done for
one active vertex of one iteration. Long-latency accesses are marked
with :meth:`GraphKernel.load`; everything else is ordinary builder-style
expression construction. The front-end then splits the kernel at every
marked load (:mod:`repro.frontend.split`), proves the resulting
pipeline feed-forward (:mod:`repro.frontend.lint`), and lowers the
stages onto the simulated CGRA (:mod:`repro.frontend.lower`).

Example — BFS in full::

    k = GraphKernel("bfs")
    k.param("source", 0)
    dist = k.state("distances", init=bfs_init, output=True)
    k.start_from("source", "source")
    v = k.vertex()
    start = k.load(k.offsets, v)
    end = k.load(k.offsets, v + 1)
    with k.edges(start, end) as e:
        ngh = k.load(k.neighbors, e)
        dv = k.load(dist, ngh, owner=True)
        with k.when(dv < 0):
            k.store(dist, ngh, k.epoch())
            k.push(ngh)

``owner=True`` marks the access that crosses shards: it is routed to
the owner of the indexed vertex and its consumers run there (paper
Sec. 5.6). ``epoch()`` is the iteration counter maintained by the
control core. Integers and floats mix freely with :class:`Value`
expressions.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional


class FrontendError(Exception):
    """The kernel cannot be expressed on the generated pipeline."""


_NUMBER_TYPES = (int, float)

# Expression ops. "edge" is the loop induction variable; "load" the
# marked long-latency access.
_BINOPS = {"add": "+", "sub": "-", "mul": "*", "lt": "<", "eq": "=="}


class Value:
    """One SSA value of the kernel expression graph."""

    __slots__ = ("kernel", "vid", "op", "args", "attr", "in_edge_loop")

    def __init__(self, kernel: "GraphKernel", op: str, args: tuple = (),
                 attr=None):
        self.kernel = kernel
        self.vid = len(kernel.values)
        self.op = op
        self.args = args
        self.attr = attr
        self.in_edge_loop = kernel._in_edges
        kernel.values.append(self)

    # -- expression sugar --------------------------------------------------

    def _wrap(self, other) -> "Value":
        if isinstance(other, Value):
            if other.kernel is not self.kernel:
                raise FrontendError(
                    f"{other.label} belongs to kernel "
                    f"{other.kernel.name!r}, not {self.kernel.name!r}")
            return other
        if isinstance(other, _NUMBER_TYPES):
            return self.kernel.const(other)
        raise FrontendError(
            f"cannot mix {type(other).__name__!r} into kernel "
            f"{self.kernel.name!r} expressions")

    def _bin(self, op: str, other, swap: bool = False) -> "Value":
        other = self._wrap(other)
        args = (other, self) if swap else (self, other)
        return Value(self.kernel, op, args)

    def __add__(self, other):
        return self._bin("add", other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._bin("sub", other)

    def __rsub__(self, other):
        return self._bin("sub", other, swap=True)

    def __mul__(self, other):
        return self._bin("mul", other)

    __rmul__ = __mul__

    def __lt__(self, other):
        return self._bin("lt", other)

    def __gt__(self, other):
        return self._bin("lt", other, swap=True)

    def __eq__(self, other):  # type: ignore[override]
        return self._bin("eq", other)

    __hash__ = None  # Values are not hashable: == builds an expression

    def __bool__(self) -> bool:
        raise FrontendError(
            f"{self.label} is a symbolic value; wrap conditions in "
            f"kernel.when(...) instead of Python `if`")

    @property
    def label(self) -> str:
        """Human-readable node name for diagnostics."""
        if self.op == "load":
            return f"%{self.vid} = load({self.attr.ref.name})"
        if self.op == "const":
            return f"%{self.vid} = const({self.attr})"
        return f"%{self.vid} = {self.op}"

    def __repr__(self) -> str:
        return f"<{self.label}>"


class LoadInfo:
    """Attribute payload of a ``load`` value.

    ``marked`` distinguishes an author-annotated :meth:`GraphKernel.load`
    (a decoupling cut point) from a neutral :meth:`GraphKernel.access`
    the auto-decoupling analyzer (:mod:`repro.analysis.autosplit`) must
    still classify.
    """

    __slots__ = ("ref", "owner", "marked")

    def __init__(self, ref: "Ref", owner: bool, marked: bool = True):
        self.ref = ref
        self.owner = owner
        self.marked = marked


class Ref:
    """A named array the kernel reads or writes.

    ``size`` is ``"vertices"``, ``"vertices+1"``, or ``"edges"``;
    ``init(graph, params)`` produces the initial numpy contents.
    """

    __slots__ = ("name", "size", "mutable", "init", "output", "builtin")

    def __init__(self, name: str, size: str, mutable: bool,
                 init: Optional[Callable], output: bool,
                 builtin: bool = False):
        if size not in ("vertices", "vertices+1", "edges"):
            raise FrontendError(f"ref {name!r}: unknown size {size!r}")
        self.name = name
        self.size = size
        self.mutable = mutable
        self.init = init
        self.output = output
        self.builtin = builtin

    def length(self, graph) -> int:
        if self.size == "vertices":
            return graph.n_vertices
        if self.size == "vertices+1":
            return graph.n_vertices + 1
        return max(1, graph.n_edges)

    def __repr__(self) -> str:
        return f"Ref({self.name!r})"


class Statement:
    """A side effect in program order: a store or a fringe push."""

    __slots__ = ("kind", "ref", "index", "value", "dedup", "preds",
                 "in_edge_loop", "sid")

    def __init__(self, kernel: "GraphKernel", kind: str, ref=None,
                 index=None, value=None, dedup: bool = False):
        self.kind = kind            # "store" | "push"
        self.ref = ref
        self.index = index
        self.value = value
        self.dedup = dedup
        self.preds = tuple(kernel._preds)
        self.in_edge_loop = kernel._in_edges
        self.sid = len(kernel.statements)
        kernel.statements.append(self)

    @property
    def label(self) -> str:
        if self.kind == "store":
            return f"store#{self.sid}({self.ref.name})"
        return f"push#{self.sid}"


class GraphKernel:
    """One annotated kernel: declarations plus a straight-line loop body.

    The CSR graph structure (``offsets``, ``neighbors``) is built in;
    additional state is declared with :meth:`state`. The body is
    recorded at definition time — context managers (:meth:`edges`,
    :meth:`when`) scope the edge loop and predication.
    """

    def __init__(self, name: str, doc: str = ""):
        self.name = name
        self.doc = doc
        self.params: dict = {}
        self.refs: list[Ref] = []         # declared state, in order
        self.values: list[Value] = []
        self.statements: list[Statement] = []
        self.fringe = ("all", None)       # ("all"|"source", param name)
        self.offsets = Ref("offsets", "vertices+1", mutable=False,
                           init=None, output=False, builtin=True)
        self.neighbors = Ref("neighbors", "edges", mutable=False,
                             init=None, output=False, builtin=True)
        self._in_edges = False
        self._edges_defined = False
        self._edge_var: Optional[Value] = None
        self._preds: list[Value] = []
        self._vertex: Optional[Value] = None
        self._epoch: Optional[Value] = None

    # -- declarations ------------------------------------------------------

    def param(self, name: str, default) -> str:
        """Declare a runtime parameter (e.g. the BFS source vertex)."""
        self.params[name] = default
        return name

    def state(self, name: str, size: str = "vertices", init=None,
              mutable: bool = True, output: bool = False) -> Ref:
        """Declare a state array; ``init(graph, params)`` fills it."""
        if init is None:
            raise FrontendError(f"state {name!r} needs an init function")
        for existing in self.refs:
            if existing.name == name:
                raise FrontendError(f"state {name!r} declared twice")
        if name in ("offsets", "neighbors"):
            raise FrontendError(f"state {name!r} shadows a built-in array")
        ref = Ref(name, size, mutable, init, output)
        self.refs.append(ref)
        return ref

    def start_from(self, kind: str, param: Optional[str] = None) -> None:
        """Initial fringe: ``"all"`` vertices or one ``"source"`` param."""
        if kind not in ("all", "source"):
            raise FrontendError(f"unknown initial fringe kind {kind!r}")
        if kind == "source" and param not in self.params:
            raise FrontendError(
                f"start_from('source', {param!r}): no such param")
        self.fringe = (kind, param)

    # -- expression constructors -------------------------------------------

    def const(self, value) -> Value:
        if not isinstance(value, _NUMBER_TYPES):
            raise FrontendError(f"const of non-number {value!r}")
        return Value(self, "const", attr=value)

    def vertex(self) -> Value:
        """The active vertex id (the outer loop's induction variable)."""
        if self._vertex is None:
            self._vertex = Value(self, "vertex")
        return self._vertex

    def epoch(self) -> Value:
        """The iteration counter (1 on the first iteration)."""
        if self._epoch is None:
            self._epoch = Value(self, "epoch")
        return self._epoch

    def load(self, ref: Ref, index, owner: bool = False) -> Value:
        """A marked long-latency access — the pipeline splits here."""
        if not isinstance(ref, Ref):
            raise FrontendError(f"load target {ref!r} is not a declared ref")
        if not isinstance(index, Value):
            index = self.const(index)
        if owner and not ref.mutable:
            raise FrontendError(
                f"owner load of {ref.name!r}: owner routing is for the "
                f"mutable destination array")
        return Value(self, "load", (index,), LoadInfo(ref, owner))

    def access(self, ref: Ref, index) -> Value:
        """An *unannotated* memory access: no decoupling decision taken.

        A kernel written entirely with ``access()`` carries no split
        markings; :func:`repro.analysis.autosplit.infer_split` derives
        the cut points and owner routing from the whole-kernel
        dependence graph instead, and ``apply_split`` rewrites the
        accesses into marked loads. Compiling a kernel that still has
        unannotated accesses is an error naming this workflow.
        """
        if not isinstance(ref, Ref):
            raise FrontendError(
                f"access target {ref!r} is not a declared ref")
        if not isinstance(index, Value):
            index = self.const(index)
        return Value(self, "load", (index,),
                     LoadInfo(ref, owner=False, marked=False))

    # -- structure ---------------------------------------------------------

    @contextmanager
    def edges(self, start: Value, end: Value):
        """The per-edge loop ``for e in [start, end)``; yields ``e``."""
        if self._edges_defined:
            raise FrontendError(
                f"kernel {self.name!r}: only one edge loop is supported")
        if not (isinstance(start, Value) and isinstance(end, Value)):
            raise FrontendError("edges() bounds must be kernel values")
        self._edges_defined = True
        self._in_edges = True
        edge = Value(self, "edge", attr=(start, end))
        self._edge_var = edge
        try:
            yield edge
        finally:
            self._in_edges = False

    @contextmanager
    def when(self, cond: Value):
        """Predicate the enclosed statements on ``cond``."""
        if not isinstance(cond, Value):
            raise FrontendError("when() takes a kernel value")
        self._preds.append(cond)
        try:
            yield
        finally:
            self._preds.pop()

    # -- side effects ------------------------------------------------------

    def store(self, ref: Ref, index, value) -> Statement:
        if not isinstance(ref, Ref):
            raise FrontendError(f"store target {ref!r} is not a declared ref")
        if not isinstance(index, Value):
            index = self.const(index)
        if not isinstance(value, Value):
            value = self.const(value)
        return Statement(self, "store", ref=ref, index=index, value=value)

    def push(self, v: Value, dedup: bool = False) -> Statement:
        """Append the vertex ``v`` to the next iteration's fringe."""
        if not isinstance(v, Value):
            raise FrontendError("push() takes a kernel value (a vertex id)")
        return Statement(self, "push", value=v, dedup=dedup)

    # -- queries -----------------------------------------------------------

    def loads(self) -> list[Value]:
        return [v for v in self.values if v.op == "load"]

    def unmarked_accesses(self) -> list[Value]:
        """Accesses created with :meth:`access` (no split decision yet)."""
        return [v for v in self.values
                if v.op == "load" and not v.attr.marked]

    def get_ref(self, name: str) -> Ref:
        if name == "offsets":
            return self.offsets
        if name == "neighbors":
            return self.neighbors
        for ref in self.refs:
            if ref.name == name:
                return ref
        raise KeyError(name)
