"""Differential suite: the fast engine must be cycle-exact.

The fast engine (``engine="fast"``) bulk-charges blocked spans instead
of ticking them cycle by cycle (docs/performance.md). These tests lock
down its contract against the naive per-cycle reference: for every
workload, final cycle counts, per-PE counters, CPI stacks, cache and
memory statistics, functional results, and sampled telemetry series
must be *identical* — not approximately equal — under both engines.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import ENGINES, System
from repro.harness import prepare_input, run_experiment
from repro.stats.telemetry import EventBus, PeriodicSampler

# One representative input per workload, scaled down so the naive
# engine stays affordable. silo ignores scale (fixed tree/op counts).
_CASES = [
    ("bfs", "Hu", 0.1),
    ("cc", "Ci", 0.08),
    ("prd", "Hu", 0.08),
    ("radii", "In", 0.08),
    ("spmm", "GE", 0.1),
    ("silo", "YC", 1.0),
]


@pytest.fixture(scope="module")
def prepared_inputs():
    return {(app, code): prepare_input(app, code, scale=scale)
            for app, code, scale in _CASES}


def _same_result(a, b):
    if isinstance(a, dict):
        return (set(a) == set(b)
                and all(np.array_equal(a[k], b[k]) for k in a))
    if isinstance(a, tuple):
        return a == b
    return np.array_equal(a, b)


def _assert_runs_identical(fast, naive):
    assert fast.cycles == naive.cycles
    assert [c.as_dict() for c in fast.pe_counters] == \
        [c.as_dict() for c in naive.pe_counters]
    assert fast.cpi_stacks() == naive.cpi_stacks()
    assert fast.l1_stats == naive.l1_stats
    assert fast.llc_stats == naive.llc_stats
    assert fast.mem_stats == naive.mem_stats
    assert _same_result(fast.result, naive.result)


@pytest.mark.parametrize("app,code,scale", _CASES)
def test_engines_identical_fifer(app, code, scale, prepared_inputs):
    prepared = prepared_inputs[(app, code)]
    runs = {engine: run_experiment(app, code, "fifer", prepared=prepared,
                                   engine=engine)
            for engine in ENGINES}
    _assert_runs_identical(runs["fast"].raw, runs["naive"].raw)
    assert runs["fast"].engine == "fast"
    assert runs["naive"].engine == "naive"


@pytest.mark.parametrize("app,code,scale", [("bfs", "Hu", 0.1),
                                            ("spmm", "GE", 0.1)])
def test_engines_identical_static(app, code, scale, prepared_inputs):
    prepared = prepared_inputs[(app, code)]
    runs = {engine: run_experiment(app, code, "static", prepared=prepared,
                                   engine=engine)
            for engine in ENGINES}
    _assert_runs_identical(runs["fast"].raw, runs["naive"].raw)


def test_sampled_series_identical(prepared_inputs):
    """With a periodic sampler attached, the fast engine must still
    visit every quantum boundary: the sampled time series (queue
    occupancies, PE states, cumulative CPI stacks) match point for
    point, not just the final totals."""
    prepared = prepared_inputs[("bfs", "Hu")]
    samples = {}
    for engine in ENGINES:
        bus = EventBus()
        sampler = bus.add_sampler(PeriodicSampler(256.0, publish=False))
        run_experiment("bfs", "Hu", "fifer", prepared=prepared,
                       engine=engine, telemetry=bus)
        samples[engine] = sampler.samples
    assert samples["fast"] == samples["naive"]


def test_run_rejects_unknown_engine(prepared_inputs):
    with pytest.raises(ValueError, match="engine"):
        run_experiment("bfs", "Hu", "fifer",
                       prepared=prepared_inputs[("bfs", "Hu")],
                       engine="warp")


def test_system_run_default_engine_is_fast(prepared_inputs):
    res = run_experiment("bfs", "Hu", "fifer",
                         prepared=prepared_inputs[("bfs", "Hu")])
    assert res.engine == "fast"
    assert res.raw.engine == "fast"


def test_small_fabric_engines_identical(prepared_inputs):
    """A 4-PE fabric maximizes blocked time (stages contend for PEs),
    the regime where the fast engine's bulk stall path does the most
    work."""
    prepared = prepared_inputs[("bfs", "Hu")]
    config = SystemConfig(n_pes=4)
    runs = {engine: run_experiment("bfs", "Hu", "fifer", prepared=prepared,
                                   config=config, engine=engine)
            for engine in ENGINES}
    _assert_runs_identical(runs["fast"].raw, runs["naive"].raw)
