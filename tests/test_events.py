"""Unit tests for the event-driven engine's primitives
(:mod:`repro.core.events`): the lazy-cancellation event queue, the
sleep ledger record, and the wake-set derivation."""

import pytest

from repro.config import SystemConfig
from repro.core import PEProgram, Program, StageSpec, System
from repro.core.events import EventQueue, SleepState, wake_queue_names
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec


class TestEventQueue:
    def test_pops_in_cycle_order(self):
        q = EventQueue()
        q.schedule("c", 30.0)
        q.schedule("a", 10.0)
        q.schedule("b", 20.0)
        assert [q.pop() for _ in range(3)] == [
            (10.0, "a"), (20.0, "b"), (30.0, "c")]

    def test_ties_pop_in_insertion_order(self):
        q = EventQueue()
        q.schedule("second", 5.0)
        q.schedule("first", 5.0)
        assert q.pop() == (5.0, "second")
        assert q.pop() == (5.0, "first")

    def test_reschedule_supersedes(self):
        q = EventQueue()
        q.schedule("x", 100.0)
        q.schedule("x", 10.0)
        assert len(q) == 1
        assert q.scheduled_cycle("x") == 10.0
        assert q.pop() == (10.0, "x")
        assert len(q) == 0

    def test_cancel_removes_lazily(self):
        q = EventQueue()
        q.schedule("x", 1.0)
        q.schedule("y", 2.0)
        q.cancel("x")
        q.cancel("never-scheduled")  # no-op
        assert q.scheduled_cycle("x") is None
        assert q.next_cycle() == 2.0
        assert q.pop() == (2.0, "y")

    def test_next_cycle_empty(self):
        q = EventQueue()
        assert q.next_cycle() is None
        q.schedule("x", 7.0)
        q.cancel("x")
        assert q.next_cycle() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_counts_live_entries(self):
        q = EventQueue()
        q.schedule("a", 1.0)
        q.schedule("b", 2.0)
        q.schedule("a", 3.0)  # supersede, not add
        assert len(q) == 2
        q.cancel("b")
        assert len(q) == 1


class TestSleepState:
    def test_carries_frozen_bucket(self):
        state = SleepState(owed_from=128.0, bucket="stall_queue_empty",
                           watching=("q1", "q2"))
        assert state.owed_from == 128.0
        assert state.bucket == "stall_queue_empty"
        assert state.watching == ("q1", "q2")


def _blocked_system():
    """One PE whose single started stage blocks on an empty queue."""
    space = AddressSpace()

    def sink_dfg():
        b = DFGBuilder("ev.snk")
        x = b.deq("ev.in")
        b.add(x, x)
        return b.finish()

    def consumer(ctx):
        yield from ctx.deq("ev.in")

    pe = PEProgram(shard=0, queue_specs=[QueueSpec("ev.in")],
                   stage_specs=[StageSpec("ev.snk", sink_dfg(), consumer)])
    program = Program("ev", [pe], space, MemoryMap())
    return System(SystemConfig(n_pes=1), program, mode="fifer")


class TestWakeQueueNames:
    def test_blocked_deq_watches_its_queue(self):
        system = _blocked_system()
        pe = system.pes[0]
        # First quanta cover reconfiguration + stage start; the stage
        # then blocks for good on its empty input.
        for _ in range(4):
            pe.run_quantum(float(system.config.quantum), fast=True)
        assert not pe.can_progress()
        assert wake_queue_names(pe) == {"ev.in"}

    def test_finished_stage_watches_nothing(self):
        system = _blocked_system()
        pe = system.pes[0]
        stage = pe.stages[0]
        stage.done = True
        assert wake_queue_names(pe) == set()
