"""The multi-PE system: builds PEs from a program and steps the clock.

The system owns the memory hierarchy (private L1s, shared LLC, HBM), the
global queue registry (every queue is reachable by name so producers on
any PE can enqueue to consumers anywhere, subject to credits), and the
quantum-stepped simulation loop. PEs and DRMs advance in fixed quanta of
a few tens of cycles — the same timescale as Fifer's reconfigurations —
with all queue and cache state globally visible at quantum boundaries.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cgra.bitstream import generate_bitstream
from repro.cgra.fabric import FabricSpec
from repro.cgra.mapper import Mapping, map_dfg_cached
from repro.config import SystemConfig
from repro.core.drm import DRM
from repro.core.events import EventQueue, SleepState, wake_queue_names
from repro.core.pe import ProcessingElement
from repro.core.program import Program
from repro.core.stage import StageContext, StageInstance
from repro.env import env_flag
from repro.memory.cache import build_hierarchy
from repro.queues.queue import Queue
from repro.queues.queue_memory import QueueMemory
from repro.stats.counters import Counters
from repro.stats.cpi_stack import cpi_stack, merge_stacks


#: Valid ``System.run(engine=...)`` values. ``fast`` skips blocked and
#: quiescent spans in bulk; ``event`` additionally puts provably
#: quiescent PEs to sleep on queue-activity wake lists so wall time
#: scales with events rather than cycles; ``naive`` is the original
#: per-cycle reference loop kept as the differential-testing oracle.
#: All three are cycle- and counter-exact (docs/performance.md,
#: tests/test_engine_equivalence.py, tests/test_engine_fuzz.py).
ENGINES = ("fast", "naive", "event")


class DeadlockError(Exception):
    """No token moved for many quanta while the program is unfinished."""


class SimulationTimeout(Exception):
    """The run exceeded the caller's cycle limit."""


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    program_name: str
    mode: str
    cycles: float
    config: SystemConfig
    pe_counters: list[Counters]
    l1_stats: list[dict]
    llc_stats: dict
    mem_stats: dict
    result: Any
    mappings: dict[str, Mapping] = field(default_factory=dict)
    engine: str = "fast"
    # Engine-internal work accounting (quanta visited, PE-quantum
    # activations, sleeps/wakes, jumped quanta) — what
    # bench_engine_speedup reports as per-engine event counts.
    engine_stats: dict = field(default_factory=dict)

    @property
    def counters(self) -> Counters:
        merged = Counters()
        for counters in self.pe_counters:
            merged.merge(counters)
        return merged

    def cpi_stacks(self) -> list[dict[str, float]]:
        return [cpi_stack(c, self.cycles) for c in self.pe_counters]

    def merged_cpi_stack(self) -> dict[str, float]:
        return merge_stacks(self.cpi_stacks())

    @property
    def avg_residence_cycles(self) -> float:
        merged = self.counters
        events = merged["residence_events"]
        return merged["residence_sum"] / events if events else 0.0

    @property
    def avg_reconfig_cycles(self) -> float:
        merged = self.counters
        events = merged["reconfig_events"]
        return merged["reconfig_sum"] / events if events else 0.0


class System:
    """Instantiates a :class:`Program` on Fifer or the static baseline."""

    def __init__(self, config: SystemConfig, program: Program,
                 mode: str = "fifer", telemetry=None):
        if mode not in ("fifer", "static"):
            raise ValueError(f"unknown mode {mode!r}")
        if program.n_pes != config.n_pes:
            raise ValueError(
                f"program targets {program.n_pes} PEs, system has "
                f"{config.n_pes}")
        self.config = config
        self.program = program
        self.mode = mode
        self.cycle = 0.0
        self.fabric = FabricSpec.from_config(config.fabric)

        l1s, self.llc, self.memory = build_hierarchy(
            config.l1, config.llc, config.memory, config.n_pes)
        self._queues: dict[str, Queue] = dict(program.external_queues)
        self.pes: list[ProcessingElement] = []
        self.mappings: dict[str, Mapping] = {}

        # Pass 1: carve queue memories so every queue exists before any
        # stage or DRM resolves names.
        queue_memories = []
        for pe_id, pe_program in enumerate(program.pe_programs):
            qmem = QueueMemory(config.queue_mem_bytes, config.max_queues_per_pe)
            if pe_program.queue_specs:
                for name, queue in qmem.carve(pe_program.queue_specs).items():
                    if name in self._queues:
                        raise ValueError(f"duplicate queue name {name!r}")
                    self._queues[name] = queue
            queue_memories.append(qmem)

        # Pass 2: build PEs, stages (with mapped configurations), DRMs.
        speedups = dict(config.stage_speedup)
        for pe_id, pe_program in enumerate(program.pe_programs):
            pe = ProcessingElement(
                pe_id, config, l1s[pe_id], queue_memories[pe_id],
                self.resolve_queue, time_multiplex=(mode == "fifer"))
            for spec in pe_program.stage_specs:
                caps = [cap for cap in (spec.max_replication,
                                        config.max_simd_replication)
                        if cap is not None]
                mapping = map_dfg_cached(
                    spec.dfg, self.fabric,
                    max_replication=min(caps) if caps else None)
                self.mappings[spec.name] = mapping
                config_region = program.address_space.alloc(
                    f"__cfg_{spec.name}", mapping.config_bytes)
                generate_bitstream(spec.dfg, mapping)  # validates budget
                ctx = StageContext(pe_id, spec.name, pe_program.shard,
                                   self._n_shards())
                stage = StageInstance(spec, ctx, mapping, config_region.base)
                if speedups:
                    # Exact per-shard name wins over the base name that
                    # matches every shard ("bfs.fetch" -> "bfs.fetch@*").
                    factor = speedups.get(
                        spec.name,
                        speedups.get(spec.name.split("@", 1)[0]))
                    if factor is not None:
                        stage.speed = float(factor)
                pe.attach_stage(stage)
            for drm_spec in pe_program.drm_specs:
                targets = (drm_spec.route_targets if drm_spec.route
                           else (drm_spec.out_queue,))
                out_queues = {name: self.resolve_queue(name)
                              for name in targets}
                drm = DRM(drm_spec, pe_id,
                          self.resolve_queue(drm_spec.in_queue), out_queues,
                          l1s[pe_id], program.memmap,
                          config.drm_max_outstanding, config.l1.latency,
                          issue_width=config.drm_issue_width)
                if speedups:
                    factor = speedups.get(
                        drm_spec.name,
                        speedups.get(drm_spec.name.split("@", 1)[0]))
                    if factor is not None:
                        # Scale the DRM's issue throughput (misses still
                        # cost full latency; what-ifs model the engine,
                        # not the memory behind it).
                        drm._inv_issue = drm._inv_issue / float(factor)
                pe.attach_drm(drm)
            pe.finalize()
            self.pes.append(pe)
        # Optional telemetry bus (repro.stats.telemetry.EventBus).
        self.telemetry = None
        # Per-run engine work accounting; populated by run().
        self.engine_stats: dict = {}
        if program.post_build is not None:
            program.post_build(self)
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def _n_shards(self) -> int:
        return 1 + max(p.shard for p in self.program.pe_programs)

    def resolve_queue(self, name: str) -> Queue:
        try:
            return self._queues[name]
        except KeyError:
            raise KeyError(f"no queue named {name!r} in the system") from None

    @property
    def queues(self) -> dict:
        """Name -> :class:`Queue` registry (read-only by convention)."""
        return self._queues

    # -- telemetry -----------------------------------------------------------

    def attach_telemetry(self, bus) -> "System":
        """Wire a :class:`~repro.stats.telemetry.EventBus` probe into
        every PE, DRM, queue, cache, and main memory. With no sinks
        subscribed the probes stay near-free; call
        :meth:`detach_telemetry` to restore the uninstrumented state."""
        from repro.stats.telemetry import Probe
        self.telemetry = bus
        for pe in self.pes:
            pe.probe = Probe(bus, f"pe{pe.pe_id}")
            pe.l1.probe = Probe(bus, pe.l1.name)
            for drm in pe.drms:
                drm.probe = Probe(bus, f"drm:{drm.spec.name}")
        for name, queue in self._queues.items():
            queue.probe = Probe(bus, f"queue:{name}")
        self.llc.probe = Probe(bus, "llc")
        self.memory.probe = Probe(bus, "mem")
        return self

    def detach_telemetry(self) -> None:
        """Remove every probe; hot paths return to the zero-cost state."""
        self.telemetry = None
        for pe in self.pes:
            pe.probe = None
            pe.l1.probe = None
            for drm in pe.drms:
                drm.probe = None
        for queue in self._queues.values():
            queue.probe = None
        self.llc.probe = None
        self.memory.probe = None

    # -- simulation ----------------------------------------------------------

    def done(self) -> bool:
        return all(pe.all_done() for pe in self.pes)

    def _progress_fingerprint(self) -> tuple:
        tokens = sum(q.total_enqueued for q in self._queues.values())
        finished = sum(stage.done for pe in self.pes for stage in pe.stages)
        issued = sum(pe.counters["issued"] + pe.counters["stall_mem"]
                     for pe in self.pes)
        return tokens, finished, issued

    def _state_report(self) -> str:
        """Per-PE resident stage + blocked reasons + queue occupancies,
        appended to deadlock/timeout exception messages."""
        lines = []
        for pe in self.pes:
            lines.append(f"  PE{pe.pe_id} resident={pe.state}")
            for stage in pe.stages:
                lines.append(f"    {stage.name}: {pe.blocked_reason(stage)}")
        occupied = [f"    {name}: {queue.describe()}"
                    for name, queue in sorted(self._queues.items())
                    if len(queue)]
        lines.append("  non-empty queues:")
        lines.extend(occupied if occupied else ["    (none)"])
        return "\n".join(lines)

    def _deadlock_report(self) -> str:
        return (f"deadlock in {self.program.name!r} ({self.mode}) at cycle "
                f"{self.cycle:.0f}: no progress for "
                f"{self.config.deadlock_quanta} quanta\n"
                + self._state_report())

    def _timeout_report(self, max_cycles: float) -> str:
        return (f"{self.program.name!r} exceeded {max_cycles} cycles\n"
                + self._state_report())

    def _can_fast_forward(self) -> bool:
        """Whether the fast engine may jump over the remaining quanta.

        Requires that nothing outside the PEs can inject work (no
        ``control_poll``), that quiescence probing cannot emit events a
        sink would record (``can_enq`` publishes ``queue.credit_stall``
        when sinks are attached), and that no PE or DRM can move a
        token. Under those conditions every future quantum only adds
        stall cycles, so the run can only end in deadlock or timeout.
        """
        if self.program.control_poll is not None:
            return False
        if self.telemetry is not None and self.telemetry.sinks:
            return False
        return not any(pe.can_progress() for pe in self.pes)

    def _fast_forward(self, quantum: float, max_cycles: Optional[float],
                      stuck_quanta: int) -> None:
        """Jump a quiescent system to its deadlock/timeout horizon.

        Replicates the naive loop's raise ordering exactly: the naive
        loop checks timeout at the top of an iteration and deadlock
        after running the quantum, so from here deadlock fires after
        ``deadlock_quanta - stuck_quanta`` more quanta and timeout
        after ``ceil((max_cycles - cycle) / quantum)`` quanta have run
        — whichever horizon is closer wins, deadlock on ties. Always
        raises; never returns.
        """
        to_deadlock = self.config.deadlock_quanta - stuck_quanta
        to_timeout = None
        if max_cycles is not None:
            to_timeout = max(0, math.ceil((max_cycles - self.cycle) / quantum))
        raise_deadlock = to_timeout is None or to_deadlock <= to_timeout
        quanta = to_deadlock if raise_deadlock else to_timeout
        if self.telemetry is not None and self.telemetry.samplers:
            # Keep sampled time series identical: tick every boundary.
            for _ in range(quanta):
                self.telemetry.now = self.cycle
                self.memory.begin_quantum(quantum)
                for pe in self.pes:
                    pe.run_quantum(quantum, fast=True)
                self.cycle += quantum
                self.telemetry.on_quantum(self)
        else:
            # No observer: collapse all quanta into one bulk charge per
            # PE. No memory access can occur (nothing can progress), so
            # skipping begin_quantum's bandwidth reset changes nothing.
            for pe in self.pes:
                pe.fast_forward_quanta(quanta, quantum)
            self.cycle += quanta * quantum
            if self.telemetry is not None:
                self.telemetry.now = self.cycle
        if raise_deadlock:
            raise DeadlockError(self._deadlock_report())
        raise SimulationTimeout(self._timeout_report(max_cycles))

    def run(self, max_cycles: Optional[float] = None,
            engine: str = "fast",
            codegen: Optional[bool] = None) -> SimulationResult:
        """Run the program to completion and return the results.

        ``codegen`` compiles each stage to a specialized step-function
        (:mod:`repro.codegen`) before running; stages without a codegen
        descriptor keep the interpreted coroutine path. ``None`` defers
        to the ``REPRO_CODEGEN`` environment flag. Both paths are
        bit-identical in cycles, counters, CPI stacks, and results.

        ``engine`` selects the simulation loop: ``"fast"`` (default)
        bulk-charges blocked spans and jumps quiescent systems to their
        deadlock/timeout horizon; ``"event"`` additionally sleeps
        provably blocked PEs on queue wake lists and settles their
        stall cycles lazily; ``"naive"`` ticks every cycle. All three
        produce identical cycle counts, counters, CPI stacks, sampled
        time series, and results (tests/test_engine_equivalence.py,
        tests/test_engine_fuzz.py).
        """
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}")
        if codegen is None:
            codegen = env_flag("REPRO_CODEGEN")
        codegen_counts = None
        if codegen:
            from repro.codegen.runtime import bind_system
            codegen_counts = bind_system(self)
        else:
            # Drop any step-functions a prior run(codegen=True) on this
            # System left behind so toggling back re-interprets.
            for pe in self.pes:
                for stage in pe.stages:
                    stage.step_fn = None
        if engine == "event":
            self._run_event(max_cycles)
        else:
            self._run_stepped(max_cycles, fast=(engine == "fast"))
        if codegen_counts is not None:
            # Recorded after the run: the engines reset engine_stats.
            bound, fallback = codegen_counts
            self.engine_stats["codegen_stages"] = bound
            self.engine_stats["codegen_fallback"] = fallback
        return self._build_result(engine)

    def _build_result(self, engine: str) -> SimulationResult:
        return SimulationResult(
            program_name=self.program.name,
            mode=self.mode,
            cycles=self.cycle,
            config=self.config,
            pe_counters=[pe.counters for pe in self.pes],
            l1_stats=[{"hits": pe.l1.hits, "misses": pe.l1.misses,
                       "hit_rate": pe.l1.hit_rate} for pe in self.pes],
            llc_stats={"hits": self.llc.hits, "misses": self.llc.misses,
                       "hit_rate": self.llc.hit_rate},
            mem_stats={"reads": self.memory.reads,
                       "writes": self.memory.writes,
                       "bytes": self.memory.bytes_transferred},
            result=self.program.result(),
            mappings=self.mappings,
            engine=engine,
            engine_stats=dict(self.engine_stats),
        )

    def _run_stepped(self, max_cycles: Optional[float], fast: bool) -> None:
        """The per-quantum loop shared by the naive and fast engines."""
        quantum = self.config.quantum
        stats = self.engine_stats = {"quanta": 0, "pe_quanta": 0,
                                     "sleeps": 0, "wakes": 0,
                                     "jumped_quanta": 0}
        n_pes = len(self.pes)
        stuck_quanta = 0
        last_fingerprint = None
        while not self.done():
            if max_cycles is not None and self.cycle >= max_cycles:
                raise SimulationTimeout(self._timeout_report(max_cycles))
            if self.telemetry is not None:
                self.telemetry.now = self.cycle
            self.memory.begin_quantum(quantum)
            for pe in self.pes:
                pe.run_quantum(quantum, fast=fast)
            if self.program.control_poll is not None:
                self.program.control_poll(self)
            self.cycle += quantum
            stats["quanta"] += 1
            stats["pe_quanta"] += n_pes
            if self.telemetry is not None:
                self.telemetry.on_quantum(self)
            fingerprint = self._progress_fingerprint()
            if fingerprint == last_fingerprint:
                stuck_quanta += 1
                if stuck_quanta >= self.config.deadlock_quanta:
                    raise DeadlockError(self._deadlock_report())
                if fast and self._can_fast_forward():
                    self._fast_forward(quantum, max_cycles, stuck_quanta)
            else:
                stuck_quanta = 0
                last_fingerprint = fingerprint

    # -- event-driven engine -------------------------------------------------

    def _control_poll_idle(self) -> bool:
        """Whether the next ``control_poll`` call is certified a no-op.

        The control core is a black box to the engine, so quiescence
        jumps over it are only legal when the program opts in with a
        side-effect-free ``control_poll_idle`` predicate certifying
        that (a) the next poll changes nothing and (b) polls stay
        no-ops until some queue activity occurs. Without the predicate
        the event engine conservatively visits every quantum boundary
        so the poll keeps running.
        """
        if self.program.control_poll is None:
            return True
        idle = self.program.control_poll_idle
        return idle is not None and idle(self)

    def _note_queue_event(self, queue, is_enq: bool) -> None:
        """Next-event hook: activity on a queue some sleeping PE watches.

        The hook is armed per queue only while it has watchers (so the
        enq/deq hot path of every other queue stays one attribute
        check) and wakes every PE sleeping on ``queue``. A waiter that
        has not yet run in the current quantum (its index is past the
        running cursor) settles its stall ledger and joins this
        quantum in PE order — the per-quantum loop would have run it
        after the producer and it would have seen this token. A waiter
        at or before the cursor already took its blocked turn this
        quantum, so it is charged through this quantum and rejoins at
        the next boundary. This ordering rule is what keeps sleeping
        bit-exact under the sequential-update quantum model.
        """
        waiters = queue.ev_waiters
        sleep = self._ev_sleep
        cursor = self._ev_cursor
        quantum = float(self.config.quantum)
        self.engine_stats["wakes"] += len(waiters)
        for i in sorted(waiters):
            state = sleep[i]
            sleep[i] = None
            for watched in state.watching:
                if watched is not queue:
                    others = watched.ev_waiters
                    others.discard(i)
                    if not others:
                        watched.on_event = None
            if i > cursor:
                owed = round((self.cycle - state.owed_from) / quantum)
                self.engine_stats["slept_quanta"] += owed
                self.pes[i].charge_blocked_quanta(owed, quantum,
                                                  state.bucket)
                insort(self._ev_runlist, i)
            else:
                self._ev_pending.append((i, state))
        waiters.clear()
        queue.on_event = None

    def _ev_settle(self, i: int, state, boundary: float) -> None:
        """Pay PE ``i``'s deferred stall cycles up to ``boundary``."""
        quantum = float(self.config.quantum)
        owed = round((boundary - state.owed_from) / quantum)
        self.engine_stats["slept_quanta"] += owed
        self.pes[i].charge_blocked_quanta(owed, quantum, state.bucket)

    def _ev_flush_sleepers(self) -> None:
        """Settle every outstanding ledger (run end, raise, or jump)."""
        for i, state in enumerate(self._ev_sleep):
            if state is None:
                continue
            self._ev_sleep[i] = None
            for watched in state.watching:
                waiters = watched.ev_waiters
                waiters.discard(i)
                if not waiters:
                    watched.on_event = None
            self._ev_settle(i, state, self.cycle)
        for i, state in self._ev_pending:
            self._ev_settle(i, state, self.cycle)
        self._ev_pending.clear()

    def _run_event(self, max_cycles: Optional[float]) -> None:
        """The event-driven loop: visit only components that can act.

        Derivation of per-component wake times (docs/performance.md):
        stages and DRMs block exclusively on queue state, so a PE that
        ``can_progress()`` proves quiescent sleeps on the queues its
        blocked requests and DRMs watch (:func:`events.wake_queue_names`)
        and its per-quantum stall charges are deferred to a ledger
        settled at wake time (:meth:`ProcessingElement.
        charge_blocked_quanta`). Clock-driven horizons — deadlock,
        the caller's cycle limit, any timed memory-channel event — live
        in an :class:`events.EventQueue`; when every PE sleeps and the
        control core is certified passive, the engine pops the earliest
        horizon and jumps. Telemetry sinks or samplers could observe
        the skipped quanta, so their presence falls back to exact
        replay of the fast engine's loop (bit-identical by PR 2's
        differential contract).
        """
        bus = self.telemetry
        if bus is not None and (bus.sinks or bus.samplers):
            self.engine_stats = {}
            self._run_stepped(max_cycles, fast=True)
            self.engine_stats["fallback"] = "telemetry-observers"
            return
        quantum = self.config.quantum
        pes = self.pes
        n_pes = len(pes)
        total_stages = sum(len(pe.stages) for pe in pes)
        stats = self.engine_stats = {"quanta": 0, "pe_quanta": 0,
                                     "sleeps": 0, "wakes": 0,
                                     "slept_quanta": 0, "jumped_quanta": 0}
        # Progress fingerprint, incremental over the PEs that ran:
        # sleeping PEs cannot move any component of
        # _progress_fingerprint (their deferred charges land in stall
        # buckets it does not read), so only awake PEs are re-summed;
        # the queue-token component is a plain counter sum, same as the
        # stepped engines pay.
        all_queues = tuple(self._queues.values())
        finished = [sum(s.done for s in pe.stages) for pe in pes]
        issued = [pe.counters["issued"] + pe.counters["stall_mem"]
                  for pe in pes]
        finished_total = sum(finished)
        issued_total = sum(issued)
        self._ev_sleep: list = [None] * n_pes
        self._ev_pending: list = []
        runlist = self._ev_runlist = list(range(n_pes))
        self._ev_cursor = n_pes
        control_poll = self.program.control_poll
        hook = self._note_queue_event
        try:
            stuck_quanta = 0
            last_fingerprint = None
            while finished_total < total_stages:
                if max_cycles is not None and self.cycle >= max_cycles:
                    self._ev_flush_sleepers()
                    raise SimulationTimeout(self._timeout_report(max_cycles))
                if self._ev_pending:
                    for i, state in self._ev_pending:
                        self._ev_settle(i, state, self.cycle)
                        insort(runlist, i)
                    self._ev_pending.clear()
                if bus is not None:
                    bus.now = self.cycle
                if runlist:
                    self.memory.begin_quantum(quantum)
                    idx = 0
                    while idx < len(runlist):
                        i = runlist[idx]
                        self._ev_cursor = i
                        pes[i].run_quantum(quantum, fast=True)
                        idx += 1
                    self._ev_cursor = n_pes
                    stats["pe_quanta"] += idx
                elif not self.memory.quantum_state_is_transient():
                    self.memory.begin_quantum(quantum)
                if control_poll is not None:
                    control_poll(self)
                self.cycle += quantum
                stats["quanta"] += 1
                if bus is not None:
                    bus.on_quantum(self)
                for i in runlist:
                    pe = pes[i]
                    done_stages = sum(s.done for s in pe.stages)
                    if done_stages != finished[i]:
                        finished_total += done_stages - finished[i]
                        finished[i] = done_stages
                    counters = pe.counters
                    value = counters["issued"] + counters["stall_mem"]
                    if value != issued[i]:
                        issued_total += value - issued[i]
                        issued[i] = value
                # Sleep pass: only PEs that just wasted a whole quantum
                # are candidates; can_progress() is the actual proof
                # that every future quantum stays a pure stall until a
                # watched queue moves.
                for idx in range(len(runlist) - 1, -1, -1):
                    i = runlist[idx]
                    pe = pes[i]
                    if not pe.stalled_full_quantum or pe.can_progress():
                        continue
                    bucket = ("idle" if pe.all_done()
                              else pe._classify_blocked())
                    watching = tuple(self._queues[name]
                                     for name in wake_queue_names(pe))
                    for watched in watching:
                        waiters = watched.ev_waiters
                        if not waiters:
                            # First watcher arms the hook; the queue's
                            # frozenset class default becomes a live set.
                            waiters = watched.ev_waiters = set()
                            watched.on_event = hook
                        waiters.add(i)
                    self._ev_sleep[i] = SleepState(
                        owed_from=self.cycle, bucket=bucket,
                        watching=watching)
                    del runlist[idx]
                    stats["sleeps"] += 1
                tokens = 0
                for q in all_queues:
                    tokens += q.total_enqueued
                fingerprint = (tokens, finished_total, issued_total)
                if fingerprint == last_fingerprint:
                    stuck_quanta += 1
                    if stuck_quanta >= self.config.deadlock_quanta:
                        self._ev_flush_sleepers()
                        raise DeadlockError(self._deadlock_report())
                    if (not runlist and not self._ev_pending
                            and self._control_poll_idle()):
                        self._ev_jump(quantum, max_cycles, stuck_quanta)
                else:
                    stuck_quanta = 0
                    last_fingerprint = fingerprint
            self._ev_flush_sleepers()
        finally:
            for queue in all_queues:
                # Restore the class defaults (None / frozenset()).
                queue.__dict__.pop("on_event", None)
                queue.__dict__.pop("ev_waiters", None)

    def _ev_jump(self, quantum: float, max_cycles: Optional[float],
                 stuck_quanta: int) -> None:
        """Pop the earliest clock-driven horizon and jump to it.

        Only reached with every PE asleep, the control core certified
        passive, and no telemetry observers: each remaining quantum is
        provably identical, so the run can only end in deadlock or
        timeout. The horizons are kept in an :class:`events.EventQueue`
        — deadlock after ``deadlock_quanta - stuck_quanta`` more
        quanta, the cycle limit per the naive loop's top-of-quantum
        check, plus any timed event a memory channel announces (none
        for the current HBM model, which would cancel the jump). The
        ledger is settled first so :meth:`_fast_forward` charges every
        PE from an exact state; it then replicates the per-quantum
        raise ordering and always raises.
        """
        horizon = EventQueue()
        horizon.schedule(
            "deadlock",
            self.cycle + (self.config.deadlock_quanta - stuck_quanta)
            * quantum)
        if max_cycles is not None:
            quanta = max(0, math.ceil((max_cycles - self.cycle) / quantum))
            horizon.schedule("timeout", self.cycle + quanta * quantum)
        mem_event = self.memory.next_event_cycle()
        if mem_event is not None:
            horizon.schedule("memory", mem_event)
        cycle, key = horizon.pop()
        if key == "memory":
            # A timed memory event would re-activate the system; the
            # current models never schedule one (next_event_cycle is
            # None), so jumping is refused rather than mis-modelled.
            return
        self._ev_flush_sleepers()
        self.engine_stats["jumped_quanta"] += round(
            (cycle - self.cycle) / quantum)
        self._fast_forward(quantum, max_cycles, stuck_quanta)
