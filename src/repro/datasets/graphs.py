"""Graphs in compressed sparse row (CSR) format and synthetic generators.

The paper's graph benchmarks (BFS, CC, PageRank-Delta, Radii) run on
five real graphs (Table 3):

====================== ========================== ========= ====== =========
Domain                 Graph                      Vertices  Edges  Avg. deg.
====================== ========================== ========= ====== =========
Human collaboration    coAuthorsDBLP (Hu)         299 K     1.9 M  6.4
Dynamic simulation     hugetrace-00000 (Dy)       4.6 M     14 M   3.0
Circuit simulation     Freescale1 (Ci)            3.4 M     19 M   5.6
Internet graph         as-Skitter (In)            1.7 M     22 M   12.9
Road network           USA-road-d-USA (Rd)        24 M      58 M   2.4
====================== ========================== ========= ====== =========

``TABLE3_GRAPHS`` maps each to a scaled synthetic generator preserving
the property that drives performance: average degree and degree skew
(collaboration and internet graphs are heavy-tailed; meshes and road
networks are near-regular with large diameter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in CSR: ``neighbors[offsets[v]:offsets[v+1]]``."""

    offsets: np.ndarray    # int64, length n+1
    neighbors: np.ndarray  # int64, length m

    @property
    def n_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_edges(self) -> int:
        return int(self.offsets[-1])

    @property
    def avg_degree(self) -> float:
        return self.n_edges / max(1, self.n_vertices)

    def out_degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors_of(self, v: int) -> np.ndarray:
        return self.neighbors[self.offsets[v]:self.offsets[v + 1]]

    def validate(self) -> None:
        if len(self.offsets) < 2:
            raise ValueError("graph needs at least one vertex")
        if self.offsets[0] != 0 or np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing from 0")
        if self.offsets[-1] != len(self.neighbors):
            raise ValueError("offsets[-1] must equal len(neighbors)")
        if len(self.neighbors) and (self.neighbors.min() < 0
                                    or self.neighbors.max() >= self.n_vertices):
            raise ValueError("neighbor ids out of range")


def _from_adjacency(adjacency: list[np.ndarray]) -> CSRGraph:
    degrees = np.fromiter((len(a) for a in adjacency), dtype=np.int64,
                          count=len(adjacency))
    offsets = np.zeros(len(adjacency) + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    if offsets[-1]:
        neighbors = np.concatenate(adjacency).astype(np.int64)
    else:
        neighbors = np.zeros(0, dtype=np.int64)
    graph = CSRGraph(offsets, neighbors)
    graph.validate()
    return graph


def _symmetrize(n: int, sources: np.ndarray, targets: np.ndarray) -> CSRGraph:
    """Build an undirected CSR graph from an edge list (both directions)."""
    src = np.concatenate([sources, targets])
    dst = np.concatenate([targets, sources])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    # Deduplicate parallel edges and self-loops.
    keep = src != dst
    if len(src):
        dup = np.zeros(len(src), dtype=bool)
        dup[1:] = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
        keep &= ~dup
    src, dst = src[keep], dst[keep]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.add.at(offsets[1:], src, 1)
    np.cumsum(offsets, out=offsets)
    graph = CSRGraph(offsets, dst.astype(np.int64))
    graph.validate()
    return graph


def uniform_random_graph(n: int, avg_degree: float, seed: int = 0) -> CSRGraph:
    """Erdős–Rényi-style graph: near-uniform degrees (mesh/circuit-like)."""
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    sources = rng.integers(0, n, size=m, dtype=np.int64)
    targets = rng.integers(0, n, size=m, dtype=np.int64)
    return _symmetrize(n, sources, targets)


def power_law_graph(n: int, avg_degree: float, exponent: float = 2.0,
                    seed: int = 0) -> CSRGraph:
    """Heavy-tailed degree distribution (collaboration/internet-like).

    Endpoints are drawn with probability proportional to a Zipf-like
    weight ``rank**-1/(exponent-1)``, producing hubs with large degree.
    """
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree / 2)
    weights = np.arange(1, n + 1, dtype=np.float64) ** (-1.0 / (exponent - 1.0))
    weights /= weights.sum()
    # Shuffle so hub ids are spread across the id space (and shards).
    perm = rng.permutation(n)
    sources = perm[rng.choice(n, size=m, p=weights)]
    targets = perm[rng.integers(0, n, size=m, dtype=np.int64)]
    return _symmetrize(n, sources.astype(np.int64), targets.astype(np.int64))


def grid_graph(width: int, height: int, keep: float = 1.0,
               seed: int = 0) -> CSRGraph:
    """2-D mesh (road-network-like: degree ~2-4, very large diameter).

    ``keep < 1`` randomly removes a fraction of edges, lowering the
    average degree toward road-network values while keeping long paths.
    """
    rng = np.random.default_rng(seed)
    n = width * height
    ids = np.arange(n, dtype=np.int64).reshape(height, width)
    horiz = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vert = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    edges = np.concatenate([horiz, vert])
    if keep < 1.0:
        mask = rng.random(len(edges)) < keep
        edges = edges[mask]
    return _symmetrize(n, edges[:, 0], edges[:, 1])


# Scaled synthetic stand-ins for Table 3. Keys are the paper's two-letter
# input codes; each entry is (generator_name, kwargs, paper_stats).
TABLE3_GRAPHS = {
    "Hu": dict(kind="power_law", n=3_000, avg_degree=6.4, exponent=2.2,
               paper="coAuthorsDBLP: 299K vertices, 1.9M edges, deg 6.4"),
    "Dy": dict(kind="uniform", n=8_000, avg_degree=3.0,
               paper="hugetrace-00000: 4.6M vertices, 14M edges, deg 3.0"),
    "Ci": dict(kind="uniform", n=6_000, avg_degree=5.6,
               paper="Freescale1: 3.4M vertices, 19M edges, deg 5.6"),
    "In": dict(kind="power_law", n=4_000, avg_degree=12.9, exponent=1.9,
               paper="as-Skitter: 1.7M vertices, 22M edges, deg 12.9"),
    "Rd": dict(kind="grid", width=100, height=100, keep=0.62,
               paper="USA-road-d: 24M vertices, 58M edges, deg 2.4"),
}


def make_graph(code: str, scale: float = 1.0, seed: int = 1) -> CSRGraph:
    """Instantiate a Table 3 stand-in; ``scale`` multiplies vertex count."""
    spec = dict(TABLE3_GRAPHS[code])
    kind = spec.pop("kind")
    spec.pop("paper")
    if kind == "power_law":
        return power_law_graph(int(spec["n"] * scale), spec["avg_degree"],
                               spec["exponent"], seed=seed)
    if kind == "uniform":
        return uniform_random_graph(int(spec["n"] * scale),
                                    spec["avg_degree"], seed=seed)
    if kind == "grid":
        side_scale = scale ** 0.5
        return grid_graph(int(spec["width"] * side_scale),
                          int(spec["height"] * side_scale),
                          keep=spec["keep"], seed=seed)
    raise ValueError(f"unknown generator kind {kind!r}")
