"""Shared machinery for the four-stage graph pipelines.

All four graph workloads use the decoupled pipeline of paper Fig. 2(a):

  S0 process fringe -> S1 enumerate neighbors -> S2 fetch values
     -> S3 update data / next fringe

with one DRM per long-latency load (Sec. 5.4):

* ``drm_fr``  — scanning mode over the shard's fringe buffer,
* ``drm_off`` — dereference of ``offsets[v]``/``offsets[v+1]`` plus any
  per-vertex state words the workload declares (labels, accumulators,
  visited masks) — the program is split at *every* long-latency load,
  so vertex state is fetched decoupled too,
* ``drm_ngh`` — dereference of ``neighbors[e]``,
* ``drm_val`` — dereference of the workload's destination-value array,
  *routed by owner shard* to implement the cross-PE hop between the
  third and fourth stages (Sec. 5.6).

Each pipeline is replicated per shard (vertices sharded by low id bits,
Sec. 5.6); iteration barriers use control values counted at S3 and a
control core that swaps fringe buffers (Sec. 5.5/5.6).

Per-workload hooks:

* ``vertex_fetch_addrs(v)`` — addresses of per-vertex state fetched by
  ``drm_off`` alongside the offsets (decoupled) or by coupled loads in
  the merged variant.
* ``vertex_process(ctx, shard, v, start, end)`` — vertex-side work
  (threshold filters, mask absorption, rank updates); returns the
  per-vertex payload ``p0``, or ``None`` to skip the vertex's edges.
  Runs on the owner shard at S1.
* ``s1_edge_payload(v, start, end, p0)`` — payload attached to each
  edge (pure; e.g. PageRank-Delta divides by the out-degree).
* ``edge_extra_addrs(e)`` / ``edge_extra_values(e)`` — extra per-edge
  words (``edge_fetch_words - 1`` of them) fetched by ``drm_ngh``
  alongside ``neighbors[e]`` (e.g. SSSP's edge weights).
* ``s2_payload(ngh, extras, p_edge)`` — combines the per-edge payload
  with the extra fetched words into the value sent across the
  cross-shard hop (pure; identity by default).
* ``s3_update(ctx, shard, ngh, value, p_edge)`` — destination-side
  update; calls ``push_touched`` to extend the next fringe.

The ``merged`` variant (Fig. 17) fuses S0+S1+S2 into one stage with
coupled loads, keeping only the most expensive indirection (``drm_val``)
decoupled.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import SystemConfig
from repro.core.drm import DRMSpec
from repro.core.program import PEProgram, Program
from repro.core.stage import STOP_VALUE, StageSpec
from repro.datasets.graphs import CSRGraph
from repro.ir import DFGBuilder
from repro.memory.address import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues.queue import Queue
from repro.queues.queue_memory import QueueSpec

END_ITER = "__END_ITER__"


def shard_of(v: int, n_shards: int) -> int:
    """Owner shard of vertex ``v`` — low bits of the id (paper Sec. 5.6:
    "by examining bits of the neighbor id")."""
    return int(v) % n_shards


def shards_for_mode(config: SystemConfig, mode: str, n_stages: int) -> int:
    """How many pipeline replicas fit.

    Fifer time-multiplexes a whole pipeline per PE (16 shards); the
    static baseline pins one stage per PE (16/n_stages shards).
    """
    if mode == "fifer":
        return config.n_pes
    if config.n_pes % n_stages:
        raise ValueError(
            f"{config.n_pes} PEs not divisible by {n_stages} stages")
    return config.n_pes // n_stages


class GraphPipelineWorkload:
    """Base class: subclass and override the hooks, then ``build_program``."""

    name = "graph"
    # Number of per-vertex state words drm_off fetches with the offsets.
    vertex_fetch_words = 0
    # Words drm_ngh fetches per edge: neighbors[e] plus any extra
    # per-edge state (edge weights etc.).
    edge_fetch_words = 1
    # Optional cap on dispatched iterations (the paper samples a subset
    # of iterations for PageRank-Delta and Radii, Sec. 7.2).
    max_iterations: Optional[int] = None

    def __init__(self, graph: CSRGraph, n_shards: int):
        graph.validate()
        self.graph = graph
        self.n_shards = n_shards
        self.space = AddressSpace()
        self.memmap = MemoryMap()

        n = graph.n_vertices
        self.offsets_ref = self.space.alloc_array("offsets", n + 1)
        self.neighbors_ref = self.space.alloc_array(
            "neighbors", max(1, graph.n_edges))
        self.memmap.register(self.offsets_ref, graph.offsets)
        self.memmap.register(self.neighbors_ref, graph.neighbors)

        # Double-buffered per-shard fringe ("touched") buffers.
        per_shard = max(1, n)
        self._fringe_arrays = []
        self._fringe_refs = []
        for shard in range(n_shards):
            bufs, refs = [], []
            for half in range(2):
                array = np.zeros(per_shard, dtype=np.int64)
                ref = self.space.alloc_array(
                    f"fringe.{shard}.{half}", per_shard)
                self.memmap.register(ref, array)
                bufs.append(array)
                refs.append(ref)
            self._fringe_arrays.append(bufs)
            self._fringe_refs.append(refs)
        self._write_half = [0] * n_shards
        self._write_count = [0] * n_shards
        self.iterations_run = 0
        self.setup()
        for v in self.initial_fringe():
            self._append_touched(shard_of(v, n_shards), int(v))

    # -- hooks to override ---------------------------------------------------

    def setup(self) -> None:
        """Allocate and register workload state arrays."""
        raise NotImplementedError

    def value_addr(self, ngh: int) -> int:
        """Address fetched by ``drm_val`` for neighbor ``ngh``."""
        raise NotImplementedError

    def initial_fringe(self):
        """Iterable of initially active vertices."""
        raise NotImplementedError

    def vertex_fetch_addrs(self, v: int) -> tuple:
        """Addresses of per-vertex state (``vertex_fetch_words`` of them)."""
        return ()

    def vertex_process(self, ctx, shard: int, v: int, start: int, end: int):
        """Vertex-side work; yields requests; returns ``p0`` or ``None``."""
        return 0
        yield  # pragma: no cover - makes this a generator

    def s1_edge_payload(self, v: int, start: int, end: int, p0):
        return p0

    def edge_extra_addrs(self, e: int) -> tuple:
        """Addresses of extra per-edge words (``edge_fetch_words - 1``)."""
        return ()

    def edge_extra_values(self, e: int) -> tuple:
        """Values of the extra per-edge words (merged variant's loads)."""
        return ()

    def s2_payload(self, ngh: int, extras: tuple, p_edge):
        """Fold ``drm_ngh``'s extra fetched words into the hop payload."""
        return p_edge

    def s3_update(self, ctx, shard: int, ngh: int, value, p_edge):
        raise NotImplementedError

    def at_barrier(self, iteration: int) -> None:
        """Extra control-core work at each iteration boundary."""

    def result(self):
        raise NotImplementedError

    def vertex_extra_ops(self, b: DFGBuilder, v_node):
        """Datapath ops of ``vertex_process`` (for the S1 mapping)."""
        return b.const(0)

    def s3_extra_ops(self, b: DFGBuilder, value_node, payload_node):
        """Datapath ops of ``s3_update`` (for the S3 mapping)."""
        return b.add(value_node, payload_node)

    def s1_extra_edge_ops(self, b: DFGBuilder, e_next) -> tuple:
        """Address nodes of the extra per-edge fetches (S1 mapping)."""
        return ()

    def s2_extra_ops(self, b: DFGBuilder, ngh_node):
        """Datapath combining the hop payload at S2; ``None`` means the
        payload passes through untouched."""
        return None

    def merged_extra_ops(self, b: DFGBuilder, e_next, ngh_node, payload):
        """Merged-variant payload datapath (coupled extra edge loads)."""
        return payload

    # -- next-fringe management ----------------------------------------------

    def _append_touched(self, shard: int, v: int) -> int:
        """Functionally append ``v``; returns the written word's address."""
        half = self._write_half[shard]
        index = self._write_count[shard]
        self._fringe_arrays[shard][half][index] = v
        self._write_count[shard] += 1
        return self._fringe_refs[shard][half].addr(index)

    def push_touched(self, ctx, shard: int, v: int):
        """S3 helper: append ``v`` to the next fringe (one store)."""
        yield ("store", self._append_touched(shard, v))

    def barrier_step(self, iteration: int) -> Optional[list[tuple[int, int]]]:
        """Swap fringe buffers; returns per-shard (count, half) or None.

        ``iteration`` 0 is the kickoff (initial fringe dispatch), which
        runs before any processing, so ``at_barrier`` only fires between
        real iterations.
        """
        if iteration > 0:
            self.at_barrier(iteration)
        counts = list(self._write_count)
        if sum(counts) == 0:
            return None
        if (self.max_iterations is not None
                and self.iterations_run >= self.max_iterations):
            return None
        self.iterations_run += 1
        directives = []
        for shard in range(self.n_shards):
            read_half = self._write_half[shard]
            directives.append((counts[shard], read_half))
            self._write_half[shard] ^= 1
            self._write_count[shard] = 0
        return directives

    def fringe_scan_range(self, shard: int, half: int,
                          count: int) -> tuple[int, int]:
        base = self._fringe_refs[shard][half].addr(0)
        return base, base + count * 8

    # -- queue naming ----------------------------------------------------------

    def q(self, kind: str, shard: int) -> str:
        return f"{self.name}.{kind}@{shard}"

    def stage_name(self, stage: str, shard: int) -> str:
        return f"{self.name}.{stage}@{shard}"

    # -- stage semantics -------------------------------------------------------

    # The stage coroutines yield request tuples directly instead of
    # going through the ctx.* helper sub-generators, and hoist their
    # queue-name strings out of the per-token loops: both would
    # otherwise cost an allocation per simulated token.

    def _s0_semantics(self, shard: int):
        """Process fringe: stream vertices, generate offset/state addrs."""
        offsets = self.offsets_ref
        iter_q = self.q("iter", shard)
        off_in = self.q("off_in", shard)
        fr_in = self.q("fr_in", shard)
        fr_out = self.q("fr_out", shard)

        def run(ctx):
            while True:
                token = yield ("deq", iter_q)
                assert token.is_control
                if token.value == STOP_VALUE:
                    yield ("enq", off_in, STOP_VALUE, True)
                    return
                _, count, half = token.value
                if count:
                    scan = self.fringe_scan_range(shard, half, count)
                    yield ("enq", fr_in, scan, False)
                    for _ in range(count):
                        vtok = yield ("deq", fr_out)
                        v = int(vtok.value)
                        addrs = (offsets.addr(v), offsets.addr(v + 1),
                                 *self.vertex_fetch_addrs(v))
                        yield ("enq", off_in, (*addrs, v), False)
                yield ("enq", off_in, END_ITER, True)

        return run

    def _s1_semantics(self, shard: int):
        """Enumerate neighbors: vertex-side work, then per-edge addrs."""
        neighbors_addr = self.neighbors_ref.addr
        off_out = self.q("off_out", shard)
        ngh_in = self.q("ngh_in", shard)
        # Workloads with edge state take the general path; the common
        # single-word case keeps the tight per-edge loop.
        simple = self.edge_fetch_words == 1
        extra_addrs = self.edge_extra_addrs

        def run(ctx):
            while True:
                token = yield ("deq", off_out)
                if token.is_control:
                    yield ("enq", ngh_in, token.value, True)
                    if token.value == STOP_VALUE:
                        return
                    continue
                start, end = int(token.value[0]), int(token.value[1])
                v = int(token.value[-1])
                p0 = yield from self.vertex_process(ctx, shard, v, start, end)
                if p0 is None:
                    continue
                p_edge = self.s1_edge_payload(v, start, end, p0)
                if simple:
                    for e in range(start, end):
                        yield ("enq", ngh_in,
                               (neighbors_addr(e), p_edge), False)
                else:
                    for e in range(start, end):
                        yield ("enq", ngh_in,
                               (neighbors_addr(e), *extra_addrs(e), p_edge),
                               False)

        return run

    def _s2_semantics(self, shard: int):
        value_addr = self.value_addr
        ngh_out = self.q("ngh_out", shard)
        val_in = self.q("val_in", shard)
        simple = self.edge_fetch_words == 1
        s2_payload = self.s2_payload

        def run(ctx):
            while True:
                token = yield ("deq", ngh_out)
                if token.is_control:
                    yield ("enq", val_in, token.value, True)
                    if token.value == STOP_VALUE:
                        return
                    continue
                if simple:
                    ngh, p_edge = token.value
                    ngh = int(ngh)
                    yield ("enq", val_in,
                           (value_addr(ngh), ngh, p_edge), False)
                else:
                    parts = token.value
                    ngh = int(parts[0])
                    p_out = s2_payload(ngh, parts[1:-1], parts[-1])
                    yield ("enq", val_in,
                           (value_addr(ngh), ngh, p_out), False)

        return run

    def _s3_semantics(self, shard: int):
        n_shards = self.n_shards
        inbox = self.q("inbox", shard)
        barrier = f"{self.name}.barrier"

        def run(ctx):
            ends_left = n_shards
            stops_left = n_shards
            while True:
                token = yield ("deq", inbox)
                if token.is_control:
                    if token.value == STOP_VALUE:
                        stops_left -= 1
                        if stops_left == 0:
                            return
                    else:
                        ends_left -= 1
                        if ends_left == 0:
                            ends_left = n_shards
                            yield ("enq", barrier, ("done", shard), True)
                    continue
                value, ngh, p_edge = token.value
                yield from self.s3_update(ctx, shard, int(ngh), value, p_edge)

        return run

    # -- stage dataflow graphs -------------------------------------------------

    def _s0_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("fringe", shard))
        b.deq(self.q("iter", shard))
        v = b.deq(self.q("fr_out", shard))
        base = b.const(self.offsets_ref.base)
        addr_lo = b.lea(base, v)
        one = b.const(1)
        v1 = b.add(v, one)
        addr_hi = b.lea(base, v1)
        b.enq(self.q("off_in", shard), addr_lo)
        b.enq(self.q("off_in", shard), addr_hi)
        for i in range(self.vertex_fetch_words):
            extra = b.lea(b.const(i), v)
            b.enq(self.q("off_in", shard), extra)
        b.enq(self.q("off_in", shard), v)
        # Scan ranges for the fringe DRM.
        b.enq(self.q("fr_in", shard), v)
        return b.finish(strict=True)

    def _s1_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("enum", shard))
        token = b.deq(self.q("off_out", shard))
        payload = self.vertex_extra_ops(b, token)
        base = b.const(self.neighbors_ref.base)
        e = b.reg("e")
        one = b.const(1)
        e_next = b.add(e, one)
        b.set_reg(e, e_next)
        addr = b.lea(base, e_next)
        b.lt(e_next, token)  # end-of-edge-list test
        extras = self.s1_extra_edge_ops(b, e_next)
        b.enq(self.q("ngh_in", shard), addr)
        for extra in extras:
            b.enq(self.q("ngh_in", shard), extra)
        b.enq(self.q("ngh_in", shard), payload)
        return b.finish(strict=True)

    def _s2_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("fetch", shard))
        ngh = b.deq(self.q("ngh_out", shard))
        base = b.const(0)  # value-array base loaded as a constant register
        addr = b.lea(base, ngh)
        b.enq(self.q("val_in", shard), addr)
        b.enq(self.q("val_in", shard), ngh)
        combined = self.s2_extra_ops(b, ngh)
        if combined is not None:
            b.enq(self.q("val_in", shard), combined)
        return b.finish(strict=True)

    def _s3_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("update", shard))
        token = b.deq(self.q("inbox", shard))
        payload = b.ctrl(token)
        updated = self.s3_extra_ops(b, token, payload)
        fringe_base = b.const(self._fringe_refs[shard][0].base)
        slot = b.reg("next_count")
        one = b.const(1)
        slot_next = b.add(slot, one)
        b.set_reg(slot, slot_next)
        addr = b.lea(fringe_base, slot_next)
        b.store(addr, updated)
        return b.finish(strict=True)

    # -- program assembly --------------------------------------------------------

    def _shard_queue_specs(self, shard: int) -> dict:
        """All queues of one shard, keyed by placement group."""
        q = self.q
        off_words = 3 + self.vertex_fetch_words
        ngh_words = 1 + self.edge_fetch_words
        inbox_producers = tuple(
            f"{self.name}.drm_val@{s}" for s in range(self.n_shards))
        # Edge-carrying queues get larger static shares: they see ~deg
        # times the traffic of the vertex-side queues, and deeper
        # buffering there lengthens stage residences (fewer switches).
        return {
            "s0": [
                QueueSpec(q("iter", shard), weight=0.25, control_only=True),
                QueueSpec(q("fr_in", shard), entry_words=2, weight=0.5),
                QueueSpec(q("fr_out", shard), weight=0.5),
                QueueSpec(q("off_in", shard), entry_words=off_words),
            ],
            "s1": [QueueSpec(q("off_out", shard), entry_words=off_words),
                   QueueSpec(q("ngh_in", shard), entry_words=ngh_words,
                             weight=2.0)],
            "s2": [QueueSpec(q("ngh_out", shard), entry_words=ngh_words,
                             weight=2.0),
                   QueueSpec(q("val_in", shard), entry_words=3, weight=2.0)],
            "s3": [QueueSpec(q("inbox", shard), entry_words=3, weight=2.0,
                             producers=inbox_producers)],
        }

    def _route_fn(self):
        n_shards = self.n_shards
        inboxes = tuple(self.q("inbox", s) for s in range(n_shards))

        def route(values, payload):
            # payload = (ngh, p_edge); owner shard from the neighbor id.
            return inboxes[int(payload[0]) % n_shards]

        return route

    def _shard_drm_specs(self, shard: int) -> dict:
        q = self.q
        return {
            "s0": [
                DRMSpec(f"{self.name}.drm_fr@{shard}", "scan",
                        in_queue=q("fr_in", shard),
                        out_queue=q("fr_out", shard)),
                DRMSpec(f"{self.name}.drm_off@{shard}", "deref",
                        in_queue=q("off_in", shard),
                        out_queue=q("off_out", shard),
                        width=2 + self.vertex_fetch_words, payload=True),
            ],
            "s1": [DRMSpec(f"{self.name}.drm_ngh@{shard}", "deref",
                           in_queue=q("ngh_in", shard),
                           out_queue=q("ngh_out", shard),
                           width=self.edge_fetch_words, payload=True)],
            "s2": [DRMSpec(f"{self.name}.drm_val@{shard}", "deref",
                           in_queue=q("val_in", shard),
                           route=self._route_fn(),
                           route_targets=tuple(
                               q("inbox", s) for s in range(self.n_shards)),
                           width=1, payload=True)],
        }

    def _codegen_descriptor(self, role: str, shard: int):
        """(StageShape, bindings) consumed by :mod:`repro.codegen`.

        The shape carries only what the generated *source* depends on;
        everything instance-specific (queue names, the workload's hook
        methods, the shard id) rides in the bindings and is resolved at
        step-function bind time. ``consumed``/``produced`` restate the
        stage DFG's queue contract so the binder can cross-check the
        descriptor against ``DataflowGraph.queue_signature()`` and fall
        back to interpretation on any mismatch.
        """
        from repro.codegen.emit import StageShape
        from repro.core.pe import StageLivelockError

        q = self.q
        simple = self.edge_fetch_words == 1
        trivial_vp = (type(self).vertex_process
                      is GraphPipelineWorkload.vertex_process)
        shape = StageShape(role, simple_edges=simple, trivial_vp=trivial_vp)
        bindings = {
            "workload": self,
            "shard": shard,
            "STOP_VALUE": STOP_VALUE,
            "END_ITER": END_ITER,
            "LivelockError": StageLivelockError,
        }
        if role == "s0":
            bindings.update(
                q_in=q("iter", shard), q_fr_in=q("fr_in", shard),
                q_fr_out=q("fr_out", shard), q_out=q("off_in", shard),
                consumed=frozenset((q("iter", shard), q("fr_out", shard))),
                produced=frozenset((q("off_in", shard), q("fr_in", shard))))
        elif role == "s1":
            bindings.update(
                q_in=q("off_out", shard), q_out=q("ngh_in", shard),
                consumed=frozenset((q("off_out", shard),)),
                produced=frozenset((q("ngh_in", shard),)))
        elif role == "s2":
            bindings.update(
                q_in=q("ngh_out", shard), q_out=q("val_in", shard),
                consumed=frozenset((q("ngh_out", shard),)),
                produced=frozenset((q("val_in", shard),)))
        else:
            # S3's barrier enqueue targets an external queue that is
            # deliberately outside the stage DFG (control plane).
            bindings.update(
                q_in=q("inbox", shard), q_barrier=f"{self.name}.barrier",
                consumed=frozenset((q("inbox", shard),)),
                produced=frozenset())
        return shape, bindings

    def _shard_stage_specs(self, shard: int) -> dict:
        return {
            "s0": StageSpec(self.stage_name("fringe", shard),
                            self._s0_dfg(shard), self._s0_semantics(shard),
                            codegen=self._codegen_descriptor("s0", shard)),
            "s1": StageSpec(self.stage_name("enum", shard),
                            self._s1_dfg(shard), self._s1_semantics(shard),
                            codegen=self._codegen_descriptor("s1", shard)),
            "s2": StageSpec(self.stage_name("fetch", shard),
                            self._s2_dfg(shard), self._s2_semantics(shard),
                            codegen=self._codegen_descriptor("s2", shard)),
            "s3": StageSpec(self.stage_name("update", shard),
                            self._s3_dfg(shard), self._s3_semantics(shard),
                            codegen=self._codegen_descriptor("s3", shard)),
        }

    def build_program(self, config: SystemConfig, mode: str,
                      variant: str = "decoupled") -> Program:
        if variant == "decoupled":
            return self._build_decoupled(config, mode)
        if variant == "merged":
            return self._build_merged(config, mode)
        raise ValueError(f"unknown variant {variant!r}")

    def _build_decoupled(self, config: SystemConfig, mode: str) -> Program:
        groups = ("s0", "s1", "s2", "s3")
        expected = shards_for_mode(config, mode, len(groups))
        if expected != self.n_shards:
            raise ValueError(
                f"workload built for {self.n_shards} shards; {mode} mode on "
                f"{config.n_pes} PEs needs {expected}")
        pe_programs = []
        for shard in range(self.n_shards):
            queue_specs = self._shard_queue_specs(shard)
            drm_specs = self._shard_drm_specs(shard)
            stage_specs = self._shard_stage_specs(shard)
            if mode == "fifer":
                pe_programs.append(PEProgram(
                    shard=shard,
                    queue_specs=[s for g in groups for s in queue_specs[g]],
                    stage_specs=[stage_specs[g] for g in groups],
                    drm_specs=[d for g in groups
                               for d in drm_specs.get(g, [])],
                ))
            else:
                for group in groups:
                    pe_programs.append(PEProgram(
                        shard=shard,
                        queue_specs=queue_specs[group],
                        stage_specs=[stage_specs[group]],
                        drm_specs=drm_specs.get(group, []),
                    ))
        return self._finish_program(pe_programs)

    # -- merged variant (Fig. 17) -------------------------------------------------

    def _merged_semantics(self, shard: int):
        """S0+S1+S2 fused: coupled loads for fringe/offsets/state/neighbors."""
        q = self.q
        graph = self.graph
        offsets = self.offsets_ref
        neighbors = self.neighbors_ref
        simple = self.edge_fetch_words == 1
        extra_addrs = self.edge_extra_addrs
        extra_values = self.edge_extra_values
        s2_payload = self.s2_payload

        def run(ctx):
            while True:
                token = yield from ctx.deq(q("iter", shard))
                assert token.is_control
                if token.value == STOP_VALUE:
                    yield from ctx.enq(q("val_in", shard), STOP_VALUE,
                                       is_control=True)
                    return
                _, count, half = token.value
                ref = self._fringe_refs[shard][half]
                array = self._fringe_arrays[shard][half]
                for index in range(count):
                    yield from ctx.load(ref.addr(index))
                    v = int(array[index])
                    yield from ctx.load(offsets.addr(v))
                    yield from ctx.load(offsets.addr(v + 1))
                    for addr in self.vertex_fetch_addrs(v):
                        yield from ctx.load(addr)
                    start = int(graph.offsets[v])
                    end = int(graph.offsets[v + 1])
                    p0 = yield from self.vertex_process(ctx, shard, v,
                                                        start, end)
                    if p0 is None:
                        continue
                    p_edge = self.s1_edge_payload(v, start, end, p0)
                    for e in range(start, end):
                        yield from ctx.load(neighbors.addr(e))
                        ngh = int(graph.neighbors[e])
                        if simple:
                            yield from ctx.enq(
                                q("val_in", shard),
                                (self.value_addr(ngh), ngh, p_edge))
                        else:
                            for addr in extra_addrs(e):
                                yield from ctx.load(addr)
                            yield from ctx.enq(
                                q("val_in", shard),
                                (self.value_addr(ngh), ngh,
                                 s2_payload(ngh, extra_values(e), p_edge)))
                yield from ctx.enq(q("val_in", shard), END_ITER,
                                   is_control=True)

        return run

    def _merged_dfg(self, shard: int):
        b = DFGBuilder(self.stage_name("merged", shard))
        b.deq(self.q("iter", shard))
        cursor = b.reg("cursor")
        one = b.const(1)
        nxt = b.add(cursor, one)
        b.set_reg(cursor, nxt)
        fringe = b.const(self._fringe_refs[shard][0].base)
        v = b.load(b.lea(fringe, nxt))
        payload = self.vertex_extra_ops(b, v)
        base = b.const(self.offsets_ref.base)
        start = b.load(b.lea(base, v))
        end = b.load(b.lea(base, b.add(v, one)))
        e = b.reg("e")
        e_next = b.add(e, one)
        b.set_reg(e, e_next)
        b.lt(e_next, end)
        nbase = b.const(self.neighbors_ref.base)
        ngh = b.load(b.lea(nbase, e_next))
        vaddr = b.lea(b.const(0), ngh)
        b.enq(self.q("val_in", shard), vaddr)
        b.enq(self.q("val_in", shard), ngh)
        b.enq(self.q("val_in", shard),
              self.merged_extra_ops(b, e_next, ngh, payload))
        b.lt(start, end)
        return b.finish(strict=True)

    def _build_merged(self, config: SystemConfig, mode: str) -> Program:
        groups = ("m", "s3")
        expected = shards_for_mode(config, mode, len(groups))
        if expected != self.n_shards:
            raise ValueError(
                f"workload built for {self.n_shards} shards; merged {mode} "
                f"on {config.n_pes} PEs needs {expected}")
        q = self.q
        pe_programs = []
        for shard in range(self.n_shards):
            inbox_producers = tuple(
                f"{self.name}.drm_val@{s}" for s in range(self.n_shards))
            merged_queues = [
                QueueSpec(q("iter", shard), control_only=True),
                QueueSpec(q("val_in", shard), entry_words=3),
            ]
            s3_queues = [QueueSpec(q("inbox", shard), entry_words=3,
                                   producers=inbox_producers)]
            merged_stage = StageSpec(self.stage_name("merged", shard),
                                     self._merged_dfg(shard),
                                     self._merged_semantics(shard))
            s3_stage = StageSpec(self.stage_name("update", shard),
                                 self._s3_dfg(shard),
                                 self._s3_semantics(shard))
            drm_val = DRMSpec(f"{self.name}.drm_val@{shard}", "deref",
                              in_queue=q("val_in", shard),
                              route=self._route_fn(),
                              route_targets=tuple(
                                  q("inbox", s)
                                  for s in range(self.n_shards)),
                              width=1, payload=True)
            if mode == "fifer":
                pe_programs.append(PEProgram(
                    shard=shard,
                    queue_specs=merged_queues + s3_queues,
                    stage_specs=[merged_stage, s3_stage],
                    drm_specs=[drm_val]))
            else:
                pe_programs.append(PEProgram(
                    shard=shard, queue_specs=merged_queues,
                    stage_specs=[merged_stage], drm_specs=[drm_val]))
                pe_programs.append(PEProgram(
                    shard=shard, queue_specs=s3_queues,
                    stage_specs=[s3_stage]))
        return self._finish_program(pe_programs)

    def _finish_program(self, pe_programs: list) -> Program:
        barrier = Queue(f"{self.name}.barrier",
                        capacity_words=4 * self.n_shards)
        coordinator = IterationCoordinator(self, barrier)
        return Program(
            name=self.name,
            pe_programs=pe_programs,
            address_space=self.space,
            memmap=self.memmap,
            external_queues={barrier.name: barrier},
            control_poll=coordinator.poll,
            control_poll_idle=coordinator.poll_idle,
            result_fn=self.result,
        )


class IterationCoordinator:
    """The control core's barrier logic (program init, iteration swap,
    teardown — paper Sec. 7.1)."""

    def __init__(self, workload: GraphPipelineWorkload, barrier: Queue):
        self.workload = workload
        self.barrier = barrier
        self.iteration = 0
        self._arrived: set = set()
        self._kicked = False

    def _dispatch(self, system) -> None:
        directives = self.workload.barrier_step(self.iteration)
        self.iteration += 1
        for shard in range(self.workload.n_shards):
            queue = system.resolve_queue(self.workload.q("iter", shard))
            if directives is None:
                queue.enq(STOP_VALUE, is_control=True)
            else:
                count, half = directives[shard]
                queue.enq(("iter", count, half), is_control=True)

    def poll(self, system) -> None:
        if not self._kicked:
            self._kicked = True
            self._dispatch(system)
            return
        while self.barrier.can_deq():
            token = self.barrier.deq()
            self._arrived.add(token.value[1])
        if len(self._arrived) == self.workload.n_shards:
            self._arrived.clear()
            self._dispatch(system)

    def poll_idle(self, system) -> bool:
        """Certify the next :meth:`poll` a no-op (event-engine jumps).

        After the initial kick, a poll only acts when barrier tokens
        are waiting or every shard has already arrived; with neither
        true it drains nothing and dispatches nothing, and only a new
        barrier enqueue — queue activity — can change that.
        """
        return (self._kicked and not self.barrier.can_deq()
                and len(self._arrived) != self.workload.n_shards)
