"""Operation set of the CGRA functional units.

Functional units contain an integer ALU at machine word width capable of
elementary operations (arithmetic, shifts, bitwise ops), plus a few
double-precision FMA units distributed across the fabric (paper Sec. 3).
``DEQ``/``ENQ`` are the fabric-edge queue ports, ``LD``/``ST`` the cache
interface, and ``REG`` a state element that carries values across cycles
(loop counters, accumulators — paper Sec. 3 "Registers also allow the
CGRA to retain program state").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(enum.Enum):
    CONST = "const"     # configuration-time constant
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMP_LT = "cmp_lt"
    CMP_EQ = "cmp_eq"
    SEL = "sel"         # select(cond, a, b)
    LEA = "lea"         # base + index * scale
    LD = "ld"           # coupled load from cache
    ST = "st"           # store to cache
    FADD = "fadd"       # double-precision (uses an FMA unit)
    FMUL = "fmul"       # double-precision (uses an FMA unit)
    FMA = "fma"         # double-precision fused multiply-add
    DEQ = "deq"         # dequeue from an input queue (fabric edge)
    ENQ = "enq"         # enqueue to an output queue (fabric edge)
    REG = "reg"         # loop-carried state register
    CTRL = "ctrl"       # control-value handling (predication/steering)


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one op kind."""

    arity: int          # number of dataflow operands (-1: variable)
    needs_fma: bool     # must be placed on an FMA-capable unit
    is_edge: bool       # sits at the fabric edge (queue I/O)
    is_memory: bool     # uses the cache port


OP_INFO: dict[OpKind, OpInfo] = {
    OpKind.CONST: OpInfo(0, False, False, False),
    OpKind.ADD: OpInfo(2, False, False, False),
    OpKind.SUB: OpInfo(2, False, False, False),
    OpKind.MUL: OpInfo(2, False, False, False),
    OpKind.AND: OpInfo(2, False, False, False),
    OpKind.OR: OpInfo(2, False, False, False),
    OpKind.XOR: OpInfo(2, False, False, False),
    OpKind.SHL: OpInfo(2, False, False, False),
    OpKind.SHR: OpInfo(2, False, False, False),
    OpKind.CMP_LT: OpInfo(2, False, False, False),
    OpKind.CMP_EQ: OpInfo(2, False, False, False),
    OpKind.SEL: OpInfo(3, False, False, False),
    OpKind.LEA: OpInfo(2, False, False, False),
    OpKind.LD: OpInfo(1, False, False, True),
    OpKind.ST: OpInfo(2, False, False, True),
    OpKind.FADD: OpInfo(2, True, False, False),
    OpKind.FMUL: OpInfo(2, True, False, False),
    OpKind.FMA: OpInfo(3, True, False, False),
    OpKind.DEQ: OpInfo(0, False, True, False),
    OpKind.ENQ: OpInfo(1, False, True, False),
    # REG is created without operands; its loop-carried input (a
    # back-edge) is connected afterwards via DataflowGraph.set_reg_input.
    OpKind.REG: OpInfo(0, False, False, False),
    OpKind.CTRL: OpInfo(1, False, False, False),
}


@dataclass(frozen=True)
class Op:
    """An op kind plus an optional attribute (constant, queue name, scale)."""

    kind: OpKind
    attr: object = None

    def __str__(self) -> str:
        if self.attr is None:
            return self.kind.value
        return f"{self.kind.value}({self.attr})"
