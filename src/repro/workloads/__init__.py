"""The evaluated workloads (paper Sec. 7.2).

Graph analytics (BFS, CC, PageRank-Delta, Radii, SSSP) share the
four-stage push pipeline of Fig. 2(a)/Fig. 10; SpMM uses the
merge-intersect pipeline of Fig. 12(a); Silo uses the B+tree lookup
pipeline of Fig. 12(b). SSSP's pipeline is generated from an annotated
kernel by the decoupling front-end (:mod:`repro.frontend`) rather than
written by hand. Every workload module provides:

* a pipeline-parallel :class:`~repro.core.program.Program` builder with
  ``decoupled`` (fully split) and ``merged`` (Fig. 17) variants,
* a golden reference implementation for functional verification, and
* an out-of-order-core kernel for the serial/multicore baselines.

Use :func:`get_workload` to look a module up by its short name.
"""

import importlib

_MODULES = {
    "bfs": "repro.workloads.bfs",
    "cc": "repro.workloads.cc",
    "prd": "repro.workloads.prdelta",
    "radii": "repro.workloads.radii",
    "sssp": "repro.workloads.sssp",
    "spmm": "repro.workloads.spmm",
    "silo": "repro.workloads.silo",
}

WORKLOAD_NAMES = tuple(_MODULES)


def get_workload(name: str):
    """Import and return the workload module for ``name``."""
    try:
        return importlib.import_module(_MODULES[name])
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        ) from None


__all__ = ["get_workload", "WORKLOAD_NAMES"]
