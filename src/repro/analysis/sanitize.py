"""Armable runtime sanitizer: dynamic counterpart of the static passes.

The sanitizer rides the telemetry plumbing. Arming registers it as a
*sampler* on the system's :class:`~repro.stats.telemetry.EventBus`, and
every ``stride``-th quantum boundary (plus arm and disarm) it sweeps
the live simulation state:

* **token conservation** — each queue's occupancy-word counter equals a
  recount of its stored tokens and stays within ``[0, capacity]``;
* **credit conservation** — on credited (multi-producer) channels,
  outstanding credits plus occupancy equal the carved total and no
  share is negative (the Sec. 5.6 invariant);
* **double-buffered config consistency** — a PE holds an incoming
  configuration exactly while a reconfiguration is draining/loading,
  and the remaining time never exceeds the period;
* **monotone clocks** — each PE's ``now`` never moves backwards.

In this default mode no event *sink* is subscribed, so the simulator's
probe sites stay on their zero-cost path and the fast-forward engine
remains eligible: an armed run is bit-identical to an unarmed run and
cheap enough to leave on in CI. ``deep=True`` additionally subscribes
an event sink that audits every ``queue.enq``/``queue.deq`` against a
shadow occupancy model and checks per-source event-time monotonicity —
costlier (event emission turns on) but still bit-identical.

Violations raise :class:`SanitizerError` naming the queue or PE; it
subclasses ``AssertionError`` because a failure means the *simulator*
broke an invariant, not the simulated program.
"""

from __future__ import annotations

from typing import Optional

from repro.stats.telemetry import EventBus, EventSink, TelemetryEvent

_EPS = 1e-9


class SanitizerError(AssertionError):
    """A simulation invariant was violated while the sanitizer was armed."""


class SimulationSanitizer(EventSink):
    """Arms invariant checks on a live :class:`~repro.core.system.System`.

    Usage::

        sanitizer = SimulationSanitizer(deep=False).arm(system)
        result = system.run()
        sanitizer.disarm()
    """

    def __init__(self, deep: bool = False, stride: int = 8):
        if stride < 1:
            raise ValueError(f"stride must be positive, got {stride}")
        self.deep = deep
        # Sweep every ``stride``-th quantum boundary (plus once at arm
        # and disarm). The swept invariants are conservation laws — a
        # leaked word or credit stays leaked — so striding delays
        # detection by at most ``stride - 1`` quanta while keeping the
        # recount cost amortized below the CI overhead budget.
        self.stride = stride
        self._boundaries = 0
        self.system = None
        self.bus: Optional[EventBus] = None
        self.checked_quanta = 0
        self.checked_events = 0
        self._owns_bus = False
        self._pe_clock: dict[int, float] = {}
        self._credit_totals: dict[str, int] = {}
        # deep mode state
        self._shadow_occupancy: dict[str, int] = {}
        self._source_clock: dict[str, float] = {}

    # -- arming ------------------------------------------------------------

    def arm(self, system) -> "SimulationSanitizer":
        if self.system is not None:
            raise RuntimeError("sanitizer is already armed")
        self.system = system
        bus = system.telemetry
        if bus is None:
            bus = EventBus()
            self._owns_bus = True
            system.attach_telemetry(bus)
        self.bus = bus
        bus.add_sampler(self)
        for name, queue in system.queues.items():
            credits = queue.credit_state()
            if credits is not None:
                self._credit_totals[name] = (
                    sum(credits.values()) + queue.occupancy_words)
            if self.deep:
                self._shadow_occupancy[name] = queue.occupancy_words
        for pe in system.pes:
            self._pe_clock[pe.pe_id] = pe.now
        if self.deep:
            bus.subscribe(self)
        self.check(system)
        return self

    def disarm(self) -> None:
        if self.system is None:
            return
        self.check(self.system)  # final sweep over the end state
        bus = self.bus
        if bus is not None:
            if self in bus.samplers:
                bus.samplers.remove(self)
            bus.unsubscribe(self)
        if self._owns_bus:
            self.system.detach_telemetry()
        self.system = None
        self.bus = None
        self._owns_bus = False

    # -- sampler protocol (called once per quantum boundary) ---------------

    def maybe_sample(self, system) -> None:
        self._boundaries += 1
        if self._boundaries % self.stride == 0:
            self.check(system)

    # -- the structural sweep ----------------------------------------------

    def check(self, system) -> None:
        """Sweep all queues and PEs; raises :class:`SanitizerError`."""
        cycle = system.cycle
        for name, queue in system.queues.items():
            occupancy = queue.occupancy_words
            recount = queue.token_words()
            if occupancy != recount:
                raise SanitizerError(
                    f"cycle {cycle}: queue {name!r}: occupancy counter "
                    f"says {occupancy} words but stored tokens total "
                    f"{recount} words")
            if not 0 <= occupancy <= queue.capacity_words:
                raise SanitizerError(
                    f"cycle {cycle}: queue {name!r}: occupancy "
                    f"{occupancy} words outside [0, "
                    f"{queue.capacity_words}]")
            credits = queue.credit_state()
            if credits is not None:
                for producer, share in credits.items():
                    if share < 0:
                        raise SanitizerError(
                            f"cycle {cycle}: queue {name!r}: producer "
                            f"{producer!r} holds {share} credits; a "
                            f"credit went negative")
                total = sum(credits.values()) + occupancy
                expected = self._credit_totals[name]
                if total != expected:
                    raise SanitizerError(
                        f"cycle {cycle}: queue {name!r}: credits + "
                        f"occupancy = {total} words, expected "
                        f"{expected}; a credit leaked")
            if self.deep:
                shadow = self._shadow_occupancy.get(name)
                if shadow is not None and shadow != occupancy:
                    raise SanitizerError(
                        f"cycle {cycle}: queue {name!r}: event-derived "
                        f"occupancy {shadow} words disagrees with the "
                        f"live counter {occupancy}")
        for pe in system.pes:
            if pe.now + _EPS < self._pe_clock[pe.pe_id]:
                raise SanitizerError(
                    f"cycle {cycle}: PE {pe.pe_id}: clock moved "
                    f"backwards ({self._pe_clock[pe.pe_id]} -> "
                    f"{pe.now})")
            self._pe_clock[pe.pe_id] = pe.now
            reconfiguring = pe._reconfig_remaining > _EPS
            if (pe._incoming is not None) != reconfiguring:
                raise SanitizerError(
                    f"cycle {cycle}: PE {pe.pe_id}: double-buffer state "
                    f"inconsistent — incoming config "
                    f"{'present' if pe._incoming is not None else 'absent'} "
                    f"with {pe._reconfig_remaining} reconfiguration "
                    f"cycles remaining")
            if pe._reconfig_remaining > pe._reconfig_period + _EPS:
                raise SanitizerError(
                    f"cycle {cycle}: PE {pe.pe_id}: reconfiguration "
                    f"remaining {pe._reconfig_remaining} exceeds its "
                    f"period {pe._reconfig_period}")
            if pe._incoming is not None and pe._incoming is pe.current:
                raise SanitizerError(
                    f"cycle {cycle}: PE {pe.pe_id}: incoming "
                    f"configuration is the active one; the double "
                    f"buffer would reload the current stage")
        self.checked_quanta += 1

    # -- deep mode: event-level audit --------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        self.checked_events += 1
        kind = event.kind
        if kind == "queue.enq" or kind == "queue.deq":
            name = event.data["queue"]
            delta = event.data["words"]
            shadow = self._shadow_occupancy.get(name, 0)
            shadow += delta if kind == "queue.enq" else -delta
            self._shadow_occupancy[name] = shadow
            if shadow != event.data["occupancy"]:
                raise SanitizerError(
                    f"queue {name!r}: {kind} event reports occupancy "
                    f"{event.data['occupancy']} words but the event "
                    f"stream implies {shadow}")
        if kind == "mem.complete":
            # Future-stamped at issue time (cycle = issue + latency), so
            # it may legitimately precede later-issued events in time.
            return
        last = self._source_clock.get(event.source)
        if last is not None and event.cycle + _EPS < last:
            raise SanitizerError(
                f"source {event.source!r}: event time moved backwards "
                f"({last} -> {event.cycle}, kind {kind!r})")
        self._source_clock[event.source] = event.cycle
