"""Pipeline linter: prove the generated pipeline is feed-forward.

The paper's split rule produces a legal decoupled pipeline only when
data flows strictly forward through the FIFO-connected stages; the only
permitted exceptions are loop-carried registers inside a stage, the
explicit cross-shard queue between fetch and update (Sec. 5.6), and the
control core's iteration edges (Sec. 5.5). This module rejects kernels
that violate those rules with errors naming the offending node:

* **edge-escape** — a value defined inside the edge loop consumed
  outside it would have to flow backwards across its cut;
* **illegal back-edge** — a store to an array that an earlier stage
  reads (only the owner-routed array may be written mid-pipeline: its
  update is the loop-carried exception, serialized at the owner shard);
* **feed-forward proof** — the final stage/queue graph is walked and
  every data channel checked to point downstream.

Structural checks on the generated per-stage DFGs (dangling nodes,
multiply-driven registers, queue wiring) live in :mod:`repro.ir.dfg`;
the lowering pass runs them on every generated stage. The feed-forward
edge classification itself is shared with the static verifier
(:func:`repro.analysis.graph.classify_edge`), which applies the same
rule to hand-written pipelines.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.graph import classify_edge
from repro.frontend.kernel import FrontendError, GraphKernel, Value


class PipelineLintError(FrontendError):
    """The kernel does not lower to a legal feed-forward pipeline."""


_STAGE_OF_DEPTH = {
    1: "S0/S1 (process fringe / enumerate)",
    2: "S2 (fetch)",
    3: "S3 (update)",
}


def compute_levels(kernel: GraphKernel) -> dict:
    """Stage level of every value (vid -> int).

    For a marked load this is its cut depth: 1 + the deepest load its
    index transitively depends on (the paper's "split at each
    long-latency load"). For any other value it is the earliest stage
    where all of its inputs are available.
    """
    level: dict[int, int] = {}

    def visit(v: Value) -> int:
        got = level.get(v.vid)
        if got is not None:
            return got
        if v.op == "load":
            lv = 1 + visit(v.args[0])
        elif v.op == "edge":
            start, end = v.attr
            lv = max(visit(start), visit(end))
        elif v.args:
            lv = max(visit(a) for a in v.args)
        else:
            lv = 0  # const, vertex, epoch
        level[v.vid] = lv
        return lv

    for v in kernel.values:
        visit(v)
    return level


def compute_edgy(kernel: GraphKernel) -> dict:
    """Whether each value depends on the edge induction variable."""
    edgy: dict[int, bool] = {}

    def visit(v: Value) -> bool:
        got = edgy.get(v.vid)
        if got is not None:
            return got
        if v.op == "edge":
            result = True
        else:
            result = any(visit(a) for a in v.args)
        edgy[v.vid] = result
        return result

    for v in kernel.values:
        visit(v)
    return edgy


def _edgy_leaf(v: Value, edgy: dict) -> Value:
    """The first edge-loop-defined leaf under ``v`` (for diagnostics)."""
    if v.op in ("edge", "load"):
        return v
    for a in v.args:
        if edgy[a.vid]:
            return _edgy_leaf(a, edgy)
    return v


def check_edge_escape(kernel: GraphKernel, edgy: dict) -> None:
    """Reject values defined inside the edge loop but used outside it."""

    def fail(user_label: str, expr: Value) -> None:
        leaf = _edgy_leaf(expr, edgy)
        raise PipelineLintError(
            f"kernel {kernel.name!r}: {user_label} uses {leaf.label}, "
            f"which is only defined inside the edge loop — the value is "
            f"not live across its cut. Move the use inside edges() or "
            f"transport the value through a marked load.")

    for v in kernel.values:
        if v.op == "load" and not v.in_edge_loop and edgy[v.args[0].vid]:
            fail(v.label, v.args[0])
    for s in kernel.statements:
        if s.in_edge_loop:
            continue
        exprs = [e for e in (s.index, s.value) if e is not None]
        exprs.extend(s.preds)
        for expr in exprs:
            if edgy[expr.vid]:
                fail(s.label, expr)


def check_back_edges(kernel: GraphKernel, owner_ref, level: dict) -> None:
    """Reject stores that would feed data back to an earlier stage."""
    earliest: dict[str, tuple] = {}
    for v in kernel.values:
        if v.op != "load" or v.attr.owner:
            continue
        depth = level[v.vid]
        ref = v.attr.ref
        if ref.name not in earliest or depth < earliest[ref.name][0]:
            earliest[ref.name] = (depth, v)
    for s in kernel.statements:
        if s.kind != "store":
            continue
        if owner_ref is not None and s.ref is owner_ref:
            continue  # the loop-carried update, serialized at the owner
        if s.ref.name in earliest:
            depth, load = earliest[s.ref.name]
            raise PipelineLintError(
                f"kernel {kernel.name!r}: illegal back-edge — {s.label} at "
                f"the update stage writes {s.ref.name!r}, which "
                f"{load.label} reads at {_STAGE_OF_DEPTH.get(depth, depth)}; "
                f"only the owner-routed array may be written mid-pipeline")


def check_feed_forward(kernel_name: str, edges: Iterable) -> None:
    """Walk the generated stage/queue graph and prove it feed-forward.

    ``edges`` are :class:`repro.frontend.split.QueueEdge` records. Data
    channels must point downstream (DRM round trips sit on a stage
    boundary and may return to their issuing stage); only control
    channels may close the iteration loop, and they must terminate at
    the control core.
    """
    for edge in edges:
        verdict = classify_edge(edge)
        if verdict == "control-escape":
            raise PipelineLintError(
                f"kernel {kernel_name!r}: control channel "
                f"{edge.queue!r} does not terminate at the control "
                f"core ({edge.src} -> {edge.dst})")
        if verdict == "backward":
            raise PipelineLintError(
                f"kernel {kernel_name!r}: queue {edge.queue!r} flows "
                f"backwards ({edge.src} -> {edge.dst}); the pipeline is "
                f"not feed-forward")
