"""Micro-benchmark: telemetry instrumentation overhead when disabled.

The telemetry subsystem's contract is that instrumented hot paths are a
zero-cost no-op when nothing is listening: every publish site is a
single ``if probe is not None`` attribute check, and an attached bus
with no sinks adds only one guarded method call per (rare) event site.
This benchmark measures simulated-run wall time for the same program in
four states —

* ``off``      — no bus attached (every probe is ``None``),
* ``armed``    — bus attached, no sinks subscribed,
* ``profiled`` — bus attached, kind-filtered :class:`WaitForProfiler`
  subscribed (the ``repro profile`` configuration),
* ``on``       — bus attached with a recording sink (full event stream),

and asserts the ``armed`` state stays within 5% of ``off`` and the
``profiled`` state within 10%. The profiler budget holds because its
kind-filtered subscription keeps the bus from even constructing the
per-token queue/cache events that dominate the ``on`` stream.

Methodology: states run interleaved in rotating order so no state
systematically inherits the machine state its predecessor left behind,
and the asserted overhead is the ratio of per-state minimums over all
rounds — scheduler preemption and allocator-layout jitter only ever
add time, so the minimum is the estimator that converges on the true
cost as rounds accumulate.
"""

import time

from bench_common import emit
from repro.config import SystemConfig
from repro.core import System
from repro.datasets.graphs import power_law_graph
from repro.harness import format_table
from repro.profiling import attach_profiler
from repro.stats.telemetry import EventBus, RecordingSink
from repro.workloads import bfs

REPEATS = 10
OVERHEAD_BUDGET = 0.05   # acceptance: < 5% with no sinks attached
PROFILER_BUDGET = 0.10   # acceptance: < 10% with the profiler armed

_STATES = ("off", "armed", "profiled", "on")


def _run_once(state: str) -> float:
    config = SystemConfig()
    graph = power_law_graph(2000, 8.0, seed=3)
    program, _ = bfs.build(graph, config, "fifer")
    system = System(config, program, mode="fifer")
    if state != "off":
        bus = EventBus()
        system.attach_telemetry(bus)
        if state == "profiled":
            attach_profiler(system, bus=bus)
        elif state == "on":
            bus.subscribe(RecordingSink())
    start = time.perf_counter()
    system.run()
    return time.perf_counter() - start


def _measure() -> dict:
    """``state -> [wall time per round]``, states interleaved.

    The order rotates every round so no state systematically inherits
    the machine state its predecessor left behind (e.g. the allocation
    churn of the heavy ``on`` run)."""
    times = {state: [] for state in _STATES}
    for round_no in range(REPEATS):
        shift = round_no % len(_STATES)
        for state in _STATES[shift:] + _STATES[:shift]:
            times[state].append(_run_once(state))
    return times


def run_overhead():
    times = _measure()
    best = {state: min(times[state]) for state in _STATES}
    overhead = {state: best[state] / best["off"] - 1.0
                for state in _STATES if state != "off"}
    labels = {
        "off": "off (no bus)",
        "armed": "armed (bus, no sinks)",
        "profiled": "profiled (wait-for profiler)",
        "on": "on (recording sink)",
    }
    rows = [[labels[state], f"{best[state] * 1e3:.1f}",
             f"{overhead[state]:+.1%}" if state in overhead else "-"]
            for state in _STATES]
    table = format_table(
        ["telemetry state", "best wall time (ms)", "vs off"], rows,
        title=(f"telemetry overhead, bfs on a 2000-vertex power-law graph "
               f"(min of {REPEATS} interleaved rounds; budgets: "
               f"armed < {OVERHEAD_BUDGET:.0%}, profiled < "
               f"{PROFILER_BUDGET:.0%})"))
    emit("telemetry_overhead", table)
    return overhead


def test_telemetry_overhead(benchmark):
    overhead = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    assert overhead["armed"] <= OVERHEAD_BUDGET, (
        f"armed telemetry overhead {overhead['armed']:+.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%}")
    assert overhead["profiled"] <= PROFILER_BUDGET, (
        f"armed-profiler overhead {overhead['profiled']:+.1%} exceeds "
        f"{PROFILER_BUDGET:.0%}")
