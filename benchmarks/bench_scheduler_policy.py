"""Section 5.2 ablation: scheduler policy.

The paper's scheduler keeps the current stage until blocked, then
selects the ready stage with the most work in its input queues; the
authors report round-robin (and finer-grained) policies performed
worse because they increase reconfiguration frequency while total work
stays constant.
"""

from bench_common import (ALL_APPS, REPRESENTATIVE, emit, experiment, point,
                          prefetch)
from repro.harness import format_table, gmean


def run_scheduler_policy():
    prefetch(point(app, REPRESENTATIVE[app], "fifer", policy=policy)
             for app in ALL_APPS for policy in ("most-work", "round-robin"))
    rows = []
    ratios = []
    reconfig_ratio = []
    for app in ALL_APPS:
        code = REPRESENTATIVE[app]
        most_work = experiment(app, code, "fifer")
        round_robin = experiment(app, code, "fifer", policy="round-robin")
        ratio = round_robin.cycles / most_work.cycles
        events_mw = most_work.raw.counters["reconfig_events"]
        events_rr = round_robin.raw.counters["reconfig_events"]
        rows.append([app, f"{ratio:.2f}x",
                     f"{events_mw:.0f}", f"{events_rr:.0f}"])
        ratios.append(ratio)
        reconfig_ratio.append(events_rr / max(1.0, events_mw))
    rows.append(["gmean", f"{gmean(ratios):.2f}x", "", ""])
    table = format_table(
        ["app", "round-robin slowdown", "reconfigs (most-work)",
         "reconfigs (round-robin)"],
        rows,
        title=("Sec. 5.2: round-robin scheduling vs the most-work policy "
               "(paper: alternative policies increase reconfiguration "
               "frequency and perform worse)"))
    emit("scheduler_policy", table)
    return ratios, reconfig_ratio


def test_scheduler_policy(benchmark):
    ratios, reconfigs = benchmark.pedantic(run_scheduler_policy,
                                           rounds=1, iterations=1)
    # Round-robin must not beat most-work overall. (At the scaled-down
    # input sizes the policies are nearly equivalent — stages rarely
    # have more than one ready alternative — so the paper's "clearly
    # worse" does not fully materialize; the direction does.)
    assert gmean(ratios) >= 0.98
