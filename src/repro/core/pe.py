"""Processing element: CGRA fabric engine with dynamic temporal pipelining.

A PE executes one stage configuration at a time. In Fifer mode it
time-multiplexes all of its resident stages: when the current stage
blocks (empty input or full output queue), the scheduler selects the
ready stage with the most queued work and the PE reconfigures
(paper Sec. 5.1/5.2). In static mode (the baseline spatial pipeline,
Sec. 7.1) a PE hosts exactly one stage and simply stalls when blocked.

Cycle accounting follows the CPI-stack buckets of Fig. 14:

* ``issued`` — useful computation (queue I/O through the datapath,
  explicit compute cycles).
* ``stall_mem`` — stalls of coupled (non-decoupled) loads and stores.
* ``stall_queue_full`` / ``stall_queue_empty`` — blocked with no
  runnable stage (merged into the "queue full/empty" bucket).
* ``reconfig`` — reconfiguration periods.
* ``idle`` — blocked with every local input queue empty (waiting on
  other PEs or the control core).

DRMs run concurrently with the fabric within each quantum: they are
configured once and keep performing accesses regardless of which stage
is scheduled (paper Sec. 5.4).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.config import SystemConfig
from repro.core.drm import DRM
from repro.core.reconfig import ReconfigurationModel
from repro.core.scheduler import any_runnable, make_scheduler
from repro.core.stage import StageInstance
from repro.memory.cache import Cache
from repro.queues.queue import Queue
from repro.queues.queue_memory import QueueMemory
from repro.stats.counters import Counters

_EPS = 1e-9


class StageLivelockError(Exception):
    """A stage issued a long run of zero-cost requests without progress."""


class ProcessingElement:
    """One PE: fabric engine, queue memory, L1, DRMs, scheduler."""

    def __init__(self, pe_id: int, config: SystemConfig, l1: Cache,
                 queue_memory: QueueMemory,
                 resolve_queue: Callable[[str], Queue],
                 time_multiplex: bool = True):
        self.pe_id = pe_id
        self.config = config
        self.l1 = l1
        self.queue_memory = queue_memory
        self.resolve_queue = resolve_queue
        self.time_multiplex = time_multiplex
        self.scheduler = make_scheduler(config.scheduler_policy)
        self.reconfig_model = ReconfigurationModel(config, l1)
        self.stages: list[StageInstance] = []
        self.drms: list[DRM] = []
        self.counters = Counters()
        self.now = 0.0
        self.current: Optional[StageInstance] = None
        self._incoming: Optional[StageInstance] = None
        self._reconfig_remaining = 0.0
        self._reconfig_period = 0.0
        # Cycles consumed beyond a quantum's budget (the last request of
        # a quantum may overshoot); repaid from the next quantum so
        # long-run accounting matches wall-clock cycles.
        self._debt = 0.0
        self._last_activation: Optional[float] = None
        self._stage_inputs: dict[str, list[Queue]] = {}
        # Memoized name -> Queue lookups. The queue set is fixed for the
        # lifetime of a System, so the first resolve_queue() answer per
        # name stays valid; the hot paths then pay one dict probe
        # instead of a call into the system.
        self._qcache: dict[str, Queue] = {}
        # Optional telemetry Probe (repro.stats.telemetry); None means
        # instrumentation is disabled and costs one attribute check.
        self.probe = None
        # True when the last quantum was pure stall/idle (no execute,
        # no reconfiguration progress). The event engine uses this as
        # its cheap sleep-candidate filter: only PEs that just wasted a
        # whole quantum are worth the full can_progress() proof.
        self.stalled_full_quantum = False

    # -- construction ------------------------------------------------------

    def attach_stage(self, stage: StageInstance) -> None:
        self.stages.append(stage)
        inputs = []
        for name in stage.spec.dfg.input_queues():
            inputs.append(self.resolve_queue(name))
        self._stage_inputs[stage.name] = inputs

    def attach_drm(self, drm: DRM) -> None:
        if len(self.drms) >= self.config.n_drms:
            raise ValueError(
                f"PE {self.pe_id}: more than {self.config.n_drms} DRMs")
        self.drms.append(drm)

    def finalize(self) -> None:
        """Complete setup; static PEs pin their single stage."""
        if not self.time_multiplex:
            if len(self.stages) != 1:
                raise ValueError(
                    f"static PE {self.pe_id} hosts {len(self.stages)} stages; "
                    f"exactly one is required")
            self.current = self.stages[0]
            self._last_activation = 0.0

    # -- scheduler support ---------------------------------------------------

    def _queue(self, name: str) -> Queue:
        queue = self._qcache.get(name)
        if queue is None:
            queue = self._qcache[name] = self.resolve_queue(name)
        return queue

    def _satisfiable(self, stage: StageInstance, request: tuple) -> bool:
        kind = request[0]
        if kind == "deq" or kind == "peek":
            queue = self._qcache.get(request[1])
            if queue is None:
                queue = self._queue(request[1])
            return bool(queue._tokens)  # == can_deq(), sans the call
        if kind == "enq":
            queue = self._qcache.get(request[1])
            if queue is None:
                queue = self._queue(request[1])
            return queue.can_enq(stage.ctx.producer_key, request[3])
        return True

    def stage_runnable(self, stage: StageInstance) -> bool:
        if stage.done:
            return False
        if not stage.started:
            return True
        if stage.pending is None:
            return False
        return self._satisfiable(stage, stage.pending)

    def stage_input_work(self, stage: StageInstance) -> int:
        return sum(q.occupancy_words for q in self._stage_inputs[stage.name])

    def all_done(self) -> bool:
        return all(stage.done for stage in self.stages)

    def can_progress(self) -> bool:
        """Whether the next quantum could advance anything besides stall
        counters: a reconfiguration in flight, a runnable stage, or a DRM
        with a performable step. Conservative — it may return ``True``
        for a PE that then blocks mid-step, but it must never return
        ``False`` when a token could move. The fast engine's quiescence
        check (:meth:`System._fast_forward`) relies on this to prove
        that future quanta are identical."""
        if self._reconfig_remaining > _EPS:
            return True
        if any_runnable(self):
            return True
        return any(drm.can_progress() for drm in self.drms)

    def blocked_reason(self, stage: StageInstance) -> str:
        """Human-readable account of why ``stage`` is (not) advancing;
        used by deadlock/timeout reports."""
        if stage.done:
            return "done"
        if not stage.started:
            return "not started (runnable)"
        request = stage.pending
        if request is None:
            return "no pending request"
        kind = request[0]
        if kind in ("deq", "peek"):
            queue = self.resolve_queue(request[1])
            if not queue.can_deq():
                return f"blocked on {kind} {request[1]!r} (empty)"
        elif kind == "enq":
            queue = self.resolve_queue(request[1])
            if not queue.can_enq(stage.ctx.producer_key, request[3]):
                words = 1 if request[3] else queue.entry_words
                cause = ("out of credits" if queue.free_words >= words
                         else "full")
                return (f"blocked on enq {request[1]!r} ({cause}; "
                        f"{queue.describe()})")
        return f"runnable ({kind} {request[1]!r})"

    # -- execution -----------------------------------------------------------

    def _try_perform(self, stage: StageInstance, request: tuple):
        """Check satisfiability and satisfy one request in one dispatch.

        Returns ``(result, cycle_cost)``, or ``None`` when the request
        is blocked (empty/full queue) — the fused form of
        :meth:`_satisfiable` + perform that the execute loop uses to
        avoid dispatching on the request twice. Counter updates are
        open-coded dict stores (this is the simulator's hottest path).
        """
        kind = request[0]
        counters = self.counters
        if kind == "deq":
            queue = self._qcache.get(request[1])
            if queue is None:
                queue = self._queue(request[1])
            if not queue._tokens:
                return None
            token = queue.deq()
            cost = stage.io_cost(1, 0, token.is_control)
            counters["issued"] = counters.get("issued", 0.0) + cost
            counters["tokens"] = counters.get("tokens", 0.0) + 1.0
            counters["fabric_ops"] = (counters.get("fabric_ops", 0.0)
                                      + stage.mapping.n_compute_ops)
            return token, cost
        if kind == "enq":
            _, name, value, is_control = request
            queue = self._qcache.get(name)
            if queue is None:
                queue = self._queue(name)
            producer = stage.ctx.producer_key
            if not queue.can_enq(producer, is_control):
                return None
            queue.enq(value, is_control=is_control, producer=producer)
            cost = stage.io_cost(0, 1, is_control)
            counters["issued"] = counters.get("issued", 0.0) + cost
            return None, cost
        if kind == "load":
            latency = self.l1.access(request[1])
            stall = latency - self.l1._latency
            if stall > 0.0:
                counters["stall_mem"] = counters.get("stall_mem", 0.0) + stall
                if (self.probe is not None
                        and "pe.stall" in self.probe.bus.wants):
                    # Timestamped at the start of this quantum slice
                    # (self.now advances only after _execute returns).
                    self.probe.emit("pe.stall", cycle=self.now,
                                    pe=self.pe_id, bucket="stall_mem",
                                    cycles=stall, stage=stage.name)
                return None, stall
            return None, 0.0
        if kind == "store":
            # Stores retire through a write buffer and do not stall the
            # datapath (no consumer depends on them); the access still
            # updates cache state and traffic counts.
            self.l1.access(request[1], write=True)
            return None, 0.0
        if kind == "try_deq":
            queue = self._queue(request[1])
            if not queue._tokens:
                return None, 0.0
            token = queue.deq()
            cost = stage.io_cost(1, 0, token.is_control)
            counters["issued"] = counters.get("issued", 0.0) + cost
            counters["tokens"] = counters.get("tokens", 0.0) + 1.0
            counters["fabric_ops"] = (counters.get("fabric_ops", 0.0)
                                      + stage.mapping.n_compute_ops)
            return token, cost
        if kind == "peek":
            queue = self._queue(request[1])
            if not queue._tokens:
                return None
            return queue.peek(), 0.0
        if kind == "cycles":
            cost = float(request[1])
            speed = stage.speed
            if speed != 1.0:
                cost = cost / speed
            counters["issued"] = counters.get("issued", 0.0) + cost
            return None, cost
        raise ValueError(f"stage {stage.name!r}: unknown request {request!r}")

    def _execute(self, stage: StageInstance, budget: float) -> float:
        """Run ``stage`` until it blocks, finishes, or exhausts ``budget``."""
        spent = 0.0
        zero_streak = 0
        if not stage.started:
            stage.first_request()
        try_perform = self._try_perform
        send = stage.gen.send
        while spent < budget and not stage.done:
            request = stage.pending
            if request is None:
                break
            outcome = try_perform(stage, request)
            if outcome is None:  # blocked
                break
            result, cost = outcome
            spent += cost
            zero_streak = 0 if cost > 0 else zero_streak + 1
            if zero_streak > 1_000_000:
                raise StageLivelockError(
                    f"stage {stage.name!r} on PE {self.pe_id} issued 1M "
                    f"zero-cost requests")
            # Inlined StageInstance.advance (stage.started holds here).
            try:
                stage.pending = send(result)
            except StopIteration:
                stage.pending = None
                stage.done = True
        return spent

    def _classify_blocked(self) -> str:
        """Attribute a blocked cycle to the Fig. 14 buckets.

        Blocked enqueues are "queue full"; blocked dequeues on data
        queues are "queue empty"; a PE whose stages only wait on
        control-only queues (iteration barriers dispatched by the
        control core) is idle.
        """
        data_starved = False
        for stage in self.stages:
            if stage.done or stage.pending is None:
                continue
            kind = stage.pending[0]
            if kind == "enq" and not self._satisfiable(stage, stage.pending):
                return "stall_queue_full"
            if kind in ("deq", "peek") and not self._satisfiable(
                    stage, stage.pending):
                if not self._queue(stage.pending[1]).control_only:
                    data_starved = True
        return "stall_queue_empty" if data_starved else "idle"

    def _blocked_cause(self) -> tuple:
        """``(bucket, queue)`` for a blocked cycle, in one stage scan.

        Same attribution order as :meth:`_classify_blocked`, but also
        names the queue the PE is waiting on: for "queue full" the
        first unsatisfiable enqueue's target, for "queue empty" the
        first starved data queue, for "idle" the first blocked
        control-only dequeue (the barrier the PE sits on). Only called
        from probe emit sites — the uninstrumented path keeps the
        cheaper bucket-only scan.
        """
        starved = None
        fallback = None
        for stage in self.stages:
            if stage.done or stage.pending is None:
                continue
            request = stage.pending
            kind = request[0]
            if kind == "enq":
                if not self._satisfiable(stage, request):
                    return "stall_queue_full", request[1]
            elif kind in ("deq", "peek") and not self._satisfiable(
                    stage, request):
                if not self._queue(request[1]).control_only:
                    if starved is None:
                        starved = request[1]
                elif fallback is None:
                    fallback = request[1]
        if starved is not None:
            return "stall_queue_empty", starved
        return "idle", fallback

    def _begin_reconfiguration(self, incoming: StageInstance) -> None:
        outgoing_depth = (self.current.mapping.depth_cycles
                          if self.current is not None else 0.0)
        period = self.reconfig_model.reconfiguration_period(
            outgoing_depth, incoming.config_addr,
            incoming.mapping.config_bytes)
        if self._last_activation is not None:
            self.counters.add("residence_sum", self.now - self._last_activation)
            self.counters.add("residence_events")
        self.counters.add("reconfig_events")
        self.counters.add("reconfig_sum", period)
        if self.probe is not None:
            if self.current is not None:
                self.probe.emit("stage.deactivate", cycle=self.now,
                                pe=self.pe_id, stage=self.current.name)
            self.probe.emit("reconfig.begin", cycle=self.now, pe=self.pe_id,
                            stage=incoming.name, period=period)
        self._incoming = incoming
        self._reconfig_remaining = period
        self._reconfig_period = period
        if period <= _EPS:
            self._activate()

    def _activate(self) -> None:
        self.current = self._incoming
        self._incoming = None
        self._reconfig_remaining = 0.0
        self._last_activation = self.now
        if self.probe is not None:
            self.probe.emit("reconfig.end", cycle=self.now, pe=self.pe_id,
                            stage=self.current.name)
            self.probe.emit("stage.activate", cycle=self.now, pe=self.pe_id,
                            stage=self.current.name,
                            reconfig_cycles=self._reconfig_period)

    def run_quantum(self, budget: float, fast: bool = False) -> None:
        """Advance this PE (and its DRMs) by ``budget`` cycles.

        DRMs are independent FSMs that run concurrently with the fabric;
        stepping them before *and* after the fabric's slice of the
        quantum approximates that concurrency (tokens the fabric
        produces this quantum can cross a DRM within the same quantum,
        halving the control-propagation latency of the quantum model).

        With ``fast=True``, a blocked PE charges the rest of the
        quantum to its stall bucket in one step instead of per-cycle.
        This is exact: queues and caches only change at quantum
        boundaries (DRM slices bracket the fabric slice), so once
        ``_pick_next`` returns ``None`` nothing can unblock the PE
        before the quantum ends, and the per-cycle loop would tick the
        same bucket every remaining cycle. See docs/performance.md.
        """
        drm_used = [drm.run(budget) for drm in self.drms]
        remaining = float(budget) - self._debt
        self._debt = 0.0
        full = remaining
        self.stalled_full_quantum = False
        guard = 0
        while remaining > _EPS:
            guard += 1
            if guard > 1_000_000:
                raise StageLivelockError(
                    f"PE {self.pe_id}: quantum failed to converge "
                    f"(zero-cost switch livelock?)")
            if self._reconfig_remaining > _EPS:
                step = min(remaining, self._reconfig_remaining)
                self._reconfig_remaining -= step
                remaining -= step
                self.now += step
                self.counters.add("reconfig", step)
                if self._reconfig_remaining <= _EPS:
                    self._activate()
                continue
            if self.all_done():
                self.counters.add("idle", remaining)
                self.now += remaining
                self.stalled_full_quantum = remaining == full
                return
            stage = self.current
            if stage is None or not self.stage_runnable(stage):
                nxt = self._pick_next(stage)
                if nxt is None:
                    if fast:
                        self.stalled_full_quantum = remaining == full
                        remaining = self._stall_fast(remaining)
                        continue
                    if (self.probe is not None
                            and "pe.stall" in self.probe.bus.wants):
                        bucket, blocked_queue = self._blocked_cause()
                        self.counters.add(bucket, 1.0)
                        self.probe.emit("pe.stall", cycle=self.now,
                                        pe=self.pe_id, bucket=bucket,
                                        queue=blocked_queue)
                    else:
                        self.counters.add(self._classify_blocked(), 1.0)
                    remaining -= 1.0
                    self.now += 1.0
                    continue
                if nxt is not stage:
                    if self.probe is not None:
                        self.probe.emit(
                            "sched.switch", cycle=self.now, pe=self.pe_id,
                            **{"from": stage.name if stage else None,
                               "to": nxt.name})
                    self._begin_reconfiguration(nxt)
                    continue
            current = self.current
            step = current.step_fn
            if step is None:
                used = self._execute(current, remaining)
            else:
                # Codegen path: the specialized step-function replays
                # _execute's loop with the request protocol inlined.
                used = step(remaining)
            remaining -= used
            self.now += used
        if remaining < 0:
            self._debt = -remaining
        # Second slice: whatever of the quantum each DRM has not used
        # yet (keeps total DRM throughput at one quantum per quantum).
        for drm, used in zip(self.drms, drm_used):
            if used < budget:
                drm.run(budget - used)

    def _stall_fast(self, remaining: float) -> float:
        """Charge the rest of a quantum's blocked cycles in one step.

        Mirrors the naive per-cycle stall loop exactly: the naive loop
        subtracts 1.0 while ``remaining > _EPS``, so it takes
        ``ceil(remaining - _EPS)`` steps and may leave a fractional
        debt. The bulk add is only taken when both ``now`` and the
        bucket are integral (then ``x + k`` equals k unit increments
        bit-for-bit); otherwise a tight replay loop preserves the exact
        rounding of repeated ``+= 1.0``.
        """
        steps = math.ceil(remaining - _EPS)
        if self.probe is not None and "pe.stall" in self.probe.bus.wants:
            # One aggregated event for the whole blocked span (the
            # naive engine emits one event per cycle). The blocked
            # cause cannot change mid-quantum (queues only move at
            # quantum boundaries), so one classification is exact.
            # ``wants`` is already checked, so publish directly.
            bucket, blocked_queue = self._blocked_cause()
            self.probe.bus.publish(
                "pe.stall", self.probe.source, self.now,
                {"pe": self.pe_id, "bucket": bucket,
                 "cycles": float(steps), "queue": blocked_queue})
        else:
            bucket = self._classify_blocked()
        if self.now.is_integer() and self.counters[bucket].is_integer():
            self.counters.add(bucket, float(steps))
            self.now += float(steps)
        else:
            add = self.counters.add
            for _ in range(steps):
                add(bucket, 1.0)
                self.now += 1.0
        return remaining - float(steps)

    def charge_blocked_quanta(self, n: int, quantum: float,
                              bucket: str) -> None:
        """Repay ``n`` slept quanta of stall cycles to ``bucket``.

        The event engine's deferred-stall ledger: while this PE slept,
        each quantum of the per-quantum loop would have charged the
        whole budget (minus any carried debt) to one unchanging bucket.
        ``bucket`` was captured when the PE went to sleep — it must not
        be recomputed here, because the queue activity that triggered
        the wake can already have flipped the classification.

        Replicates :meth:`run_quantum`'s arithmetic exactly, including
        the all-done fractional path, ``_stall_fast``'s ceil-and-debt
        behavior, and the integrality guards that make the bulk adds
        bit-identical to repeated unit increments.
        """
        if n <= 0:
            return
        quantum = float(quantum)
        total = float(n) * quantum
        if (self._debt == 0.0 and quantum.is_integer()
                and self.now.is_integer()
                and self.counters[bucket].is_integer()
                and total.is_integer()):
            self.counters.add(bucket, total)
            self.now += total
            return
        done = self.all_done()
        for _ in range(n):
            remaining = quantum - self._debt
            self._debt = 0.0
            if remaining <= _EPS:
                # The naive loop body never runs: the carried debt ate
                # the whole quantum (and any overshoot rolls forward).
                if remaining < 0:
                    self._debt = -remaining
                continue
            if done:
                self.counters.add(bucket, remaining)
                self.now += remaining
                continue
            steps = math.ceil(remaining - _EPS)
            if self.now.is_integer() and self.counters[bucket].is_integer():
                self.counters.add(bucket, float(steps))
                self.now += float(steps)
            else:
                add = self.counters.add
                for _ in range(steps):
                    add(bucket, 1.0)
                    self.now += 1.0
            leftover = remaining - float(steps)
            if leftover < 0:
                self._debt = -leftover

    def fast_forward_quanta(self, n: int, quantum: float) -> None:
        """Advance ``n`` quanta while the whole system is quiescent.

        Only called by :meth:`System._fast_forward` after proving no PE
        :meth:`can_progress`; each quantum would charge the full budget
        to one unchanging stall bucket, so the accounting collapses to
        a single bulk add when everything involved is integral.
        """
        if n <= 0:
            return
        bucket = ("idle" if self.all_done() else self._classify_blocked())
        total = float(n) * float(quantum)
        if (self._debt == 0.0 and float(quantum).is_integer()
                and self.now.is_integer()
                and self.counters[bucket].is_integer()
                and total.is_integer()):
            self.counters.add(bucket, total)
            self.now += total
        else:
            for _ in range(n):
                self.run_quantum(quantum, fast=True)

    def _pick_next(self, current: Optional[StageInstance]):
        if not self.time_multiplex:
            stage = self.stages[0]
            return stage if self.stage_runnable(stage) else None
        return self.scheduler.pick(self)

    # -- reporting -----------------------------------------------------------

    @property
    def state(self) -> str:
        """Instantaneous state for samplers: a stage name, ``(reconfig)``,
        ``(done)``, or ``(idle)``."""
        if self.all_done():
            return "(done)"
        if self._reconfig_remaining > _EPS:
            return "(reconfig)"
        if self.current is not None:
            return self.current.name
        return "(idle)"

    @property
    def avg_residence_cycles(self) -> float:
        events = self.counters["residence_events"]
        return self.counters["residence_sum"] / events if events else 0.0

    @property
    def avg_reconfig_cycles(self) -> float:
        events = self.counters["reconfig_events"]
        return self.counters["reconfig_sum"] / events if events else 0.0
