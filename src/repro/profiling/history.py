"""Benchmark regression observatory: diff run manifests over time.

``benchmarks/results/history/`` holds committed baseline manifests
(small deterministic inputs, both engines); ``repro bench-diff
BASELINE CURRENT`` compares a fresh manifest directory against them and
flags regressions:

* **cycles** — simulated cycle counts are seed-deterministic, so any
  drift beyond a tight tolerance is a real behavior change (fail);
* **blame shares** — with profiles in both manifests, a component's
  share of total blame drifting beyond the threshold flags a bottleneck
  shift even when total cycles barely move (fail);
* **wall time** — host-dependent, so only flagged beyond a generous
  ratio, and only ever as a warning.

Runs are keyed by their full coordinates (app, input, system, variant,
seed, engine); baseline-only keys are reported as ``missing`` warnings
(coverage shrank), current-only keys are informational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.stats.manifest import load_manifests

#: Relative cycle drift beyond which a diff fails. Cycles are exactly
#: reproducible for a given (config, seed), so this only needs to absorb
#: float printing, not noise.
DEFAULT_CYCLE_TOL = 0.001
#: Absolute drift in a component's share of total blame (0..1).
DEFAULT_BLAME_TOL = 0.05
#: Current/baseline wall-time ratio beyond which a warning is emitted.
DEFAULT_WALL_RATIO = 2.0

_KEY_FIELDS = ("app", "input", "system", "variant", "seed", "engine")


def manifest_key(manifest: dict) -> tuple:
    return tuple(manifest.get(k) for k in _KEY_FIELDS)


def _key_label(key: tuple) -> str:
    app, code, system, variant, seed, engine = key
    return f"{app}/{code}/{system}/{variant}/seed{seed}/{engine}"


def _blame_shares(manifest: dict) -> dict:
    """Component -> share of total blame, from a manifest's rolled-up
    blame matrix (empty when the run was not profiled)."""
    rollup = (manifest.get("profile") or {}).get("blame_rollup") or {}
    total = sum(rollup.values())
    if total <= 0.0:
        return {}
    return {name: cycles / total for name, cycles in rollup.items()}


@dataclass
class DiffFinding:
    """One flagged difference between baseline and current."""

    severity: str    # "fail" | "warn" | "info"
    kind: str        # "cycles" | "blame" | "wall_time" | "missing" | "new"
    run: str
    message: str

    def render(self) -> str:
        return f"[{self.severity.upper():4}] {self.kind:<9} {self.run}: " \
               f"{self.message}"


@dataclass
class DiffReport:
    """Outcome of one bench-diff invocation."""

    findings: list = field(default_factory=list)   # [DiffFinding]
    n_compared: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity == "fail" for f in self.findings)

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        verdict = "OK" if self.ok else "REGRESSIONS DETECTED"
        lines.append(f"{self.n_compared} run(s) compared, "
                     f"{sum(1 for f in self.findings if f.severity == 'fail')}"
                     f" failure(s), "
                     f"{sum(1 for f in self.findings if f.severity == 'warn')}"
                     f" warning(s): {verdict}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "n_compared": self.n_compared,
            "findings": [
                {"severity": f.severity, "kind": f.kind, "run": f.run,
                 "message": f.message}
                for f in self.findings],
        }


def diff_manifests(baseline: dict, current: dict,
                   cycle_tol: float = DEFAULT_CYCLE_TOL,
                   blame_tol: float = DEFAULT_BLAME_TOL,
                   wall_ratio: float = DEFAULT_WALL_RATIO) -> list:
    """Diff one matched pair of manifests into findings."""
    findings = []
    run = _key_label(manifest_key(current))

    base_cycles = float(baseline.get("cycles", 0.0))
    cur_cycles = float(current.get("cycles", 0.0))
    if base_cycles > 0.0:
        drift = (cur_cycles - base_cycles) / base_cycles
        if abs(drift) > cycle_tol:
            direction = "slower" if drift > 0 else "faster"
            findings.append(DiffFinding(
                "fail", "cycles", run,
                f"{base_cycles:,.0f} -> {cur_cycles:,.0f} cycles "
                f"({abs(drift):.2%} {direction}; tolerance {cycle_tol:.2%})"))

    base_shares = _blame_shares(baseline)
    cur_shares = _blame_shares(current)
    if base_shares and cur_shares:
        for name in sorted(set(base_shares) | set(cur_shares)):
            before = base_shares.get(name, 0.0)
            after = cur_shares.get(name, 0.0)
            if abs(after - before) > blame_tol:
                findings.append(DiffFinding(
                    "fail", "blame", run,
                    f"{name}: blame share {before:.1%} -> {after:.1%} "
                    f"(threshold {blame_tol:.0%})"))

    base_wall = float(baseline.get("wall_time_s", 0.0))
    cur_wall = float(current.get("wall_time_s", 0.0))
    if base_wall > 0.0 and cur_wall / base_wall > wall_ratio:
        findings.append(DiffFinding(
            "warn", "wall_time", run,
            f"{base_wall:.2f}s -> {cur_wall:.2f}s wall time "
            f"({cur_wall / base_wall:.1f}x; threshold {wall_ratio:.1f}x; "
            f"host-dependent, warning only)"))
    return findings


def bench_diff(baseline_dir, current_dir,
               cycle_tol: float = DEFAULT_CYCLE_TOL,
               blame_tol: float = DEFAULT_BLAME_TOL,
               wall_ratio: float = DEFAULT_WALL_RATIO) -> DiffReport:
    """Compare every manifest under two directories; see module doc."""
    for directory in (baseline_dir, current_dir):
        if not Path(directory).is_dir():
            raise ValueError(f"not a directory: {directory}")
    baselines = {manifest_key(m): m for m in load_manifests(baseline_dir)}
    currents = {manifest_key(m): m for m in load_manifests(current_dir)}
    if not baselines:
        raise ValueError(f"no baseline manifests under {baseline_dir}")

    report = DiffReport()
    for key in sorted(baselines, key=str):
        if key not in currents:
            report.findings.append(DiffFinding(
                "warn", "missing", _key_label(key),
                "present in baseline but not in current (coverage shrank)"))
            continue
        report.n_compared += 1
        report.findings.extend(diff_manifests(
            baselines[key], currents[key], cycle_tol=cycle_tol,
            blame_tol=blame_tol, wall_ratio=wall_ratio))
    for key in sorted(set(currents) - set(baselines), key=str):
        report.findings.append(DiffFinding(
            "info", "new", _key_label(key),
            "no baseline yet (commit one to start tracking it)"))
    return report
