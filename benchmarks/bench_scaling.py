"""PE-count scaling study (paper Sec. 1/5.6).

The paper claims Fifer "scales well to large systems by combining
spatial and temporal pipelining": replicated temporal pipelines shard
work across PEs without shared-memory synchronization, and each PE
still load-balances its own stages. This benchmark sweeps the system
from 4 to 32 PEs on BFS and SpMM and reports throughput scaling for
both Fifer and the static pipeline.
"""

from bench_common import ALL_APPS, emit, experiment, point, prefetch
from repro.harness import format_table

PE_COUNTS = (4, 8, 16, 32)
_CASES = tuple((app, code) for app, code in (("bfs", "In"), ("spmm", "GE"))
               if app in ALL_APPS)


def run_scaling():
    prefetch(point(app, code, mode, n_pes=n_pes)
             for app, code in _CASES
             for mode in ("static", "fifer")
             for n_pes in PE_COUNTS)
    rows = []
    scaling = {}
    for app, code in _CASES:
        for mode in ("static", "fifer"):
            cycles = {n_pes: experiment(app, code, mode, n_pes=n_pes).cycles
                      for n_pes in PE_COUNTS}
            speedups = [cycles[PE_COUNTS[0]] / cycles[n] for n in PE_COUNTS]
            rows.append([f"{app}/{code}", mode]
                        + [f"{s:.2f}" for s in speedups])
            scaling[(app, mode)] = speedups
    table = format_table(
        ["app", "system"] + [f"{n} PEs" for n in PE_COUNTS], rows,
        title="PE-count scaling: speedup over the 4-PE configuration")
    emit("scaling", table)
    return scaling


def test_scaling(benchmark):
    scaling = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    for (app, mode), speedups in scaling.items():
        # More PEs never hurt, and 32 PEs provide real scaling.
        assert speedups[-1] > 1.5, (app, mode, speedups)
        assert speedups == sorted(speedups) or speedups[-1] >= speedups[-2] * 0.9
