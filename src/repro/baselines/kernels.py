"""Per-workload kernels for the OOO core model.

Each function returns a ``kernel(machines, barrier)`` suitable for
:func:`repro.baselines.ooo.run_ooo`. Kernels execute the same algorithm
as the golden references, walking the same data layouts (addresses from
a private :class:`AddressSpace`), and charge instruction/memory costs to
the per-core machines. Work is partitioned by element ownership
(``v % n_cores``) with a barrier per iteration, mirroring the
state-of-the-art data-parallel implementations the paper compares
against (PBFS / Ligra / YCSB drivers).

The per-operation instruction counts below are the model's calibration
constants: they approximate the retired x86-64 instructions per element
of tuned implementations (loop control + address arithmetic + compare/
branch + update).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.btree import BPlusTree
from repro.datasets.graphs import CSRGraph
from repro.datasets.matrices import SparseMatrix
from repro.memory.address import AddressSpace

# Instructions charged per unit of work (see module docstring).
VERTEX_INSTRS = 8       # fringe pop, offset loads, loop setup
EDGE_INSTRS = 6         # index load, neighbor test, branch
UPDATE_INSTRS = 4       # CAS/update + fringe push
MERGE_STEP_INSTRS = 7   # two head compares + advance + branch
LOOKUP_NODE_INSTRS = 14  # binary search within a B+tree node
PAIR_INSTRS = 10        # per (i,j) pair setup in SpMM


def _graph_refs(graph: CSRGraph):
    space = AddressSpace()
    offsets = space.alloc_array("offsets", graph.n_vertices + 1)
    neighbors = space.alloc_array("neighbors", max(1, graph.n_edges))
    values = space.alloc_array("values", graph.n_vertices)
    aux = space.alloc_array("aux", graph.n_vertices)
    return offsets, neighbors, values, aux


def bfs_kernel(graph: CSRGraph, source: int, n_cores: int):
    offsets_ref, neighbors_ref, dist_ref, fringe_ref = _graph_refs(graph)

    def kernel(machines, barrier):
        distances = np.full(graph.n_vertices, -1, dtype=np.int64)
        distances[source] = 0
        fringe = [source]
        current = 1
        while fringe:
            slices = [[v for v in fringe if v % n_cores == c]
                      for c in range(n_cores)]
            next_fringe = []
            for core, machine in enumerate(machines):
                for v in slices[core]:
                    machine.instr(VERTEX_INSTRS)
                    machine.load(fringe_ref.addr(v % graph.n_vertices))
                    machine.load(offsets_ref.addr(v))
                    machine.load(offsets_ref.addr(v + 1))
                    for e in range(graph.offsets[v], graph.offsets[v + 1]):
                        machine.instr(EDGE_INSTRS)
                        machine.load(neighbors_ref.addr(e))
                        ngh = int(graph.neighbors[e])
                        machine.load(dist_ref.addr(ngh))
                        if distances[ngh] < 0:
                            distances[ngh] = current
                            machine.instr(UPDATE_INSTRS)
                            machine.store(dist_ref.addr(ngh))
                            next_fringe.append(ngh)
            barrier()
            fringe = next_fringe
            current += 1
        return distances

    return kernel


def cc_kernel(graph: CSRGraph, n_cores: int):
    offsets_ref, neighbors_ref, labels_ref, fringe_ref = _graph_refs(graph)

    def kernel(machines, barrier):
        labels = np.arange(graph.n_vertices, dtype=np.int64)
        fringe = list(range(graph.n_vertices))
        while fringe:
            slices = [[v for v in fringe if v % n_cores == c]
                      for c in range(n_cores)]
            touched = set()
            for core, machine in enumerate(machines):
                for v in slices[core]:
                    machine.instr(VERTEX_INSTRS)
                    machine.load(offsets_ref.addr(v))
                    machine.load(offsets_ref.addr(v + 1))
                    machine.load(labels_ref.addr(v))
                    label = labels[v]
                    for e in range(graph.offsets[v], graph.offsets[v + 1]):
                        machine.instr(EDGE_INSTRS)
                        machine.load(neighbors_ref.addr(e))
                        ngh = int(graph.neighbors[e])
                        machine.load(labels_ref.addr(ngh))
                        if label < labels[ngh]:
                            labels[ngh] = label
                            machine.instr(UPDATE_INSTRS)
                            machine.store(labels_ref.addr(ngh))
                            touched.add(ngh)
            barrier()
            fringe = sorted(touched)
        return labels

    return kernel


def sssp_kernel(graph: CSRGraph, source: int, n_cores: int):
    from repro.frontend.kernels import SSSP_INF, sssp_edge_weights

    space = AddressSpace()
    offsets_ref = space.alloc_array("offsets", graph.n_vertices + 1)
    neighbors_ref = space.alloc_array("neighbors", max(1, graph.n_edges))
    dist_ref = space.alloc_array("dist", graph.n_vertices)
    fringe_ref = space.alloc_array("fringe", graph.n_vertices)
    weights_ref = space.alloc_array("weights", max(1, graph.n_edges))

    def kernel(machines, barrier):
        weights = sssp_edge_weights(graph)
        dist = np.full(graph.n_vertices, SSSP_INF, dtype=np.int64)
        dist[source] = 0
        fringe = [source]
        while fringe:
            slices = [[v for v in fringe if v % n_cores == c]
                      for c in range(n_cores)]
            touched = set()
            for core, machine in enumerate(machines):
                for v in slices[core]:
                    machine.instr(VERTEX_INSTRS)
                    machine.load(fringe_ref.addr(v % graph.n_vertices))
                    machine.load(offsets_ref.addr(v))
                    machine.load(offsets_ref.addr(v + 1))
                    machine.load(dist_ref.addr(v))
                    dv = int(dist[v])
                    for e in range(graph.offsets[v], graph.offsets[v + 1]):
                        machine.instr(EDGE_INSTRS)
                        machine.load(neighbors_ref.addr(e))
                        machine.load(weights_ref.addr(e))
                        ngh = int(graph.neighbors[e])
                        machine.load(dist_ref.addr(ngh))
                        cand = dv + int(weights[e])
                        if cand < dist[ngh]:
                            dist[ngh] = cand
                            machine.instr(UPDATE_INSTRS)
                            machine.store(dist_ref.addr(ngh))
                            touched.add(ngh)
            barrier()
            fringe = sorted(touched)
        return dist

    return kernel


def prd_kernel(graph: CSRGraph, n_cores: int, damping: float,
               epsilon: float, max_iterations: int = 1000):
    offsets_ref, neighbors_ref, acc_ref, rank_ref = _graph_refs(graph)

    def kernel(machines, barrier):
        n = graph.n_vertices
        rank = np.zeros(n, dtype=np.float64)
        delta = np.full(n, 1.0 / n, dtype=np.float64)
        acc = np.zeros(n, dtype=np.float64)
        active = list(range(n))
        for _ in range(max_iterations):
            if not active:
                break
            slices = [[v for v in active if v % n_cores == c]
                      for c in range(n_cores)]
            touched = set()
            for core, machine in enumerate(machines):
                for v in slices[core]:
                    machine.instr(VERTEX_INSTRS + 4)  # + threshold & divide
                    machine.load(offsets_ref.addr(v))
                    machine.load(offsets_ref.addr(v + 1))
                    if abs(delta[v]) <= epsilon:
                        continue
                    rank[v] += delta[v]
                    machine.store(rank_ref.addr(v))
                    degree = graph.out_degree(v)
                    if degree == 0:
                        continue
                    contribution = damping * delta[v] / degree
                    for e in range(graph.offsets[v], graph.offsets[v + 1]):
                        machine.instr(EDGE_INSTRS + 2)  # + FP add
                        machine.load(neighbors_ref.addr(e))
                        ngh = int(graph.neighbors[e])
                        machine.load(acc_ref.addr(ngh))
                        acc[ngh] += contribution
                        machine.store(acc_ref.addr(ngh))
                        touched.add(ngh)
            barrier()
            active = []
            for v in sorted(touched):
                delta[v] = acc[v]
                acc[v] = 0.0
                active.append(v)
        return rank

    return kernel


def radii_kernel(graph: CSRGraph, sources: np.ndarray, n_cores: int,
                 max_iterations=None):
    offsets_ref, neighbors_ref, visited_ref, next_ref = _graph_refs(graph)

    def kernel(machines, barrier):
        n = graph.n_vertices
        visited = np.zeros(n, dtype=np.uint64)
        next_visited = np.zeros(n, dtype=np.uint64)
        radii = np.full(n, -1, dtype=np.int64)
        for bit, src in enumerate(sources):
            visited[src] |= np.uint64(1 << bit)
            radii[src] = 0
        fringe = sorted(int(s) for s in set(int(s) for s in sources))
        iteration = 0
        while fringe:
            iteration += 1
            slices = [[v for v in fringe if v % n_cores == c]
                      for c in range(n_cores)]
            touched = set()
            for core, machine in enumerate(machines):
                for v in slices[core]:
                    machine.instr(VERTEX_INSTRS)
                    machine.load(offsets_ref.addr(v))
                    machine.load(offsets_ref.addr(v + 1))
                    machine.load(visited_ref.addr(v))
                    mask = visited[v]
                    for e in range(graph.offsets[v], graph.offsets[v + 1]):
                        machine.instr(EDGE_INSTRS + 1)  # + OR
                        machine.load(neighbors_ref.addr(e))
                        ngh = int(graph.neighbors[e])
                        machine.load(next_ref.addr(ngh))
                        combined = next_visited[ngh] | mask
                        if combined != next_visited[ngh]:
                            next_visited[ngh] = combined
                            machine.instr(UPDATE_INSTRS)
                            machine.store(next_ref.addr(ngh))
                            touched.add(ngh)
            barrier()
            if max_iterations is not None and iteration >= max_iterations:
                break
            fringe = []
            for v in sorted(touched):
                machines[v % n_cores].instr(4)
                machines[v % n_cores].load(visited_ref.addr(v))
                if next_visited[v] | visited[v] != visited[v]:
                    visited[v] |= next_visited[v]
                    radii[v] = iteration
                    machines[v % n_cores].store(visited_ref.addr(v))
                    fringe.append(v)
        return radii

    return kernel


def spmm_kernel(matrix: SparseMatrix, rows: np.ndarray, cols: np.ndarray,
                n_cores: int):
    space = AddressSpace()
    row_idx_ref = space.alloc_array("row_idx", max(1, matrix.nnz))
    row_val_ref = space.alloc_array("row_val", max(1, matrix.nnz))
    col_idx_ref = space.alloc_array("col_idx", max(1, matrix.nnz))
    col_val_ref = space.alloc_array("col_val", max(1, matrix.nnz))
    out_ref = space.alloc_array("c_out", max(1, len(rows) * len(cols)))

    def kernel(machines, barrier):
        out = {}
        for r_pos, i in enumerate(rows):
            machine = machines[r_pos % n_cores]
            a_lo, a_hi = int(matrix.row_ptr[i]), int(matrix.row_ptr[i + 1])
            for c_pos, j in enumerate(cols):
                machine.instr(PAIR_INSTRS)
                b_lo, b_hi = (int(matrix.col_ptr[j]),
                              int(matrix.col_ptr[j + 1]))
                acc = 0.0
                pa, pb = a_lo, b_lo
                while pa < a_hi and pb < b_hi:
                    machine.instr(MERGE_STEP_INSTRS)
                    machine.load(row_idx_ref.addr(pa))
                    machine.load(col_idx_ref.addr(pb))
                    ca, cb = int(matrix.row_idx[pa]), int(matrix.col_idx[pb])
                    if ca == cb:
                        machine.instr(4)
                        machine.load(row_val_ref.addr(pa))
                        machine.load(col_val_ref.addr(pb))
                        acc += float(matrix.row_val[pa] * matrix.col_val[pb])
                        pa += 1
                        pb += 1
                    elif ca < cb:
                        pa += 1
                    else:
                        pb += 1
                if acc != 0.0:
                    out[(int(i), int(j))] = acc
                    machine.store(out_ref.addr(
                        r_pos * len(cols) + c_pos))
        barrier()
        return out

    return kernel


def silo_kernel(tree: BPlusTree, keys: np.ndarray, n_cores: int):
    space = AddressSpace()
    nodes_ref = space.alloc_array("btree_nodes", tree.total_bytes // 8)
    keys_ref = space.alloc_array("keys", max(1, len(keys)))

    def kernel(machines, barrier):
        found = 0
        checksum = 0
        for pos, key in enumerate(keys):
            machine = machines[pos % n_cores]
            machine.instr(6)
            machine.load(keys_ref.addr(pos))
            node_id = tree.root_id
            while not tree.nodes[node_id].is_leaf:
                machine.instr(LOOKUP_NODE_INSTRS)
                # Pointer chase: each node address depends on the last.
                base = nodes_ref.base + tree.node_offset(node_id)
                machine.load(base, dependent=True)
                machine.load(base + 64, dependent=True)
                node_id, _ = tree.step(node_id, int(key))
            machine.instr(LOOKUP_NODE_INSTRS)
            machine.load(nodes_ref.base + tree.node_offset(node_id),
                         dependent=True)
            value = tree.leaf_lookup(node_id, int(key))
            if value is not None:
                found += 1
                checksum = (checksum + int(value)) & 0xFFFFFFFFFFFF
        barrier()
        return found, checksum

    return kernel
