"""Blocking client for the experiment service.

``ServiceClient`` speaks the server's minimal HTTP/1.0 dialect over a
plain socket — stdlib only, usable from tests, the CLI (``repro
submit``), and benchmarks without pulling in any HTTP library. One
request per connection (the server closes after each response), so the
client is trivially thread-safe: every call opens its own socket.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.stats.manifest import canonical_json


class ServiceError(RuntimeError):
    """The server reported an error (HTTP status or error event)."""

    def __init__(self, message: str, status: Optional[int] = None,
                 detail: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.detail = detail or {}


@dataclass
class SubmitOutcome:
    """Everything one ``/submit`` exchange produced."""

    key: str
    served_from_cache: bool
    manifest: dict
    events: List[dict] = field(default_factory=list)
    engine_stats: Optional[dict] = None
    wall_time_s: Optional[float] = None

    @property
    def phases(self) -> List[str]:
        return [e["phase"] for e in self.events if e["event"] == "phase"]

    @property
    def manifest_bytes(self) -> bytes:
        """The canonical manifest bytes — identical across cache-hit,
        server-computed, and local CLI paths (the manifest is already
        volatile-stripped server-side)."""
        return canonical_json(self.manifest).encode("utf-8")


class ServiceClient:
    """Talk to an :class:`~repro.service.server.ExperimentServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8177,
                 timeout: float = 600.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw HTTP ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        return socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)

    def _request_lines(self, method: str, path: str,
                       body: Optional[bytes] = None):
        """Yield ``(status, parsed-JSON-line)`` for one exchange.

        The server either sends one JSON document (plain endpoints) or
        a stream of newline-delimited JSON events (``/submit``); both
        arrive here as one parsed object per yield.
        """
        body = body or b""
        request = (f"{method} {path} HTTP/1.0\r\n"
                   f"Host: {self.host}\r\n"
                   f"Content-Length: {len(body)}\r\n"
                   f"Connection: close\r\n\r\n").encode("latin-1") + body
        with self._connect() as sock:
            sock.sendall(request)
            with sock.makefile("rb") as stream:
                status_line = stream.readline().decode("latin-1")
                try:
                    status = int(status_line.split(" ", 2)[1])
                except (IndexError, ValueError):
                    raise ServiceError(
                        f"malformed status line {status_line!r}")
                while True:  # drain headers
                    line = stream.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                for raw in stream:
                    text = raw.decode("utf-8").strip()
                    if text:
                        yield status, json.loads(text)

    def _request_json(self, method: str, path: str,
                      body: Optional[dict] = None) -> dict:
        payload = (json.dumps(body).encode("utf-8")
                   if body is not None else None)
        status = 0
        document: dict = {}
        for status, document in self._request_lines(method, path, payload):
            break
        if status != 200:
            raise ServiceError(
                document.get("error", f"HTTP {status} from {path}"),
                status=status, detail=document)
        return document

    # -- endpoints ---------------------------------------------------------

    def health(self) -> dict:
        return self._request_json("GET", "/health")

    def cache_stats(self) -> dict:
        return self._request_json("GET", "/cache/stats")

    def cache_gc(self) -> dict:
        return self._request_json("POST", "/cache/gc")

    def submit(self, spec: dict,
               on_event: Optional[Callable[[dict], None]] = None
               ) -> SubmitOutcome:
        """Submit one experiment spec and wait for its result.

        Streams progress events (``on_event`` sees each as it arrives)
        and returns the final :class:`SubmitOutcome`. Raises
        :class:`ServiceError` on HTTP errors, malformed specs, and
        failed runs (carrying the server's error record in
        ``detail``).
        """
        payload = json.dumps(spec).encode("utf-8")
        events: List[dict] = []
        for status, event in self._request_lines("POST", "/submit", payload):
            if status != 200:
                raise ServiceError(
                    event.get("error", f"HTTP {status} from /submit"),
                    status=status, detail=event)
            events.append(event)
            if on_event is not None:
                on_event(event)
            if event.get("event") == "error":
                raise ServiceError(
                    f"{event.get('error_type', 'Error')}: "
                    f"{event.get('message', '')}", detail=event)
            if event.get("event") == "done":
                return SubmitOutcome(
                    key=event["key"],
                    served_from_cache=event["served_from_cache"],
                    manifest=event["manifest"], events=events,
                    engine_stats=event.get("engine_stats"),
                    wall_time_s=event.get("wall_time_s"))
        raise ServiceError("connection closed before a done/error event")
