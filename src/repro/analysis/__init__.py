"""Static pipeline verification and runtime sanitizing (``repro lint``).

The package runs over a compiled :class:`~repro.core.program.Program`
*before* simulation: channel-graph extraction and queue/deadlock
analysis (:mod:`repro.analysis.graph`, :mod:`repro.analysis.deadlock`),
per-stage DFG dataflow passes (:mod:`repro.analysis.dfg_passes`), and
an armable runtime sanitizer (:mod:`repro.analysis.sanitize`) that
dynamically enforces the same invariants the static passes certify.
See ``docs/analysis.md`` for the pass catalog.
"""

from repro.analysis.report import (AnalysisError, AnalysisReport,  # noqa: F401
                                   Finding)
from repro.analysis.depgraph import (Access, DepEdge,  # noqa: F401
                                     DependenceGraph,
                                     build_dependence_graph,
                                     classify_index, clone_kernel,
                                     strip_annotations)
from repro.analysis.autosplit import (AutosplitError,  # noqa: F401
                                      CutCandidate, PatternMatch,
                                      SplitAdvice, SplitCostModel,
                                      advise_kernel, apply_and_verify,
                                      apply_split, detect_patterns,
                                      infer_split)
from repro.analysis.graph import (CONTROL_CORE, Channel,  # noqa: F401
                                  ChannelGraph, Endpoint,
                                  build_channel_graph, classify_edge,
                                  find_cycle_within,
                                  strongly_connected_components)
from repro.analysis.deadlock import analyze_deadlock  # noqa: F401
from repro.analysis.dfg_passes import analyze_stage  # noqa: F401
from repro.analysis.sanitize import (SanitizerError,  # noqa: F401
                                     SimulationSanitizer)
from repro.analysis.verify import analyze_program  # noqa: F401
