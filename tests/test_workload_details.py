"""Workload-specific behavior tests beyond cross-system equality."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.datasets.btree import BPlusTree
from repro.datasets.graphs import (grid_graph, power_law_graph,
                                   uniform_random_graph)
from repro.datasets.matrices import random_sparse_matrix
from repro.workloads import bfs, cc, prdelta, radii, silo, spmm
from repro.workloads.common import shard_of, shards_for_mode


class TestSharding:
    def test_shard_of_uses_low_bits(self):
        assert shard_of(0, 16) == 0
        assert shard_of(17, 16) == 1
        assert shard_of(31, 16) == 15

    def test_shards_for_mode(self):
        config = SystemConfig(n_pes=16)
        assert shards_for_mode(config, "fifer", 4) == 16
        assert shards_for_mode(config, "static", 4) == 4
        assert shards_for_mode(config, "static", 2) == 8
        with pytest.raises(ValueError):
            shards_for_mode(config, "static", 5)


class TestBFSDetails:
    def test_unreachable_vertices_stay_minus_one(self):
        # Two disconnected cliques; search from the first.
        offsets = np.array([0, 2, 4, 6, 8, 10, 12], dtype=np.int64)
        neighbors = np.array([1, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4],
                             dtype=np.int64)
        from repro.datasets.graphs import CSRGraph
        graph = CSRGraph(offsets, neighbors)
        config = SystemConfig(n_pes=16)
        program, workload = bfs.build(graph, config, "fifer")
        result = System(config, program, mode="fifer").run()
        assert list(result.result[:3]) == [0, 1, 1]
        assert list(result.result[3:]) == [-1, -1, -1]

    def test_iteration_count_tracks_depth(self):
        graph = grid_graph(12, 1)  # a path: max distance 11
        config = SystemConfig(n_pes=16)
        program, workload = bfs.build(graph, config, "fifer")
        result = System(config, program, mode="fifer").run()
        # One dispatched iteration per BFS level, including the final
        # level whose frontier discovers nothing new.
        assert workload.iterations_run == 12
        assert result.result.max() == 11


class TestCCDetails:
    def test_components_labeled_by_minimum(self):
        graph = uniform_random_graph(300, 3.0, seed=11)
        golden = cc.cc_reference(graph)
        components = {}
        for v, label in enumerate(golden):
            components.setdefault(int(label), []).append(v)
        for label, members in components.items():
            assert label == min(members)

    def test_pipeline_on_disconnected_graph(self):
        from repro.datasets.graphs import CSRGraph
        # 8 isolated vertices: every vertex is its own component.
        graph = CSRGraph(np.zeros(9, dtype=np.int64),
                         np.zeros(0, dtype=np.int64))
        config = SystemConfig(n_pes=16)
        program, workload = cc.build(graph, config, "fifer")
        result = System(config, program, mode="fifer").run()
        np.testing.assert_array_equal(result.result, np.arange(8))


class TestPRDDetails:
    def test_ranks_sum_bounded(self):
        graph = power_law_graph(400, 6.0, seed=12)
        ranks = prdelta.prd_reference(graph)
        # Total injected mass is 1; damping keeps totals bounded.
        assert 0 < ranks.sum() < 1.0 / (1.0 - prdelta.DAMPING) + 1

    def test_iteration_cap_respected(self):
        graph = power_law_graph(300, 6.0, seed=13)
        config = SystemConfig(n_pes=16)
        program, workload = prdelta.build(graph, config, "fifer",
                                          max_iterations=3)
        result = System(config, program, mode="fifer").run()
        assert workload.iterations_run == 3
        golden = prdelta.prd_reference(graph, max_iterations=3)
        assert np.allclose(result.result, golden, atol=1e-2 / 300)

    def test_zero_degree_vertices_keep_rank(self):
        from repro.datasets.graphs import CSRGraph
        # v0 -> v1; v2 isolated.
        graph = CSRGraph(np.array([0, 1, 2, 2], dtype=np.int64),
                         np.array([1, 0], dtype=np.int64))
        ranks = prdelta.prd_reference(graph)
        assert ranks[2] == pytest.approx(1.0 / 3.0)


class TestRadiiDetails:
    def test_sources_are_reached(self):
        graph = uniform_random_graph(300, 5.0, seed=14)
        result = radii.radii_reference(graph, k=16, seed=3)
        sources = radii._sample_sources(300, 16, 3)
        # A source starts at radius 0 but its estimate grows as other
        # sources' bits reach it (the estimate is the last round its
        # mask changed); it can never be unreached.
        assert all(result[s] >= 0 for s in sources)

    def test_radii_bounded_by_bfs_distance(self):
        graph = uniform_random_graph(200, 5.0, seed=15)
        sources = radii._sample_sources(200, 8, 3)
        estimates = radii.radii_reference(graph, k=8, seed=3)
        for v in range(200):
            if estimates[v] < 0:
                continue
            best = min(bfs.bfs_reference(graph, int(s))[v] for s in sources
                       if bfs.bfs_reference(graph, int(s))[v] >= 0)
            assert estimates[v] >= best

    def test_iteration_cap_matches_reference(self):
        graph = power_law_graph(250, 5.0, seed=16)
        config = SystemConfig(n_pes=16)
        program, workload = radii.build(graph, config, "fifer",
                                        k=32, max_iterations=2)
        result = System(config, program, mode="fifer").run()
        golden = radii.radii_reference(graph, k=32, max_iterations=2)
        np.testing.assert_array_equal(result.result, golden)


class TestSpMMDetails:
    def test_empty_rows_produce_no_output(self):
        matrix = random_sparse_matrix(50, 0.5, seed=17)  # mostly empty
        rows, cols = spmm.sample_rows_cols(matrix, 20, 20, seed=1)
        golden = spmm.spmm_reference(matrix, rows, cols)
        config = SystemConfig(n_pes=16)
        workload = spmm.SpMMWorkload(matrix, 16, rows, cols)
        program = workload.build_program(config, "fifer")
        result = System(config, program, mode="fifer").run()
        assert result.result == golden

    def test_bitwise_accumulation_order(self):
        """The pipeline accumulates in coordinate order, matching the
        reference bit-for-bit (no tolerance needed)."""
        matrix = random_sparse_matrix(120, 20.0, seed=18)
        rows, cols = spmm.sample_rows_cols(matrix, 16, 16, seed=2)
        golden = spmm.spmm_reference(matrix, rows, cols)
        config = SystemConfig(n_pes=16)
        workload = spmm.SpMMWorkload(matrix, 16, rows, cols)
        program = workload.build_program(config, "fifer")
        result = System(config, program, mode="fifer").run()
        assert result.result == golden  # exact dict equality

    def test_sparser_matrices_reconfigure_more(self):
        """Paper Sec. 8.2: sparse matrices finish intersections rapidly,
        triggering more reconfigurations per unit of work."""
        config = SystemConfig(n_pes=16)
        rates = {}
        for label, nnz in (("sparse", 2.0), ("dense", 30.0)):
            matrix = random_sparse_matrix(250, nnz, seed=19)
            rows, cols = spmm.sample_rows_cols(matrix, 32, 32, seed=3)
            workload = spmm.SpMMWorkload(matrix, 16, rows, cols)
            program = workload.build_program(config, "fifer")
            result = System(config, program, mode="fifer").run()
            rates[label] = (result.counters["reconfig_events"]
                            / result.counters["tokens"])
        assert rates["sparse"] > rates["dense"]


class TestSiloDetails:
    def _tree_and_ops(self, n=5000, n_ops=400):
        keys = np.arange(n, dtype=np.int64) * 2
        tree = BPlusTree(keys, keys + 7, fanout=8)
        rng = np.random.default_rng(20)
        ops = keys[rng.integers(0, n, size=n_ops)].copy()
        ops[::5] += 1  # misses
        return tree, ops

    def test_misses_counted_correctly(self):
        tree, ops = self._tree_and_ops()
        found, checksum = silo.silo_reference(tree, ops)
        assert found == sum(1 for k in ops if tree.lookup(int(k)) is not None)

    def test_queue_memory_recommendation(self):
        config = silo.recommended_config(SystemConfig())
        assert config.queue_mem_bytes == 4 * 1024

    def test_lookup_window_bounded_by_queues(self):
        tree, ops = self._tree_and_ops()
        config = silo.recommended_config(SystemConfig())
        program, workload = silo.build(tree, ops, config, "fifer")
        System(config, program, mode="fifer")  # triggers post_build
        assert all(w >= 1 for w in workload.lookup_window)

    def test_shallow_tree(self):
        """A root-only tree routes lookups straight to the leaf stage."""
        keys = np.array([1, 5, 9], dtype=np.int64)
        tree = BPlusTree(keys, keys * 10, fanout=8)
        assert tree.depth == 1
        ops = np.array([1, 5, 9, 3], dtype=np.int64)
        config = silo.recommended_config(SystemConfig())
        program, workload = silo.build(tree, ops, config, "fifer")
        result = System(config, program, mode="fifer").run()
        assert result.result == silo.silo_reference(tree, ops)
