"""Area model (paper Table 1 and Sec. 6).

The paper synthesizes Fifer's components with Yosys and the 45 nm
FreePDK45 library at 2 GHz, estimating memory arrays with CACTI. We
take the published numbers directly:

==========================================  ==========
Item                                         Area
==========================================  ==========
Reconfigurable fabric, 16x5 func. units     0.91 mm^2
4x double-precision FMA units               0.15 mm^2
16 KB queue SRAM                            0.054 mm^2
4x decoupled reference machines (DRMs)      0.0029 mm^2
32 KB data cache                            0.22 mm^2
Total area (per PE)                         1.34 mm^2
==========================================  ==========

Each PE is 4.6% of the area of a core in the same technology node
(45 nm Nehalem), which is why the evaluation provisions 4 PEs per OOO
core (16 PEs vs. 4 cores).
"""

from __future__ import annotations

PE_AREA_BREAKDOWN_MM2 = {
    "reconfigurable_fabric_16x5": 0.91,
    "fma_units_4x": 0.15,
    "queue_sram_16kb": 0.054,
    "drms_4x": 0.0029,
    "data_cache_32kb": 0.22,
}

# Paper Sec. 6: "each PE is 4.6% of the area of a core in the same
# technology node (45 nm Nehalem)".
PE_FRACTION_OF_CORE = 0.046


def pe_area_mm2() -> float:
    """Total area of one Fifer PE (paper Table 1: 1.34 mm^2)."""
    return sum(PE_AREA_BREAKDOWN_MM2.values())


def ooo_core_area_mm2() -> float:
    """Implied area of one 45 nm OOO core (PE area / 4.6%)."""
    return pe_area_mm2() / PE_FRACTION_OF_CORE


def system_area_mm2(n_pes: int = 0, n_cores: int = 0,
                    llc_mb: float = 8.0) -> float:
    """Area of an evaluated system (PEs or cores plus shared LLC)."""
    llc_area = llc_mb * 2.0  # ~2 mm^2 per MB of LLC at 45 nm (CACTI-like)
    return n_pes * pe_area_mm2() + n_cores * ooo_core_area_mm2() + llc_area
