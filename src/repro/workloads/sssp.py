"""Single-source shortest paths — generated entirely by the front-end.

Unlike the other graph workloads, SSSP has no hand-written pipeline: the
annotated kernel in :mod:`repro.frontend.kernels` is the only
description, and :func:`build` lowers it through the decoupling
front-end. It exercises the edge-state path no hand-written workload
uses — a second word (the edge weight) fetched by ``drm_ngh`` alongside
``neighbors[e]`` and folded into the cross-shard payload at S2.

The pipeline is label-correcting: a relaxation may use a stale (only
ever too-high) source distance, but the update stage re-checks against
the authoritative distance and any vertex whose distance shrinks is
re-pushed, so the run converges to the same fixed point as the serial
reference below (distances only decrease and are bounded).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.graphs import CSRGraph
from repro.frontend.kernels import SSSP_INF, sssp_edge_weights

INF = SSSP_INF


def sssp_reference(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Golden Bellman-Ford-style fringe relaxation; INF = unreachable."""
    weights = sssp_edge_weights(graph)
    dist = np.full(graph.n_vertices, INF, dtype=np.int64)
    dist[source] = 0
    fringe = [source]
    while fringe:
        touched = set()
        for v in fringe:
            dv = int(dist[v])
            for e in range(int(graph.offsets[v]),
                           int(graph.offsets[v + 1])):
                ngh = int(graph.neighbors[e])
                cand = dv + int(weights[e])
                if cand < dist[ngh]:
                    dist[ngh] = cand
                    touched.add(ngh)
        fringe = sorted(touched)
    return dist


def build(graph: CSRGraph, config, mode: str, variant: str = "decoupled",
          source: int = 0):
    """Build a ready-to-run SSSP program via the decoupling front-end."""
    from repro.frontend.kernels import get_frontend

    return get_frontend("sssp").build(graph, config, mode, variant,
                                      source=source)
