"""Figure 17: performance of applications with merged stages.

The paper compares the fully-decoupled pipelines against variants with
judiciously merged stages (source-centric stages fused, coupled loads
reintroduced), on both the static pipeline and Fifer. Expected shape
(Sec. 8.4):

* merging is much worse for the static BFS/CC pipelines (coupling
  reintroduces stalls; the paper reports merged static BFS 4.4x slower);
* SpMM's merged variant (one PE does the whole multiply for its rows)
  wins on very sparse matrices like FS — the inputs that make
  decoupled Fifer switch constantly — and loses on denser ones;
* Silo degrades slightly when merged.
"""

from bench_common import (ALL_APPS, REPRESENTATIVE, app_inputs, emit,
                          experiment, point, prefetch)
from repro.harness import format_table

# SpMM shows its crossover between sparse (FS) and dense (St) inputs.
_CASES = [(app, REPRESENTATIVE[app]) for app in ALL_APPS]
if "spmm" in ALL_APPS:
    _CASES.insert(_CASES.index(("spmm", REPRESENTATIVE["spmm"])) + 1,
                  ("spmm", "St"))


def run_fig17():
    grid = [point(app, code, system, variant=variant)
            for app, code in _CASES
            for system, variant in (("static", "decoupled"),
                                    ("static", "merged"),
                                    ("fifer", "decoupled"))]
    if "spmm" in ALL_APPS:
        grid += [point("spmm", code, "fifer", variant=variant)
                 for code in app_inputs("spmm")
                 for variant in ("decoupled", "merged")]
    prefetch(grid)
    rows = []
    ratios = {}
    for app, code in _CASES:
        base = experiment(app, code, "static").cycles
        merged_static = experiment(app, code, "static",
                                   variant="merged").cycles
        fifer = experiment(app, code, "fifer").cycles
        rows.append([f"{app}/{code}",
                     "1.00",
                     f"{base / merged_static:.2f}",
                     f"{base / fifer:.2f}"])
        ratios[(app, code)] = (base / merged_static, base / fifer)
    table = format_table(
        ["app/input", "decoupled static", "merged static", "Fifer"],
        rows,
        title=("Fig. 17: merged-stage pipelines, speedup relative to the "
               "fully decoupled static pipeline"))

    # Sec. 8.4's closing observation: Fifer picking the coupled pipeline
    # for the inputs that benefit and the decoupled one otherwise is
    # ~12% faster than always-decoupled Fifer across SpMM inputs.
    from repro.harness import gmean
    extra = ""
    if "spmm" in ALL_APPS:
        gains = []
        for code in app_inputs("spmm"):
            decoupled = experiment("spmm", code, "fifer").cycles
            merged = experiment("spmm", code, "fifer",
                                variant="merged").cycles
            gains.append(decoupled / min(decoupled, merged))
        adaptive = gmean(gains)
        extra = "\n\n" + format_table(
            ["metric", "paper", "measured"],
            [["adaptive Fifer vs decoupled Fifer (SpMM gmean)", "1.12x",
              f"{adaptive:.2f}x"]],
            title="Sec. 8.4: per-input best-variant selection")
        ratios["adaptive"] = adaptive
    emit("fig17_merged_stages", table + extra)
    return ratios


def test_fig17_merged_stages(benchmark):
    ratios = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    # Merging re-couples loads: merged static BFS is slower than
    # decoupled static (paper: 4.4x slower).
    assert ratios[("bfs", REPRESENTATIVE["bfs"])][0] < 1.0
    # SpMM merged wins on the sparse FS input and loses on dense St.
    assert ratios[("spmm", "FS")][0] > 1.0
    assert ratios[("spmm", "St")][0] < 1.0
