"""Engine micro-benchmark: naive vs fast vs event wall time.

The fast engine bulk-charges blocked spans instead of ticking them
cycle by cycle; the event engine additionally sleeps provably blocked
PEs on queue wake lists and jumps fully quiescent systems straight to
their deadlock/timeout horizon (docs/performance.md). All three are
cycle- and counter-exact (tests/test_engine_equivalence.py,
tests/test_engine_fuzz.py), so the only difference is wall time — and
the *work counts* this benchmark reports alongside it: per-PE quanta
actually stepped, sleeps/wakes, and quanta slept or jumped over.
The grid is additionally timed with compiled step-functions
(``codegen=True``, ``repro.codegen``) on the fast and event engines;
codegen is equally bit-exact, so its rows land in the same table.

Two regimes are measured, because they answer different questions:

* **Fig. 13 grid** (activity-dominated): the full experiment grid
  end-to-end under each engine. Here wall time is dominated by real
  token movement, which every engine must simulate; the fast engine's
  bulk-stall shortcut already removed the per-cycle stall cost, so the
  event engine's sleep machinery can only trim the residual per-quantum
  bookkeeping of blocked PEs. The honest expectation is parity with
  ``fast`` (the floor below is a non-regression guard), with the event
  engine stepping measurably fewer PE-quanta.
* **Quiescence horizon** (dead-time-dominated): time-to-deadlock of a
  wedged pipeline under an active control core. Real workloads keep a
  control-poll callback installed (the iteration coordinator), which
  pins the fast engine to visiting every quantum until the deadlock
  horizon; the event engine proves every PE asleep, checks the
  program's ``control_poll_idle`` certificate, and pops the horizon
  from its event queue in one step. This is the regime the event
  engine exists for — wall time scales with *events*, and a dead
  machine has none.
"""

import time
from dataclasses import replace

from bench_common import WORKERS, emit
from bench_fig13_performance import fig13_points
from repro.core import ENGINES
from repro.harness import format_table, run_sweep

# Same-build naive-vs-fast floor. The blocked-span shortcut only pays
# where stall cycles dominate (static/fifer points); OOO baseline
# points are engine-neutral, so the grid-wide ratio is well under the
# per-point peaks (~3x on stall-heavy points).
SPEEDUP_FLOOR = 1.15
# The event engine must stay within measurement noise of the fast
# engine on the activity-dominated grid (its sleeps only trim blocked
# PEs' bookkeeping there; see module docstring).
EVENT_PARITY_FLOOR = 0.80
# ...and must beat the fast engine outright where dead time dominates:
# jumping the deadlock horizon instead of visiting every quantum.
EVENT_HORIZON_FLOOR = 2.0
# Compiled step-functions (codegen=True) versus the interpreted
# coroutine path on the same build and engine. Same-build gains are
# bounded by the shared simulation core (DRM transfers, caches); the
# headline >= 1.5x of docs/performance.md is measured against the
# pre-codegen baselines in benchmarks/results/history/, which the
# regression observatory tracks.
CODEGEN_FLOOR = 1.05

_STAT_KEYS = ("quanta", "pe_quanta", "sleeps", "wakes", "slept_quanta",
              "jumped_quanta")


def _timed_sweep(points, engine, codegen=False):
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINES}")
    pts = [replace(p, engine=engine, codegen=codegen) for p in points]
    start = time.perf_counter()
    results = run_sweep(pts, workers=WORKERS)
    return time.perf_counter() - start, results


def _work_counts(results):
    """Aggregate engine_stats over a sweep (CGRA points only; the
    analytic OOO points have no simulation loop)."""
    totals = dict.fromkeys(_STAT_KEYS, 0)
    for result in results:
        stats = getattr(result.raw, "engine_stats", None) or {}
        for key in _STAT_KEYS:
            totals[key] += stats.get(key, 0)
    return totals


def _wedged_horizon_run(engine):
    """Time-to-deadlock of a wedged pipeline under an active control
    core (the iteration-coordinator pattern of every paper workload):
    a consumer waits forever on a queue nothing feeds, and a reactive
    ``control_poll`` pins the fast engine to per-quantum stepping while
    certifying itself idle to the event engine."""
    from repro.config import SystemConfig
    from repro.core import (DeadlockError, PEProgram, Program, StageSpec,
                            System)
    from repro.ir import DFGBuilder
    from repro.memory import AddressSpace
    from repro.memory.memmap import MemoryMap
    from repro.queues import QueueSpec

    pes = []
    for i in range(16):
        def make(i=i):
            b = DFGBuilder(f"hz.snk@{i}")
            x = b.deq(f"hz.never@{i}")
            b.add(x, x)
            return b.finish()

        def stuck_i(ctx, i=i):
            yield from ctx.deq(f"hz.never@{i}")

        pes.append(PEProgram(
            shard=i, queue_specs=[QueueSpec(f"hz.never@{i}")],
            stage_specs=[StageSpec(f"hz.snk@{i}", make(), stuck_i)]))

    program = Program(
        "horizon", pes, AddressSpace(), MemoryMap(),
        control_poll=lambda system: None,
        control_poll_idle=lambda system: True)
    system = System(SystemConfig(n_pes=16), program, mode="fifer")
    start = time.perf_counter()
    try:
        system.run(engine=engine)
    except DeadlockError:
        pass
    else:
        raise AssertionError("wedged pipeline failed to deadlock")
    return time.perf_counter() - start, system.cycle


def run_engine_speedup():
    points = fig13_points()
    # Warm the per-process input caches so no engine pays for
    # synthetic input generation inside its timed window.
    _timed_sweep(points, "fast")
    timings, results = {}, {}
    for engine in ENGINES:
        timings[engine], results[engine] = _timed_sweep(points, engine)
    # Compiled step-functions on the two production engines; the naive
    # reference stays interpreted by definition.
    for engine in ("fast", "event"):
        label = f"{engine}+codegen"
        timings[label], results[label] = _timed_sweep(points, engine,
                                                      codegen=True)
    reference = [r.cycles for r in results["naive"]]
    for label, res in results.items():
        assert [r.cycles for r in res] == reference, label
    speedup = {label: timings["naive"] / timings[label]
               for label in timings}
    counts = {label: _work_counts(res) for label, res in results.items()}
    rows = []
    for label in ("naive", "fast", "event", "fast+codegen",
                  "event+codegen"):
        c = counts[label]
        rows.append([
            label, f"{timings[label]:.2f}", f"{speedup[label]:.2f}x",
            f"{c['pe_quanta']}", f"{c['sleeps']}",
            f"{c['slept_quanta']}", f"{c['jumped_quanta']}"])
    grid_table = format_table(
        ["engine", "wall time (s)", "speedup", "pe-quanta stepped",
         "sleeps", "quanta slept", "quanta jumped"], rows,
        title=(f"fig13 grid ({len(points)} experiments) end-to-end wall "
               f"time and work counts by simulation engine, same build "
               f"(floors: fast/naive >= {SPEEDUP_FLOOR}x, event/fast >= "
               f"{EVENT_PARITY_FLOOR}x, fast+codegen/fast >= "
               f"{CODEGEN_FLOOR}x)"))

    horizon = {}
    for engine in ENGINES:
        wall, cycles = _wedged_horizon_run(engine)
        horizon[engine] = wall
    horizon_rows = [
        [engine, f"{horizon[engine]*1e3:.1f}",
         f"{horizon['naive'] / horizon[engine]:.1f}x",
         f"{horizon['fast'] / horizon[engine]:.2f}x"]
        for engine in ("naive", "fast", "event")]
    horizon_table = format_table(
        ["engine", "wall time (ms)", "vs naive", "vs fast"], horizon_rows,
        title=("time-to-deadlock, wedged 16-PE pipeline with an active "
               "control core (the regime where wall time is all dead "
               f"quanta; floor: event/fast >= {EVENT_HORIZON_FLOOR}x)"))

    emit("engine_speedup", grid_table + "\n\n" + horizon_table)
    return (speedup["fast"], timings["fast"] / timings["event"],
            horizon["fast"] / horizon["event"],
            timings["fast"] / timings["fast+codegen"])


def test_engine_speedup(benchmark):
    (fast_speedup, event_vs_fast, horizon_vs_fast,
     codegen_vs_interp) = benchmark.pedantic(
        run_engine_speedup, rounds=1, iterations=1)
    assert fast_speedup >= SPEEDUP_FLOOR, (
        f"fast engine speedup {fast_speedup:.2f}x is under the "
        f"{SPEEDUP_FLOOR}x floor")
    assert event_vs_fast >= EVENT_PARITY_FLOOR, (
        f"event engine at {event_vs_fast:.2f}x of fast on the "
        f"activity-dominated grid, under the {EVENT_PARITY_FLOOR}x "
        f"parity floor")
    assert horizon_vs_fast >= EVENT_HORIZON_FLOOR, (
        f"event engine horizon jump at {horizon_vs_fast:.2f}x of fast, "
        f"under the {EVENT_HORIZON_FLOOR}x floor")
    assert codegen_vs_interp >= CODEGEN_FLOOR, (
        f"compiled step-functions at {codegen_vs_interp:.2f}x of the "
        f"interpreted fast engine, under the {CODEGEN_FLOOR}x floor")
