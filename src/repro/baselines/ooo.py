"""Analytic timing model for out-of-order cores (paper Sec. 7.1).

The paper models serial and 4-core Skylake-like OOO systems with a
Pin-based cycle-level simulator. We substitute an analytic
per-element model (see DESIGN.md): each workload's kernel walks the
same data structures, issuing memory accesses into a simulated private
L1 + L2 over a shared LLC and counting retired instructions. Cycles are

    instructions / effective_ipc  +  sum(miss_stall / MLP)

where the memory-level-parallelism divisor depends on whether the load
is part of a dependent chain (pointer chasing: MLP ~ 1) or independent
(the OOO window overlaps several misses). The multicore partitions work
across 4 cores with a per-iteration barrier; its time per iteration is
the maximum over cores plus the barrier cost.

This captures the phenomenon the evaluation keys on: irregular
workloads on OOO cores are bound by dependent misses and limited MLP,
not by issue width (paper Sec. 8.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig, MemoryConfig, OOOConfig
from repro.memory.cache import Cache, MainMemory


@dataclass
class OOOResult:
    """Outcome of one OOO run."""

    cycles: float
    instructions: float
    n_cores: int
    result: object
    l1_stats: list[dict] = field(default_factory=list)
    llc_stats: dict = field(default_factory=dict)
    mem_stats: dict = field(default_factory=dict)
    barriers: int = 0
    issue_cycles: float = 0.0
    mem_stall_cycles: float = 0.0
    sync_cycles: float = 0.0

    def merged_cpi_stack(self) -> dict:
        """Cycle breakdown in the Fig. 14 style, summed over cores."""
        return {
            "issued": self.issue_cycles,
            "stall_mem": self.mem_stall_cycles,
            "queue": 0.0,
            "reconfig": 0.0,
            "idle": self.sync_cycles,
        }


class OOOMachine:
    """One core's accounting context, handed to workload kernels."""

    def __init__(self, config: OOOConfig, l1: Cache, l2: Cache):
        self.config = config
        self.l1 = l1
        self.l2 = l2
        self.instructions = 0.0
        self.stall_cycles = 0.0   # memory stalls
        self.sync_cycles = 0.0    # barrier waits

    def instr(self, n: float = 1.0) -> None:
        self.instructions += n

    def load(self, addr: int, dependent: bool = False) -> None:
        latency = self.l1.access(addr)
        miss = max(0.0, latency - self.l1.config.latency)
        if miss:
            mlp = (self.config.mlp_dependent if dependent
                   else self.config.mlp_independent)
            self.stall_cycles += miss / mlp

    def store(self, addr: int) -> None:
        # Stores retire through the store buffer; traffic only.
        self.l1.access(addr, write=True)

    @property
    def cycles(self) -> float:
        return (self.instructions / self.config.effective_ipc
                + self.stall_cycles + self.sync_cycles)

    def checkpoint(self) -> float:
        """Current cycle count (used for per-iteration maxima)."""
        return self.cycles


def build_ooo_machines(n_cores: int, config: OOOConfig,
                       mem_config: MemoryConfig):
    """Private L1+L2 per core over a shared LLC and main memory."""
    llc_config = CacheConfig(config.llc_per_core_bytes * n_cores, 16, 40)
    memory = MainMemory(mem_config)
    memory.begin_quantum(10 ** 12)  # bandwidth effectively unmodeled here
    llc = Cache("ooo.llc", llc_config, memory)
    machines = []
    for core in range(n_cores):
        l2 = Cache(f"ooo.l2.{core}", config.l2, llc)
        l1 = Cache(f"ooo.l1.{core}", config.l1, l2)
        machines.append(OOOMachine(config, l1, l2))
    return machines, llc, memory


def run_ooo(kernel, n_cores: int = 1, ooo_config: OOOConfig = None,
            mem_config: MemoryConfig = None) -> OOOResult:
    """Run a workload kernel on ``n_cores`` OOO cores.

    ``kernel(machines, barrier)`` executes the algorithm, charging costs
    to the per-core machines and calling ``barrier()`` at iteration
    boundaries; it returns the functional result. ``barrier()`` aligns
    all cores to the slowest one plus the synchronization cost.
    """
    ooo_config = ooo_config or OOOConfig()
    mem_config = mem_config or MemoryConfig()
    machines, llc, memory = build_ooo_machines(n_cores, ooo_config,
                                               mem_config)
    barriers = [0]

    def barrier() -> None:
        barriers[0] += 1
        slowest = max(m.cycles for m in machines)
        for machine in machines:
            # Fast cores wait: lift their cycle floor to the barrier.
            gap = slowest - machine.cycles
            if gap > 0:
                machine.sync_cycles += gap
            machine.sync_cycles += (ooo_config.barrier_cycles
                                    if n_cores > 1 else 0)

    result = kernel(machines, barrier)
    total_cycles = max(m.cycles for m in machines)
    return OOOResult(
        cycles=total_cycles,
        instructions=sum(m.instructions for m in machines),
        n_cores=n_cores,
        result=result,
        l1_stats=[{"hits": m.l1.hits, "misses": m.l1.misses,
                   "hit_rate": m.l1.hit_rate} for m in machines],
        llc_stats={"hits": llc.hits, "misses": llc.misses},
        mem_stats={"reads": memory.reads, "writes": memory.writes,
                   "bytes": memory.bytes_transferred},
        barriers=barriers[0],
        issue_cycles=sum(m.instructions / ooo_config.effective_ipc
                         for m in machines),
        mem_stall_cycles=sum(m.stall_cycles for m in machines),
        sync_cycles=sum(m.sync_cycles for m in machines),
    )
