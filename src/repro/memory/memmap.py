"""Functional memory view: address -> value over registered numpy arrays.

Decoupled reference machines perform loads on a stage's behalf (paper
Sec. 5.4); they receive raw addresses, so they need a way to resolve an
address to the value stored there. ``MemoryMap`` binds each allocated
region's :class:`~repro.memory.address.ArrayRef` to its backing numpy
array and resolves reads/writes by bisecting the sorted region bases.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.memory.address import ArrayRef


class MemoryMapError(Exception):
    """Address does not fall in any registered region."""


class MemoryMap:
    """Address-to-value resolution over registered arrays."""

    def __init__(self):
        self._bases: list[int] = []
        self._entries: list[tuple[ArrayRef, Any]] = []
        # One-entry locality cache: (base, end, elem_bytes, ref, array).
        # Streams of addresses hit the same region almost always, so the
        # common case is two comparisons instead of a bisect. Regions
        # are never unregistered, so a cached entry cannot go stale.
        self._last = (1, 0, 1, None, None)

    def register(self, ref: ArrayRef, array) -> None:
        """Bind ``array`` (numpy or any indexable) to region ``ref``."""
        index = bisect.bisect_left(self._bases, ref.base)
        if index < len(self._bases) and self._bases[index] == ref.base:
            raise MemoryMapError(f"region at {ref.base:#x} already registered")
        self._bases.insert(index, ref.base)
        self._entries.insert(index, (ref, array))

    def _resolve(self, addr: int) -> tuple[ArrayRef, Any, int]:
        base, end, ebytes, ref, array = self._last
        if base <= addr < end:
            return ref, array, (addr - base) // ebytes
        index = bisect.bisect_right(self._bases, addr) - 1
        if index >= 0:
            ref, array = self._entries[index]
            base = ref.region.base
            offset = addr - base
            size = ref.region.size
            if offset < size:
                ebytes = ref.elem_bytes
                self._last = (base, base + size, ebytes, ref, array)
                return ref, array, offset // ebytes
        raise MemoryMapError(f"address {addr:#x} is unmapped")

    def read(self, addr: int):
        base, end, ebytes, ref, array = self._last
        if base <= addr < end:
            return array[(addr - base) // ebytes]
        ref, array, elem = self._resolve(addr)
        return array[elem]

    def write(self, addr: int, value) -> None:
        base, end, ebytes, ref, array = self._last
        if base <= addr < end:
            array[(addr - base) // ebytes] = value
            return
        ref, array, elem = self._resolve(addr)
        array[elem] = value

    def elem_bytes_at(self, addr: int) -> int:
        ref, _, _ = self._resolve(addr)
        return ref.elem_bytes
