"""A thin counter map with dict-like access and merging."""

from __future__ import annotations


class Counters(dict):
    """Named floating-point counters (missing names read as zero).

    Subclasses ``dict`` so the hot-path ``add`` is a single hashed
    store; ``__missing__`` keeps absent names reading as zero without
    inserting them.
    """

    __slots__ = ()

    def __missing__(self, name: str) -> float:
        return 0.0

    def add(self, name: str, amount: float = 1.0) -> None:
        self[name] = self.get(name, 0.0) + amount

    def merge(self, other: "Counters") -> None:
        get = self.get
        for name, value in dict.items(other):
            self[name] = get(name, 0.0) + value

    def total(self) -> float:
        """Sum of all counter values."""
        return sum(self.values())

    def items(self):
        """``(name, value)`` pairs in sorted-name order (deterministic
        for exporters); missing names still read as zero elsewhere."""
        return sorted(dict.items(self))

    def scaled(self, factor: float) -> "Counters":
        """A new ``Counters`` with every value multiplied by ``factor``."""
        scaled = Counters()
        for name, value in dict.items(self):
            scaled[name] = value * factor
        return scaled

    def as_dict(self) -> dict[str, float]:
        return dict(dict.items(self))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.6g}" for k, v in sorted(dict.items(self)))
        return f"Counters({inner})"
