"""Differential suite: the fast and event engines must be cycle-exact.

The fast engine (``engine="fast"``) bulk-charges blocked spans instead
of ticking them cycle by cycle; the event engine (``engine="event"``)
additionally sleeps provably blocked PEs on queue wake lists and
settles their stall cycles lazily (docs/performance.md). These tests
lock both down against the naive per-cycle reference: for every
workload, final cycle counts, per-PE counters, CPI stacks, cache and
memory statistics, functional results, and sampled telemetry series
must be *identical* — not approximately equal — under all engines.

Truncated runs matter as much as completed ones: a
:class:`DeadlockError` or :class:`SimulationTimeout` raised mid-flight
exercises the engines' finalize/clamping paths (the event engine must
settle every sleeping PE's deferred-stall ledger before raising), so
the suite also asserts that interrupted simulations leave bit-identical
state and raise byte-identical reports.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import (DeadlockError, ENGINES, PEProgram, Program,
                        StageSpec, System, STOP_VALUE)
from repro.core.system import SimulationTimeout
from repro.harness import prepare_input, run_experiment
from repro.ir import DFGBuilder
from repro.memory import AddressSpace
from repro.memory.memmap import MemoryMap
from repro.queues import QueueSpec
from repro.stats.telemetry import EventBus, PeriodicSampler

# One representative input per workload, scaled down so the naive
# engine stays affordable. silo ignores scale (fixed tree/op counts).
_CASES = [
    ("bfs", "Hu", 0.1),
    ("cc", "Ci", 0.08),
    ("prd", "Hu", 0.08),
    ("radii", "In", 0.08),
    ("sssp", "Hu", 0.1),
    ("spmm", "GE", 0.1),
    ("silo", "YC", 1.0),
]

# The codegen axis: every differential case runs both with the
# interpreted coroutine path and with compiled step-functions
# (System.run(codegen=True)); both must be bit-identical.
_CODEGEN = pytest.mark.parametrize(
    "codegen", [False, True], ids=["interp", "codegen"])


@pytest.fixture(scope="module")
def prepared_inputs():
    return {(app, code): prepare_input(app, code, scale=scale)
            for app, code, scale in _CASES}


def _same_result(a, b):
    if isinstance(a, dict):
        return (set(a) == set(b)
                and all(np.array_equal(a[k], b[k]) for k in a))
    if isinstance(a, tuple):
        return a == b
    return np.array_equal(a, b)


def _assert_runs_identical(runs):
    """Every engine's run must match the naive per-cycle reference."""
    naive = runs["naive"]
    for engine, run in runs.items():
        if engine == "naive":
            continue
        assert run.cycles == naive.cycles, engine
        assert [c.as_dict() for c in run.pe_counters] == \
            [c.as_dict() for c in naive.pe_counters], engine
        assert run.cpi_stacks() == naive.cpi_stacks(), engine
        assert run.l1_stats == naive.l1_stats, engine
        assert run.llc_stats == naive.llc_stats, engine
        assert run.mem_stats == naive.mem_stats, engine
        assert _same_result(run.result, naive.result), engine


@_CODEGEN
@pytest.mark.parametrize("app,code,scale", _CASES)
def test_engines_identical_fifer(app, code, scale, codegen,
                                 prepared_inputs):
    prepared = prepared_inputs[(app, code)]
    runs = {engine: run_experiment(app, code, "fifer", prepared=prepared,
                                   engine=engine, codegen=codegen)
            for engine in ENGINES}
    _assert_runs_identical({e: r.raw for e, r in runs.items()})
    for engine in ENGINES:
        assert runs[engine].engine == engine
        assert runs[engine].raw.engine == engine


@_CODEGEN
@pytest.mark.parametrize("app,code,scale", [("bfs", "Hu", 0.1),
                                            ("spmm", "GE", 0.1)])
def test_engines_identical_static(app, code, scale, codegen,
                                  prepared_inputs):
    prepared = prepared_inputs[(app, code)]
    runs = {engine: run_experiment(app, code, "static", prepared=prepared,
                                   engine=engine, codegen=codegen)
            for engine in ENGINES}
    _assert_runs_identical({e: r.raw for e, r in runs.items()})


@pytest.mark.parametrize("app,code,scale", _CASES)
def test_codegen_matches_interpreted(app, code, scale, prepared_inputs):
    """Compiled step-functions reproduce the interpreted run exactly —
    cycles, counters, CPI stacks, cache/memory stats, and results —
    not just agree across engines (the codegen-parametrized tests)."""
    prepared = prepared_inputs[(app, code)]
    interp = run_experiment(app, code, "fifer", prepared=prepared,
                            engine="fast", codegen=False)
    compiled = run_experiment(app, code, "fifer", prepared=prepared,
                              engine="fast", codegen=True)
    # _assert_runs_identical compares everything against key "naive";
    # here the interpreted run is the reference.
    _assert_runs_identical({"naive": interp.raw, "codegen": compiled.raw})


def test_sampled_series_identical(prepared_inputs):
    """With a periodic sampler attached, the shortcut engines must
    still visit every quantum boundary (the event engine falls back to
    exact replay): the sampled time series (queue occupancies, PE
    states, cumulative CPI stacks) match point for point, not just the
    final totals."""
    prepared = prepared_inputs[("bfs", "Hu")]
    samples = {}
    for engine in ENGINES:
        bus = EventBus()
        sampler = bus.add_sampler(PeriodicSampler(256.0, publish=False))
        run_experiment("bfs", "Hu", "fifer", prepared=prepared,
                       engine=engine, telemetry=bus)
        samples[engine] = sampler.samples
    assert samples["fast"] == samples["naive"]
    assert samples["event"] == samples["naive"]


def test_run_rejects_unknown_engine(prepared_inputs):
    with pytest.raises(ValueError, match="engine"):
        run_experiment("bfs", "Hu", "fifer",
                       prepared=prepared_inputs[("bfs", "Hu")],
                       engine="warp")


def test_system_run_default_engine_is_fast(prepared_inputs):
    res = run_experiment("bfs", "Hu", "fifer",
                         prepared=prepared_inputs[("bfs", "Hu")])
    assert res.engine == "fast"
    assert res.raw.engine == "fast"


def test_small_fabric_engines_identical(prepared_inputs):
    """A 4-PE fabric maximizes blocked time (stages contend for PEs),
    the regime where the shortcut engines' stall paths do the most
    work."""
    prepared = prepared_inputs[("bfs", "Hu")]
    config = SystemConfig(n_pes=4)
    runs = {engine: run_experiment("bfs", "Hu", "fifer", prepared=prepared,
                                   config=config, engine=engine)
            for engine in ENGINES}
    _assert_runs_identical({e: r.raw for e, r in runs.items()})


def test_event_engine_reports_event_counts(prepared_inputs):
    """The event engine exposes its event counts (quanta visited,
    per-PE quanta actually stepped, sleeps/wakes, quanta slept
    through, quanta jumped) so benchmarks can report work done
    alongside wall time."""
    res = run_experiment("bfs", "Hu", "static",
                         prepared=prepared_inputs[("bfs", "Hu")],
                         engine="event")
    stats = res.raw.engine_stats
    assert {"quanta", "pe_quanta", "sleeps", "wakes", "slept_quanta",
            "jumped_quanta"} <= set(stats)
    assert stats["pe_quanta"] + stats["slept_quanta"] > 0
    assert stats["sleeps"] >= stats["wakes"]


# -- truncated runs: deadlock/timeout mid-flight --------------------------

def _sink_dfg(name, in_q):
    b = DFGBuilder(name)
    x = b.deq(in_q)
    b.add(x, x)
    return b.finish()


def _source_dfg(name, out_q):
    b = DFGBuilder(name)
    counter = b.reg("i")
    one = b.const(1)
    nxt = b.add(counter, one)
    b.set_reg(counter, nxt)
    b.enq(out_q, nxt)
    return b.finish()


def _truncatable_program(n_items, sink_consumes=True):
    """Producer/consumer pair; with ``sink_consumes=False`` the sink
    waits on a queue nothing feeds, so the run deadlocks once the
    shared queue fills."""
    space = AddressSpace()
    seen = []

    def producer(ctx):
        for i in range(n_items):
            yield from ctx.enq("trunc.q", i)
        yield from ctx.enq("trunc.q", STOP_VALUE, is_control=True)

    def consumer(ctx):
        while True:
            token = yield from ctx.deq("trunc.q")
            if token.is_control:
                return
            seen.append(token.value)

    def stuck_consumer(ctx):
        yield from ctx.deq("trunc.never")

    consumer_fn = consumer if sink_consumes else stuck_consumer
    sink_queue = "trunc.q" if sink_consumes else "trunc.never"
    pe = PEProgram(
        shard=0,
        queue_specs=[QueueSpec("trunc.q"), QueueSpec("trunc.never")],
        stage_specs=[
            StageSpec("trunc.src", _source_dfg("trunc.src", "trunc.q"),
                      producer),
            StageSpec("trunc.snk", _sink_dfg("trunc.snk", sink_queue),
                      consumer_fn),
        ])
    return Program("trunc", [pe], space, MemoryMap(),
                   result_fn=lambda: list(seen))


def _truncated_state(engine, *, n_items, sink_consumes, config,
                     max_cycles, expect):
    """Run to the expected mid-flight exception; return the system's
    complete observable state at the moment of the raise."""
    program = _truncatable_program(n_items, sink_consumes=sink_consumes)
    system = System(config, program, mode="fifer")
    with pytest.raises(expect) as excinfo:
        system.run(max_cycles=max_cycles, engine=engine)
    return {
        "cycle": system.cycle,
        "counters": [pe.counters.as_dict() for pe in system.pes],
        "queues": {name: (len(q), q.occupancy_words, q.total_enqueued)
                   for name, q in system.queues.items()},
        "message": str(excinfo.value),
    }


class TestTruncatedRuns:
    """Interrupted simulations leave identical state under every
    engine: the deferred-stall ledgers and horizon jumps must clamp
    and settle exactly at the raise."""

    def test_deadlock_state_identical(self):
        config = SystemConfig(n_pes=1, deadlock_quanta=20)
        states = {engine: _truncated_state(
            engine, n_items=5, sink_consumes=False, config=config,
            max_cycles=None, expect=DeadlockError) for engine in ENGINES}
        assert states["fast"] == states["naive"]
        assert states["event"] == states["naive"]

    def test_timeout_state_identical(self):
        config = SystemConfig(n_pes=1)
        states = {engine: _truncated_state(
            engine, n_items=10_000, sink_consumes=True, config=config,
            max_cycles=640, expect=SimulationTimeout)
            for engine in ENGINES}
        assert states["fast"] == states["naive"]
        assert states["event"] == states["naive"]

    def test_timeout_through_quiescence_jump_identical(self):
        """With the deadlock horizon far out and a nearer cycle limit,
        a fully blocked system must time out — the event engine takes
        its jump path (every PE asleep), the fast engine its
        fast-forward, the naive engine ticks there; all three must
        agree to the cycle."""
        config = SystemConfig(n_pes=1, deadlock_quanta=100_000)
        states = {engine: _truncated_state(
            engine, n_items=5, sink_consumes=False, config=config,
            max_cycles=50_000, expect=SimulationTimeout)
            for engine in ENGINES}
        assert states["fast"] == states["naive"]
        assert states["event"] == states["naive"]

    @pytest.mark.parametrize("max_cycles", [1_000, 2_500])
    def test_workload_timeout_state_identical(self, max_cycles,
                                              prepared_inputs):
        """A real workload interrupted mid-flight (PEs mid-quantum,
        some possibly asleep) reports identical cycles and timeout
        text under every engine."""
        prepared = prepared_inputs[("bfs", "Hu")]
        messages = {}
        for engine in ENGINES:
            with pytest.raises(SimulationTimeout) as excinfo:
                run_experiment("bfs", "Hu", "static", prepared=prepared,
                               engine=engine, max_cycles=max_cycles)
            messages[engine] = str(excinfo.value)
        assert messages["fast"] == messages["naive"]
        assert messages["event"] == messages["naive"]
