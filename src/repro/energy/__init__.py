"""Energy and area models (paper Table 1 and Fig. 15)."""

from repro.energy.area import PE_AREA_BREAKDOWN_MM2, pe_area_mm2, ooo_core_area_mm2
from repro.energy.model import EnergyModel, EnergyBreakdown

__all__ = ["PE_AREA_BREAKDOWN_MM2", "pe_area_mm2", "ooo_core_area_mm2",
           "EnergyModel", "EnergyBreakdown"]
