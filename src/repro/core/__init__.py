"""The Fifer architecture: PEs, scheduler, reconfiguration, DRMs, system.

This package implements the paper's primary contribution (Sec. 5):
time-multiplexing pipeline stages onto CGRA-based processing elements
with dynamic scheduling, rapid double-buffered reconfiguration, intra-PE
queues, decoupled reference machines, and control values.
"""

from repro.core.stage import StageSpec, StageContext, StageInstance, STOP_VALUE
from repro.core.drm import DRM, DRMSpec
from repro.core.scheduler import make_scheduler, MostWorkScheduler, RoundRobinScheduler
from repro.core.reconfig import ReconfigurationModel
from repro.core.pe import ProcessingElement
from repro.core.program import Program, PEProgram
from repro.core.system import (System, DeadlockError, SimulationResult,
                               SimulationTimeout, ENGINES)

__all__ = [
    "StageSpec", "StageContext", "StageInstance", "STOP_VALUE",
    "DRM", "DRMSpec",
    "make_scheduler", "MostWorkScheduler", "RoundRobinScheduler",
    "ReconfigurationModel", "ProcessingElement",
    "Program", "PEProgram",
    "System", "DeadlockError", "SimulationResult", "SimulationTimeout",
    "ENGINES",
]
