"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's
evaluation (Sec. 8). Results are printed and also written to
``benchmarks/results/<name>.txt`` so they survive pytest's output
capture. Runs are cached within a session so benchmarks that share
experiments (e.g., Fig. 13/14/15) do not repeat simulations.

``REPRO_BENCH_SCALE`` multiplies the per-input default scales (raise it
for higher-fidelity, slower runs).
"""

from __future__ import annotations

import functools
import os
import pathlib

from repro.config import SystemConfig
from repro.harness import prepare_input, run_experiment
from repro.harness.run import APP_INPUTS, default_scale

SCALE_MULT = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
# Every benchmark experiment leaves a schema-versioned run manifest
# next to its results/*.txt so figures carry provenance and runs are
# diffable with `python -m repro report benchmarks/results/manifests`.
MANIFEST_DIR = RESULTS_DIR / "manifests"

ALL_APPS = ("bfs", "cc", "prd", "radii", "spmm", "silo")
# One representative input per app for the expensive sweeps.
REPRESENTATIVE = {"bfs": "In", "cc": "Hu", "prd": "Ci", "radii": "Dy",
                  "spmm": "FS", "silo": "YC"}


def app_inputs(app: str):
    return APP_INPUTS[app]


@functools.lru_cache(maxsize=None)
def prepared(app: str, code: str):
    return prepare_input(app, code,
                         scale=default_scale(app, code) * SCALE_MULT)


@functools.lru_cache(maxsize=None)
def experiment(app: str, code: str, system: str, variant: str = "decoupled",
               queue_scale: float = 1.0, double_buffered: bool = True,
               zero_cost: bool = False, policy: str = "most-work"):
    config = SystemConfig()
    config = config.replace(
        queue_mem_bytes=max(256, int(config.queue_mem_bytes * queue_scale)),
        double_buffered=double_buffered,
        zero_cost_reconfig=zero_cost,
        scheduler_policy=policy,
    )
    return run_experiment(app, code, system, prepared=prepared(app, code),
                          variant=variant, config=config,
                          manifest_dir=MANIFEST_DIR)


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
