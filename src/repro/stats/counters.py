"""A thin counter map with dict-like access and merging."""

from __future__ import annotations

from collections import defaultdict


class Counters:
    """Named floating-point counters (missing names read as zero)."""

    def __init__(self):
        self._values: defaultdict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._values[name] += amount

    def __getitem__(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def __setitem__(self, name: str, value: float) -> None:
        self._values[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def total(self) -> float:
        """Sum of all counter values."""
        return sum(self._values.values())

    def items(self):
        """``(name, value)`` pairs in sorted-name order (deterministic
        for exporters); missing names still read as zero elsewhere."""
        return sorted(self._values.items())

    def scaled(self, factor: float) -> "Counters":
        """A new ``Counters`` with every value multiplied by ``factor``."""
        scaled = Counters()
        for name, value in self._values.items():
            scaled._values[name] = value * factor
        return scaled

    def as_dict(self) -> dict[str, float]:
        return dict(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.6g}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"
