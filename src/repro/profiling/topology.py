"""Queue-neighborhood lookup for blame attribution and path walking.

The wait-for profiler needs to answer, for any queue name, "who fills
this queue?" and "who drains it?" — so a ``stall_queue_empty`` cycle can
be charged to the upstream producer and a ``stall_queue_full`` cycle to
the downstream consumer. :func:`repro.analysis.graph.build_channel_graph`
already extracts exactly this topology from the compiled artifacts; this
module wraps it in O(1) lookups and adds the name conventions shared by
the profiler (base stage names, component labels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.graph import CONTROL_CORE, build_channel_graph

#: Blame-matrix column for cycles a PE spent doing useful work.
COMPUTE = "(compute)"
#: Blame-matrix column for backend/memory-hierarchy stalls.
MEMORY = "(memory)"
#: Blame-matrix column for reconfiguration cycles.
RECONFIG = "(reconfig)"
#: Blame-matrix column for inactive cycles (no runnable work).
IDLE = "(idle)"
#: Blame target when a queue stall cannot be tied to a queue/endpoint.
UNRESOLVED = "(unresolved)"
#: Blame target for queues on the control-core boundary.
CONTROL = f"({CONTROL_CORE})"


def base_name(component: str) -> str:
    """Collapse a per-shard name to its base: ``bfs.fetch@3`` ->
    ``bfs.fetch``. Non-sharded labels pass through unchanged."""
    return component.split("@", 1)[0]


@dataclass(frozen=True)
class Neighbor:
    """One endpoint on a queue: a stage, DRM, or the control core."""

    kind: str   # "stage" | "drm" | "control"
    name: str
    pe: int     # -1 for the control core


class Topology:
    """Producer/consumer lookup tables for every queue in a program."""

    def __init__(self, producers: dict, consumers: dict, pes: dict):
        self._producers = producers   # queue -> tuple[Neighbor]
        self._consumers = consumers   # queue -> tuple[Neighbor]
        self._pes = pes               # component name -> pe id

    @classmethod
    def from_program(cls, program, config) -> "Topology":
        """Extract the topology from a compiled ``Program``."""
        graph = build_channel_graph(program, config)
        producers: dict = {}
        consumers: dict = {}
        pes: dict = {}
        for channel in graph.channels.values():
            producers[channel.name] = tuple(
                Neighbor(e.kind, e.name, e.pe) for e in channel.producers)
            consumers[channel.name] = tuple(
                Neighbor(e.kind, e.name, e.pe) for e in channel.consumers)
        for node in graph.stages:
            pes[node.endpoint.name] = node.endpoint.pe
        for node in graph.drms:
            pes[node.endpoint.name] = node.endpoint.pe
        return cls(producers, consumers, pes)

    def producers_of(self, queue: str) -> tuple:
        """Fabric endpoints that enqueue into ``queue`` (control-core
        producers excluded; empty when only the control core fills it)."""
        return tuple(n for n in self._producers.get(queue, ())
                     if n.kind != "control")

    def consumers_of(self, queue: str) -> tuple:
        """Fabric endpoints that dequeue from ``queue``."""
        return tuple(n for n in self._consumers.get(queue, ())
                     if n.kind != "control")

    def pe_of(self, component: str) -> int:
        """PE hosting ``component``, or -1 when unknown."""
        return self._pes.get(component, -1)

    def blamees_for_stall(self, bucket: str, queue) -> tuple:
        """Components to blame for one queue stall: names, in a stable
        order. ``stall_queue_empty`` waits on the queue's producers;
        ``stall_queue_full`` waits on its consumers. Falls back to the
        control core (iteration dispatch / barrier) when no fabric
        endpoint sits on the blamed side, and to :data:`UNRESOLVED`
        when the stall carries no queue at all."""
        if queue is None:
            return (UNRESOLVED,)
        if bucket == "stall_queue_full":
            side = self.consumers_of(queue)
        else:
            side = self.producers_of(queue)
        if not side:
            return (CONTROL,)
        return tuple(n.name for n in side)
